// Reproduces Figure 2: "Two configurations of an IP delivery executable".
//
// Left: module generator + circuit estimator only (passive customer).
// Right: + circuit viewer, layout viewer, simulator, netlister (licensed).
//
// For each configuration this bench reports the capability matrix
// (operation granted/denied at the sandbox boundary) and the download
// payload closure, showing the vendor's visibility/footprint trade-off.
#include <chrono>
#include <cstdio>
#include <functional>

#include "core/applet.h"
#include "core/generators.h"

using namespace jhdl;
using namespace jhdl::core;

namespace {

struct Op {
  const char* name;
  std::function<void(Applet&)> invoke;
};

}  // namespace

int main() {
  std::printf("=== Figure 2: two configurations of an IP delivery "
              "executable ===\n\n");

  auto generator = std::make_shared<KcmGenerator>();
  const ParamMap params = ParamMap()
                              .set("input_width", std::int64_t{8})
                              .set("constant", std::int64_t{-56})
                              .set("signed_mode", true);

  const Op ops[] = {
      {"build(params)", [&](Applet& a) { a.build(params); }},
      {"area estimate", [](Applet& a) { (void)a.area(); }},
      {"timing estimate", [](Applet& a) { (void)a.timing(); }},
      {"hierarchy view", [](Applet& a) { (void)a.hierarchy(); }},
      {"schematic (svg)", [](Applet& a) { (void)a.schematic_svg(); }},
      {"layout view", [](Applet& a) { (void)a.layout_text(); }},
      {"simulate cycle", [](Applet& a) { a.sim_cycle(); }},
      {"waveform view", [](Applet& a) { (void)a.waves(); }},
      {"EDIF netlist", [](Applet& a) { (void)a.netlist(NetlistFormat::Edif); }},
      {"black-box model", [](Applet& a) { (void)a.make_black_box(); }},
  };

  struct Config {
    const char* label;
    LicenseTier tier;
  };
  const Config configs[] = {
      {"estimator-only (Fig 2, left)", LicenseTier::Anonymous},
      {"full visibility (Fig 2, right)", LicenseTier::Licensed},
  };

  for (const Config& config : configs) {
    std::printf("--- %s ---\n", config.label);
    auto start = std::chrono::steady_clock::now();
    Applet applet = AppletBuilder()
                        .title(config.label)
                        .generator(generator)
                        .license(LicensePolicy::make("cust", config.tier))
                        .build_applet();
    double assemble_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();

    std::size_t granted = 0, denied = 0;
    for (const Op& op : ops) {
      try {
        op.invoke(applet);
        std::printf("  %-18s granted\n", op.name);
        ++granted;
      } catch (const AppletSecurityError&) {
        std::printf("  %-18s denied\n", op.name);
        ++denied;
      }
    }

    auto report = applet.download_report();
    std::printf("  => %zu granted, %zu denied; assembled in %.2f ms\n",
                granted, denied, assemble_ms);
    std::printf("  => payload: %zu archives, %zu B compressed\n",
                report.rows.size(), report.total_compressed);
    for (const auto& row : report.rows) {
      std::printf("       %-26s %8zu B\n", row.file.c_str(), row.compressed);
    }
    std::printf("\n");
  }

  std::printf("shape check: the full configuration grants strictly more "
              "operations and pulls a strictly larger payload.\n");
  return 0;
}
