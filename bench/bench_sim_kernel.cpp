// Compiled vs interpreted simulation-kernel throughput over the catalog
// IP: the same clocked random stimulus is run through both engines for
// each (generator, size) configuration and the harness reports cycles/sec,
// primitive-evaluation counts, and the compiled/interpreted speedup. A
// per-cycle output checksum proves the engines bit-exact against each
// other, so a speedup bought with wrong answers fails the run.
//
// The compiled engine wins twice: opcode dispatch from a flat SoA program
// replaces one virtual call per primitive, and event-driven settling
// re-evaluates only the fan-out cone of nets that actually changed.
//
// Emits BENCH_sim_kernel.json. `--smoke` shrinks the cycle budget for CI.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/generator.h"
#include "core/generators.h"
#include "hdl/visitor.h"
#include "sim/simulator.h"
#include "util/json.h"
#include "util/rng.h"

using namespace jhdl;
using namespace jhdl::core;

namespace {

struct BenchConfig {
  std::string label;
  const ModuleGenerator* gen;
  ParamMap params;
  /// Largest instance of its generator family (the acceptance rows).
  bool flagship = false;
};

struct RunResult {
  double cycles_per_sec = 0.0;
  std::size_t evals = 0;
  std::size_t prims = 0;
  std::uint64_t checksum = 0;
};

RunResult run(const BenchConfig& config, SimMode mode, std::size_t cycles,
              std::uint64_t seed) {
  BuildResult build = config.gen->build(config.params);
  SimOptions options;
  options.mode = mode;
  Simulator sim(*build.system, options);

  RunResult result;
  result.prims = collect_primitives(*build.system).size();
  Rng rng(seed);

  // Hoist the stimulus vectors and probe lists out of the timed loop so
  // the harness measures the engines, not per-cycle heap traffic. Probe
  // bits are read straight off the nets: both engines write values
  // through to the Net objects, so this observes exactly what get()
  // would return, without materializing a BitVector + string per cycle.
  std::vector<std::pair<Wire*, BitVector>> stim;
  for (const auto& [name, wire] : build.inputs) {
    stim.emplace_back(wire, BitVector(wire->width(), Logic4::Zero));
  }
  std::vector<Wire*> probes;
  for (const auto& [name, wire] : build.outputs) probes.push_back(wire);

  std::uint64_t checksum = 0xcbf29ce484222325ull;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < cycles; ++t) {
    for (auto& [wire, bits] : stim) {
      const std::uint64_t v = rng.next();
      for (std::size_t i = 0; i < bits.width(); ++i) {
        bits.set(i, to_logic(((v >> (i & 63)) & 1u) != 0 && i < 64));
      }
      sim.put(wire, bits);
    }
    sim.cycle();
    sim.propagate();
    for (Wire* wire : probes) {
      for (std::size_t i = 0; i < wire->width(); ++i) {
        checksum ^= static_cast<std::uint64_t>(wire->net(i)->value());
        checksum *= 0x100000001B3ull;  // FNV-1a
      }
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  result.cycles_per_sec = seconds > 0.0 ? cycles / seconds : 0.0;
  result.evals = sim.eval_count();
  result.checksum = checksum;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::size_t cycles = smoke ? 500 : 20000;

  KcmGenerator kcm;
  FirGenerator fir;
  DdsIpGenerator dds;
  std::vector<BenchConfig> configs;
  for (std::int64_t width : {8, 16, 32}) {
    BenchConfig c;
    c.label = "kcm-" + std::to_string(width);
    c.gen = &kcm;
    c.params = ParamMap()
                   .set("input_width", width)
                   .set("constant", std::int64_t{-20563})
                   .set("signed_mode", true)
                   .set("pipelined_mode", true)
                   .resolved(kcm.params());
    c.flagship = width == 32;
    configs.push_back(c);
  }
  for (std::int64_t width : {8, 24}) {
    BenchConfig c;
    c.label = "fir4-" + std::to_string(width);
    c.gen = &fir;
    c.params = ParamMap()
                   .set("input_width", width)
                   .set("c0", std::int64_t{-2})
                   .set("c1", std::int64_t{13})
                   .set("c2", std::int64_t{13})
                   .set("c3", std::int64_t{-2})
                   .set("pipelined", true)
                   .resolved(fir.params());
    c.flagship = width == 24;
    configs.push_back(c);
  }
  for (std::int64_t width : {10, 16}) {
    BenchConfig c;
    c.label = "dds-" + std::to_string(width);
    c.gen = &dds;
    c.params = ParamMap()
                   .set("phase_width", width)
                   .set("tuning", std::int64_t{977})
                   .resolved(dds.params());
    configs.push_back(c);
  }

  std::printf("=== Simulation kernel: compiled vs interpreted ===\n\n");
  std::printf("%zu clocked cycles per run, random stimulus%s\n\n", cycles,
              smoke ? " (smoke)" : "");
  std::printf("  %-9s %6s %14s %14s %8s %13s %6s\n", "circuit", "prims",
              "interp cyc/s", "compiled cyc/s", "speedup", "eval ratio",
              "exact");

  Json rows = Json::array();
  bool all_exact = true;
  bool flagships_fast = true;
  for (const BenchConfig& config : configs) {
    const RunResult interp =
        run(config, SimMode::Interpreted, cycles, 0x5EED);
    const RunResult comp = run(config, SimMode::Compiled, cycles, 0x5EED);
    const bool exact = interp.checksum == comp.checksum;
    all_exact = all_exact && exact;
    const double speedup = interp.cycles_per_sec > 0.0
                               ? comp.cycles_per_sec / interp.cycles_per_sec
                               : 0.0;
    // Acceptance: the flagship KCM and FIR instances must clear 3x. The
    // smoke run still checks parity but skips the throughput gate (CI
    // machines are noisy and the budget is tiny).
    if (config.flagship && !smoke && speedup < 3.0) flagships_fast = false;
    const double eval_ratio =
        interp.evals > 0
            ? static_cast<double>(comp.evals) / static_cast<double>(interp.evals)
            : 1.0;
    std::printf("  %-9s %6zu %14.0f %14.0f %7.2fx %12.3f %6s\n",
                config.label.c_str(), interp.prims, interp.cycles_per_sec,
                comp.cycles_per_sec, speedup, eval_ratio,
                exact ? "yes" : "NO");

    Json row = Json::object();
    row.set("circuit", config.label);
    row.set("primitives", interp.prims);
    row.set("cycles", cycles);
    row.set("interpreted_cycles_per_sec", interp.cycles_per_sec);
    row.set("compiled_cycles_per_sec", comp.cycles_per_sec);
    row.set("speedup", speedup);
    row.set("interpreted_evals", interp.evals);
    row.set("compiled_evals", comp.evals);
    row.set("eval_ratio", eval_ratio);
    row.set("flagship", config.flagship);
    row.set("bit_exact", exact);
    rows.push(row);
  }

  Json doc = Json::object();
  doc.set("benchmark", std::string("sim_kernel"));
  doc.set("cycles_per_run", cycles);
  doc.set("smoke", smoke);
  doc.set("rows", rows);
  doc.set("all_bit_exact", all_exact);
  doc.set("flagships_reach_3x", flagships_fast);
  std::ofstream("BENCH_sim_kernel.json") << doc.dump() << "\n";
  std::printf("\nwrote BENCH_sim_kernel.json\n");
  if (!all_exact) std::printf("FAIL: engines disagree\n");
  if (!flagships_fast) std::printf("FAIL: flagship speedup below 3x\n");
  return (all_exact && flagships_fast) ? 0 : 1;
}
