// Simulation-kernel throughput ladder over the VTR-class corpus: the
// same workloads run through four engine configurations and the harness
// reports throughput, speedups, and bit-exactness for each corpus shape
// (systolic-array, hash-pipe, cordic-rotator, rf-alu).
//
// Two workloads, four engine rows:
//   pattern sweep   N independent stimulus patterns, each from power-on
//                   reset, C cycles deep - the PatternBatch workload.
//                     interp    interpreted engine, one pattern at a time
//                     compiled  compiled kernel, one pattern at a time
//                     mp        bit-parallel kernel, 64 patterns/word
//   cycle stream    T clocked cycles of per-cycle random stimulus - the
//                   CycleBatch workload.
//                     compiled  threads=1 (the baseline)
//                     threaded  threads=hardware_concurrency, island-
//                               parallel settles
//
// A per-run output checksum proves every engine row bit-exact against
// the others, so a speedup bought with wrong answers fails the run.
// Acceptance (full run): the multi-pattern kernel clears 8x over the
// interpreter on at least two corpus shapes; with >= 4 hardware cores
// the threaded kernel clears 2x over single-thread compiled on at least
// one multi-island shape (on smaller hosts the threaded gate is
// reported but not enforced - there is nothing to parallelize onto).
//
// Emits BENCH_sim_kernel.json. `--smoke` shrinks the budgets for CI.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/corpus_generators.h"
#include "core/generator.h"
#include "hdl/visitor.h"
#include "sim/multi_pattern_kernel.h"
#include "sim/simulator.h"
#include "util/json.h"
#include "util/rng.h"

using namespace jhdl;
using namespace jhdl::core;

namespace {

struct ShapeConfig {
  std::string label;
  const ModuleGenerator* gen;
  ParamMap params;
};

/// Pre-generated stimulus for one shape, keyed by input order (the
/// build's name-ordered input map), identical across every engine row.
struct Stimulus {
  std::vector<std::vector<BitVector>> patterns;  // [input][pattern]
  std::vector<std::vector<BitVector>> stream;    // [input][cycle]
};

void hash_bits(std::uint64_t& h, const BitVector& v) {
  for (std::size_t i = 0; i < v.width(); ++i) {
    h ^= static_cast<std::uint64_t>(v.get(i));
    h *= 0x100000001B3ull;  // FNV-1a
  }
}

BitVector random_bits(Rng& rng, std::size_t width) {
  BitVector v(width, Logic4::Zero);
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < width; ++i) {
    if ((i & 63u) == 0) word = rng.next();
    v.set(i, to_logic(((word >> (i & 63u)) & 1u) != 0));
  }
  return v;
}

Stimulus make_stimulus(const BuildResult& build, std::size_t n_patterns,
                       std::size_t n_cycles, std::uint64_t seed) {
  Stimulus stim;
  Rng rng(seed);
  for (const auto& [name, wire] : build.inputs) {
    std::vector<BitVector> column;
    column.reserve(n_patterns);
    for (std::size_t p = 0; p < n_patterns; ++p) {
      column.push_back(random_bits(rng, wire->width()));
    }
    stim.patterns.push_back(std::move(column));
  }
  for (const auto& [name, wire] : build.inputs) {
    std::vector<BitVector> column;
    column.reserve(n_cycles);
    for (std::size_t t = 0; t < n_cycles; ++t) {
      column.push_back(random_bits(rng, wire->width()));
    }
    stim.stream.push_back(std::move(column));
  }
  return stim;
}

struct PatternRun {
  double patterns_per_sec = 0.0;
  std::uint64_t checksum = 0;
  std::size_t prims = 0;
  bool mp_supported = false;
};

/// Scalar reference: one reset + C cycles per pattern, either engine.
PatternRun run_pattern_scalar(const ShapeConfig& shape, SimMode mode,
                              const Stimulus& stim, std::size_t cycles) {
  BuildResult build = shape.gen->build(shape.params);
  SimOptions options;
  options.mode = mode;
  Simulator sim(*build.system, options);

  PatternRun result;
  result.prims = collect_primitives(*build.system).size();
  std::vector<Wire*> inputs;
  for (const auto& [name, wire] : build.inputs) inputs.push_back(wire);
  std::vector<Wire*> probes;
  for (const auto& [name, wire] : build.outputs) probes.push_back(wire);

  const std::size_t n_patterns = stim.patterns.front().size();
  std::uint64_t checksum = 0xcbf29ce484222325ull;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t p = 0; p < n_patterns; ++p) {
    sim.reset();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      sim.put(inputs[i], stim.patterns[i][p]);
    }
    if (cycles > 0) {
      sim.cycle(cycles);
    } else {
      sim.propagate();
    }
    for (Wire* wire : probes) hash_bits(checksum, sim.get(wire));
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  result.patterns_per_sec = seconds > 0.0 ? n_patterns / seconds : 0.0;
  result.checksum = checksum;
  return result;
}

/// Bit-parallel row: one pattern_sweep call packs 64 patterns per word.
PatternRun run_pattern_mp(const ShapeConfig& shape, const Stimulus& stim,
                          std::size_t cycles) {
  BuildResult build = shape.gen->build(shape.params);
  SimOptions options;
  options.mode = SimMode::Compiled;
  options.threads = 1;
  Simulator sim(*build.system, options);

  PatternRun result;
  result.prims = collect_primitives(*build.system).size();
  result.mp_supported =
      sim.compiled_program() != nullptr &&
      MultiPatternKernel::supports(*sim.compiled_program());
  std::vector<PatternStimulus> streams;
  {
    std::size_t i = 0;
    for (const auto& [name, wire] : build.inputs) {
      streams.push_back(PatternStimulus{wire, stim.patterns[i++]});
    }
  }
  std::vector<Wire*> probes;
  for (const auto& [name, wire] : build.outputs) probes.push_back(wire);

  const std::size_t n_patterns = stim.patterns.front().size();
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::vector<BitVector>> columns =
      sim.pattern_sweep(n_patterns, streams, cycles, probes);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::uint64_t checksum = 0xcbf29ce484222325ull;
  for (std::size_t p = 0; p < n_patterns; ++p) {
    for (const std::vector<BitVector>& column : columns) {
      hash_bits(checksum, column[p]);
    }
  }
  result.patterns_per_sec = seconds > 0.0 ? n_patterns / seconds : 0.0;
  result.checksum = checksum;
  return result;
}

struct StreamRun {
  double cycles_per_sec = 0.0;
  std::uint64_t checksum = 0;
  std::size_t islands = 0;
};

/// Streaming row: one cycle_batch call, single- or multi-threaded.
StreamRun run_stream(const ShapeConfig& shape, const Stimulus& stim,
                     std::size_t threads) {
  BuildResult build = shape.gen->build(shape.params);
  SimOptions options;
  options.mode = SimMode::Compiled;
  options.threads = threads;
  // The bench measures the pool, not the engagement heuristic: let the
  // threaded settle engage on every corpus shape.
  options.parallel_min_ops = 1;
  Simulator sim(*build.system, options);

  std::vector<BatchStimulus> streams;
  {
    std::size_t i = 0;
    for (const auto& [name, wire] : build.inputs) {
      streams.push_back(BatchStimulus{wire, stim.stream[i++]});
    }
  }
  std::vector<Wire*> probes;
  for (const auto& [name, wire] : build.outputs) probes.push_back(wire);

  const std::size_t n_cycles = stim.stream.front().size();
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::vector<BitVector>> columns =
      sim.cycle_batch(n_cycles, streams, probes);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  StreamRun result;
  std::uint64_t checksum = 0xcbf29ce484222325ull;
  for (std::size_t t = 0; t < n_cycles; ++t) {
    for (const std::vector<BitVector>& column : columns) {
      hash_bits(checksum, column[t]);
    }
  }
  result.cycles_per_sec = seconds > 0.0 ? n_cycles / seconds : 0.0;
  result.checksum = checksum;
  if (sim.islands() != nullptr) {
    result.islands = sim.islands()->num_islands();
  } else if (sim.compiled_program() != nullptr) {
    // Parallel settle never engaged (single thread / single core); the
    // island count is structural, so report it anyway.
    result.islands = partition_islands(*sim.compiled_program())->num_islands();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::size_t n_patterns = smoke ? 70 : 256;
  const std::size_t pattern_cycles = smoke ? 2 : 4;
  const std::size_t stream_cycles = smoke ? 128 : 4096;
  const std::size_t hw = std::max<std::size_t>(
      1, std::thread::hardware_concurrency());
  const std::size_t threads = std::min<std::size_t>(hw, 8);

  SystolicArrayGenerator systolic;
  HashPipeGenerator hash;
  CordicGenerator cordic;
  RfAluGenerator rfalu;
  std::vector<ShapeConfig> shapes;
  shapes.push_back({"systolic-4x4x8", &systolic,
                    ParamMap()
                        .set("rows", std::int64_t{4})
                        .set("cols", std::int64_t{4})
                        .set("data_width", std::int64_t{8})
                        .set("guard_bits", std::int64_t{4})
                        .resolved(systolic.params())});
  shapes.push_back({"hashpipe-crc8", &hash,
                    ParamMap()
                        .set("algo", std::int64_t{0})
                        .set("data_width", std::int64_t{8})
                        .resolved(hash.params())});
  shapes.push_back({"cordic-16x12p", &cordic,
                    ParamMap()
                        .set("width", std::int64_t{16})
                        .set("stages", std::int64_t{12})
                        .set("pipelined", std::int64_t{1})
                        .resolved(cordic.params())});
  shapes.push_back({"rfalu-16x16", &rfalu,
                    ParamMap()
                        .set("regs", std::int64_t{16})
                        .set("width", std::int64_t{16})
                        .resolved(rfalu.params())});

  std::printf("=== Simulation kernel ladder: corpus shapes ===\n\n");
  std::printf(
      "pattern sweep: %zu patterns x %zu cycles; stream: %zu cycles; "
      "%zu kernel thread(s) on %zu core(s)%s\n\n",
      n_patterns, pattern_cycles, stream_cycles, threads, hw,
      smoke ? " (smoke)" : "");
  std::printf("  %-15s %6s %10s %10s %10s %8s %10s %10s %8s %6s\n", "shape",
              "prims", "interp p/s", "comp p/s", "mp p/s", "mp x",
              "1t cyc/s", "Nt cyc/s", "thr x", "exact");

  Json rows = Json::array();
  bool all_exact = true;
  std::size_t mp_fast_shapes = 0;
  std::size_t threaded_fast_shapes = 0;
  for (const ShapeConfig& shape : shapes) {
    BuildResult probe_build = shape.gen->build(shape.params);
    Stimulus stim =
        make_stimulus(probe_build, n_patterns, stream_cycles, 0x5EED);

    const PatternRun interp =
        run_pattern_scalar(shape, SimMode::Interpreted, stim, pattern_cycles);
    const PatternRun comp =
        run_pattern_scalar(shape, SimMode::Compiled, stim, pattern_cycles);
    const PatternRun mp = run_pattern_mp(shape, stim, pattern_cycles);
    const StreamRun stream1 = run_stream(shape, stim, 1);
    const StreamRun streamN = run_stream(shape, stim, threads);

    const bool exact = interp.checksum == comp.checksum &&
                       comp.checksum == mp.checksum &&
                       stream1.checksum == streamN.checksum;
    all_exact = all_exact && exact;
    const double mp_speedup = interp.patterns_per_sec > 0.0
                                  ? mp.patterns_per_sec / interp.patterns_per_sec
                                  : 0.0;
    const double thr_speedup = stream1.cycles_per_sec > 0.0
                                   ? streamN.cycles_per_sec /
                                         stream1.cycles_per_sec
                                   : 0.0;
    if (mp_speedup >= 8.0) ++mp_fast_shapes;
    if (streamN.islands >= 2 && thr_speedup >= 2.0) ++threaded_fast_shapes;
    std::printf(
        "  %-15s %6zu %10.0f %10.0f %10.0f %7.1fx %10.0f %10.0f %7.2fx %6s\n",
        shape.label.c_str(), interp.prims, interp.patterns_per_sec,
        comp.patterns_per_sec, mp.patterns_per_sec, mp_speedup,
        stream1.cycles_per_sec, streamN.cycles_per_sec, thr_speedup,
        exact ? "yes" : "NO");

    Json row = Json::object();
    row.set("shape", shape.label);
    row.set("primitives", interp.prims);
    row.set("patterns", n_patterns);
    row.set("pattern_cycles", pattern_cycles);
    row.set("interp_patterns_per_sec", interp.patterns_per_sec);
    row.set("compiled_patterns_per_sec", comp.patterns_per_sec);
    row.set("mp_patterns_per_sec", mp.patterns_per_sec);
    row.set("mp_supported", mp.mp_supported);
    row.set("mp_speedup_vs_interp", mp_speedup);
    row.set("mp_speedup_vs_compiled",
            comp.patterns_per_sec > 0.0
                ? mp.patterns_per_sec / comp.patterns_per_sec
                : 0.0);
    row.set("stream_cycles", stream_cycles);
    row.set("stream_1t_cycles_per_sec", stream1.cycles_per_sec);
    row.set("stream_nt_cycles_per_sec", streamN.cycles_per_sec);
    row.set("threaded_speedup", thr_speedup);
    row.set("islands", streamN.islands);
    row.set("bit_exact", exact);
    rows.push(row);
  }

  // The multi-pattern gate always applies to a full run; the threaded
  // gate needs real cores to demonstrate (the pool adds coordination
  // overhead that a 1-2 core host cannot amortize), so it is recorded
  // but only enforced when >= 4 cores are present.
  const bool threaded_gate_applicable = !smoke && hw >= 4;
  const bool mp_gate = smoke || mp_fast_shapes >= 2;
  const bool threaded_gate =
      !threaded_gate_applicable || threaded_fast_shapes >= 1;

  Json doc = Json::object();
  doc.set("benchmark", std::string("sim_kernel"));
  doc.set("smoke", smoke);
  doc.set("hardware_cores", hw);
  doc.set("kernel_threads", threads);
  doc.set("patterns_per_run", n_patterns);
  doc.set("pattern_cycles", pattern_cycles);
  doc.set("stream_cycles", stream_cycles);
  doc.set("rows", rows);
  doc.set("all_bit_exact", all_exact);
  doc.set("mp_shapes_reaching_8x", mp_fast_shapes);
  doc.set("mp_gate_passed", mp_gate);
  doc.set("threaded_shapes_reaching_2x", threaded_fast_shapes);
  doc.set("threaded_gate_applicable", threaded_gate_applicable);
  doc.set("threaded_gate_passed", threaded_gate);
  std::ofstream("BENCH_sim_kernel.json") << doc.dump() << "\n";
  std::printf("\nwrote BENCH_sim_kernel.json\n");
  if (!all_exact) std::printf("FAIL: engine rows disagree\n");
  if (!mp_gate) {
    std::printf("FAIL: multi-pattern kernel below 8x on %zu shape(s)\n",
                mp_fast_shapes);
  }
  if (!threaded_gate) {
    std::printf("FAIL: threaded kernel below 2x on every shape\n");
  }
  return (all_exact && mp_gate && threaded_gate) ? 0 : 1;
}
