// Google-benchmark microbenchmarks of the infrastructure the applets run
// on: simulator settle/cycle throughput vs circuit size, netlister
// throughput per format, applet build cost, and archive compression.
// These quantify the "simulating the IP directly on the user's machine"
// half of the paper's latency argument.
#include <benchmark/benchmark.h>

#include "core/applet.h"
#include "core/generators.h"
#include "core/packaging.h"
#include "hdl/hwsystem.h"
#include "modgen/kcm.h"
#include "netlist/netlist.h"
#include "sim/simulator.h"
#include "util/compress.h"
#include "util/rng.h"

using namespace jhdl;

namespace {

struct KcmRig {
  HWSystem hw;
  Wire* m;
  Wire* p;
  modgen::VirtexKCMMultiplier* kcm;
  explicit KcmRig(std::size_t width, bool pipelined = false) {
    m = new Wire(&hw, width, "m");
    p = new Wire(&hw, width + 14, "p");
    kcm = new modgen::VirtexKCMMultiplier(&hw, m, p, false, pipelined, 12345);
  }
};

void BM_SimulatorPropagate(benchmark::State& state) {
  KcmRig rig(static_cast<std::size_t>(state.range(0)));
  Simulator sim(rig.hw);
  Rng rng(1);
  const std::uint64_t mask = (1ull << state.range(0)) - 1;
  for (auto _ : state) {
    sim.put(rig.m, rng.next() & mask);
    benchmark::DoNotOptimize(sim.get(rig.p));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorPropagate)->Arg(8)->Arg(16)->Arg(32);

void BM_SimulatorCycle(benchmark::State& state) {
  KcmRig rig(static_cast<std::size_t>(state.range(0)), /*pipelined=*/true);
  Simulator sim(rig.hw);
  Rng rng(1);
  const std::uint64_t mask = (1ull << state.range(0)) - 1;
  for (auto _ : state) {
    sim.put(rig.m, rng.next() & mask);
    sim.cycle();
    benchmark::DoNotOptimize(sim.get(rig.p));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorCycle)->Arg(8)->Arg(16)->Arg(32);

void BM_GeneratorElaborate(benchmark::State& state) {
  for (auto _ : state) {
    KcmRig rig(static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(rig.kcm);
  }
}
BENCHMARK(BM_GeneratorElaborate)->Arg(8)->Arg(16)->Arg(32);

void BM_NetlistEdif(benchmark::State& state) {
  KcmRig rig(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(netlist::write_edif(*rig.kcm));
  }
}
BENCHMARK(BM_NetlistEdif);

void BM_NetlistVhdl(benchmark::State& state) {
  KcmRig rig(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(netlist::write_vhdl(*rig.kcm));
  }
}
BENCHMARK(BM_NetlistVhdl);

void BM_NetlistVerilog(benchmark::State& state) {
  KcmRig rig(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(netlist::write_verilog(*rig.kcm));
  }
}
BENCHMARK(BM_NetlistVerilog);

void BM_NetlistJson(benchmark::State& state) {
  KcmRig rig(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(netlist::write_json(*rig.kcm));
  }
}
BENCHMARK(BM_NetlistJson);

void BM_LzssCompressNetlist(benchmark::State& state) {
  KcmRig rig(16);
  std::string edif = netlist::write_edif(*rig.kcm);
  std::vector<std::uint8_t> data(edif.begin(), edif.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(lzss_compress(data));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * data.size()));
}
BENCHMARK(BM_LzssCompressNetlist);

void BM_AppletBuildOp(benchmark::State& state) {
  using namespace jhdl::core;
  auto gen = std::make_shared<KcmGenerator>();
  Applet applet = AppletBuilder()
                      .generator(gen)
                      .license(LicensePolicy::make("b", LicenseTier::Licensed))
                      .build_applet();
  ParamMap params = ParamMap()
                        .set("input_width", std::int64_t{16})
                        .set("constant", std::int64_t{12345});
  for (auto _ : state) {
    applet.build(params);
  }
}
BENCHMARK(BM_AppletBuildOp);

}  // namespace

BENCHMARK_MAIN();
