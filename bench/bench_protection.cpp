// Benchmarks the Section 4.3 protection measures: cost of identifier
// obfuscation (netlist size and time deltas), watermark capacity across
// instance widths, and watermark extraction resilience under random
// tampering of ROM tables.
//
// Emits BENCH_protection.json with one row per measurement so the
// obfuscation-cost and watermark-survival numbers land next to
// BENCH_attack.json's extraction scores - together they are the full
// cost/benefit ledger of the protection loop.
#include <chrono>
#include <cstdio>
#include <fstream>

#include "core/protect.h"
#include "hdl/hwsystem.h"
#include "modgen/kcm.h"
#include "netlist/netlist.h"
#include "tech/memory.h"
#include "hdl/visitor.h"
#include "util/json.h"
#include "util/rng.h"

using namespace jhdl;
using namespace jhdl::core;
using Clock = std::chrono::steady_clock;

int main() {
  std::printf("=== Protection measures (Section 4.3) ===\n\n");
  Json doc = Json::object();
  doc.set("benchmark", std::string("protection"));

  // --- obfuscation cost ---
  std::printf("obfuscation cost (KCM, unsigned, constant 201):\n");
  std::printf("  %6s | %10s %10s %8s | %9s\n", "width", "edif B", "obf edif B",
              "delta", "obf ms");
  Json obf_rows = Json::array();
  for (std::size_t w : {8u, 16u, 32u}) {
    HWSystem hw;
    Wire* m = new Wire(&hw, w, "m");
    Wire* p = new Wire(&hw, w + 8, "p");
    auto* kcm = new modgen::VirtexKCMMultiplier(&hw, m, p, false, false, 201);
    std::string before = netlist::write_edif(*kcm);
    auto t0 = Clock::now();
    obfuscate(*kcm, 0xBEEF);
    double obf_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    std::string after = netlist::write_edif(*kcm);
    const double delta = static_cast<double>(after.size()) /
                             static_cast<double>(before.size()) -
                         1.0;
    std::printf("  %6zu | %10zu %10zu %7.1f%% | %9.2f\n", w, before.size(),
                after.size(), 100.0 * delta, obf_ms);
    Json row = Json::object();
    row.set("width", w);
    row.set("edif_bytes", before.size());
    row.set("obfuscated_edif_bytes", after.size());
    row.set("size_delta", delta);
    row.set("obfuscate_ms", obf_ms);
    obf_rows.push(row);
  }
  doc.set("obfuscation_cost", obf_rows);

  // --- watermark capacity ---
  std::printf("\nwatermark capacity (unsigned KCM, constant 201):\n");
  std::printf("  %6s %6s %10s %12s\n", "width", "top k", "carriers",
              "capacity b");
  Json cap_rows = Json::array();
  for (std::size_t w : {5u, 6u, 7u, 9u, 10u, 13u, 14u}) {
    HWSystem hw;
    Wire* m = new Wire(&hw, w, "m");
    Wire* p = new Wire(&hw, w + 8, "p");
    auto* kcm = new modgen::VirtexKCMMultiplier(&hw, m, p, false, false, 201);
    Watermarker marker("vendor");
    std::size_t carriers = marker.embed(*kcm, {});
    // Each carrier entry holds a full data word of the ROM.
    std::size_t capacity_bits = carriers * 12;  // ppw = 8+4
    std::printf("  %6zu %6zu %10zu %12zu\n", w, (w - 1) % 4 + 1, carriers,
                capacity_bits);
    Json row = Json::object();
    row.set("width", w);
    row.set("carriers", carriers);
    row.set("capacity_bits", capacity_bits);
    cap_rows.push(row);
  }
  doc.set("watermark_capacity", cap_rows);

  // --- tamper resilience ---
  std::printf("\nwatermark extraction under random ROM-entry tampering "
              "(6-bit KCM, 100 trials/point):\n");
  std::printf("  %12s %12s\n", "tampered", "verified %");
  Json tamper_rows = Json::array();
  for (int tampered : {0, 1, 2, 4, 8}) {
    int verified = 0;
    for (int trial = 0; trial < 100; ++trial) {
      HWSystem hw;
      Wire* m = new Wire(&hw, 6, "m");
      Wire* p = new Wire(&hw, 14, "p");
      auto* kcm =
          new modgen::VirtexKCMMultiplier(&hw, m, p, false, false, 201);
      Watermarker marker("vendor");
      marker.embed(*kcm, {});
      // Attack: flip `tampered` random carrier entries.
      Rng rng(static_cast<std::uint64_t>(trial * 131 + tampered));
      std::vector<tech::Rom16*> roms;
      for (Primitive* prim : collect_primitives(*kcm)) {
        if (auto* rom = dynamic_cast<tech::Rom16*>(prim)) {
          if (rom->property("UNUSED_ABOVE") != nullptr) roms.push_back(rom);
        }
      }
      for (int k = 0; k < tampered && !roms.empty(); ++k) {
        tech::Rom16* rom = roms[rng.below(roms.size())];
        unsigned first =
            static_cast<unsigned>(std::stoul(*rom->property("UNUSED_ABOVE")));
        unsigned addr =
            first + static_cast<unsigned>(rng.below(16 - first));
        rom->set_entry(addr, rng.next() & 0xFFF);
      }
      if (marker.extract(*kcm, {}).verified()) ++verified;
    }
    std::printf("  %12d %12d\n", tampered, verified);
    Json row = Json::object();
    row.set("tampered_entries", tampered);
    row.set("trials", 100);
    row.set("fully_verified", verified);
    tamper_rows.push(row);
  }
  doc.set("tamper_resilience", tamper_rows);
  std::printf("\nshape: any tampering breaks full verification (the mark is "
              "fragile by design, like ref [7]'s small watermarks - partial "
              "matches still identify the owner).\n");
  std::ofstream("BENCH_protection.json") << doc.dump() << "\n";
  std::printf("\nwrote BENCH_protection.json\n");
  return 0;
}
