// Adversarial extraction harness: how many truth-table bits does the
// port-level oracle leak per 10k queries, and how much does the
// server's QueryAuditor cut that score - without touching a licensed
// customer's ordinary co-simulation traffic?
//
// For each catalog module the SAME ConeExtractor attack runs twice:
// once against the bare BlackBoxModel oracle and once against the
// oracle behind a QueryAuditor (the in-process twin of the delivery
// service's DeliveryConfig::audit path). The protection score is
// recovered truth-table bits per 10k query units; LOWER is better for
// the vendor. A licensed-workload section streams a realistic
// correlated stimulus through the audited oracle and requires zero
// throttling with bit-exact outputs, and a watermark section re-checks
// the ownership mark under obfuscation and ROM tampering - the two
// halves of the paper's protection story.
//
// Emits BENCH_attack.json. `--smoke` shrinks budgets and the auditor
// window. Gates (both modes): the audited score must be strictly lower
// than the unaudited score on every module the attack recovers
// anything from; the licensed workload must see zero throttles and
// stay bit-exact; the watermark must survive obfuscation and verify
// untampered.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "attack/auditor.h"
#include "attack/extractor.h"
#include "attack/oracle.h"
#include "attack/watermark_eval.h"
#include "core/blackbox.h"
#include "core/generators.h"
#include "util/json.h"

using namespace jhdl;
using namespace jhdl::attack;
using namespace jhdl::core;

namespace {

struct ModuleSpec {
  std::string label;
  std::shared_ptr<const ModuleGenerator> gen;
  ParamMap params;
  std::uint64_t budget;
};

std::unique_ptr<BlackBoxModel> make_model(const ModuleSpec& spec) {
  ParamMap p = spec.params.resolved(spec.gen->params());
  return std::make_unique<BlackBoxModel>(spec.gen->build(p),
                                         spec.gen->name());
}

ExtractionReport run_attack(const ModuleSpec& spec, bool audited,
                            const ExtractorConfig& xcfg,
                            const AuditorConfig& acfg) {
  std::unique_ptr<BlackBoxModel> model = make_model(spec);
  ModelOracle inner(*model);
  QueryBudget budget(spec.budget);
  ConeExtractor extractor(xcfg);
  if (!audited) return extractor.extract(inner, budget, spec.label);
  QueryAuditor auditor(acfg);
  AuditedOracle oracle(inner, auditor);
  return extractor.extract(oracle, budget, spec.label);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  ExtractorConfig xcfg;
  if (smoke) {
    xcfg.probe_bases = 8;
    xcfg.validation_queries = 64;
  }
  AuditorConfig acfg;
  if (smoke) acfg.window = 32;

  const std::vector<ModuleSpec> specs = {
      {"gate-net-8x4", std::make_shared<GateNetGenerator>(),
       ParamMap()
           .set("input_width", std::int64_t{8})
           .set("output_width", std::int64_t{4})
           .set("depth", std::int64_t{3})
           .set("seed", std::int64_t{7}),
       smoke ? 1024u : 4096u},
      {"kcm-8", std::make_shared<KcmGenerator>(),
       ParamMap()
           .set("input_width", std::int64_t{8})
           .set("constant", std::int64_t{201}),
       smoke ? 1024u : 4096u},
      {"fir4-8", std::make_shared<FirGenerator>(),
       ParamMap().set("input_width", std::int64_t{8}),
       smoke ? 2048u : 8192u},
      {"kcm-16", std::make_shared<KcmGenerator>(),
       ParamMap()
           .set("input_width", std::int64_t{16})
           .set("constant", std::int64_t{201}),
       smoke ? 4096u : 20000u},
  };

  std::printf("=== IP-extraction harness: oracle leak rate ===\n\n");
  std::printf("  %-13s %-10s %9s %9s %12s %12s %10s\n", "module", "mode",
              "queries", "refused", "recovered", "of total", "score/10k");

  Json rows = Json::array();
  bool auditor_lowers = true;
  for (const ModuleSpec& spec : specs) {
    const ExtractionReport plain = run_attack(spec, false, xcfg, acfg);
    const ExtractionReport audited = run_attack(spec, true, xcfg, acfg);
    for (const ExtractionReport* r : {&plain, &audited}) {
      std::printf("  %-13s %-10s %9llu %9llu %12.1f %12.1f %10.1f\n",
                  spec.label.c_str(), r == &plain ? "open" : "audited",
                  static_cast<unsigned long long>(r->queries_spent),
                  static_cast<unsigned long long>(r->queries_throttled),
                  r->recovered_bits, r->total_bits, r->score_per_10k());
    }
    // The auditor must measurably cut the leak rate wherever the open
    // oracle leaked at all.
    if (plain.score_per_10k() > 0.0 &&
        audited.score_per_10k() >= plain.score_per_10k()) {
      auditor_lowers = false;
    }
    Json row = Json::object();
    row.set("module", spec.label);
    row.set("budget", spec.budget);
    row.set("open", plain.to_json());
    row.set("audited", audited.to_json());
    row.set("score_drop",
            plain.score_per_10k() - audited.score_per_10k());
    rows.push(row);
  }

  // ---- licensed workload: correlated streaming stimulus -------------
  // A triangle wave with unit steps models a customer feeding real
  // samples: low coverage, low bit-flip rate. It must pass the audited
  // oracle untouched and produce exactly the open oracle's outputs.
  const std::size_t workload_n = smoke ? 500 : 2000;
  bool workload_exact = true;
  std::uint64_t workload_throttled = 0;
  {
    ModuleSpec fir = specs[2];
    std::unique_ptr<BlackBoxModel> model_a = make_model(fir);
    std::unique_ptr<BlackBoxModel> model_b = make_model(fir);
    ModelOracle open_oracle(*model_a);
    ModelOracle inner(*model_b);
    QueryAuditor auditor(acfg);
    AuditedOracle audited(inner, auditor);
    std::uint64_t sample = 100;
    std::int64_t step = 1;
    for (std::size_t i = 0; i < workload_n; ++i) {
      std::map<std::string, BitVector> image;
      image.emplace("x", BitVector::from_uint(8, sample));
      std::map<std::string, BitVector> out_open;
      std::map<std::string, BitVector> out_audited;
      open_oracle.query(image, out_open);
      if (!audited.query(image, out_audited)) {
        ++workload_throttled;
      } else if (out_open != out_audited) {
        workload_exact = false;
      }
      if (sample >= 160) step = -1;
      if (sample <= 100) step = 1;
      sample = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(sample) + step);
    }
    workload_throttled += auditor.throttled();
  }
  std::printf(
      "\nlicensed workload: %zu streamed samples, %llu throttled, "
      "bit-exact %s\n",
      workload_n, static_cast<unsigned long long>(workload_throttled),
      workload_exact ? "yes" : "NO");

  // ---- watermark survival -------------------------------------------
  const SurvivalReport wm = evaluate_watermark_survival(
      6, "acme-vendor", {0, 1, 2, 4, 8}, smoke ? 10 : 50, 0xC0FFEE);
  std::printf("\nwatermark: %zu carriers, survives obfuscation %s\n",
              wm.carriers, wm.survives_obfuscation ? "yes" : "NO");
  for (const SurvivalPoint& p : wm.tamper_points) {
    std::printf("  tamper %2zu entries: survival %.2f  carrier match %.3f\n",
                p.tampered_entries, p.survival_rate(), p.mean_carrier_match);
  }
  const bool wm_clean = wm.survives_obfuscation &&
                        !wm.tamper_points.empty() &&
                        wm.tamper_points.front().survival_rate() == 1.0;

  const bool workload_clean = workload_throttled == 0 && workload_exact;

  Json doc = Json::object();
  doc.set("benchmark", std::string("attack"));
  doc.set("smoke", smoke);
  doc.set("modules", rows);
  Json workload = Json::object();
  workload.set("samples", workload_n);
  workload.set("throttled", workload_throttled);
  workload.set("bit_exact", workload_exact);
  doc.set("licensed_workload", workload);
  doc.set("watermark", wm.to_json());
  doc.set("auditor_lowers_score", auditor_lowers);
  doc.set("workload_clean", workload_clean);
  doc.set("watermark_clean", wm_clean);
  std::ofstream("BENCH_attack.json") << doc.dump() << "\n";
  std::printf("\nwrote BENCH_attack.json\n");
  if (!auditor_lowers) {
    std::printf("FAIL: auditor did not lower the extraction score\n");
  }
  if (!workload_clean) {
    std::printf("FAIL: licensed workload throttled or diverged\n");
  }
  if (!wm_clean) std::printf("FAIL: watermark did not survive\n");
  return (auditor_lowers && workload_clean && wm_clean) ? 0 : 1;
}
