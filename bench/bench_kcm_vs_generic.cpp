// Reproduces the shape of the paper's Section 3.1 claim (detailed in its
// reference [9], FPL 2001): the KCM constant-coefficient multiplier is
// substantially smaller and faster than a generic multiplier, because the
// constant folds the partial-product generation into LUT ROMs.
//
// Sweeps width 4..32 with random constants; reports LUTs and critical
// path for KCM vs the generic array multiplier, plus the pipelining
// ablation (area up, critical path down).
#include <cstdio>

#include "estimate/area.h"
#include "estimate/timing.h"
#include "hdl/hwsystem.h"
#include "modgen/adder.h"
#include "modgen/kcm.h"
#include "modgen/mult.h"
#include "util/rng.h"

using namespace jhdl;

int main() {
  std::printf("=== KCM vs generic multiplier (area & delay shape) ===\n\n");
  std::printf("%6s %10s | %9s %9s %7s | %9s %9s %7s | %9s\n", "width",
              "constant", "kcm LUT", "gen LUT", "ratio", "kcm ns", "gen ns",
              "ratio", "winner");

  Rng rng(11);
  for (std::size_t w : {4u, 8u, 12u, 16u, 20u, 24u, 28u, 32u}) {
    const int constant = static_cast<int>(
        (rng.next() % ((1ull << std::min<std::size_t>(w, 30)) - 1)) + 1);

    HWSystem hw_k;
    Wire* m = new Wire(&hw_k, w, "m");
    Wire* pk = new Wire(
        &hw_k, w + modgen::VirtexKCMMultiplier::width_of_constant(constant),
        "p");
    new modgen::VirtexKCMMultiplier(&hw_k, m, pk, false, false, constant);
    auto ak = estimate::estimate_area(hw_k);
    auto tk = estimate::estimate_timing(hw_k);

    HWSystem hw_g;
    Wire* a = new Wire(&hw_g, w, "a");
    Wire* b = new Wire(&hw_g, w, "b");
    Wire* pg = new Wire(&hw_g, 2 * w, "p");
    new modgen::ArrayMultiplier(&hw_g, a, b, pg);
    auto ag = estimate::estimate_area(hw_g);
    auto tg = estimate::estimate_timing(hw_g);

    std::printf("%6zu %10d | %9zu %9zu %6.2fx | %9.2f %9.2f %6.2fx | %9s\n",
                w, constant, ak.luts, ag.luts,
                static_cast<double>(ag.luts) / static_cast<double>(ak.luts),
                tk.comb_delay_ns, tg.comb_delay_ns,
                tg.comb_delay_ns / tk.comb_delay_ns,
                ak.luts < ag.luts && tk.comb_delay_ns < tg.comb_delay_ns
                    ? "kcm"
                    : "mixed");
  }

  std::printf("\npipelining ablation (16-bit KCM, constant 12345):\n");
  std::printf("  %-12s %6s %6s %9s %9s %8s\n", "variant", "LUTs", "FFs",
              "comb ns", "fmax MHz", "latency");
  for (bool pipe : {false, true}) {
    HWSystem hw;
    Wire* m = new Wire(&hw, 16, "m");
    Wire* p = new Wire(&hw, 30, "p");
    auto* kcm = new modgen::VirtexKCMMultiplier(&hw, m, p, false, pipe, 12345);
    auto area = estimate::estimate_area(hw);
    auto timing = estimate::estimate_timing(hw);
    std::printf("  %-12s %6zu %6zu %9.2f %9.1f %8zu\n",
                pipe ? "pipelined" : "comb", area.luts, area.ffs,
                timing.comb_delay_ns, timing.fmax_mhz, kcm->latency());
  }

  std::printf("\ncarry-chain ablation (16-bit adder):\n");
  std::printf("  %-12s %6s %9s\n", "style", "LUTs", "comb ns");
  {
    HWSystem hw;
    Wire* a = new Wire(&hw, 16, "a");
    Wire* b = new Wire(&hw, 16, "b");
    Wire* s = new Wire(&hw, 16, "s");
    new modgen::CarryChainAdder(&hw, a, b, s);
    auto area = estimate::estimate_area(hw);
    auto t = estimate::estimate_timing(hw);
    std::printf("  %-12s %6zu %9.2f\n", "carry-chain", area.luts,
                t.comb_delay_ns);
  }
  {
    HWSystem hw;
    Wire* a = new Wire(&hw, 16, "a");
    Wire* b = new Wire(&hw, 16, "b");
    Wire* s = new Wire(&hw, 16, "s");
    new modgen::RippleAdder(&hw, a, b, s);
    auto area = estimate::estimate_area(hw);
    auto t = estimate::estimate_timing(hw);
    std::printf("  %-12s %6zu %9.2f\n", "gate-ripple", area.luts,
                t.comb_delay_ns);
  }

  std::printf("\nshape: KCM wins area and delay at every width; the gap "
              "grows with width.\n");
  return 0;
}
