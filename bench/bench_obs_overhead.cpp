// Observability overhead on the simulation hot path: the kcm-32
// compiled-kernel flagship is clocked with random stimulus under four
// instrumentation configurations and the harness gates the one that ships
// enabled by default.
//
//   A  baseline        no instrumentation at all
//   B  obs attached    per-cycle span against a DISABLED tracer plus the
//                      counter + histogram records the delivery stack
//                      issues per request; tracing off is the production
//                      default, so B must stay within 3% of A (the gate)
//   C  kernel profile  B plus CompiledKernel profiling (per-run sweep
//                      timings); opt-in, reported for information
//   D  tracing on      B plus an ENABLED tracer (clock reads + ring
//                      stores per span); opt-in, reported for information
//   E  labeled+log     B plus the per-tenant operations plane the
//                      delivery stack ships by default: two cached
//                      family-series records (counter + histogram behind
//                      a {customer} label, resolved once, mutated with
//                      relaxed atomics) and a suppressed Debug log per
//                      cycle, plus a periodic Info log record. Gated at
//                      <3% like B — this is the production default too
//
// Configurations are interleaved round-robin so drift hits all five
// equally, best-of-N is reported, and a per-cycle FNV checksum proves the
// instrumented runs bit-exact against the baseline — observability must
// observe, never perturb.
//
// Emits BENCH_obs.json. `--smoke` shrinks the budget and skips the
// throughput gate (CI machines are noisy), keeping the parity checks.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/generator.h"
#include "core/generators.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "util/json.h"
#include "util/rng.h"

using namespace jhdl;
using namespace jhdl::core;

namespace {

enum class Config { Baseline, ObsOff, KernelProfile, TracingOn, LabeledLog };

const char* config_label(Config c) {
  switch (c) {
    case Config::Baseline: return "A-baseline";
    case Config::ObsOff: return "B-obs-tracing-off";
    case Config::KernelProfile: return "C-kernel-profile";
    case Config::TracingOn: return "D-tracing-on";
    case Config::LabeledLog: return "E-labeled-log";
  }
  return "?";
}

struct RunResult {
  double cycles_per_sec = 0.0;
  std::uint64_t checksum = 0;
};

RunResult run(Config config, std::size_t cycles, std::uint64_t seed) {
  KcmGenerator kcm;
  ParamMap params = ParamMap()
                        .set("input_width", std::int64_t{32})
                        .set("constant", std::int64_t{-20563})
                        .set("signed_mode", true)
                        .set("pipelined_mode", true)
                        .resolved(kcm.params());
  BuildResult build = kcm.build(params);
  SimOptions options;
  options.mode = SimMode::Compiled;
  Simulator sim(*build.system, options);
  if (config == Config::KernelProfile) sim.enable_profiling();

  obs::MetricsRegistry registry;
  obs::Counter& requests = registry.counter("bench.requests");
  obs::Histogram& request_us = registry.histogram("bench.request_us");
  obs::Tracer tracer;
  tracer.set_enabled(config == Config::TracingOn);
  const std::uint64_t trace_id = obs::TraceContext::mint().id;
  const bool instrumented = config != Config::Baseline;

  // Config E: the per-tenant plane as the delivery stack runs it — the
  // family series resolved ONCE (the per-session lookup), then mutated
  // with relaxed atomics per cycle; the Debug record costs one relaxed
  // level check, the periodic Info record pays the full ring store.
  const bool labeled = config == Config::LabeledLog;
  obs::Counter* tenant_requests = nullptr;
  obs::Histogram* tenant_us = nullptr;
  obs::Logger logger;
  logger.set_level(obs::LogLevel::Info);
  if (labeled) {
    tenant_requests =
        &registry.counter_family("bench.tenant.requests", {"customer"})
             .with({"acme"});
    tenant_us =
        &registry.histogram_family("bench.tenant.request_us", {"customer"})
             .with({"acme"});
  }

  Rng rng(seed);
  std::vector<std::pair<Wire*, BitVector>> stim;
  for (const auto& [name, wire] : build.inputs) {
    stim.emplace_back(wire, BitVector(wire->width(), Logic4::Zero));
  }
  std::vector<Wire*> probes;
  for (const auto& [name, wire] : build.outputs) probes.push_back(wire);

  std::uint64_t checksum = 0xcbf29ce484222325ull;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < cycles; ++t) {
    {
      // The per-request instrumentation the delivery stack adds: one
      // span (a relaxed load when tracing is off) and two relaxed
      // atomic records. Scoped so the span closes before the probes.
      obs::ScopedSpan span(tracer, "bench.cycle");
      if (instrumented) {
        span.set_trace(trace_id);
        requests.inc();
        request_us.record(t & 0x3ff);
      }
      if (labeled) {
        tenant_requests->inc();
        tenant_us->record(t & 0x3ff);
        logger.log(obs::LogLevel::Debug, "bench.cycle");  // suppressed
        if ((t & 0xfff) == 0) {
          logger.log(obs::LogLevel::Info, "bench.progress",
                     {{"t", std::to_string(t)}}, trace_id);
        }
      }
      for (auto& [wire, bits] : stim) {
        const std::uint64_t v = rng.next();
        for (std::size_t i = 0; i < bits.width(); ++i) {
          bits.set(i, to_logic(((v >> (i & 63)) & 1u) != 0 && i < 64));
        }
        sim.put(wire, bits);
      }
      sim.cycle();
      sim.propagate();
    }
    for (Wire* wire : probes) {
      for (std::size_t i = 0; i < wire->width(); ++i) {
        checksum ^= static_cast<std::uint64_t>(wire->net(i)->value());
        checksum *= 0x100000001B3ull;  // FNV-1a
      }
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  RunResult result;
  result.cycles_per_sec = seconds > 0.0 ? cycles / seconds : 0.0;
  result.checksum = checksum;
  if (config == Config::KernelProfile) {
    // Exercise the whole reporting path so a broken export fails here.
    sim.export_metrics(registry);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::size_t cycles = smoke ? 300 : 8000;
  const int rounds = smoke ? 2 : 5;
  constexpr Config kConfigs[] = {Config::Baseline, Config::ObsOff,
                                 Config::KernelProfile, Config::TracingOn,
                                 Config::LabeledLog};
  constexpr int kN = 5;

  std::printf("=== Observability overhead: kcm-32 compiled kernel ===\n\n");
  std::printf("%zu cycles x %d interleaved rounds, best-of reported%s\n\n",
              cycles, rounds, smoke ? " (smoke)" : "");

  double best[kN] = {};
  std::uint64_t checksums[kN] = {};
  for (int round = 0; round < rounds; ++round) {
    for (int c = 0; c < kN; ++c) {
      const RunResult r = run(kConfigs[c], cycles, 0x5EED);
      if (r.cycles_per_sec > best[c]) best[c] = r.cycles_per_sec;
      checksums[c] = r.checksum;
    }
  }

  bool all_exact = true;
  for (int c = 1; c < kN; ++c) {
    all_exact = all_exact && checksums[c] == checksums[0];
  }
  const double overhead_pct =
      best[0] > 0.0 ? (1.0 - best[1] / best[0]) * 100.0 : 0.0;
  const double labeled_pct =
      best[0] > 0.0 ? (1.0 - best[4] / best[0]) * 100.0 : 0.0;
  // Noise can make B or E land above A; only a positive gap is overhead.
  // Both ship enabled by default, so both take the gate.
  const bool gate_ok = smoke || (overhead_pct < 3.0 && labeled_pct < 3.0);

  std::printf("  %-19s %14s %12s %6s\n", "config", "cycles/s",
              "vs baseline", "exact");
  Json rows = Json::array();
  for (int c = 0; c < kN; ++c) {
    const double rel = best[0] > 0.0 ? best[c] / best[0] : 0.0;
    std::printf("  %-19s %14.0f %11.3fx %6s\n", config_label(kConfigs[c]),
                best[c], rel, checksums[c] == checksums[0] ? "yes" : "NO");
    Json row = Json::object();
    row.set("config", std::string(config_label(kConfigs[c])));
    row.set("cycles_per_sec", best[c]);
    row.set("relative_to_baseline", rel);
    row.set("bit_exact", checksums[c] == checksums[0]);
    rows.push(row);
  }

  Json doc = Json::object();
  doc.set("benchmark", std::string("obs_overhead"));
  doc.set("circuit", std::string("kcm-32"));
  doc.set("cycles_per_run", cycles);
  doc.set("rounds", rounds);
  doc.set("smoke", smoke);
  doc.set("rows", rows);
  doc.set("obs_off_overhead_pct", overhead_pct);
  doc.set("labeled_log_overhead_pct", labeled_pct);
  doc.set("gate_under_3pct", gate_ok);
  doc.set("all_bit_exact", all_exact);
  std::ofstream("BENCH_obs.json") << doc.dump() << "\n";
  std::printf("\nobs-attached, tracing-off overhead: %.2f%%\n", overhead_pct);
  std::printf("labeled families + log overhead:    %.2f%% %s\n",
              labeled_pct,
              smoke ? "(gate skipped in smoke)" : (gate_ok ? "< 3% OK" : ">= 3% FAIL"));
  std::printf("wrote BENCH_obs.json\n");
  if (!all_exact) std::printf("FAIL: instrumented runs not bit-exact\n");
  return (all_exact && gate_ok) ? 0 : 1;
}
