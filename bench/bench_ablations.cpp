// Ablation benchmarks for the design choices DESIGN.md calls out:
//   1. levelized one-pass combinational evaluation vs the fixpoint
//      fallback (what the simulator pays when a design has feedback)
//   2. SRL16 vs flip-flop shift register mapping (module generator
//      technology optimization, like the KCM's LUT-ROM trick)
//   3. secure (sealed) vs plain archive delivery overhead
#include <chrono>
#include <cstdio>

#include "core/generators.h"
#include "core/license.h"
#include "core/secure.h"
#include "estimate/area.h"
#include "hdl/hwsystem.h"
#include "modgen/modgen.h"
#include "sim/simulator.h"
#include "tech/gates.h"
#include "util/rng.h"

using namespace jhdl;
using Clock = std::chrono::steady_clock;

namespace {

double run_sim(HWSystem& hw, Wire* in, int vectors, std::size_t* evals) {
  Simulator sim(hw);
  Rng rng(1);
  auto t0 = Clock::now();
  for (int i = 0; i < vectors; ++i) {
    sim.put(in, rng.next() & ((1ull << in->width()) - 1));
    sim.propagate();
  }
  *evals = sim.eval_count();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  std::printf("=== Ablations ===\n\n");

  // --- 1. levelized vs fixpoint evaluation ---
  std::printf("1. combinational evaluation strategy (16-bit KCM, 2000 "
              "vectors):\n");
  const int vectors = 2000;
  double t_lev, t_fix;
  std::size_t e_lev = 0, e_fix = 0;
  {
    HWSystem hw;
    Wire* m = new Wire(&hw, 16, "m");
    Wire* p = new Wire(&hw, 30, "p");
    new modgen::VirtexKCMMultiplier(&hw, m, p, false, false, 12345);
    t_lev = run_sim(hw, m, vectors, &e_lev);
  }
  {
    HWSystem hw;
    Wire* m = new Wire(&hw, 16, "m");
    Wire* p = new Wire(&hw, 30, "p");
    new modgen::VirtexKCMMultiplier(&hw, m, p, false, false, 12345);
    // A tiny SR latch elsewhere in the system forces the global fixpoint
    // path for every settle.
    Wire* s = new Wire(&hw, 1, "s");
    Wire* r = new Wire(&hw, 1, "r");
    Wire* q = new Wire(&hw, 1, "q");
    Wire* qn = new Wire(&hw, 1, "qn");
    new tech::Nor2(&hw, r, qn, q);
    new tech::Nor2(&hw, s, q, qn);
    t_fix = run_sim(hw, m, vectors, &e_fix);
  }
  std::printf("   %-22s %10s %14s\n", "strategy", "wall ms", "prim evals");
  std::printf("   %-22s %10.2f %14zu\n", "levelized (DAG)", t_lev * 1e3,
              e_lev);
  std::printf("   %-22s %10.2f %14zu\n", "fixpoint (w/ latch)", t_fix * 1e3,
              e_fix);
  std::printf("   => levelization saves %.1fx evaluations\n\n",
              static_cast<double>(e_fix) / static_cast<double>(e_lev));

  // --- 2. SRL16 vs FF shift registers ---
  std::printf("2. shift register mapping (8-bit bus):\n");
  std::printf("   %5s | %6s %6s %7s | %6s %6s %7s\n", "depth", "FF.ff",
              "FF.lut", "slices", "SRL.ff", "SRL.lut", "slices");
  for (std::size_t depth : {4u, 16u, 32u, 64u}) {
    HWSystem hw1, hw2;
    Wire* i1 = new Wire(&hw1, 8, "in");
    Wire* o1 = new Wire(&hw1, 8, "out");
    new modgen::ShiftRegister(&hw1, i1, o1, depth,
                              modgen::ShiftRegister::Style::FF);
    Wire* i2 = new Wire(&hw2, 8, "in");
    Wire* o2 = new Wire(&hw2, 8, "out");
    new modgen::ShiftRegister(&hw2, i2, o2, depth,
                              modgen::ShiftRegister::Style::SRL16);
    auto ff = estimate::estimate_area(hw1);
    auto srl = estimate::estimate_area(hw2);
    std::printf("   %5zu | %6zu %6zu %7zu | %6zu %6zu %7zu\n", depth, ff.ffs,
                ff.luts, ff.slices, srl.ffs, srl.luts, srl.slices);
  }
  std::printf("   => SRL16 mapping collapses 16 stages into one LUT\n\n");

  // --- 3. secure delivery overhead ---
  std::printf("3. secure delivery (licensed KCM payload):\n");
  core::Packager packager;
  core::KcmGenerator gen;
  auto archives = packager.archives_for(
      core::LicensePolicy::features_for(core::LicenseTier::Licensed), &gen);
  core::SecureChannel channel("acme-license");
  std::size_t plain_total = 0, sealed_total = 0;
  auto t0 = Clock::now();
  std::uint64_t nonce = 1;
  for (const core::Archive& a : archives) {
    plain_total += a.serialize().size();
    sealed_total += channel.seal_archive(a, nonce++).payload.size();
  }
  double seal_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  t0 = Clock::now();
  nonce = 1;
  for (const core::Archive& a : archives) {
    core::SealedArchive sealed = channel.seal_archive(a, nonce++);
    core::Archive back = channel.open_archive(sealed);
    (void)back;
  }
  double round_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  std::printf("   plain payload  : %zu B\n", plain_total);
  std::printf("   sealed payload : %zu B (+%zu B, %.2f%%)\n", sealed_total,
              sealed_total - plain_total,
              100.0 * static_cast<double>(sealed_total - plain_total) /
                  static_cast<double>(plain_total));
  std::printf("   seal time      : %.2f ms; seal+open: %.2f ms\n", seal_ms,
              round_ms);
  std::printf("   => 16 bytes/archive and milliseconds of CPU buy "
              "key-bound delivery\n");
  return 0;
}
