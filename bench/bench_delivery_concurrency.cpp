// Concurrency scaling of the multi-tenant DeliveryService: one service,
// a fixed worker pool, and an increasing number of concurrent customers
// each driving its own black-box session.
//
// Sweeps:
//   loopback   raw wall time on loopback TCP at 1/2/4/8 clients (the
//              historical sweep, kept for continuity with the pre-reactor
//              numbers). On a multi-core host the aggregate eval
//              throughput scales with the worker pool; on a single core
//              it merely must not collapse.
//   rtt2ms     every client pays a 2 ms injected one-way think/latency
//              per request. Sessions overlap their waits, so aggregate
//              throughput scales with concurrency even on one core -
//              the server-side multiplexing win the JavaCAD-style
//              vendor service exists for.
//   ladder     the reactor's flagship numbers: 64/256/1024 concurrent
//              loopback sessions over the same 8-thread worker pool
//              (max_sessions raised so the event loop, not the pool,
//              holds the sockets). Gate: >= 3x aggregate throughput at
//              64 clients vs 1 — self-waived below 4 hardware threads,
//              where there is no parallelism to win, but the ladder is
//              recorded either way.
//   fairness   8 tenants x 8 sessions each hammer the service for a
//              fixed window; per-tenant completed-eval totals must stay
//              within 2x of each other (max/min), the deficit-round-
//              robin scheduler's acceptance bound.
//
// Emits BENCH_delivery.json with every sweep plus the service's own
// ServerStats counters (p50/p95 request latency, session accounting).
//
// `--churn N` (default 256) runs the CI smoke instead: N concurrent
// clients open/eval/bye through the reactor while the admin plane is
// scraped for /healthz; exits nonzero on any malformed frame, rejection,
// leaked session, or non-200 health answer.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/catalog.h"
#include "core/generators.h"
#include "net/sim_client.h"
#include "net/socket.h"
#include "server/delivery_service.h"
#include "util/json.h"

using namespace jhdl;
using namespace jhdl::core;
using namespace jhdl::net;
using namespace jhdl::server;

namespace {

constexpr std::size_t kWorkers = 8;
constexpr int kTenants = 8;
constexpr int kEvalsPerClient = 150;   // historical sweeps
constexpr int kLadderEvalsPerClient = 25;  // ladder: many more clients

ConnectSpec spec_for(int i) {
  ConnectSpec spec;
  spec.customer = "cust" + std::to_string(i % kTenants);
  spec.module = "carry-adder";
  spec.params["width"] = 16;
  return spec;
}

double run_sweep_point(std::uint16_t port, int clients, double rtt_ms,
                       int evals_per_client) {
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      ConnectSpec spec = spec_for(i);
      spec.injected_rtt_ms = rtt_ms;
      SimClient client(port, spec);
      std::map<std::string, BitVector> inputs;
      for (int k = 0; k < evals_per_client; ++k) {
        inputs["a"] = BitVector::from_uint(16, 1000u + k);
        inputs["b"] = BitVector::from_uint(16, 77u * i + k);
        client.eval(inputs, 0);
      }
      client.bye();
    });
  }
  for (auto& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return clients * evals_per_client / seconds;  // aggregate evals/sec
}

Json sweep(std::uint16_t port, double rtt_ms, const char* label,
           const std::vector<int>& ladder, int evals_per_client,
           double* speedup_top) {
  Json points = Json::array();
  double single = 0.0;
  std::printf("%s sweep (%d evals/client, %zu workers):\n", label,
              evals_per_client, kWorkers);
  std::printf("  %8s %16s %10s\n", "clients", "agg evals/sec", "speedup");
  for (int clients : ladder) {
    double throughput =
        run_sweep_point(port, clients, rtt_ms, evals_per_client);
    if (clients == ladder.front()) single = throughput;
    const double speedup = throughput / single;
    if (clients == ladder.back() && speedup_top != nullptr) {
      *speedup_top = speedup;
    }
    std::printf("  %8d %16.0f %9.2fx\n", clients, throughput, speedup);
    Json point = Json::object();
    point.set("clients", clients);
    point.set("evals_per_sec", throughput);
    point.set("speedup_vs_1", speedup);
    points.push(point);
  }
  std::printf("\n");
  return points;
}

/// 8 tenants x 8 sessions each run evals flat out for `window`; returns
/// per-tenant completed-eval totals.
std::vector<std::uint64_t> run_fairness(std::uint16_t port,
                                        int sessions_per_tenant,
                                        std::chrono::milliseconds window) {
  std::vector<std::uint64_t> per_tenant(kTenants, 0);
  std::vector<std::atomic<std::uint64_t>> counts(kTenants);
  std::vector<std::thread> threads;
  const auto deadline = std::chrono::steady_clock::now() + window;
  for (int t = 0; t < kTenants; ++t) {
    for (int s = 0; s < sessions_per_tenant; ++s) {
      threads.emplace_back([&, t, s] {
        SimClient client(port, spec_for(t));
        std::map<std::string, BitVector> inputs;
        std::uint64_t done = 0;
        while (std::chrono::steady_clock::now() < deadline) {
          inputs["a"] = BitVector::from_uint(16, 41u * t + s);
          inputs["b"] = BitVector::from_uint(16, done & 0xFFFF);
          client.eval(inputs, 0);
          ++done;
        }
        client.bye();
        counts[t].fetch_add(done, std::memory_order_relaxed);
      });
    }
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kTenants; ++t) per_tenant[t] = counts[t].load();
  return per_tenant;
}

std::unique_ptr<DeliveryService> make_service(std::size_t max_sessions,
                                              bool admin_http) {
  IpCatalog catalog;
  catalog.add(std::make_shared<AdderGenerator>());
  catalog.add(std::make_shared<KcmGenerator>());
  DeliveryConfig config;
  config.workers = kWorkers;
  config.queue_capacity = 2 * kWorkers;
  config.max_sessions = max_sessions;
  config.admin_http = admin_http;
  auto service =
      std::make_unique<DeliveryService>(std::move(catalog), config);
  for (int i = 0; i < kTenants; ++i) {
    service->add_license(LicensePolicy::make("cust" + std::to_string(i),
                                             LicenseTier::Evaluation));
  }
  return service;
}

/// One blocking GET against the admin plane; returns the response text.
std::string admin_get(std::uint16_t port, const std::string& path) {
  TcpStream conn = TcpStream::connect(port);
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  conn.send_bytes(std::vector<std::uint8_t>(request.begin(), request.end()));
  std::string response;
  std::uint8_t buf[2048];
  try {
    while (true) {
      const std::size_t n = conn.recv_raw(buf, sizeof buf);
      response.append(reinterpret_cast<const char*>(buf), n);
    }
  } catch (const NetError&) {
    // Connection: close ends the body.
  }
  return response;
}

/// CI smoke: `clients` concurrent open/eval/bye sessions churn through
/// the reactor, the admin plane answers /healthz mid-storm, and the
/// service must come out with zero malformed frames, zero rejections,
/// and no leaked session. Returns the process exit code.
int run_churn(int clients) {
  std::printf("=== Delivery churn smoke: %d concurrent clients ===\n",
              clients);
  std::unique_ptr<DeliveryService> service_ptr =
      make_service(/*max_sessions=*/2 * clients, /*admin_http=*/true);
  DeliveryService& service = *service_ptr;
  const std::uint16_t port = service.start();

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      try {
        SimClient client(port, spec_for(i));
        std::map<std::string, BitVector> inputs;
        for (int k = 0; k < 5; ++k) {
          inputs["a"] = BitVector::from_uint(16, 7u * i + k);
          inputs["b"] = BitVector::from_uint(16, 3u * k);
          const auto out = client.eval(inputs, 0);
          const std::uint32_t want = ((7u * i + k) + 3u * k) & 0xFFFF;
          if (out.at("s").to_uint() != want) failures.fetch_add(1);
        }
        client.bye();
      } catch (const std::exception& e) {
        std::fprintf(stderr, "client %d: %s\n", i, e.what());
        failures.fetch_add(1);
      }
    });
  }
  // Scrape health while the storm is in flight.
  const std::string health = admin_get(service.admin_port(), "/healthz");
  const bool health_ok = health.find("200 OK") != std::string::npos;
  for (auto& t : threads) t.join();

  // Sessions drain asynchronously after Bye replies; give the loop a beat.
  ServerStats::Snapshot stats = service.stats().snapshot();
  for (int spin = 0; spin < 500 && stats.sessions_active != 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    stats = service.stats().snapshot();
  }
  service.stop();

  std::printf("/healthz: %s\n", health_ok ? "200" : "NOT OK");
  std::printf("malformed frames: %llu\n",
              static_cast<unsigned long long>(stats.malformed_frames));
  std::printf("sessions opened %llu closed %llu active %llu, "
              "rejections %llu, client failures %d\n",
              static_cast<unsigned long long>(stats.sessions_opened),
              static_cast<unsigned long long>(stats.sessions_closed),
              static_cast<unsigned long long>(stats.sessions_active),
              static_cast<unsigned long long>(stats.rejections),
              failures.load());
  const bool ok = health_ok && failures.load() == 0 &&
                  stats.malformed_frames == 0 && stats.rejections == 0 &&
                  stats.sessions_active == 0 &&
                  stats.sessions_opened == static_cast<std::uint64_t>(clients);
  std::printf(ok ? "CHURN OK\n" : "CHURN FAILED\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--churn") == 0) {
    const int clients = argc > 2 ? std::atoi(argv[2]) : 256;
    return run_churn(clients);
  }

  std::printf("=== Delivery service concurrency scaling ===\n\n");

  // max_sessions well above the ladder top: the reactor holds every
  // socket while the 8-thread pool bounds CPU.
  std::unique_ptr<DeliveryService> service_ptr =
      make_service(/*max_sessions=*/1536, /*admin_http=*/false);
  DeliveryService& service = *service_ptr;
  std::uint16_t port = service.start();

  double loopback_speedup8 = 0.0;
  double rtt_speedup8 = 0.0;
  double ladder_speedup64 = 0.0;
  Json loopback = sweep(port, 0.0, "loopback", {1, 2, 4, 8},
                        kEvalsPerClient, &loopback_speedup8);
  Json rtt = sweep(port, 2.0, "rtt2ms", {1, 2, 4, 8}, kEvalsPerClient,
                   &rtt_speedup8);
  // The ladder's gate compares 64 clients to 1, so 64 leads the rungs
  // right after the baseline.
  Json ladder = sweep(port, 0.0, "ladder", {1, 64, 256, 1024},
                      kLadderEvalsPerClient, nullptr);
  ladder_speedup64 =
      ladder.at(std::size_t{1}).at("evals_per_sec").as_number() /
      ladder.at(std::size_t{0}).at("evals_per_sec").as_number();

  std::printf("fairness: %d tenants x 8 sessions, 1500 ms window\n",
              kTenants);
  const std::vector<std::uint64_t> per_tenant =
      run_fairness(port, 8, std::chrono::milliseconds(1500));
  std::uint64_t fair_min = per_tenant[0];
  std::uint64_t fair_max = per_tenant[0];
  Json fairness_counts = Json::array();
  for (int t = 0; t < kTenants; ++t) {
    std::printf("  cust%d: %llu evals\n", t,
                static_cast<unsigned long long>(per_tenant[t]));
    fairness_counts.push(per_tenant[t]);
    fair_min = std::min(fair_min, per_tenant[t]);
    fair_max = std::max(fair_max, per_tenant[t]);
  }
  const double fairness_ratio =
      fair_min == 0 ? 0.0
                    : static_cast<double>(fair_max) /
                          static_cast<double>(fair_min);
  const bool fairness_pass = fair_min > 0 && fairness_ratio <= 2.0;
  std::printf("  max/min ratio: %.3f (gate <= 2.0: %s)\n\n", fairness_ratio,
              fairness_pass ? "pass" : "FAIL");

  ServerStats::Snapshot stats = service.stats().snapshot();
  service.stop();

  const unsigned hw = std::thread::hardware_concurrency();
  // On fewer than 4 cores there is no parallel speedup to measure: the
  // ladder documents that the reactor HOLDS the sessions, and the gate
  // waits for real hardware.
  const bool gate_waived = hw < 4;
  const bool gate_pass = gate_waived || ladder_speedup64 >= 3.0;
  std::printf("hardware threads: %u\n", hw);
  std::printf("ladder speedup 64v1: %.2fx (gate >= 3x: %s)\n",
              ladder_speedup64,
              gate_waived ? "waived, < 4 cores" : (gate_pass ? "pass" : "FAIL"));
  std::printf("sessions served: %llu, requests: %llu, p50 %0.0f us, "
              "p95 %0.0f us\n",
              static_cast<unsigned long long>(stats.sessions_opened),
              static_cast<unsigned long long>(stats.requests),
              stats.p50_request_us, stats.p95_request_us);

  Json out = Json::object();
  out.set("bench", "delivery_concurrency");
  out.set("workers", kWorkers);
  out.set("evals_per_client", kEvalsPerClient);
  out.set("hardware_threads", static_cast<std::size_t>(hw));
  out.set("loopback", std::move(loopback));
  out.set("rtt2ms", std::move(rtt));
  out.set("loopback_speedup_8v1", loopback_speedup8);
  out.set("rtt2ms_speedup_8v1", rtt_speedup8);
  Json ladder_block = Json::object();
  ladder_block.set("evals_per_client", kLadderEvalsPerClient);
  ladder_block.set("points", std::move(ladder));
  ladder_block.set("speedup_64v1", ladder_speedup64);
  ladder_block.set("gate_min_speedup", 3.0);
  ladder_block.set("gate_waived_under_4_cores", gate_waived);
  ladder_block.set("gate_pass", gate_pass);
  out.set("ladder", std::move(ladder_block));
  Json fairness = Json::object();
  fairness.set("tenants", kTenants);
  fairness.set("sessions_per_tenant", 8);
  fairness.set("window_ms", 1500);
  fairness.set("per_tenant_evals", std::move(fairness_counts));
  fairness.set("max_min_ratio", fairness_ratio);
  fairness.set("gate_max_ratio", 2.0);
  fairness.set("gate_pass", fairness_pass);
  out.set("fairness", std::move(fairness));
  out.set("stats", stats.to_json());
  std::ofstream("BENCH_delivery.json") << out.dump(2) << "\n";
  std::printf("wrote BENCH_delivery.json\n");
  return (gate_pass && fairness_pass) ? 0 : 1;
}
