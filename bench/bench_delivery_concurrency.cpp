// Concurrency scaling of the multi-tenant DeliveryService: one service,
// a fixed worker pool, and an increasing number of concurrent customers
// each driving its own black-box session.
//
// Two sweeps:
//   loopback   raw wall time on loopback TCP. On a multi-core host the
//              aggregate eval throughput scales with the worker pool
//              (the acceptance target: >= 2x single-client at 8 clients);
//              on a single core it merely must not collapse.
//   rtt2ms     every client pays a 2 ms injected one-way think/latency
//              per request. Sessions overlap their waits, so aggregate
//              throughput scales with concurrency even on one core -
//              the server-side multiplexing win the JavaCAD-style
//              vendor service exists for.
//
// Emits BENCH_delivery.json with both sweeps plus the service's own
// ServerStats counters (p50/p95 request latency, session accounting).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "core/catalog.h"
#include "core/generators.h"
#include "net/sim_client.h"
#include "server/delivery_service.h"
#include "util/json.h"

using namespace jhdl;
using namespace jhdl::core;
using namespace jhdl::net;
using namespace jhdl::server;

namespace {

constexpr std::size_t kWorkers = 8;
constexpr int kEvalsPerClient = 150;

double run_sweep_point(std::uint16_t port, int clients, double rtt_ms) {
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      ConnectSpec spec;
      spec.customer = "cust" + std::to_string(i);
      spec.module = "carry-adder";
      spec.params["width"] = 16;
      spec.injected_rtt_ms = rtt_ms;
      SimClient client(port, spec);
      std::map<std::string, BitVector> inputs;
      for (int k = 0; k < kEvalsPerClient; ++k) {
        inputs["a"] = BitVector::from_uint(16, 1000u + k);
        inputs["b"] = BitVector::from_uint(16, 77u * i + k);
        client.eval(inputs, 0);
      }
      client.bye();
    });
  }
  for (auto& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return clients * kEvalsPerClient / seconds;  // aggregate evals/sec
}

Json sweep(std::uint16_t port, double rtt_ms, const char* label,
           double* speedup8) {
  Json points = Json::array();
  double single = 0.0;
  std::printf("%s sweep (%d evals/client, %zu workers):\n", label,
              kEvalsPerClient, kWorkers);
  std::printf("  %8s %16s %10s\n", "clients", "agg evals/sec", "speedup");
  for (int clients : {1, 2, 4, 8}) {
    double throughput = run_sweep_point(port, clients, rtt_ms);
    if (clients == 1) single = throughput;
    const double speedup = throughput / single;
    if (clients == 8 && speedup8 != nullptr) *speedup8 = speedup;
    std::printf("  %8d %16.0f %9.2fx\n", clients, throughput, speedup);
    Json point = Json::object();
    point.set("clients", clients);
    point.set("evals_per_sec", throughput);
    point.set("speedup_vs_1", speedup);
    points.push(point);
  }
  std::printf("\n");
  return points;
}

}  // namespace

int main() {
  std::printf("=== Delivery service concurrency scaling ===\n\n");

  IpCatalog catalog;
  catalog.add(std::make_shared<AdderGenerator>());
  catalog.add(std::make_shared<KcmGenerator>());
  DeliveryConfig config;
  config.workers = kWorkers;
  config.queue_capacity = 2 * kWorkers;
  DeliveryService service(std::move(catalog), config);
  for (int i = 0; i < 8; ++i) {
    service.add_license(LicensePolicy::make("cust" + std::to_string(i),
                                            LicenseTier::Evaluation));
  }
  std::uint16_t port = service.start();

  double loopback_speedup8 = 0.0;
  double rtt_speedup8 = 0.0;
  Json loopback = sweep(port, 0.0, "loopback", &loopback_speedup8);
  Json rtt = sweep(port, 2.0, "rtt2ms", &rtt_speedup8);

  ServerStats::Snapshot stats = service.stats().snapshot();
  service.stop();

  std::printf("hardware threads: %u\n",
              std::thread::hardware_concurrency());
  std::printf("sessions served: %llu, requests: %llu, p50 %0.0f us, "
              "p95 %0.0f us\n",
              static_cast<unsigned long long>(stats.sessions_opened),
              static_cast<unsigned long long>(stats.requests),
              stats.p50_request_us, stats.p95_request_us);

  Json out = Json::object();
  out.set("bench", "delivery_concurrency");
  out.set("workers", kWorkers);
  out.set("evals_per_client", kEvalsPerClient);
  out.set("hardware_threads",
          static_cast<std::size_t>(std::thread::hardware_concurrency()));
  out.set("loopback", std::move(loopback));
  out.set("rtt2ms", std::move(rtt));
  out.set("loopback_speedup_8v1", loopback_speedup8);
  out.set("rtt2ms_speedup_8v1", rtt_speedup8);
  out.set("stats", stats.to_json());
  std::ofstream("BENCH_delivery.json") << out.dump(2) << "\n";
  std::printf("wrote BENCH_delivery.json\n");
  return 0;
}
