// Reproduces Figure 4: black-box simulation models integrated into a
// system simulation over sockets.
//
// Compares three integrations of the same two-IP system:
//   monolithic      - both IPs elaborated into one local simulation
//                     (what a vendor would never ship; the upper bound)
//   blackbox-local  - two BlackBoxModels in-process (applet on the same
//                     machine, no sockets)
//   blackbox-socket - two SimServers + SimClients over loopback TCP
//                     (the Figure 4 deployment)
//
// Reports events/second and wall time, and cross-checks outputs.
#include <chrono>
#include <cstdio>

#include "core/generators.h"
#include "hdl/hwsystem.h"
#include "modgen/kcm.h"
#include "net/sim_client.h"
#include "net/sim_server.h"
#include "sim/simulator.h"
#include "util/rng.h"

using namespace jhdl;
using namespace jhdl::core;
using namespace jhdl::net;
using Clock = std::chrono::steady_clock;

namespace {

constexpr int kA = -56;
constexpr int kB = 91;
constexpr int kVectors = 2000;

std::unique_ptr<BlackBoxModel> make_bb(int constant) {
  KcmGenerator gen;
  ParamMap p = ParamMap()
                   .set("input_width", std::int64_t{8})
                   .set("constant", static_cast<std::int64_t>(constant))
                   .set("signed_mode", true)
                   .resolved(gen.params());
  return std::make_unique<BlackBoxModel>(gen.build(p), gen.name());
}

std::vector<std::int64_t> stimulus() {
  Rng rng(77);
  std::vector<std::int64_t> xs;
  for (int i = 0; i < kVectors; ++i) xs.push_back(rng.range(-128, 127));
  return xs;
}

struct RunResult {
  double wall_s;
  std::vector<std::int64_t> sums;
};

}  // namespace

int main() {
  std::printf("=== Figure 4: black-box co-simulation of a two-IP system "
              "===\n\n");
  const auto xs = stimulus();

  // 1. Monolithic: both KCMs in one HWSystem.
  RunResult mono;
  {
    HWSystem hw;
    Wire* x = new Wire(&hw, 8, "x");
    Wire* pa = new Wire(&hw, 15, "pa");
    Wire* pb = new Wire(&hw, 15, "pb");
    new modgen::VirtexKCMMultiplier(&hw, x, pa, true, false, kA);
    new modgen::VirtexKCMMultiplier(&hw, x, pb, true, false, kB);
    Simulator sim(hw);
    auto t0 = Clock::now();
    for (std::int64_t v : xs) {
      sim.put_signed(x, v);
      mono.sums.push_back(sim.get(pa).to_int() + sim.get(pb).to_int());
    }
    mono.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  }

  // 2. Black-box local (in-process applet models).
  RunResult local;
  {
    auto a = make_bb(kA);
    auto b = make_bb(kB);
    auto t0 = Clock::now();
    for (std::int64_t v : xs) {
      BitVector bits = BitVector::from_int(8, v);
      a->set_input("multiplicand", bits);
      b->set_input("multiplicand", bits);
      local.sums.push_back(a->get_output("product").to_int() +
                           b->get_output("product").to_int());
    }
    local.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  }

  // 3. Black-box over loopback sockets (the Figure 4 deployment).
  RunResult socket;
  std::size_t round_trips = 0;
  {
    SimServer sa(make_bb(kA));
    SimServer sb(make_bb(kB));
    SimClient ca(sa.start());
    SimClient cb(sb.start());
    auto t0 = Clock::now();
    for (std::int64_t v : xs) {
      std::map<std::string, BitVector> in;
      in["multiplicand"] = BitVector::from_int(8, v);
      auto oa = ca.eval(in, 0);
      auto ob = cb.eval(in, 0);
      socket.sums.push_back(oa["product"].to_int() + ob["product"].to_int());
    }
    socket.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
    round_trips = ca.round_trips() + cb.round_trips();
    ca.bye();
    cb.bye();
  }

  bool agree = mono.sums == local.sums && mono.sums == socket.sums;
  bool functional = true;
  for (int i = 0; i < kVectors; ++i) {
    functional &= (mono.sums[static_cast<std::size_t>(i)] ==
                   (kA + kB) * xs[static_cast<std::size_t>(i)]);
  }

  std::printf("%-18s %10s %12s %12s\n", "integration", "wall s", "vectors/s",
              "round trips");
  auto row = [&](const char* label, const RunResult& r, std::size_t rts) {
    std::printf("%-18s %10.3f %12.0f %12zu\n", label, r.wall_s,
                kVectors / r.wall_s, rts);
  };
  row("monolithic", mono, 0);
  row("blackbox-local", local, 0);
  row("blackbox-socket", socket, round_trips);

  std::printf("\nall integrations agree on outputs : %s\n",
              agree ? "yes" : "NO");
  std::printf("system function y=(%d%+d)*x checked : %s\n", kA, kB,
              functional ? "pass" : "FAIL");
  std::printf("socket overhead vs local           : %.1fx\n",
              socket.wall_s / local.wall_s);
  std::printf("\n(no structure crossed the sockets: %zu value-only round "
              "trips)\n", round_trips);
  return agree && functional ? 0 : 1;
}
