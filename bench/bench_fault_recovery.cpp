// Fault-recovery overhead of the resilient co-simulation transport: a
// SimServer + resilient SimClient pair driven through a FaultyStream at
// increasing per-frame fault rates.
//
// For each rate the harness runs a fixed batch of sequential sessions
// (Hello -> evals -> Bye) with a shared random FaultPlan on the client
// side of the wire, asserts every eval bit-exact, and reports aggregate
// eval throughput plus the recovery counters (retries, reconnects,
// server-side resumes / idempotent replays / malformed frames). The
// rate-0 row is the baseline; the delta is the price of riding out the
// fault rate.
//
// Emits BENCH_fault.json.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>

#include "core/generators.h"
#include "net/fault_injection.h"
#include "net/sim_client.h"
#include "net/sim_server.h"
#include "util/json.h"

using namespace jhdl;
using namespace jhdl::core;
using namespace jhdl::net;
using namespace std::chrono_literals;

namespace {

constexpr int kSessions = 40;
constexpr int kEvalsPerSession = 25;
constexpr int kKcmConstant = -56;

std::unique_ptr<BlackBoxModel> make_kcm() {
  KcmGenerator gen;
  ParamMap params = ParamMap()
                        .set("input_width", std::int64_t{8})
                        .set("constant", std::int64_t{kKcmConstant})
                        .set("signed_mode", true)
                        .resolved(gen.params());
  return std::make_unique<BlackBoxModel>(gen.build(params), gen.name());
}

struct RatePoint {
  double rate = 0.0;
  double evals_per_sec = 0.0;
  std::size_t injected = 0;
  std::size_t retries = 0;
  std::size_t reconnects = 0;
  std::size_t resumes = 0;
  std::size_t replays = 0;
  std::size_t malformed = 0;
  int mismatches = 0;
};

RatePoint run_rate(double rate, std::uint64_t seed) {
  RatePoint point;
  point.rate = rate;
  SimServer server(make_kcm());
  auto plan = std::make_shared<FaultPlan>(seed, rate);
  const std::uint16_t port = server.start();
  const auto t0 = std::chrono::steady_clock::now();
  for (int s = 0; s < kSessions; ++s) {
    ConnectSpec spec;
    spec.retry.max_attempts = 10;
    spec.retry.backoff_base = 1ms;
    spec.retry.backoff_max = 8ms;
    spec.retry.request_timeout = 2000ms;
    spec.fault_plan = plan;
    SimClient client(port, spec);
    for (int k = 0; k < kEvalsPerSession; ++k) {
      const int x = (s * kEvalsPerSession + k) % 160 - 80;
      auto out =
          client.eval({{"multiplicand", BitVector::from_int(8, x)}}, 0);
      const std::uint64_t want =
          static_cast<std::uint64_t>(std::int64_t{kKcmConstant} * x) &
          0x7FFF;
      if (out.at("product").to_uint() != want) ++point.mismatches;
    }
    point.retries += client.retries();
    point.reconnects += client.reconnects();
    client.bye();
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  point.evals_per_sec = kSessions * kEvalsPerSession / seconds;
  point.injected = plan->injected();
  point.resumes = server.resumes();
  point.replays = server.replays();
  point.malformed = server.malformed_frames();
  server.stop();
  return point;
}

}  // namespace

int main() {
  std::printf("=== Fault-recovery overhead (resilient SimClient) ===\n\n");
  std::printf("%d sessions x %d evals, client-side random FaultPlan\n\n",
              kSessions, kEvalsPerSession);
  std::printf("  %6s %12s %9s %8s %10s %8s %8s %10s %6s\n", "rate",
              "evals/sec", "injected", "retries", "reconnects", "resumes",
              "replays", "malformed", "exact");

  Json points = Json::array();
  double baseline = 0.0;
  bool all_exact = true;
  for (double rate : {0.0, 0.01, 0.05, 0.10}) {
    RatePoint p = run_rate(rate, 0xFA01u);
    if (rate == 0.0) baseline = p.evals_per_sec;
    const bool exact = p.mismatches == 0;
    all_exact = all_exact && exact;
    std::printf("  %6.2f %12.0f %9zu %8zu %10zu %8zu %8zu %10zu %6s\n",
                p.rate, p.evals_per_sec, p.injected, p.retries,
                p.reconnects, p.resumes, p.replays, p.malformed,
                exact ? "yes" : "NO");
    Json row = Json::object();
    row.set("rate", p.rate);
    row.set("evals_per_sec", p.evals_per_sec);
    row.set("throughput_vs_clean",
            baseline > 0.0 ? p.evals_per_sec / baseline : 1.0);
    row.set("injected_faults", p.injected);
    row.set("client_retries", p.retries);
    row.set("client_reconnects", p.reconnects);
    row.set("server_resumes", p.resumes);
    row.set("server_replays", p.replays);
    row.set("server_malformed_frames", p.malformed);
    row.set("bit_exact", exact);
    points.push(row);
  }

  Json doc = Json::object();
  doc.set("benchmark", std::string("fault_recovery"));
  doc.set("sessions", kSessions);
  doc.set("evals_per_session", kEvalsPerSession);
  doc.set("max_attempts", 10);
  doc.set("rates", points);
  doc.set("all_bit_exact", all_exact);
  std::ofstream("BENCH_fault.json") << doc.dump() << "\n";
  std::printf("\nwrote BENCH_fault.json\n");
  return all_exact ? 0 : 1;
}
