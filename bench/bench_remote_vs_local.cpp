// Reproduces the paper's latency argument (Sections 1.2 and 4.2): applet
// delivery simulates IP on the client, so it beats the server-side
// approaches (Web-CAD [2], JavaCAD [1]) whose every simulation event (or
// method invocation) pays a network round trip.
//
// Method: one workload (500 vectors through an 8-bit signed KCM) is run
// through all three styles. Loopback wall time is measured directly; WAN
// behaviour is modeled analytically as wall + round_trips * RTT, with a
// spot check at 2 ms injected RTT to validate the model.
#include <cstdio>

#include "baselines/remote_eval.h"
#include "core/generators.h"
#include "net/sim_client.h"
#include "net/sim_server.h"
#include "util/rng.h"

using namespace jhdl;
using namespace jhdl::core;
using namespace jhdl::net;
using namespace jhdl::baselines;

namespace {

std::unique_ptr<BlackBoxModel> make_bb() {
  KcmGenerator gen;
  ParamMap p = ParamMap()
                   .set("input_width", std::int64_t{8})
                   .set("constant", std::int64_t{-56})
                   .set("signed_mode", true)
                   .resolved(gen.params());
  return std::make_unique<BlackBoxModel>(gen.build(p), gen.name());
}

std::vector<Vector> make_workload(int n) {
  Rng rng(5);
  std::vector<Vector> w;
  for (int i = 0; i < n; ++i) {
    Vector v;
    v.inputs["multiplicand"] = BitVector::from_int(8, rng.range(-128, 127));
    v.cycles = 0;
    w.push_back(std::move(v));
  }
  return w;
}

}  // namespace

int main() {
  std::printf("=== Local applet simulation vs server-side baselines ===\n\n");
  const auto workload = make_workload(500);

  auto model = make_bb();
  WorkloadResult local = run_applet_local(*model, workload);

  SimServer server_w(make_bb());
  SimClient client_w(server_w.start());
  WorkloadResult webcad = run_webcad(client_w, workload);
  client_w.bye();

  SimServer server_j(make_bb());
  SimClient client_j(server_j.start());
  WorkloadResult javacad = run_javacad(client_j, workload);
  client_j.bye();

  std::printf("loopback measurements (%zu vectors):\n", workload.size());
  std::printf("  %-22s %12s %12s\n", "style", "round trips", "wall ms");
  for (const WorkloadResult* r : {&local, &javacad, &webcad}) {
    std::printf("  %-22s %12zu %12.2f\n", r->style.c_str(), r->round_trips,
                r->wall_seconds * 1000.0);
  }

  std::printf("\nmodeled total time vs network RTT (seconds):\n");
  std::printf("  %8s %14s %14s %14s %9s\n", "RTT ms", "applet-local",
              "javacad-rmi", "webcad-events", "winner");
  for (double rtt : {0.0, 1.0, 10.0, 50.0, 200.0}) {
    double tl = local.modeled_seconds(rtt);
    double tj = javacad.modeled_seconds(rtt);
    double tw = webcad.modeled_seconds(rtt);
    const char* winner = tl <= tj && tl <= tw ? "applet"
                         : tj <= tw           ? "javacad"
                                              : "webcad";
    std::printf("  %8.0f %14.3f %14.3f %14.3f %9s\n", rtt, tl, tj, tw,
                winner);
  }

  // Spot check the analytic model with real injected latency (kept small
  // so the bench stays fast).
  std::printf("\nvalidation with 2 ms injected RTT (50 vectors):\n");
  const auto small = make_workload(50);
  SimServer server_v(make_bb());
  SimClient client_v(server_v.start(), 2.0);
  WorkloadResult measured = run_webcad(client_v, small);
  client_v.bye();
  double predicted =
      webcad.wall_seconds * (50.0 / 500.0) +
      static_cast<double>(measured.round_trips) * 2.0 / 1000.0;
  std::printf("  webcad measured %.3f s, model predicts %.3f s (%zu round "
              "trips)\n",
              measured.wall_seconds, predicted, measured.round_trips);

  std::printf("\nshape: applet-local is flat in RTT; both server-side "
              "styles grow linearly, webcad ~%.0fx steeper than javacad "
              "(events per vector).\n",
              static_cast<double>(webcad.round_trips) /
                  static_cast<double>(javacad.round_trips));
  return 0;
}
