// Reproduces Figure 3: the transparent KCM evaluation applet session -
// build, browse structure, simulate interactively, emit an EDIF netlist.
//
// The bench times each applet operation across instance sizes, measuring
// what a customer experiences per button press, and verifies the flow
// end to end.
#include <chrono>
#include <cstdio>

#include "core/applet.h"
#include "core/generators.h"
#include "util/rng.h"

using namespace jhdl;
using namespace jhdl::core;
using Clock = std::chrono::steady_clock;

namespace {

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  std::printf("=== Figure 3: transparent KCM applet session ===\n\n");
  std::printf("%6s | %9s %9s %9s %10s %11s %12s %7s\n", "width", "build ms",
              "estim ms", "hier ms", "sim/s", "netlist ms", "edif bytes",
              "check");

  auto generator = std::make_shared<KcmGenerator>();
  for (std::size_t width : {4u, 8u, 12u, 16u, 24u, 32u}) {
    Applet applet = AppletBuilder()
                        .title("kcm session")
                        .generator(generator)
                        .license(LicensePolicy::make("acme",
                                                     LicenseTier::Licensed))
                        .build_applet();

    auto t0 = Clock::now();
    applet.build(ParamMap()
                     .set("input_width", static_cast<std::int64_t>(width))
                     .set("constant", std::int64_t{-56})
                     .set("signed_mode", true)
                     .set("pipelined_mode", true));
    double build_ms = ms_since(t0);

    t0 = Clock::now();
    auto area = applet.area();
    auto timing = applet.timing();
    double estimate_ms = ms_since(t0);
    (void)area;
    (void)timing;

    t0 = Clock::now();
    std::string tree = applet.hierarchy();
    std::string svg = applet.schematic_svg();
    double hier_ms = ms_since(t0);

    // Interactive simulation rate: vectors/second through the sandbox.
    Rng rng(width);
    const int vectors = 2000;
    bool ok = true;
    t0 = Clock::now();
    for (int i = 0; i < vectors; ++i) {
      std::int64_t x = rng.range(-(1ll << (width - 1)), (1ll << (width - 1)) - 1);
      applet.sim_put_signed("multiplicand", x);
      applet.sim_cycle(applet.latency());
      ok &= applet.sim_get("product").is_fully_defined();
    }
    double sim_s = static_cast<double>(vectors) / (ms_since(t0) / 1000.0);

    t0 = Clock::now();
    std::string edif = applet.netlist(NetlistFormat::Edif);
    double netlist_ms = ms_since(t0);

    ok &= !tree.empty() && !svg.empty() && !edif.empty();
    std::printf("%6zu | %9.2f %9.2f %9.2f %10.0f %11.2f %12zu %7s\n", width,
                build_ms, estimate_ms, hier_ms, sim_s, netlist_ms,
                edif.size(), ok ? "pass" : "FAIL");
  }

  std::printf("\n(every Figure 3 button - Build, structure browsing, Cycle, "
              "Netlist - exercised per row)\n");
  return 0;
}
