// Corpus sweep: every VTR-class generator across a parameter grid, one
// consolidated BENCH_corpus.json. Per (module, params) point it reports
//
//   - elaboration wall time (ModuleGenerator::build),
//   - compiled-kernel simulation throughput (cycles/sec under random
//     stimulus on every input port),
//   - artifact-store warm-hit behaviour (a second fetch of the same
//     configuration must be a content-addressed hit),
//   - estimate totals (LUTs, FFs, carry cells, period, fmax).
//
// `--smoke` runs the smallest grid point of every module with tiny
// iteration counts - CI wires that in so the harness itself is exercised
// on every run. The full run gates on: every point elaborates, every
// compiled sim makes forward progress, and every warm re-fetch hits.
#include <chrono>
#include <cstdio>
#include <functional>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/artifact_store.h"
#include "core/catalog.h"
#include "estimate/area.h"
#include "estimate/timing.h"
#include "sim/simulator.h"
#include "util/json.h"
#include "util/rng.h"

using namespace jhdl;
using namespace jhdl::core;

namespace {

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Point {
  std::string module;
  std::string label;
  ParamMap params;
};

std::vector<Point> corpus_grid(bool smoke) {
  std::vector<Point> grid;
  auto add = [&grid](const std::string& module, const std::string& label,
                     ParamMap params) {
    grid.push_back({module, label, std::move(params)});
  };

  add("systolic-array", "2x2x4",
      ParamMap().set("rows", std::int64_t{2}).set("cols", std::int64_t{2})
          .set("data_width", std::int64_t{4}).set("guard_bits", std::int64_t{4}));
  add("hash-pipe", "crc32-k8",
      ParamMap().set("algo", false).set("data_width", std::int64_t{8}));
  add("cordic-rotator", "w12-s6-comb",
      ParamMap().set("width", std::int64_t{12}).set("stages", std::int64_t{6})
          .set("pipelined", false));
  add("rf-alu", "r4-w8",
      ParamMap().set("regs", std::int64_t{4}).set("width", std::int64_t{8}));
  if (smoke) return grid;  // one (the smallest) point per module

  add("systolic-array", "3x3x4",
      ParamMap().set("rows", std::int64_t{3}).set("cols", std::int64_t{3})
          .set("data_width", std::int64_t{4}).set("guard_bits", std::int64_t{4}));
  add("systolic-array", "4x4x8",
      ParamMap().set("rows", std::int64_t{4}).set("cols", std::int64_t{4})
          .set("data_width", std::int64_t{8}).set("guard_bits", std::int64_t{8}));
  add("hash-pipe", "crc32-k1",
      ParamMap().set("algo", false).set("data_width", std::int64_t{1}));
  add("hash-pipe", "sha1",
      ParamMap().set("algo", true));
  add("cordic-rotator", "w16-s8-pipe",
      ParamMap().set("width", std::int64_t{16}).set("stages", std::int64_t{8})
          .set("pipelined", true));
  add("cordic-rotator", "w20-s12-pipe",
      ParamMap().set("width", std::int64_t{20}).set("stages", std::int64_t{12})
          .set("pipelined", true));
  add("rf-alu", "r8-w16",
      ParamMap().set("regs", std::int64_t{8}).set("width", std::int64_t{16}));
  add("rf-alu", "r16-w32",
      ParamMap().set("regs", std::int64_t{16}).set("width", std::int64_t{32}));
  return grid;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int elab_iters = smoke ? 1 : 3;
  const int sim_cycles = smoke ? 200 : 5000;

  const IpCatalog catalog = standard_catalog();
  auto store = std::make_shared<ArtifactStore>();
  const std::vector<Point> grid = corpus_grid(smoke);

  std::printf("=== Corpus sweep: %zu points over 4 modules ===\n\n",
              grid.size());
  std::printf("  %-15s %-12s %10s %12s %6s %6s %8s %5s\n", "module", "point",
              "elab us", "cycles/s", "luts", "ffs", "fmax MHz", "warm");

  Json rows = Json::array();
  bool all_elaborate = true;
  bool all_progress = true;
  bool all_warm = true;

  for (const Point& point : grid) {
    auto gen = catalog.find(point.module);
    if (gen == nullptr) {
      std::printf("FAIL: '%s' missing from the standard catalog\n",
                  point.module.c_str());
      return 1;
    }
    const ParamMap resolved = point.params.resolved(gen->params());

    // Elaboration wall time (fresh hierarchy every iteration).
    double elab_us = 0.0;
    for (int i = 0; i < elab_iters; ++i) {
      const double t0 = now_us();
      BuildResult r = gen->build(resolved);
      elab_us += now_us() - t0;
      if (r.system == nullptr) all_elaborate = false;
    }
    elab_us /= elab_iters;

    // Estimates over one instance; the same instance then feeds the
    // compiled-kernel throughput run.
    BuildResult r = gen->build(resolved);
    const estimate::AreaEstimate area = estimate::estimate_area(*r.top);
    const estimate::TimingEstimate timing = estimate::estimate_timing(*r.top);

    SimOptions opt;
    opt.mode = SimMode::Compiled;
    Simulator sim(*r.system, opt);
    Rng rng(0xC0FF33 ^ std::hash<std::string>{}(point.module + point.label));
    const double s0 = now_us();
    for (int t = 0; t < sim_cycles; ++t) {
      for (const auto& [name, wire] : r.inputs) {
        sim.put(wire, BitVector::from_uint(wire->width(), rng.next()));
      }
      sim.cycle();
    }
    const double sim_us = now_us() - s0;
    const double cycles_per_sec =
        sim_us > 0.0 ? sim_cycles / (sim_us / 1e6) : 0.0;
    if (sim.cycle_count() != static_cast<std::size_t>(sim_cycles)) {
      all_progress = false;
    }

    // Artifact store: cold build then a warm re-fetch of the same key.
    (void)store->get_or_build(gen, resolved);
    bool warm_hit = false;
    (void)store->get_or_build(gen, resolved, &warm_hit);
    all_warm = all_warm && warm_hit;

    std::printf("  %-15s %-12s %10.1f %12.0f %6zu %6zu %8.1f %5s\n",
                point.module.c_str(), point.label.c_str(), elab_us,
                cycles_per_sec, area.luts, area.ffs, timing.fmax_mhz,
                warm_hit ? "hit" : "MISS");

    Json row = Json::object();
    row.set("module", point.module);
    row.set("point", point.label);
    row.set("elab_us", elab_us);
    row.set("cycles_per_sec", cycles_per_sec);
    row.set("sim_cycles", sim_cycles);
    row.set("luts", area.luts);
    row.set("ffs", area.ffs);
    row.set("carries", area.carries);
    row.set("slices", area.slices);
    row.set("period_ns", timing.period_ns);
    row.set("fmax_mhz", timing.fmax_mhz);
    row.set("latency", r.latency);
    row.set("warm_hit", warm_hit);
    rows.push(row);
  }

  const ArtifactStore::Stats stats = store->stats();
  const double fetches = static_cast<double>(stats.hits + stats.misses);
  const double hit_ratio =
      fetches > 0.0 ? static_cast<double>(stats.hits) / fetches : 0.0;
  std::printf("\nartifact store: %llu builds, %llu hits (ratio %.2f)\n",
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.hits), hit_ratio);

  Json doc = Json::object();
  doc.set("benchmark", std::string("corpus"));
  doc.set("smoke", smoke);
  doc.set("points", grid.size());
  doc.set("rows", rows);
  Json store_json = Json::object();
  store_json.set("builds", stats.misses);
  store_json.set("hits", stats.hits);
  store_json.set("hit_ratio", hit_ratio);
  doc.set("artifact_store", store_json);
  doc.set("all_elaborate", all_elaborate);
  doc.set("all_progress", all_progress);
  doc.set("all_warm_hits", all_warm);
  std::ofstream("BENCH_corpus.json") << doc.dump() << "\n";
  std::printf("wrote BENCH_corpus.json\n");

  if (!all_elaborate) std::printf("FAIL: a grid point failed to elaborate\n");
  if (!all_progress) std::printf("FAIL: a compiled sim made no progress\n");
  if (!all_warm) std::printf("FAIL: a warm artifact re-fetch missed\n");
  return (all_elaborate && all_progress && all_warm) ? 0 : 1;
}
