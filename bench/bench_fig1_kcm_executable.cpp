// Reproduces Figure 1: the module-generator executable's GUI pane - the
// user picks parameters (bitwidths, constant, signed, pipelined), builds,
// and reads area/timing estimates. This bench regenerates the information
// that GUI displays, swept over representative parameter choices, and
// functionally verifies every instance against the reference model.
#include <chrono>
#include <cstdio>

#include "estimate/area.h"
#include "estimate/timing.h"
#include "hdl/hwsystem.h"
#include "modgen/kcm.h"
#include "sim/simulator.h"
#include "util/rng.h"

using namespace jhdl;
using Clock = std::chrono::steady_clock;

int main() {
  std::printf("=== Figure 1: KCM module generator executable (parameter "
              "pane) ===\n\n");
  std::printf("%6s %9s %4s %5s | %6s %5s %7s %9s %8s %8s %6s\n", "width",
              "constant", "sgn", "pipe", "LUTs", "FFs", "slices", "fmax MHz",
              "latency", "gen ms", "check");

  struct Config {
    std::size_t width;
    int constant;
    bool sign, pipe;
  };
  const Config configs[] = {
      {4, 5, false, false},   {8, -56, true, false},  {8, -56, true, true},
      {8, 255, false, false}, {12, 1021, false, true}, {16, 12345, true, false},
      {16, 12345, true, true}, {24, -99999, true, true},
      {32, 777777, false, true},
  };

  for (const Config& c : configs) {
    auto start = Clock::now();
    HWSystem hw;
    Wire* m = new Wire(&hw, c.width, "m");
    const std::size_t full =
        c.width + modgen::VirtexKCMMultiplier::width_of_constant(c.constant);
    Wire* p = new Wire(&hw, full, "p");
    auto* kcm =
        new modgen::VirtexKCMMultiplier(&hw, m, p, c.sign, c.pipe, c.constant);
    double gen_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();

    auto area = estimate::estimate_area(*kcm);
    auto timing = estimate::estimate_timing(*kcm);

    // Functional verification: 200 random vectors against the reference.
    Simulator sim(hw);
    Rng rng(c.width * 1000003 + static_cast<std::uint64_t>(c.constant));
    bool ok = true;
    for (int i = 0; i < 200; ++i) {
      std::uint64_t x = rng.next() &
                        ((c.width >= 64) ? ~0ull
                                         : ((1ull << c.width) - 1));
      sim.put(m, x);
      if (kcm->latency() > 0) sim.cycle(kcm->latency());
      ok &= (sim.get(p).to_uint() == kcm->expected_product(x));
    }

    std::printf("%6zu %9d %4s %5s | %6zu %5zu %7zu %9.1f %8zu %8.2f %6s\n",
                c.width, c.constant, c.sign ? "s" : "u", c.pipe ? "yes" : "no",
                area.luts, area.ffs, area.slices, timing.fmax_mhz,
                kcm->latency(), gen_ms, ok ? "pass" : "FAIL");
  }

  std::printf("\n(the GUI of Figure 1 shows exactly these fields for one "
              "chosen configuration)\n");
  return 0;
}
