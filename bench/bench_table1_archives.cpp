// Reproduces Table 1: "JAR Files Used By Constant Multiplier Applet".
//
// Paper (2002 Java class files):
//   JHDLBase.jar  346 kB   JHDL Classes & Simulator
//   Virtex.jar    293 kB   Xilinx Virtex Library
//   Viewer.jar    140 kB   Schematic Viewers
//   Applet.jar     16 kB   Module Generator & Applet
//   Total         795 kB
//
// Here the archives bundle this library's actual component sources plus
// serialized catalogs, LZSS-compressed. Absolute sizes differ from 2002
// Java bytecode; the reproduced claims are the partitioning, the ordering
// (Base > Virtex > Viewer >> Applet) and the applet-specific payload
// being a tiny fraction of the total.
#include <cstdio>

#include "core/generators.h"
#include "core/packaging.h"
#include "util/strings.h"

using namespace jhdl;
using namespace jhdl::core;

int main() {
  std::printf("=== Table 1: archives used by the constant multiplier applet "
              "===\n\n");
  Packager packager;
  KcmGenerator gen;

  struct PaperRow {
    const char* file;
    int paper_kb;
    const char* desc;
  };
  const PaperRow paper[] = {
      {"JHDLBase.jar", 346, "JHDL Classes & Simulator"},
      {"Virtex.jar", 293, "Xilinx Virtex Library"},
      {"Viewer.jar", 140, "Schematic Viewers"},
      {"Applet.jar", 16, "Module Generator & Applet"},
  };

  std::vector<Archive> archives;
  archives.push_back(packager.base_archive());
  archives.push_back(packager.virtex_archive());
  archives.push_back(packager.viewer_archive());
  archives.push_back(packager.applet_archive(gen));

  std::printf("%-26s %7s %10s %10s %8s   %s\n", "File", "files", "raw",
              "packed", "paper", "Description");
  std::size_t total_raw = 0, total_packed = 0;
  for (std::size_t i = 0; i < archives.size(); ++i) {
    const Archive& a = archives[i];
    std::size_t raw = a.raw_size();
    std::size_t packed = a.compressed_size();
    total_raw += raw;
    total_packed += packed;
    std::printf("%-26s %7zu %10s %10s %5d kB   %s\n",
                (a.name() + ".jar").c_str(), a.entries().size(),
                human_bytes(raw).c_str(), human_bytes(packed).c_str(),
                paper[i].paper_kb, paper[i].desc);
  }
  std::printf("%-26s %7s %10s %10s %5d kB\n", "Total", "",
              human_bytes(total_raw).c_str(),
              human_bytes(total_packed).c_str(), 795);

  // Shape checks the paper's table implies.
  std::printf("\nshape checks:\n");
  auto packed = [&](std::size_t i) { return archives[i].compressed_size(); };
  std::printf("  base > virtex            : %s\n",
              packed(0) > packed(1) ? "ok" : "VIOLATED");
  std::printf("  virtex > applet          : %s\n",
              packed(1) > packed(3) ? "ok" : "VIOLATED");
  std::printf("  viewer > applet          : %s\n",
              packed(2) > packed(3) ? "ok" : "VIOLATED");
  double applet_frac =
      static_cast<double>(packed(3)) / static_cast<double>(total_packed);
  std::printf("  applet fraction of total : %.1f%% (paper: %.1f%%)\n",
              100.0 * applet_frac, 100.0 * 16.0 / 795.0);

  std::printf("\ndownload time (total payload):\n");
  for (double bps : {56e3, 1e6, 10e6}) {
    std::printf("  %7.0f kbps: %7.2f s\n", bps / 1e3,
                Packager::download_seconds(total_packed, bps));
  }
  return 0;
}
