// Artifact-store payoff: cold pipeline latency (elaborate + compile +
// netlist + estimate, exactly what the first consumer of a configuration
// pays) vs the warm path (content-addressed hit, every view memoized),
// plus a concurrent-open hammer measuring hit rate and single-flight
// behaviour. A byte-compare of the warm store's views against an
// independent cold build proves the cache returns the same artifact it
// would have built - a speedup bought with stale or divergent views
// fails the run.
//
// Emits BENCH_artifact.json. `--smoke` shrinks iteration counts and
// skips the throughput gate; the full run requires the kcm-32 warm path
// to clear 5x over cold.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/artifact_store.h"
#include "core/generators.h"
#include "util/json.h"

using namespace jhdl;
using namespace jhdl::core;

namespace {

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ParamMap kcm_params(std::int64_t width) {
  return ParamMap()
      .set("input_width", width)
      .set("constant", std::int64_t{-20563})
      .set("signed_mode", true)
      .set("pipelined_mode", true);
}

/// Everything the first consumer of a configuration pays: elaboration,
/// kernel compilation, netlist scoping + rendering, area estimate.
void touch_all(const IpArtifact& artifact) {
  (void)artifact.program();
  (void)artifact.netlist_text(NetlistFormat::Edif);
  (void)artifact.area();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int cold_iters = smoke ? 2 : 10;
  const int warm_iters = smoke ? 200 : 5000;

  auto kcm = std::make_shared<KcmGenerator>();

  std::printf("=== Artifact store: cold pipeline vs warm fetch ===\n\n");
  std::printf("  %-9s %12s %12s %9s %6s\n", "circuit", "cold us", "warm us",
              "speedup", "exact");

  Json rows = Json::array();
  bool all_exact = true;
  bool flagship_fast = true;
  for (std::int64_t width : {8, 16, 32}) {
    const std::string label = "kcm-" + std::to_string(width);

    // Cold: a fresh store per iteration, full pipeline.
    double cold_us = 0.0;
    for (int i = 0; i < cold_iters; ++i) {
      ArtifactStore fresh;
      const double t0 = now_us();
      auto art = fresh.get_or_build(kcm, kcm_params(width));
      touch_all(*art);
      cold_us += now_us() - t0;
    }
    cold_us /= cold_iters;

    // Warm: one store, every later consumer reads the memoized snapshot.
    ArtifactStore store;
    auto first = store.get_or_build(kcm, kcm_params(width));
    touch_all(*first);
    const double t0 = now_us();
    for (int i = 0; i < warm_iters; ++i) {
      auto art = store.get_or_build(kcm, kcm_params(width));
      touch_all(*art);
    }
    const double warm_us = (now_us() - t0) / warm_iters;

    // Bit-exactness: the warm snapshot vs an independent cold build.
    IpArtifact cold_ref(kcm, kcm_params(width).resolved(kcm->params()));
    const bool exact =
        cold_ref.netlist_text(NetlistFormat::Edif) ==
            first->netlist_text(NetlistFormat::Edif) &&
        cold_ref.netlist_text(NetlistFormat::Json) ==
            first->netlist_text(NetlistFormat::Json) &&
        cold_ref.area().luts == first->area().luts;
    all_exact = all_exact && exact;

    const double speedup = warm_us > 0.0 ? cold_us / warm_us : 0.0;
    // Acceptance: warm must beat cold by 5x on the flagship instance.
    // The smoke run still checks exactness but skips the gate.
    if (width == 32 && !smoke && speedup < 5.0) flagship_fast = false;
    std::printf("  %-9s %12.1f %12.2f %8.1fx %6s\n", label.c_str(), cold_us,
                warm_us, speedup, exact ? "yes" : "NO");

    Json row = Json::object();
    row.set("circuit", label);
    row.set("cold_us", cold_us);
    row.set("warm_us", warm_us);
    row.set("speedup", speedup);
    row.set("flagship", width == 32);
    row.set("bit_exact", exact);
    rows.push(row);
  }

  // Concurrent session-open hammer: 8 threads race a small set of
  // configurations; single-flight must hold builds to one per config.
  const int threads_n = 8;
  const int opens_per_thread = smoke ? 25 : 250;
  const std::vector<std::int64_t> widths = {8, 12, 16, 24};
  ArtifactStore store;
  std::atomic<int> divergent{0};
  const double h0 = now_us();
  std::vector<std::thread> threads;
  threads.reserve(threads_n);
  for (int t = 0; t < threads_n; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < opens_per_thread; ++i) {
        const std::int64_t w =
            widths[static_cast<std::size_t>(t + i) % widths.size()];
        auto art = store.get_or_build(kcm, kcm_params(w));
        if (art->params().values().at("input_width") != w) {
          divergent.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const double hammer_ms = (now_us() - h0) / 1000.0;
  ArtifactStore::Stats stats = store.stats();
  const double total = static_cast<double>(stats.hits + stats.misses +
                                           stats.coalesced);
  const double hit_rate =
      total > 0.0
          ? static_cast<double>(stats.hits + stats.coalesced) / total
          : 0.0;
  const bool single_flight = stats.misses == widths.size();
  all_exact = all_exact && divergent.load() == 0;

  std::printf(
      "\nconcurrent: %d threads x %d opens over %zu configs in %.1f ms\n"
      "  builds %llu (want %zu)  hit rate %.4f  coalesced %llu\n",
      threads_n, opens_per_thread, widths.size(), hammer_ms,
      static_cast<unsigned long long>(stats.misses), widths.size(), hit_rate,
      static_cast<unsigned long long>(stats.coalesced));

  Json doc = Json::object();
  doc.set("benchmark", std::string("artifact_store"));
  doc.set("smoke", smoke);
  doc.set("rows", rows);
  Json conc = Json::object();
  conc.set("threads", threads_n);
  conc.set("opens_per_thread", opens_per_thread);
  conc.set("configs", widths.size());
  conc.set("builds", stats.misses);
  conc.set("coalesced", stats.coalesced);
  conc.set("hit_rate", hit_rate);
  conc.set("single_flight", single_flight);
  doc.set("concurrent", conc);
  doc.set("all_bit_exact", all_exact);
  doc.set("flagship_reaches_5x", flagship_fast);
  std::ofstream("BENCH_artifact.json") << doc.dump() << "\n";
  std::printf("\nwrote BENCH_artifact.json\n");
  if (!all_exact) std::printf("FAIL: warm views diverge from cold build\n");
  if (!single_flight) std::printf("FAIL: concurrent builds not coalesced\n");
  if (!flagship_fast) std::printf("FAIL: kcm-32 warm speedup below 5x\n");
  return (all_exact && single_flight && flagship_fast) ? 0 : 1;
}
