// Vendor portal: the vendor-side view of the delivery system. For each
// customer license tier the portal assembles a customized applet (the two
// configurations of Figure 2 plus an anonymous teaser), reports the
// capability matrix, and prints the download payload each configuration
// pulls (the Section 4.4 / Table 1 machinery).
//
// Run:  ./vendor_portal
#include <cstdio>

#include "core/applet.h"
#include "core/generators.h"

using namespace jhdl;
using namespace jhdl::core;

namespace {

const char* yn(bool b) { return b ? "yes" : "-"; }

void try_op(const char* label, const std::function<void()>& op) {
  try {
    op();
    std::printf("    %-22s granted\n", label);
  } catch (const AppletSecurityError&) {
    std::printf("    %-22s DENIED by license\n", label);
  }
}

}  // namespace

int main() {
  auto generator = std::make_shared<KcmGenerator>();
  const ParamMap params = ParamMap()
                              .set("input_width", std::int64_t{8})
                              .set("constant", std::int64_t{-56})
                              .set("signed_mode", true);

  std::printf("=== IP vendor portal: %s ===\n%s\n\n",
              generator->name().c_str(), generator->description().c_str());

  std::printf("%-12s %-10s %-8s %-8s %-8s %-9s %-8s\n", "customer", "tier",
              "estim", "viewer", "sim", "netlist", "bbox");
  struct Customer {
    const char* name;
    LicenseTier tier;
  };
  const Customer customers[] = {
      {"web-visitor", LicenseTier::Anonymous},
      {"eval-corp", LicenseTier::Evaluation},
      {"acme-licensed", LicenseTier::Licensed},
  };
  for (const Customer& c : customers) {
    FeatureSet fs = LicensePolicy::features_for(c.tier);
    std::printf("%-12s %-10s %-8s %-8s %-8s %-9s %-8s\n", c.name,
                license_tier_name(c.tier), yn(fs.has(Feature::Estimator)),
                yn(fs.has(Feature::StructuralViewer)),
                yn(fs.has(Feature::Simulator)), yn(fs.has(Feature::Netlister)),
                yn(fs.has(Feature::BlackBoxSim)));
  }

  for (const Customer& c : customers) {
    std::printf("\n--- assembling applet for %s (%s) ---\n", c.name,
                license_tier_name(c.tier));
    Applet applet = AppletBuilder()
                        .title(std::string("KCM applet for ") + c.name)
                        .generator(generator)
                        .license(LicensePolicy::make(c.name, c.tier))
                        .obfuscated()
                        .watermark("jhdlpp-vendor")
                        .netlist_quota(3)
                        .build_applet();
    applet.build(params);
    try_op("area estimate", [&] { (void)applet.area(); });
    try_op("hierarchy view", [&] { (void)applet.hierarchy(); });
    try_op("simulation", [&] { applet.sim_cycle(); });
    try_op("EDIF netlist", [&] { (void)applet.netlist(NetlistFormat::Edif); });
    try_op("black-box model", [&] { (void)applet.make_black_box(); });

    auto report = applet.download_report();
    std::printf("  download payload (%zu archives):\n", report.rows.size());
    for (const auto& row : report.rows) {
      std::printf("    %-28s %8zu B compressed (%zu files)\n",
                  row.file.c_str(), row.compressed, row.entries);
    }
    std::printf("    total: %zu B;  56 kbps: %.1f s;  1 Mbps: %.2f s\n",
                report.total_compressed,
                Packager::download_seconds(report.total_compressed, 56e3),
                Packager::download_seconds(report.total_compressed, 1e6));
  }
  return 0;
}
