// Figure 4: black-box co-simulation. Two IP applets expose only their
// simulation models over sockets; a customer's "system simulator"
// (standing in for the paper's Verilog/PLI wrapper) integrates both into
// a complete system simulation without ever seeing IP internals.
//
// System model: y[t] = kcmA(x[t]) + kcmB(x[t])  (a two-branch datapath).
//
// Run:  ./blackbox_system_sim
#include <cstdio>

#include "core/applet.h"
#include "core/generators.h"
#include "net/sim_client.h"
#include "net/sim_server.h"
#include "util/rng.h"

using namespace jhdl;
using namespace jhdl::core;
using namespace jhdl::net;

namespace {

// The vendor side: an evaluation-tier applet (no netlister!) hands out a
// black-box model, which we serve over a socket.
std::unique_ptr<SimServer> vendor_serves_ip(int constant) {
  Applet applet =
      AppletBuilder()
          .title("KCM IP (black-box delivery)")
          .generator(std::make_shared<KcmGenerator>())
          .license(LicensePolicy::make("eval-customer",
                                       LicenseTier::Evaluation))
          .build_applet();
  applet.build(ParamMap()
                   .set("input_width", std::int64_t{8})
                   .set("constant", std::int64_t{constant})
                   .set("signed_mode", true));
  return std::make_unique<SimServer>(applet.make_black_box());
}

}  // namespace

int main() {
  std::printf("starting two IP applet simulation servers...\n");
  auto server_a = vendor_serves_ip(-56);
  auto server_b = vendor_serves_ip(91);
  std::uint16_t port_a = server_a->start();
  std::uint16_t port_b = server_b->start();
  std::printf("  IP A (c=-56) on port %u\n  IP B (c= 91) on port %u\n\n",
              port_a, port_b);

  // The customer's system simulator connects to both.
  SimClient ip_a(port_a);
  SimClient ip_b(port_b);
  std::printf("connected: %s (latency %zu), %s (latency %zu)\n\n",
              ip_a.ip_name().c_str(), ip_a.latency(), ip_b.ip_name().c_str(),
              ip_b.latency());

  std::printf("system simulation: y = A(x) + B(x) = (-56 + 91) * x\n");
  std::printf("  %6s %10s %10s %10s %7s\n", "x", "A(x)", "B(x)", "y",
              "check");
  Rng rng(42);
  bool all_ok = true;
  for (int t = 0; t < 10; ++t) {
    std::int64_t x = rng.range(-128, 127);
    std::map<std::string, BitVector> in;
    in["multiplicand"] = BitVector::from_int(8, x);
    auto oa = ip_a.eval(in, 0);
    auto ob = ip_b.eval(in, 0);
    std::int64_t a = oa["product"].to_int();
    std::int64_t b = ob["product"].to_int();
    std::int64_t y = a + b;
    bool ok = (y == 35 * x);
    all_ok &= ok;
    std::printf("  %6lld %10lld %10lld %10lld %7s\n",
                static_cast<long long>(x), static_cast<long long>(a),
                static_cast<long long>(b), static_cast<long long>(y),
                ok ? "ok" : "FAIL");
  }

  std::printf("\nround trips: A=%zu B=%zu; internals exchanged: none\n",
              ip_a.round_trips(), ip_b.round_trips());
  ip_a.bye();
  ip_b.bye();
  server_a->stop();
  server_b->stop();
  std::printf("%s\n", all_ok ? "system simulation PASSED"
                             : "system simulation FAILED");
  return all_ok ? 0 : 1;
}
