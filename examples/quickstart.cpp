// Quickstart: the paper's full-adder example, end to end.
//
// Builds the full adder from Section 2 exactly as the Java listing does,
// simulates all input combinations, prints the hierarchy, and emits an
// EDIF netlist - the complete JHDL-style describe/simulate/netlist loop.
//
// Run:  ./quickstart
#include <cstdio>

#include "hdl/hwsystem.h"
#include "netlist/netlist.h"
#include "sim/simulator.h"
#include "tech/virtex.h"
#include "viewer/hierarchy.h"

using namespace jhdl;

// The paper's FullAdder, translated line for line from the Java listing.
class FullAdder : public Cell {
 public:
  FullAdder(Node* parent, Wire* a, Wire* b, Wire* ci, Wire* s, Wire* co)
      : Cell(parent, "fulladder") {
    set_type_name("fulladder");
    port_in("a", a);
    port_in("b", b);
    port_in("ci", ci);
    port_out("s", s);
    port_out("co", co);

    Wire* t1 = new Wire(this, 1);
    Wire* t2 = new Wire(this, 1);
    Wire* t3 = new Wire(this, 1);
    new tech::And2(this, a, b, t1);
    new tech::And2(this, a, ci, t2);
    new tech::And2(this, b, ci, t3);
    new tech::Or3(this, t1, t2, t3, co);  // co is carry out
    new tech::Xor3(this, a, b, ci, s);    // s is output
  }
};

int main() {
  HWSystem hw;
  Wire* a = new Wire(&hw, 1, "a");
  Wire* b = new Wire(&hw, 1, "b");
  Wire* ci = new Wire(&hw, 1, "ci");
  Wire* s = new Wire(&hw, 1, "s");
  Wire* co = new Wire(&hw, 1, "co");
  auto* fa = new FullAdder(&hw, a, b, ci, s, co);

  std::printf("-- hierarchy --\n%s\n",
              viewer::hierarchy_tree(*fa).c_str());

  std::printf("-- simulation --\n a b ci | s co\n");
  Simulator sim(hw);
  for (unsigned v = 0; v < 8; ++v) {
    sim.put(a, v & 1);
    sim.put(b, (v >> 1) & 1);
    sim.put(ci, (v >> 2) & 1);
    std::printf(" %u %u  %u | %llu  %llu\n", v & 1, (v >> 1) & 1,
                (v >> 2) & 1,
                static_cast<unsigned long long>(sim.get(s).to_uint()),
                static_cast<unsigned long long>(sim.get(co).to_uint()));
  }

  std::string edif = netlist::write_edif(*fa);
  std::printf("\n-- EDIF netlist (%zu bytes) --\n%s", edif.size(),
              edif.c_str());
  return 0;
}
