// IP catalog: the vendor's multi-IP storefront (the paper's future-work
// item "developing applets that deliver more than one IP module",
// Section 5) with the secure delivery channel ("investigating more
// secure delivery techniques").
//
// Flow: the customer browses the catalog, receives a multi-IP applet
// bundle under one license, evaluates two IPs, and the vendor seals the
// download archives with the customer's license key.
//
// Run:  ./ip_catalog
#include <cstdio>

#include "core/catalog.h"
#include "core/generators.h"
#include "core/secure.h"

using namespace jhdl;
using namespace jhdl::core;

int main() {
  // The full storefront: the stock generators plus the VTR-class corpus
  // (systolic-array, hash-pipe, cordic-rotator, rf-alu).
  IpCatalog catalog = standard_catalog();

  std::printf("%s\n", catalog.listing().c_str());

  // One bundle, one license, several IPs.
  MultiIpApplet bundle(
      catalog, LicensePolicy::make("acme-labs", LicenseTier::Licensed));
  std::printf("--- bundle for acme-labs: %zu IPs ---\n", bundle.size());
  for (const std::string& name : bundle.ip_names()) {
    std::printf("  %s\n", name.c_str());
  }

  // Evaluate the KCM.
  Applet& kcm = bundle.select("kcm-multiplier");
  kcm.build(ParamMap()
                .set("input_width", std::int64_t{8})
                .set("constant", std::int64_t{-56})
                .set("signed_mode", true));
  kcm.sim_put_signed("multiplicand", 100);
  std::printf("\nkcm: -56 * 100 -> %lld\n",
              static_cast<long long>(kcm.sim_get("product").to_int()));

  // Evaluate the DDS (synchronous BRAM read: 1 cycle latency).
  Applet& dds = bundle.select("dds-synth");
  dds.build(ParamMap()
                .set("phase_width", std::int64_t{16})
                .set("tuning", std::int64_t{2048}));
  std::printf("dds samples:");
  for (int t = 0; t < 12; ++t) {
    dds.sim_cycle();
    std::printf(" %3llu",
                static_cast<unsigned long long>(dds.sim_get("out").to_uint()));
  }
  std::printf("\n");
  auto dds_area = dds.area();
  std::printf("dds area: %zu LUTs, %zu FFs, %zu BRAM\n\n", dds_area.luts,
              dds_area.ffs, dds_area.brams);

  // The combined payload shares the framework archives.
  auto report = bundle.download_report();
  std::printf("--- bundle download payload ---\n");
  for (const auto& row : report.rows) {
    std::printf("  %-28s %8zu B compressed\n", row.file.c_str(),
                row.compressed);
  }
  std::printf("  total %zu B\n\n", report.total_compressed);

  // Secure delivery: seal with the customer's license key; a wrong key
  // cannot unpack.
  SecureChannel vendor_channel("acme-labs-license-2002");
  Packager packager;
  Archive base = packager.base_archive();
  SealedArchive sealed = vendor_channel.seal_archive(base, 1);
  std::printf("--- secure delivery ---\n");
  std::printf("sealed %s: %zu B (plain archive %zu B)\n",
              sealed.name.c_str(), sealed.payload.size(),
              base.serialize().size());
  Archive unpacked = vendor_channel.open_archive(sealed);
  std::printf("customer unpack with correct key: %zu files ok\n",
              unpacked.entries().size());
  try {
    SecureChannel wrong("stolen-guess");
    wrong.open_archive(sealed);
    std::printf("ERROR: wrong key unpacked the archive!\n");
    return 1;
  } catch (const std::exception& e) {
    std::printf("wrong key rejected: %s\n", e.what());
  }
  return 0;
}
