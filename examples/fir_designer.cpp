// FIR designer: the signal-processing scenario the paper's introduction
// motivates. A customer evaluates delivered FIR IP (built internally from
// KCM multiplier IP) across parameter choices, inspects cost/performance
// trade-offs, runs a filtering simulation on a synthetic signal, and
// exports VHDL for their design flow.
//
// Run:  ./fir_designer
#include <cmath>
#include <cstdio>

#include "core/applet.h"
#include "core/generators.h"

using namespace jhdl;
using namespace jhdl::core;

int main() {
  Applet applet = AppletBuilder()
                      .title("FIR Filter IP Evaluation")
                      .generator(std::make_shared<FirGenerator>())
                      .license(LicensePolicy::make("dsp-house",
                                                   LicenseTier::Licensed))
                      .build_applet();
  std::printf("%s\n", applet.describe().c_str());

  // Symmetric low-pass-ish taps.
  const std::int64_t taps[4] = {3, 9, 9, 3};

  // Parameter exploration: pipelined vs combinational.
  std::printf("-- design space --\n");
  std::printf("%-12s %6s %6s %8s %10s %9s\n", "variant", "LUTs", "FFs",
              "slices", "fmax MHz", "latency");
  for (bool pipelined : {false, true}) {
    applet.build(ParamMap()
                     .set("input_width", std::int64_t{8})
                     .set("c0", taps[0])
                     .set("c1", taps[1])
                     .set("c2", taps[2])
                     .set("c3", taps[3])
                     .set("pipelined", pipelined));
    auto area = applet.area();
    auto timing = applet.timing();
    std::printf("%-12s %6zu %6zu %8zu %10.1f %9zu\n",
                pipelined ? "pipelined" : "comb", area.luts, area.ffs,
                area.slices, timing.fmax_mhz, applet.latency());
  }

  // Evaluate the combinational variant on a noisy step signal.
  applet.build(ParamMap()
                   .set("input_width", std::int64_t{8})
                   .set("c0", taps[0])
                   .set("c1", taps[1])
                   .set("c2", taps[2])
                   .set("c3", taps[3])
                   .set("pipelined", false));
  std::printf("\n-- filtering a noisy step (gain = %lld) --\n",
              static_cast<long long>(taps[0] + taps[1] + taps[2] + taps[3]));
  std::printf("%4s %6s %8s\n", "t", "x[t]", "y[t]");
  for (int t = 0; t < 16; ++t) {
    std::int64_t noise = (t * 37 % 7) - 3;
    std::int64_t x = (t < 8 ? 0 : 40) + noise;
    applet.sim_put_signed("x", x);
    std::printf("%4d %6lld %8lld\n", t, static_cast<long long>(x),
                static_cast<long long>(applet.sim_get("y").to_int()));
    applet.sim_cycle();
  }

  // Export for the customer's conventional design flow.
  std::string vhdl = applet.netlist(NetlistFormat::Vhdl);
  std::printf("\n-- VHDL export: %zu bytes (entity list) --\n", vhdl.size());
  for (std::size_t pos = vhdl.find("entity "); pos != std::string::npos;
       pos = vhdl.find("entity ", pos + 1)) {
    std::size_t eol = vhdl.find('\n', pos);
    if (vhdl.compare(pos, 10, "entity is") == 0) continue;
    std::string line = vhdl.substr(pos, eol - pos);
    if (line.find(" is") != std::string::npos) {
      std::printf("  %s\n", line.c_str());
    }
  }
  return 0;
}
