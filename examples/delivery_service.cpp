// Delivery service demo: the vendor hosts its WHOLE catalog behind one
// port and serves several customers' black-box co-simulation sessions
// concurrently - the multi-tenant successor to the one-applet-per-process
// scenario of Figure 4.
//
// The demo starts a DeliveryService with a 4-worker pool, registers three
// customer licenses (one of which must be turned away), runs the
// customers in parallel against different catalog entries, rejects an
// unlicensed walk-in, and finally prints the admin stats the service
// collected about all of it — including the per-tenant operations plane:
// the admin HTTP port it announces serves GET /metrics (Prometheus
// text), /healthz, /slo and /flight while the demo runs.
//
// Run:  ./delivery_service [--hold <ms>]
//   --hold keeps the service (and its admin endpoint) up for <ms> after
//   the demo traffic, so an outside scraper — CI's curl smoke, or a real
//   Prometheus — can hit the HTTP plane before shutdown.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "core/catalog.h"
#include "core/generators.h"
#include "net/sim_client.h"
#include "server/delivery_service.h"

using namespace jhdl;
using namespace jhdl::core;
using namespace jhdl::net;
using namespace jhdl::server;

namespace {

void evaluate_adder(std::uint16_t port) {
  ConnectSpec spec;
  spec.customer = "acme";
  spec.module = "carry-adder";
  spec.params["width"] = 16;
  SimClient client(port, spec);
  std::map<std::string, BitVector> inputs;
  inputs["a"] = BitVector::from_uint(16, 1234);
  inputs["b"] = BitVector::from_uint(16, 4321);
  auto out = client.eval(inputs, 0);
  std::printf("  [acme]    carry-adder     1234 + 4321 = %llu\n",
              static_cast<unsigned long long>(out.at("s").to_uint()));
  client.bye();
}

void evaluate_kcm(std::uint16_t port) {
  ConnectSpec spec;
  spec.customer = "globex";
  spec.module = "kcm-multiplier";
  spec.params["input_width"] = 8;
  spec.params["constant"] = -56;
  spec.params["signed_mode"] = 1;
  SimClient client(port, spec);
  std::map<std::string, BitVector> inputs;
  inputs["multiplicand"] = BitVector::from_int(8, 100);
  auto out = client.eval(inputs, 0);
  std::printf("  [globex]  kcm-multiplier  -56 * 100 = %lld\n",
              static_cast<long long>(out.at("product").to_int()));
  client.bye();
}

}  // namespace

int main(int argc, char** argv) {
  long hold_ms = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hold") == 0 && i + 1 < argc) {
      hold_ms = std::atol(argv[++i]);
    }
  }

  // The vendor's storefront: every generator it is willing to serve -
  // the stock IP plus the VTR-class corpus generators.
  IpCatalog catalog = standard_catalog();

  DeliveryConfig config;
  config.workers = 4;
  config.queue_capacity = 8;
  config.idle_timeout = std::chrono::milliseconds(5000);
  config.admin_http = true;
  DeliveryService service(std::move(catalog), config);
  service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
  service.add_license(LicensePolicy::make("globex", LicenseTier::Licensed));
  // Anonymous browsing tier: no BlackBoxSim feature -> refused below.
  service.add_license(LicensePolicy::make("initech", LicenseTier::Anonymous));

  std::uint16_t port = service.start();
  std::printf("=== Multi-tenant IP delivery service on port %u ===\n",
              port);
  // Announce the operations plane on its own line: CI's smoke step (and
  // any scrape-config generator) greps for "admin http port".
  std::printf("admin http port %u (GET /metrics /healthz /slo /flight)\n",
              service.admin_port());
  std::fflush(stdout);
  std::printf("catalog: %zu IPs, %zu workers, queue %zu, idle timeout %lld ms\n\n",
              service.catalog().size(), service.config().workers,
              service.config().queue_capacity,
              static_cast<long long>(service.config().idle_timeout.count()));

  std::printf("licensed customers co-simulate concurrently:\n");
  std::vector<std::thread> customers;
  customers.emplace_back([port] { evaluate_adder(port); });
  customers.emplace_back([port] { evaluate_kcm(port); });
  for (auto& t : customers) t.join();

  // A second wave with the same configurations: every session now opens
  // against the shared artifact store's snapshot instead of
  // re-elaborating (watch artifact.hits below).
  std::printf("\nsecond wave hits the shared artifact store:\n");
  customers.clear();
  customers.emplace_back([port] { evaluate_adder(port); });
  customers.emplace_back([port] { evaluate_kcm(port); });
  for (auto& t : customers) t.join();

  std::printf("\nwalk-ins are turned away at the handshake:\n");
  for (const char* who : {"initech", "hacker"}) {
    try {
      ConnectSpec spec;
      spec.customer = who;
      spec.module = "fir4-filter";
      SimClient denied(port, spec);
    } catch (const std::exception& e) {
      std::printf("  [%s] %s\n", who, e.what());
    }
  }

  std::printf("\nadmin stats (the Stats wire query):\n%s\n",
              query_stats(port).dump(2).c_str());

  // The artifact store's instruments ride the same MetricsDump wire
  // query as everything else; one elaboration per configuration, every
  // later session a hit.
  const Json metrics = query_metrics(port);
  const Json& counters = metrics.at("counters");
  const Json& gauges = metrics.at("gauges");
  std::printf("artifact store (the MetricsDump wire query):\n");
  for (const char* key : {"artifact.hits", "artifact.misses",
                          "artifact.coalesced", "artifact.evictions",
                          "artifact.pinned_skips"}) {
    std::printf("  %-22s %lld\n", key,
                static_cast<long long>(counters.at(key).as_int()));
  }
  for (const char* key : {"artifact.entries", "artifact.resident_bytes"}) {
    std::printf("  %-22s %lld\n", key,
                static_cast<long long>(gauges.at(key).as_int()));
  }

  // Per-tenant attribution: the same dump carries the labeled families.
  std::printf("per-tenant requests (req.count family):\n");
  for (const Json& row :
       metrics.at("families").at("req.count").at("series").items()) {
    std::printf("  %-10s %lld\n",
                row.at("labels").at("customer").as_string().c_str(),
                static_cast<long long>(row.at("value").as_int()));
  }

  if (hold_ms > 0) {
    std::printf("\nholding for %ld ms; scrape http://127.0.0.1:%u/metrics\n",
                hold_ms, service.admin_port());
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(hold_ms));
  }
  service.stop();
  return 0;
}
