// The constant coefficient multiplier delivery applet of Figures 1 and 3,
// as an interactive-style session driven from the command line.
//
// A licensed customer builds the paper's example instance (8-bit input,
// 12-bit product, constant -56, signed, pipelined), estimates it, browses
// the structure, simulates a few inputs, and finally takes an EDIF
// netlist - every step the Figure 3 applet's buttons offer.
//
// Run:  ./kcm_applet [constant] [width]
//       ./kcm_applet -i          interactive shell (type 'help'); the
//                                text-mode equivalent of the Figure 3 GUI
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/applet.h"
#include "core/generators.h"
#include "core/shell.h"

using namespace jhdl;
using namespace jhdl::core;

namespace {

int interactive() {
  Applet applet = AppletBuilder()
                      .title("Constant Coefficient Multiplier")
                      .generator(std::make_shared<KcmGenerator>())
                      .license(LicensePolicy::make("licensed-customer",
                                                   LicenseTier::Licensed))
                      .build_applet();
  AppletShell shell(applet);
  std::printf("%s\ntype 'help' for commands, ctrl-d to quit\n",
              applet.describe().c_str());
  std::string line;
  while (std::printf("> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::fputs(shell.execute(line).c_str(), stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "-i") == 0) return interactive();
  const int constant = argc > 1 ? std::atoi(argv[1]) : -56;
  const int width = argc > 2 ? std::atoi(argv[2]) : 8;

  Applet applet = AppletBuilder()
                      .title("Constant Coefficient Multiplier")
                      .generator(std::make_shared<KcmGenerator>())
                      .license(LicensePolicy::make("licensed-customer",
                                                   LicenseTier::Licensed))
                      .watermark("jhdlpp-vendor")
                      .build_applet();

  std::printf("%s\n", applet.describe().c_str());

  // The "build" button.
  applet.build(ParamMap()
                   .set("input_width", std::int64_t{width})
                   .set("product_width",
                        std::int64_t{width + 4})
                   .set("constant", std::int64_t{constant})
                   .set("signed_mode", true)
                   .set("pipelined_mode", true));
  std::printf("built: %s  (latency %zu cycles)\n\n",
              applet.current_params().summary().c_str(), applet.latency());

  // The estimator pane.
  auto area = applet.area();
  auto timing = applet.timing();
  std::printf("-- estimate --\nLUTs %zu  FFs %zu  carries %zu  slices %zu\n",
              area.luts, area.ffs, area.carries, area.slices);
  std::printf("critical path %.2f ns over %zu levels (fmax %.1f MHz)\n\n",
              timing.comb_delay_ns, timing.levels, timing.fmax_mhz);

  // The structural viewer.
  std::printf("-- interface --\n%s\n", applet.interface_text().c_str());
  std::printf("-- hierarchy --\n%s\n", applet.hierarchy().c_str());
  std::printf("-- layout --\n%s\n", applet.layout_text().c_str());

  // The simulator pane ("Cycle" button).
  std::printf("-- simulation --\n");
  applet.watch("multiplicand");
  applet.watch("product");
  for (std::int64_t x : {1, 2, 100, -100, 127, -128}) {
    applet.sim_put_signed("multiplicand", x);
    applet.sim_cycle(applet.latency() == 0 ? 1 : applet.latency());
    std::printf("  %4lld * %d -> product bits %s\n",
                static_cast<long long>(x), constant,
                applet.sim_get("product").to_string().c_str());
  }
  std::printf("\n-- waveforms --\n%s\n", applet.waves().c_str());

  // The "Netlist" button.
  std::string edif = applet.netlist(NetlistFormat::Edif);
  std::printf("-- EDIF netlist: %zu bytes (first lines) --\n", edif.size());
  std::size_t shown = 0;
  for (std::size_t i = 0; i < edif.size() && shown < 12; ++i) {
    std::putchar(edif[i]);
    if (edif[i] == '\n') ++shown;
  }

  // Download footprint (Table 1 for this applet).
  std::printf("\n-- download payload --\n");
  auto report = applet.download_report();
  for (const auto& row : report.rows) {
    std::printf("  %-24s %3zu files  %8zu B raw  %8zu B compressed\n",
                row.file.c_str(), row.entries, row.raw, row.compressed);
  }
  std::printf("  total %zu B compressed\n", report.total_compressed);
  std::printf("\n%s\n", applet.meter().report().c_str());
  return 0;
}
