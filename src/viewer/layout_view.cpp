#include "viewer/layout_view.h"

#include <sstream>

#include "util/strings.h"

namespace jhdl::viewer {

std::string text_layout(const Cell& root) {
  estimate::LayoutEstimate est = estimate::estimate_layout(root);
  std::ostringstream os;
  os << "layout of " << root.full_name() << ": ";
  if (!est.placed) {
    os << "unplaced\n";
    return os.str();
  }
  os << est.width() << "x" << est.height() << " slices, "
     << est.placed_primitives << " placed primitives, density "
     << format("%.2f", est.density()) << "\n";
  for (int row = est.max_row; row >= est.min_row; --row) {
    os << format("%4d |", row);
    for (int col = est.min_col; col <= est.max_col; ++col) {
      auto it = est.occupancy.find({row, col});
      if (it == est.occupancy.end()) {
        os << '.';
      } else if (it->second > 9) {
        os << '#';
      } else {
        os << static_cast<char>('0' + it->second);
      }
    }
    os << "|\n";
  }
  return os.str();
}

std::string svg_layout(const Cell& root) {
  estimate::LayoutEstimate est = estimate::estimate_layout(root);
  constexpr int kCell = 14;
  const int cols = est.placed ? est.width() : 1;
  const int rows = est.placed ? est.height() : 1;
  const int width = 40 + cols * kCell;
  const int height = 50 + rows * kCell;
  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
     << "\" height=\"" << height << "\">\n";
  os << "<text x=\"10\" y=\"16\" font-family=\"monospace\" font-size=\"12\">"
     << root.full_name() << " layout</text>\n";
  if (est.placed) {
    std::size_t max_occ = 1;
    for (const auto& [loc, n] : est.occupancy) max_occ = std::max(max_occ, n);
    for (int row = est.min_row; row <= est.max_row; ++row) {
      for (int col = est.min_col; col <= est.max_col; ++col) {
        auto it = est.occupancy.find({row, col});
        const int x = 20 + (col - est.min_col) * kCell;
        const int y = 30 + (est.max_row - row) * kCell;
        std::string fill = "#ffffff";
        if (it != est.occupancy.end()) {
          // Darker blue for denser slices.
          int shade = 230 - static_cast<int>(160 * it->second / max_occ);
          fill = format("#%02x%02xff", shade, shade);
        }
        os << "<rect x=\"" << x << "\" y=\"" << y << "\" width=\"" << kCell
           << "\" height=\"" << kCell << "\" fill=\"" << fill
           << "\" stroke=\"#aaa\" stroke-width=\"0.5\"/>\n";
      }
    }
  } else {
    os << "<text x=\"20\" y=\"40\" font-family=\"monospace\" font-size=\"11\""
          " fill=\"#a00\">unplaced</text>\n";
  }
  os << "</svg>\n";
  return os.str();
}

}  // namespace jhdl::viewer
