#include "viewer/memview.h"

#include <sstream>

#include "hdl/visitor.h"
#include "tech/bram.h"
#include "tech/memory.h"
#include "tech/srl.h"
#include "util/strings.h"

namespace jhdl::viewer {

std::string memory_contents(const Cell& root) {
  std::ostringstream os;
  bool any = false;
  for (Primitive* p : collect_primitives(const_cast<Cell&>(root))) {
    if (auto* rom = dynamic_cast<tech::Rom16*>(p)) {
      any = true;
      os << rom->full_name() << " (rom16x" << rom->num_outputs() << "):\n ";
      for (unsigned a = 0; a < 16; ++a) {
        os << format(" %0*llx", static_cast<int>((rom->num_outputs() + 3) / 4),
                     static_cast<unsigned long long>(rom->contents()[a]));
      }
      os << "\n";
    } else if (auto* ram = dynamic_cast<tech::Ram16x1s*>(p)) {
      any = true;
      os << ram->full_name() << " (ram16x1s): " << format("%04X", ram->state())
         << "\n";
    } else if (auto* srl = dynamic_cast<tech::Srl16*>(p)) {
      any = true;
      os << srl->full_name() << " (srl16): " << format("%04X", srl->state())
         << "\n";
    } else if (auto* bram = dynamic_cast<tech::RamB4S8*>(p)) {
      any = true;
      os << bram->full_name() << " (ramb4_s8, 512x8):\n";
      const auto& mem = bram->contents();
      for (std::size_t row = 0; row < 512; row += 32) {
        // Skip all-zero rows to keep dumps readable.
        bool nonzero = false;
        for (std::size_t i = 0; i < 32; ++i) nonzero |= (mem[row + i] != 0);
        if (!nonzero) continue;
        os << format("  %03zx:", row);
        for (std::size_t i = 0; i < 32; ++i) {
          os << format(" %02x", mem[row + i]);
        }
        os << "\n";
      }
    }
  }
  if (!any) return "(no memories)\n";
  return os.str();
}

}  // namespace jhdl::viewer
