// Hierarchy browser: the textual form of JHDL's circuit hierarchy viewer.
// Used by the applet framework's "structural circuit viewer" feature to
// let a customer "browse the hierarchy and structure of a generated
// design" (paper, Section 3.2).
#pragma once

#include <string>

#include "hdl/cell.h"

namespace jhdl::viewer {

/// Render the subtree as an indented tree, one cell per line, with type,
/// port summary and (for primitives) resource notes. `max_depth` < 0 means
/// unlimited.
std::string hierarchy_tree(const Cell& root, int max_depth = -1);

/// One-paragraph interface summary of a cell: name, type, ports with
/// directions and widths.
std::string interface_summary(const Cell& cell);

}  // namespace jhdl::viewer
