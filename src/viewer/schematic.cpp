#include "viewer/schematic.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "hdl/net.h"
#include "util/strings.h"

namespace jhdl::viewer {
namespace {

struct Sheet {
  std::vector<const Cell*> insts;
  std::map<const Cell*, int> level;
  int max_level = 0;
};

/// Levelize one hierarchy level: an instance sits one column right of the
/// deepest instance driving any of its input ports. Feedback edges (from
/// sequential loops) are ignored by the bounded relaxation.
Sheet levelize(const Cell& cell) {
  Sheet sheet;
  std::map<const Net*, const Cell*> driven_by;
  for (const Cell* child : cell.children()) {
    sheet.insts.push_back(child);
    sheet.level[child] = 0;
    for (const Port& p : child->ports()) {
      if (p.dir != PortDir::In) {
        for (Net* n : p.wire->nets()) driven_by[n] = child;
      }
    }
  }
  // Bounded relaxation: N passes suffice for a DAG of N instances.
  for (std::size_t pass = 0; pass < sheet.insts.size(); ++pass) {
    bool changed = false;
    for (const Cell* child : sheet.insts) {
      int lvl = 0;
      for (const Port& p : child->ports()) {
        if (p.dir != PortDir::In) continue;
        for (Net* n : p.wire->nets()) {
          auto it = driven_by.find(n);
          if (it != driven_by.end() && it->second != child) {
            lvl = std::max(lvl, sheet.level[it->second] + 1);
          }
        }
      }
      // Cap to instance count to terminate on combinational-ish loops.
      lvl = std::min<int>(lvl, static_cast<int>(sheet.insts.size()));
      if (lvl > sheet.level[child]) {
        sheet.level[child] = lvl;
        changed = true;
      }
    }
    if (!changed) break;
  }
  for (const Cell* child : sheet.insts) {
    sheet.max_level = std::max(sheet.max_level, sheet.level[child]);
  }
  return sheet;
}

std::string conn_summary(const Cell& inst) {
  std::vector<std::string> ins;
  std::vector<std::string> outs;
  for (const Port& p : inst.ports()) {
    std::string item = p.name + "=" + p.wire->name();
    if (p.dir == PortDir::In) {
      ins.push_back(item);
    } else {
      outs.push_back(item);
    }
  }
  std::string out;
  if (!ins.empty()) out += "in: " + join(ins, ", ");
  if (!outs.empty()) {
    if (!out.empty()) out += "  ";
    out += "out: " + join(outs, ", ");
  }
  return out;
}

}  // namespace

std::string text_schematic(const Cell& cell) {
  Sheet sheet = levelize(cell);
  std::ostringstream os;
  os << "schematic of " << cell.full_name() << " (" << sheet.insts.size()
     << " instances)\n";
  for (int lvl = 0; lvl <= sheet.max_level; ++lvl) {
    bool header = false;
    for (const Cell* inst : sheet.insts) {
      if (sheet.level.at(inst) != lvl) continue;
      if (!header) {
        os << " column " << lvl << ":\n";
        header = true;
      }
      os << "  " << inst->name();
      if (!inst->type_name().empty()) os << " (" << inst->type_name() << ")";
      os << "  " << conn_summary(*inst) << "\n";
    }
  }
  return os.str();
}

std::string svg_schematic(const Cell& cell) {
  Sheet sheet = levelize(cell);
  // Grid geometry.
  constexpr int kBoxW = 120, kBoxH = 40, kGapX = 60, kGapY = 16;
  std::map<int, int> row_in_level;
  std::map<const Cell*, std::pair<int, int>> pos;  // top-left x, y
  int max_rows = 0;
  for (const Cell* inst : sheet.insts) {
    int lvl = sheet.level.at(inst);
    int row = row_in_level[lvl]++;
    max_rows = std::max(max_rows, row + 1);
    pos[inst] = {20 + lvl * (kBoxW + kGapX), 30 + row * (kBoxH + kGapY)};
  }
  const int width = 40 + (sheet.max_level + 1) * (kBoxW + kGapX);
  const int height = 60 + max_rows * (kBoxH + kGapY);

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
     << "\" height=\"" << height << "\">\n";
  os << "<text x=\"20\" y=\"18\" font-family=\"monospace\" font-size=\"13\">"
     << cell.full_name() << "</text>\n";

  // Nets: a line from each driver pin to each sink pin.
  std::map<const Net*, std::pair<int, int>> source;  // net -> (x, y)
  for (const Cell* inst : sheet.insts) {
    auto [x, y] = pos.at(inst);
    for (const Port& p : inst->ports()) {
      if (p.dir == PortDir::In) continue;
      for (Net* n : p.wire->nets()) {
        source[n] = {x + kBoxW, y + kBoxH / 2};
      }
    }
  }
  for (const Cell* inst : sheet.insts) {
    auto [x, y] = pos.at(inst);
    for (const Port& p : inst->ports()) {
      if (p.dir != PortDir::In) continue;
      for (Net* n : p.wire->nets()) {
        auto it = source.find(n);
        if (it == source.end()) continue;
        os << "<line x1=\"" << it->second.first << "\" y1=\""
           << it->second.second << "\" x2=\"" << x << "\" y2=\""
           << y + kBoxH / 2
           << "\" stroke=\"#888\" stroke-width=\"1\"/>\n";
      }
    }
  }

  // Instance boxes on top of the wires.
  for (const Cell* inst : sheet.insts) {
    auto [x, y] = pos.at(inst);
    os << "<rect x=\"" << x << "\" y=\"" << y << "\" width=\"" << kBoxW
       << "\" height=\"" << kBoxH
       << "\" fill=\"#eef\" stroke=\"#336\" stroke-width=\"1\"/>\n";
    os << "<text x=\"" << x + 6 << "\" y=\"" << y + 16
       << "\" font-family=\"monospace\" font-size=\"11\">" << inst->name()
       << "</text>\n";
    if (!inst->type_name().empty()) {
      os << "<text x=\"" << x + 6 << "\" y=\"" << y + 31
         << "\" font-family=\"monospace\" font-size=\"10\" fill=\"#555\">"
         << inst->type_name() << "</text>\n";
    }
  }
  os << "</svg>\n";
  return os.str();
}

}  // namespace jhdl::viewer
