// Layout view: renders the RLOC placement footprint of a macro, the
// paper's "view of the layout for pre-placed FPGA macros ... without
// seeing the underlying circuit structure or netlist" (Section 3.2).
#pragma once

#include <string>

#include "estimate/layout.h"
#include "hdl/cell.h"

namespace jhdl::viewer {

/// ASCII occupancy grid: rows of the slice grid, '.' for empty slices,
/// digits (9+ shown as '#') for occupied slice counts.
std::string text_layout(const Cell& root);

/// SVG slice-grid rendering with occupancy shading.
std::string svg_layout(const Cell& root);

}  // namespace jhdl::viewer
