// Memory contents viewer - the paper's "other tools are available for
// viewing memory contents" (Section 2.1). Dumps every memory primitive
// (ROM16, RAM16x1S, SRL16, RAMB4) under a cell as hex tables.
#pragma once

#include <string>

#include "hdl/cell.h"

namespace jhdl::viewer {

/// Hex dump of all memories under `root`; "(no memories)" when none.
std::string memory_contents(const Cell& root);

}  // namespace jhdl::viewer
