// ASCII waveform view over a WaveformRecorder - the textual form of
// JHDL's waveform viewer ("the history of the circuit state can be
// recorded and viewed using the JHDL waveform viewer", Section 4.1).
#pragma once

#include <string>

#include "sim/waveform.h"

namespace jhdl::viewer {

/// Render recorded traces as ASCII waveforms. Single-bit traces use
/// _/¯ style rails; multi-bit traces print hex values at each change.
/// `first`/`count` select a cycle window (count 0 = to the end).
std::string text_waves(const WaveformRecorder& rec, std::size_t first = 0,
                       std::size_t count = 0);

/// SVG rendering of the same traces: rails for single-bit signals, bus
/// lozenges with hex values for multi-bit ones.
std::string svg_waves(const WaveformRecorder& rec);

}  // namespace jhdl::viewer
