// Schematic rendering: text and SVG forms of JHDL's schematic viewer.
//
// The text schematic lists each instance of one hierarchy level with its
// pin-to-net connections, levelized left to right (sources first), which
// is the information content of a schematic sheet. The SVG renderer draws
// levelized instance boxes with simple orthogonal net routing - enough to
// "interactively explore the structure ... of the created circuit"
// (paper, Section 4.1) in a browser.
#pragma once

#include <string>

#include "hdl/cell.h"

namespace jhdl::viewer {

/// One-level text schematic of `cell`: its child instances in levelized
/// order with their connections.
std::string text_schematic(const Cell& cell);

/// One-level SVG schematic of `cell`.
std::string svg_schematic(const Cell& cell);

}  // namespace jhdl::viewer
