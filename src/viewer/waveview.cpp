#include "viewer/waveview.h"

#include <algorithm>
#include <sstream>

#include "util/strings.h"

namespace jhdl::viewer {
namespace {

std::string hex_value(const BitVector& v) {
  if (!v.is_fully_defined()) return "x";
  return format("%llx", static_cast<unsigned long long>(v.to_uint()));
}

}  // namespace

std::string text_waves(const WaveformRecorder& rec, std::size_t first,
                       std::size_t count) {
  const std::size_t total = rec.num_samples();
  std::size_t last = count == 0 ? total : std::min(total, first + count);
  if (first >= last) return "(no samples)\n";

  std::size_t label_w = 0;
  for (const Trace& t : rec.traces()) {
    label_w = std::max(label_w, t.label.size());
  }

  std::ostringstream os;
  // Cycle ruler every 5 cycles.
  os << std::string(label_w + 2, ' ');
  for (std::size_t c = first; c < last; ++c) {
    if (c % 5 == 0) {
      std::string num = std::to_string(c);
      os << num;
      // Each cycle is one column for 1-bit traces; pad the ruler.
      for (std::size_t k = num.size(); k < 5 && c + k < last; ++k) os << ' ';
      c += std::min<std::size_t>(4, last - c - 1);
    }
  }
  os << "\n";

  for (const Trace& t : rec.traces()) {
    os << format("%-*s  ", static_cast<int>(label_w), t.label.c_str());
    if (t.wire->width() == 1) {
      for (std::size_t c = first; c < last; ++c) {
        Logic4 v = t.samples[c].get(0);
        switch (v) {
          case Logic4::Zero:
            os << '_';
            break;
          case Logic4::One:
            os << '-';
            break;
          default:
            os << 'x';
        }
      }
    } else {
      // Value annotations at changes: |val
      std::string prev;
      for (std::size_t c = first; c < last; ++c) {
        std::string v = hex_value(t.samples[c]);
        if (c == first || v != prev) {
          os << '|' << v;
        } else {
          os << '.';
        }
        prev = v;
      }
    }
    os << "\n";
  }
  return os.str();
}

std::string svg_waves(const WaveformRecorder& rec) {
  constexpr int kStep = 24;     // px per cycle
  constexpr int kRow = 34;      // px per trace row
  constexpr int kHigh = 6, kLow = 26;
  constexpr int kLabelW = 110;
  const std::size_t n = rec.num_samples();
  const int width = kLabelW + static_cast<int>(n) * kStep + 20;
  const int height = 30 + static_cast<int>(rec.traces().size()) * kRow;

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
     << "\" height=\"" << height << "\" font-family=\"monospace\">\n";
  // Cycle grid.
  for (std::size_t c = 0; c <= n; ++c) {
    int x = kLabelW + static_cast<int>(c) * kStep;
    os << "<line x1=\"" << x << "\" y1=\"20\" x2=\"" << x << "\" y2=\""
       << height << "\" stroke=\"#eee\"/>\n";
    if (c % 5 == 0 && c < n) {
      os << "<text x=\"" << x + 2 << "\" y=\"14\" font-size=\"9\" "
            "fill=\"#888\">" << c << "</text>\n";
    }
  }
  int row = 0;
  for (const Trace& t : rec.traces()) {
    const int y0 = 26 + row * kRow;
    os << "<text x=\"4\" y=\"" << y0 + 18
       << "\" font-size=\"11\">" << t.label << "</text>\n";
    if (t.wire->width() == 1) {
      // Rail polyline.
      os << "<polyline fill=\"none\" stroke=\"#27c\" stroke-width=\"1.5\" "
            "points=\"";
      for (std::size_t c = 0; c < n; ++c) {
        Logic4 v = t.samples[c].get(0);
        int y = y0 + (v == Logic4::One ? kHigh : kLow);
        int x = kLabelW + static_cast<int>(c) * kStep;
        os << x << "," << y << " " << x + kStep << "," << y << " ";
      }
      os << "\"/>\n";
    } else {
      // Bus: one box per run of equal values.
      std::size_t start = 0;
      for (std::size_t c = 1; c <= n; ++c) {
        if (c < n && t.samples[c] == t.samples[start]) continue;
        int x = kLabelW + static_cast<int>(start) * kStep;
        int w = static_cast<int>(c - start) * kStep;
        os << "<rect x=\"" << x + 1 << "\" y=\"" << y0 + kHigh
           << "\" width=\"" << w - 2 << "\" height=\"" << kLow - kHigh
           << "\" fill=\"#f5f9ff\" stroke=\"#27c\"/>\n";
        os << "<text x=\"" << x + 4 << "\" y=\"" << y0 + kLow - 6
           << "\" font-size=\"10\">" << hex_value(t.samples[start])
           << "</text>\n";
        start = c;
      }
    }
    ++row;
  }
  os << "</svg>\n";
  return os.str();
}

}  // namespace jhdl::viewer
