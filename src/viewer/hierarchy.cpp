#include "viewer/hierarchy.h"

#include <sstream>

#include "hdl/primitive.h"
#include "util/strings.h"

namespace jhdl::viewer {
namespace {

void walk(const Cell& cell, int depth, int max_depth, std::ostringstream& os) {
  os << std::string(static_cast<std::size_t>(depth) * 2, ' ');
  os << cell.name();
  if (!cell.type_name().empty() && cell.type_name() != cell.name()) {
    os << " : " << cell.type_name();
  }
  if (cell.is_primitive()) {
    const auto& prim = static_cast<const Primitive&>(cell);
    Resources r = prim.resources();
    std::vector<std::string> notes;
    if (r.luts > 0) notes.push_back(format("%d LUT", r.luts));
    if (r.ffs > 0) notes.push_back(format("%d FF", r.ffs));
    if (r.carries > 0) notes.push_back(format("%d CY", r.carries));
    if (!notes.empty()) os << "  [" << join(notes, ", ") << "]";
  } else if (!cell.children().empty()) {
    os << "  (" << cell.children().size() << " children)";
  }
  if (cell.rloc()) {
    os << "  @R" << cell.rloc()->row << "C" << cell.rloc()->col;
  }
  os << "\n";
  if (max_depth >= 0 && depth >= max_depth) return;
  for (const Cell* child : cell.children()) {
    walk(*child, depth + 1, max_depth, os);
  }
}

}  // namespace

std::string hierarchy_tree(const Cell& root, int max_depth) {
  std::ostringstream os;
  walk(root, 0, max_depth, os);
  return os.str();
}

std::string interface_summary(const Cell& cell) {
  std::ostringstream os;
  os << cell.name();
  if (!cell.type_name().empty()) os << " (" << cell.type_name() << ")";
  os << "\n";
  for (const Port& p : cell.ports()) {
    os << "  " << port_dir_name(p.dir) << " " << p.name << " ["
       << p.wire->width() << " bit" << (p.wire->width() == 1 ? "" : "s")
       << "]\n";
  }
  return os.str();
}

}  // namespace jhdl::viewer
