// DeliveryService: the vendor-side multi-tenant IP delivery server.
//
// The paper's black-box scenario (Section 4.2) pairs one applet process
// with one customer. This subsystem is the JavaCAD-style vendor service
// that the ROADMAP's production north star needs instead: ONE port, the
// WHOLE core::IpCatalog behind it, and many concurrent co-simulation
// sessions multiplexed over a fixed worker pool.
//
//   DeliveryService service(catalog, {.workers = 8, .queue_capacity = 16});
//   service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
//   std::uint16_t port = service.start();
//   ...
//   SimClient client(port, ConnectSpec{.customer = "acme",
//                                      .module = "kcm-multiplier",
//                                      .params = {{"constant", -56}}});
//
// Lifecycle of a connection:
//   accept thread    accepts; rejects with a protocol Error when
//                    in-flight connections reach workers + queue_capacity
//                    (backpressure instead of unbounded queueing);
//   worker thread    pops the connection, validates the Hello (protocol
//                    version v2..v3, customer license incl. the
//                    BlackBoxSim feature and expiry, catalog lookup,
//                    parameter resolution), builds a PRIVATE
//                    BlackBoxModel for the session, replies Iface, then
//                    serves requests until Bye / disconnect / eviction;
//   reaper thread    evicts sessions idle past config.idle_timeout and
//                    purges detached sessions past config.resume_window;
//   admin            Stats query (first message instead of Hello, or
//                    mid-session) returns the ServerStats counters as
//                    JSON; query_stats() is the client-side helper.
//
// Protocol-v3 hardening: frames are CRC-checked and a corrupt one is
// answered with Error(MalformedFrame) on the still-aligned stream instead
// of killing the session; numbered requests are served idempotently from
// a per-session replay cache; and with a nonzero resume_window a session
// whose transport dies is PARKED, to be reclaimed by a client
// reconnecting with Resume(token) - model state, cycle count and replay
// cache intact. config.fault_plan routes every connection through a
// FaultyStream for tests and benchmarks.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "attack/auditor.h"
#include "core/catalog.h"
#include "core/license.h"
#include "net/fault_injection.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "server/admin_http.h"
#include "server/session.h"
#include "server/stats.h"
#include "util/json.h"

namespace jhdl::server {

/// Sizing and policy knobs for one DeliveryService.
struct DeliveryConfig {
  /// Worker threads; also the number of sessions served concurrently.
  std::size_t workers = 4;
  /// Accepted connections allowed to wait for a free worker beyond the
  /// pool; the (workers + queue_capacity + 1)-th simultaneous connection
  /// is rejected with a protocol Error.
  std::size_t queue_capacity = 8;
  /// Sessions idle longer than this are evicted (0 = never).
  std::chrono::milliseconds idle_timeout{0};
  /// How long a session whose transport died stays resumable via its
  /// token (0 = resume disabled, transport death closes the session).
  std::chrono::milliseconds resume_window{0};
  /// Vendor calendar day used for license-expiry checks.
  int today = 0;
  /// Kernel listen() backlog.
  int listen_backlog = 64;
  /// When set, every connection runs through a FaultyStream driven by
  /// this plan (tests/bench inject faults on the server side).
  std::shared_ptr<net::FaultPlan> fault_plan;
  /// Start with span recording on (equivalent to tracer().set_enabled
  /// after start). Off by default: tracing costs clock reads + ring
  /// stores per span; metrics are always on (relaxed atomics only).
  bool tracing = false;
  /// Byte budget of the shared artifact store (0 = unlimited). Live and
  /// parked sessions pin their artifact, so eviction can never free a
  /// program a session might still replay.
  std::size_t artifact_budget_bytes = 64u << 20;
  /// Run every session's evaluation traffic through a per-session
  /// attack::QueryAuditor. Suspicious sessions are answered with
  /// Error(Throttled) for a cooldown window and parked (evicted) after
  /// repeated trips; auditor counters surface as `attack.*` metrics.
  bool audit = false;
  /// Detector thresholds used when `audit` is set.
  attack::AuditorConfig auditor;
  /// Kernel threads for each session's simulator (batched entry points
  /// only; 0 = auto via JHDL_SIM_THREADS / hardware_concurrency - see
  /// sim::resolve_sim_threads). The resolved value is published as the
  /// `sim.threads` gauge.
  std::size_t sim_threads = 0;
  /// Serve the admin HTTP plane (GET /metrics, /healthz, /slo, /flight)
  /// on its own kernel-chosen loopback port; see admin_port().
  bool admin_http = false;
  /// Minimum level the service logger records (Debug records cost ring
  /// stores; below-level calls cost one relaxed load).
  obs::LogLevel log_level = obs::LogLevel::Info;
  /// Log records retained per writer thread.
  std::size_t log_capacity = 1024;
  /// Burn-rate windows and tenant bound for the SLO engine.
  obs::SloConfig slo;
  /// A request slower than this is a "bad" event for the per-tenant
  /// latency SLO (the service-level objective, distinct from the
  /// histogram, which records everything).
  std::uint64_t slo_latency_threshold_us = 100'000;
};

/// Serves many concurrent black-box sessions from one catalog.
class DeliveryService {
 public:
  /// Takes the catalog by value: the service owns its own storefront.
  explicit DeliveryService(core::IpCatalog catalog,
                           DeliveryConfig config = {});
  ~DeliveryService();
  DeliveryService(const DeliveryService&) = delete;
  DeliveryService& operator=(const DeliveryService&) = delete;

  /// Register (or replace) a customer license. Sessions opened by
  /// unknown customers, or by licenses lacking the BlackBoxSim feature,
  /// are refused at the handshake.
  void add_license(core::LicensePolicy policy);

  /// Bind, spin up the accept/worker/reaper threads, return the port.
  std::uint16_t start();

  /// Stop everything: reject queued connections, shut down live
  /// sessions, purge parked ones, join all threads. Idempotent.
  void stop();

  const DeliveryConfig& config() const { return config_; }
  const core::IpCatalog& catalog() const { return catalog_; }
  const ServerStats& stats() const { return stats_; }
  SessionManager& sessions() { return sessions_; }
  /// Every instrument this service publishes (ServerStats included);
  /// served over the wire by the MetricsDump query.
  obs::MetricsRegistry& metrics() { return metrics_; }
  /// Span sink for this service; served by TraceDump as Chrome
  /// trace_event JSON. Disabled unless config.tracing (or set_enabled).
  obs::Tracer& tracer() { return tracer_; }
  /// Structured log sink (session lifecycle, attack escalations, worker
  /// fatals); feeds the flight recorder.
  obs::Logger& log() { return log_; }
  /// Per-tenant burn-rate engine (latency / errors / warm_hit
  /// objectives); drives /healthz and the slo.* gauges.
  obs::SloEngine& slo() { return slo_; }
  /// Postmortem bundler: triggered on park/evict/fatal and by
  /// GET /flight.
  obs::FlightRecorder& flight() { return flight_; }
  /// The admin HTTP plane's port; 0 unless config.admin_http and the
  /// service is running.
  std::uint16_t admin_port() const {
    return admin_http_ != nullptr ? admin_http_->port() : 0;
  }
  /// The shared artifact store every session reads. Exposed so admin
  /// tooling (and tests) can inspect hit/miss/pin behaviour.
  core::ArtifactStore& artifacts() { return artifacts_; }

 private:
  /// Why a serve loop ended - decides detach (resumable) vs close.
  enum class EndReason { Bye, Transport, Evicted, Stopping };

  void accept_loop();
  void worker_loop();
  void reaper_loop();
  void serve_connection(net::TcpStream raw);
  /// Validate the Hello; on success fill `session` (taking the stream)
  /// and return the Iface reply, else return the Error reply (and count
  /// the denial).
  net::Message open_session(const net::Message& hello,
                            std::unique_ptr<net::Stream>& stream,
                            std::shared_ptr<Session>& session);
  /// The Resume handshake: claim the parked session, bind the stream,
  /// and return it ready to serve (null => an Error was already sent).
  std::shared_ptr<Session> resume_session(
      const net::Message& resume, std::unique_ptr<net::Stream>& stream);
  EndReason serve_session(const std::shared_ptr<Session>& session);
  /// Detach-or-close after a serve loop ends.
  void finish_session(const std::shared_ptr<Session>& session,
                      EndReason reason);
  EndReason end_reason(const std::shared_ptr<Session>& session) const;
  static void send_error(
      net::Stream& stream, const std::string& text,
      net::ErrorCode code = net::ErrorCode::Generic);
  /// Track a connection that is between accept and session open, so
  /// stop() can fail its blocked handshake recv. Returns false when the
  /// service is already stopping (caller should drop the connection).
  bool register_handshake(net::Stream* stream);
  void unregister_handshake(net::Stream* stream);

  core::IpCatalog catalog_;
  DeliveryConfig config_;
  /// Declaration order is load-bearing: stats_ and slo_ register into
  /// metrics_, sessions_ records into stats_, flight_ reads log_,
  /// metrics_ and tracer_.
  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_;
  obs::Logger log_{config_.log_capacity};
  obs::SloEngine slo_{config_.slo, &metrics_};
  ServerStats stats_{metrics_};
  SessionManager sessions_{stats_};
  obs::FlightRecorder flight_{log_, metrics_, &tracer_};
  std::unique_ptr<AdminHttpServer> admin_http_;

  /// The shared artifact store: one elaboration per (module, canonical
  /// params), content-addressed, single-flight, LRU under
  /// config.artifact_budget_bytes. Each session pins its artifact
  /// (Session::artifact) and instantiates a private model bound to the
  /// artifact's compiled program, so value state stays per-session while
  /// all structural work is shared. Replaces the old program_cache_.
  core::ArtifactStore artifacts_;

  std::mutex license_mutex_;
  std::map<std::string, core::LicensePolicy> licenses_;

  std::unique_ptr<net::TcpListener> listener_;
  std::atomic<bool> running_{false};
  /// Accepted connections not yet finished: queued + in service.
  std::atomic<std::size_t> in_flight_{0};

  /// An accepted connection waiting for a worker, stamped at enqueue so
  /// the popping worker can record the queue-wait span.
  struct PendingConn {
    net::TcpStream stream;
    std::uint64_t enqueued_us = 0;
  };

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<PendingConn> queue_;

  std::mutex handshake_mutex_;
  std::vector<net::Stream*> handshaking_;

  std::mutex reaper_mutex_;
  std::condition_variable reaper_cv_;

  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::thread reaper_;
};

/// Admin helper: connect to a running service, issue the Stats query,
/// return the parsed counters.
Json query_stats(std::uint16_t port);

/// Admin helper: fetch the full metrics registry (MetricsDump, v5) as
/// parsed JSON - counters, gauges, histogram summaries.
Json query_metrics(std::uint16_t port);

/// Admin helper: fetch the service's span rings (TraceDump, v5) as parsed
/// Chrome trace_event JSON. Save the text form to a file and load it in
/// chrome://tracing (or ui.perfetto.dev).
Json query_trace(std::uint16_t port);

}  // namespace jhdl::server
