// DeliveryService: the vendor-side multi-tenant IP delivery server.
//
// The paper's black-box scenario (Section 4.2) pairs one applet process
// with one customer. This subsystem is the JavaCAD-style vendor service
// that the ROADMAP's production north star needs instead: ONE port, the
// WHOLE core::IpCatalog behind it, and many concurrent co-simulation
// sessions multiplexed over a small worker pool.
//
//   DeliveryService service(catalog, {.workers = 8, .queue_capacity = 16});
//   service.add_license(LicensePolicy::make("acme", LicenseTier::Evaluation));
//   std::uint16_t port = service.start();
//   ...
//   SimClient client(port, ConnectSpec{.customer = "acme",
//                                      .module = "kcm-multiplier",
//                                      .params = {{"constant", -56}}});
//
// Since the event-driven rewrite the service is a REACTOR, not a
// thread-per-connection pool: one loop thread multiplexes every socket
// (delivery protocol and admin HTTP alike) through net::Poller —
// epoll(7) on Linux, poll(2) elsewhere — over nonblocking streams, with
// a net::TimerWheel absorbing all time-driven work (idle eviction,
// resume-window purge, admission-reject deadlines, injected-fault
// delays). Sessions are explicit state machines (server/session.h:
// Handshake -> Ready -> InFlight -> Parked -> Closing) whose frames are
// assembled incrementally; CPU-heavy work — handshake elaboration and
// request execution — is dispatched to `workers` pool threads through a
// per-tenant deficit-round-robin FairScheduler (server/scheduler.h) and
// completed back to the loop over a wakeup channel. Thousands of idle
// sockets therefore cost one watched fd each, while at most `workers`
// requests execute concurrently.
//
// Admission control happens at the loop:
//   - a connection beyond the concurrent-session budget (max_sessions,
//     or `workers` when unset — the legacy contract) first waits in the
//     accept queue (queue_capacity deep, the `server.queued` gauge);
//   - past that it is turned away with a typed, retryable protocol Error
//     (Saturated in legacy sizing, Overloaded under max_sessions), the
//     reject is labeled per tenant (accept.rejected{customer}), and a
//     sustained reject burst triggers a flight-recorder dump;
//   - per-tenant caps (tenant_max_sessions) refuse the Hello itself with
//     Error(Overloaded).
//
// Protocol-v3+ hardening is unchanged and bit-exact with the blocking
// implementation: frames are CRC-checked and a corrupt one is answered
// with Error(MalformedFrame) on the still-aligned stream; numbered
// requests are served idempotently from a per-session replay cache; with
// a nonzero resume_window a session whose transport dies is PARKED, to
// be reclaimed by a client reconnecting with Resume(token) - model
// state, cycle count and replay cache intact. config.fault_plan applies
// the same per-frame fault semantics FaultyStream gives blocking
// transports, rendered through the timer wheel.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "attack/auditor.h"
#include "core/catalog.h"
#include "core/license.h"
#include "net/fault_injection.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "server/admin_http.h"
#include "server/session.h"
#include "server/stats.h"
#include "util/json.h"

namespace jhdl::server {

class DeliveryReactor;

/// Sizing and policy knobs for one DeliveryService.
struct DeliveryConfig {
  /// Worker threads executing CPU-heavy work (elaboration, request
  /// dispatch). With max_sessions unset this is ALSO the concurrent-
  /// session budget, preserving the original pool semantics.
  std::size_t workers = 4;
  /// Accepted connections allowed to wait for a free session slot; the
  /// (budget + queue_capacity + 1)-th simultaneous connection is
  /// rejected with a protocol Error.
  std::size_t queue_capacity = 8;
  /// Concurrent-session budget of the event loop (0 = `workers`, the
  /// legacy contract). Set well above `workers` to hold thousands of
  /// mostly-idle sessions over the reactor while the pool bounds CPU.
  std::size_t max_sessions = 0;
  /// Per-tenant cap on live sessions (attached + parked); a Hello over
  /// the cap is refused with retryable Error(Overloaded). 0 = unlimited.
  std::size_t tenant_max_sessions = 0;
  /// Deficit-round-robin quantum, in request bytes, granted to each
  /// tenant per scheduling visit (see server/scheduler.h).
  std::size_t scheduler_quantum = 4096;
  /// Admission rejections within one second that trigger a flight-
  /// recorder dump ("admission.overload"), at most once per second.
  std::size_t overload_flight_threshold = 8;
  /// Sessions idle longer than this are evicted (0 = never).
  std::chrono::milliseconds idle_timeout{0};
  /// How long a session whose transport died stays resumable via its
  /// token (0 = resume disabled, transport death closes the session).
  std::chrono::milliseconds resume_window{0};
  /// Vendor calendar day used for license-expiry checks.
  int today = 0;
  /// Kernel listen() backlog.
  int listen_backlog = 64;
  /// When set, every delivery connection suffers this plan's per-frame
  /// faults server-side (tests/bench inject faults on the server side).
  std::shared_ptr<net::FaultPlan> fault_plan;
  /// Start with span recording on (equivalent to tracer().set_enabled
  /// after start). Off by default: tracing costs clock reads + ring
  /// stores per span; metrics are always on (relaxed atomics only).
  bool tracing = false;
  /// Byte budget of the shared artifact store (0 = unlimited). Live and
  /// parked sessions pin their artifact, so eviction can never free a
  /// program a session might still replay.
  std::size_t artifact_budget_bytes = 64u << 20;
  /// Run every session's evaluation traffic through a per-session
  /// attack::QueryAuditor. Suspicious sessions are answered with
  /// Error(Throttled) for a cooldown window and parked (evicted) after
  /// repeated trips; auditor counters surface as `attack.*` metrics.
  bool audit = false;
  /// Detector thresholds used when `audit` is set.
  attack::AuditorConfig auditor;
  /// Kernel threads for each session's simulator (batched entry points
  /// only; 0 = auto via JHDL_SIM_THREADS / hardware_concurrency - see
  /// sim::resolve_sim_threads). The resolved value is published as the
  /// `sim.threads` gauge.
  std::size_t sim_threads = 0;
  /// Serve the admin HTTP plane (GET /metrics, /healthz, /slo, /flight)
  /// off the same reactor on its own kernel-chosen loopback port; see
  /// admin_port().
  bool admin_http = false;
  /// Minimum level the service logger records (Debug records cost ring
  /// stores; below-level calls cost one relaxed load).
  obs::LogLevel log_level = obs::LogLevel::Info;
  /// Log records retained per writer thread.
  std::size_t log_capacity = 1024;
  /// Burn-rate windows and tenant bound for the SLO engine.
  obs::SloConfig slo;
  /// A request slower than this is a "bad" event for the per-tenant
  /// latency SLO (the service-level objective, distinct from the
  /// histogram, which records everything).
  std::uint64_t slo_latency_threshold_us = 100'000;
};

/// Serves many concurrent black-box sessions from one catalog.
class DeliveryService {
 public:
  /// Takes the catalog by value: the service owns its own storefront.
  explicit DeliveryService(core::IpCatalog catalog,
                           DeliveryConfig config = {});
  ~DeliveryService();
  DeliveryService(const DeliveryService&) = delete;
  DeliveryService& operator=(const DeliveryService&) = delete;

  /// Register (or replace) a customer license. Sessions opened by
  /// unknown customers, or by licenses lacking the BlackBoxSim feature,
  /// are refused at the handshake.
  void add_license(core::LicensePolicy policy);

  /// Bind, spin up the reactor loop + worker pool, return the port.
  std::uint16_t start();

  /// Stop everything: reject queued connections, shut down live
  /// sessions, purge parked ones, join all threads. Idempotent.
  void stop();

  const DeliveryConfig& config() const { return config_; }
  const core::IpCatalog& catalog() const { return catalog_; }
  const ServerStats& stats() const { return stats_; }
  SessionManager& sessions() { return sessions_; }
  /// Every instrument this service publishes (ServerStats included);
  /// served over the wire by the MetricsDump query.
  obs::MetricsRegistry& metrics() { return metrics_; }
  /// Span sink for this service; served by TraceDump as Chrome
  /// trace_event JSON. Disabled unless config.tracing (or set_enabled).
  obs::Tracer& tracer() { return tracer_; }
  /// Structured log sink (session lifecycle, attack escalations, worker
  /// fatals); feeds the flight recorder.
  obs::Logger& log() { return log_; }
  /// Per-tenant burn-rate engine (latency / errors / warm_hit
  /// objectives); drives /healthz and the slo.* gauges.
  obs::SloEngine& slo() { return slo_; }
  /// Postmortem bundler: triggered on park/evict/fatal and by
  /// GET /flight.
  obs::FlightRecorder& flight() { return flight_; }
  /// The admin HTTP plane's port; 0 unless config.admin_http and the
  /// service is running.
  std::uint16_t admin_port() const;
  /// The shared artifact store every session reads. Exposed so admin
  /// tooling (and tests) can inspect hit/miss/pin behaviour.
  core::ArtifactStore& artifacts() { return artifacts_; }

 private:
  friend class DeliveryReactor;

  /// Why a session ended - decides detach (resumable) vs close.
  enum class EndReason { Bye, Transport, Evicted, Stopping };

  /// Worker-side verdict on a connection's first decodable frame.
  struct HandshakeOutcome {
    /// Encoded reply frame to send (may be empty: silent close).
    std::vector<std::uint8_t> payload;
    /// Bound session on Hello/Resume success; the connection turns
    /// Active. Null with retry=false means close after the payload.
    std::shared_ptr<Session> session;
    /// Malformed frame: send the payload and stay in Handshake (the
    /// stream is still aligned; bounded by the reactor's attempt cap).
    bool retry = false;
  };

  /// Worker-side execution of one assembled request frame against a
  /// session. Everything observable — spans, stats, SLO records, the
  /// replay cache, auditor verdicts — happens here, identically to the
  /// old blocking serve loop.
  struct RequestOutcome {
    /// Encoded reply frame (empty for Bye, which gets no reply).
    std::vector<std::uint8_t> payload;
    bool bye = false;
  };

  /// Validate the Hello; on success fill `session` (taking the stream)
  /// and return the Iface reply, else return the Error reply (and count
  /// the denial).
  net::Message open_session(const net::Message& hello,
                            std::unique_ptr<net::Stream>& stream,
                            std::shared_ptr<Session>& session);
  /// The Resume handshake: claim the parked session, bind the stream,
  /// fill `reply` (Iface on success, a typed Error otherwise).
  std::shared_ptr<Session> resume_session(const net::Message& resume,
                                          std::unique_ptr<net::Stream>& stream,
                                          net::Message& reply);
  /// Route a connection's first frame (worker thread).
  HandshakeOutcome process_first_frame(const std::vector<std::uint8_t>& raw,
                                       std::unique_ptr<net::Stream> stream);
  /// Execute one request frame on its session (worker thread). The
  /// reactor guarantees at most one in-flight request per session.
  RequestOutcome process_request(const std::shared_ptr<Session>& session,
                                 const std::vector<std::uint8_t>& raw);
  /// Detach-or-close after a session ends (loop thread).
  void finish_session(const std::shared_ptr<Session>& session,
                      EndReason reason);
  EndReason end_reason(const std::shared_ptr<Session>& session) const;

  core::IpCatalog catalog_;
  DeliveryConfig config_;
  /// Declaration order is load-bearing: stats_ and slo_ register into
  /// metrics_, sessions_ records into stats_, flight_ reads log_,
  /// metrics_ and tracer_.
  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_;
  obs::Logger log_{config_.log_capacity};
  obs::SloEngine slo_{config_.slo, &metrics_};
  ServerStats stats_{metrics_};
  SessionManager sessions_{stats_};
  obs::FlightRecorder flight_{log_, metrics_, &tracer_};

  /// The shared artifact store: one elaboration per (module, canonical
  /// params), content-addressed, single-flight, LRU under
  /// config.artifact_budget_bytes. Each session pins its artifact
  /// (Session::artifact) and instantiates a private model bound to the
  /// artifact's compiled program, so value state stays per-session while
  /// all structural work is shared. Replaces the old program_cache_.
  core::ArtifactStore artifacts_;

  std::mutex license_mutex_;
  std::map<std::string, core::LicensePolicy> licenses_;

  std::atomic<bool> running_{false};
  /// The event loop + worker pool. Constructed by start(), torn down by
  /// stop(); holds every socket, timer, and in-flight dispatch.
  std::unique_ptr<DeliveryReactor> reactor_;
};

/// Admin helper: connect to a running service, issue the Stats query,
/// return the parsed counters.
Json query_stats(std::uint16_t port);

/// Admin helper: fetch the full metrics registry (MetricsDump, v5) as
/// parsed JSON - counters, gauges, histogram summaries.
Json query_metrics(std::uint16_t port);

/// Admin helper: fetch the service's span rings (TraceDump, v5) as parsed
/// Chrome trace_event JSON. Save the text form to a file and load it in
/// chrome://tracing (or ui.perfetto.dev).
Json query_trace(std::uint16_t port);

}  // namespace jhdl::server
