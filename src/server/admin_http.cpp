#include "server/admin_http.h"

#include <atomic>
#include <cstring>

namespace jhdl::server {

namespace {

std::string status_line(int code) {
  switch (code) {
    case 200:
      return "HTTP/1.0 200 OK\r\n";
    case 404:
      return "HTTP/1.0 404 Not Found\r\n";
    case 405:
      return "HTTP/1.0 405 Method Not Allowed\r\n";
    case 431:
      return "HTTP/1.0 431 Request Header Fields Too Large\r\n";
    case 503:
      return "HTTP/1.0 503 Service Unavailable\r\n";
    default:
      return "HTTP/1.0 500 Internal Server Error\r\n";
  }
}

}  // namespace

std::string admin_http_render(int code, const std::string& content_type,
                              const std::string& body) {
  std::string out = status_line(code);
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

std::string admin_http_respond(const AdminRoutes& routes,
                               const std::string& request) {
  try {
    const std::size_t line_end = request.find_first_of("\r\n");
    const std::string line = request.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    const std::string method =
        sp1 == std::string::npos ? line : line.substr(0, sp1);
    std::string path = sp2 == std::string::npos
                           ? (sp1 == std::string::npos
                                  ? std::string()
                                  : line.substr(sp1 + 1))
                           : line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);

    if (method != "GET") {
      return admin_http_render(405, "text/plain", "method not allowed\n");
    }
    if (path == "/metrics" && routes.metrics_text) {
      return admin_http_render(200, "text/plain; version=0.0.4",
                               routes.metrics_text());
    }
    if (path == "/healthz" && routes.healthz) {
      const auto [healthy, body] = routes.healthz();
      return admin_http_render(healthy ? 200 : 503, "text/plain", body);
    }
    if (path == "/slo" && routes.slo_json) {
      return admin_http_render(200, "application/json", routes.slo_json());
    }
    if (path == "/flight" && routes.flight_jsonl) {
      return admin_http_render(200, "application/jsonl",
                               routes.flight_jsonl());
    }
    return admin_http_render(404, "text/plain", "not found\n");
  } catch (const std::exception& e) {
    return admin_http_render(500, "text/plain", std::string(e.what()) + "\n");
  }
}

AdminHttpServer::AdminHttpServer(AdminRoutes routes, int backlog)
    : routes_(std::move(routes)), listener_(backlog) {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

AdminHttpServer::~AdminHttpServer() { stop(); }

void AdminHttpServer::stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
}

void AdminHttpServer::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    try {
      serve(listener_.accept());
    } catch (const net::NetError&) {
      // accept() failing means the listener was closed (stop()) or a
      // transient race on a dying connection; requests themselves never
      // throw out of serve().
    }
  }
}

void AdminHttpServer::serve(net::TcpStream stream) {
  std::string response;
  try {
    stream.set_recv_timeout(kRecvTimeoutMs);
    // Read until the end of the header block; the request line is all we
    // route on (GET has no body).
    std::string request;
    std::uint8_t buf[1024];
    while (request.find("\r\n\r\n") == std::string::npos &&
           request.find("\n\n") == std::string::npos) {
      if (request.size() > kMaxRequestBytes) {
        const std::string r =
            admin_http_render(431, "text/plain", "request too large\n");
        stream.send_bytes(std::vector<std::uint8_t>(r.begin(), r.end()));
        return;
      }
      const std::size_t n = stream.recv_raw(buf, sizeof buf);
      request.append(reinterpret_cast<const char*>(buf), n);
    }
    response = admin_http_respond(routes_, request);
  } catch (const net::NetError&) {
    return;  // timed out / dropped mid-request; nothing to answer
  } catch (const std::exception& e) {
    response = admin_http_render(500, "text/plain", std::string(e.what()) + "\n");
  }
  try {
    stream.send_bytes(std::vector<std::uint8_t>(response.begin(),
                                                response.end()));
  } catch (const net::NetError&) {
    // Scraper went away before the response: its loss.
  }
}

}  // namespace jhdl::server
