#include "server/scheduler.h"

namespace jhdl::server {

void FairScheduler::push(Item item) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TenantQueue& q = tenants_[item.tenant];
    if (!q.in_ring) {
      q.in_ring = true;
      ring_.push_back(item.tenant);
    }
    q.items.push_back(std::move(item));
    ++queued_;
  }
  cv_.notify_one();
}

bool FairScheduler::pop(Item& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return queued_ > 0 || closed_; });
  if (queued_ == 0) return false;  // closed and drained
  out = take_locked();
  return true;
}

FairScheduler::Item FairScheduler::take_locked() {
  // The ring only ever holds tenants with queued work (emptied tenants
  // are unlinked below), so this terminates: every full revolution grants
  // each candidate another quantum, and some head item's cost is
  // eventually covered.
  //
  // pop() serves ONE item per call, but a DRR "visit" may serve several;
  // visit_granted_ remembers that the cursor's tenant already received
  // this visit's quantum, so consecutive pops continue the same visit
  // instead of granting afresh (which would decay byte-fairness into
  // per-item round robin).
  while (true) {
    if (cursor_ >= ring_.size()) {
      cursor_ = 0;
      visit_granted_ = false;
    }
    const std::string tenant = ring_[cursor_];
    TenantQueue& q = tenants_[tenant];
    if (!visit_granted_) {
      q.deficit += quantum_;
      visit_granted_ = true;
    }
    if (!q.items.empty() && q.items.front().cost <= q.deficit) {
      Item item = std::move(q.items.front());
      q.items.pop_front();
      q.deficit -= item.cost;
      --queued_;
      if (q.items.empty()) {
        // Classic DRR: an emptied tenant forfeits its residual deficit
        // and leaves the ring until it queues again.
        q.deficit = 0;
        q.in_ring = false;
        ring_.erase(ring_.begin() + static_cast<std::ptrdiff_t>(cursor_));
        visit_granted_ = false;  // cursor now points at the next tenant
      }
      return item;
    }
    // Deficit exhausted for this visit: move on.
    ++cursor_;
    visit_granted_ = false;
  }
}

void FairScheduler::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t FairScheduler::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_;
}

std::size_t FairScheduler::active_tenants() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

}  // namespace jhdl::server
