// Admin HTTP endpoint: the scrape-and-poke plane of the delivery service
// (DESIGN.md §15).
//
// A deliberately minimal HTTP/1.0 server (every response carries
// Content-Length and Connection: close) on its OWN listener and port,
// separate from the framed delivery protocol — an operator's Prometheus
// scraper must never contend with, or be confused for, licensed IP
// traffic. It reuses the same TcpListener/TcpStream plumbing the framed
// protocol runs on; only the byte discipline differs (recv_raw instead of
// frames).
//
// Routes (GET only; anything else is 405/404):
//   /metrics  Prometheus text exposition of the service registry —
//             flat instruments plus per-tenant families and slo.* gauges;
//   /healthz  200 "ok" while SLOs are not burning critically,
//             503 "burning" once the burn-rate engine reports Critical;
//   /slo      the SLO engine's JSON (per-tenant burns and health);
//   /flight   triggers the flight recorder and returns the JSONL bundle.
//
// The handlers are injected as std::functions so the server owns no
// observability state and tests can drive it with canned routes. Requests
// are served inline on the accept thread: the admin plane is one scraper
// polling every few seconds, not a concurrency problem worth a pool. A
// slow or hostile client is bounded by a recv timeout and a header cap,
// then dropped.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "net/socket.h"

namespace jhdl::server {

/// The observability callbacks one admin server exposes. Unset routes
/// answer 404.
struct AdminRoutes {
  /// GET /metrics -> Prometheus text (the callee evaluates SLO gauges
  /// first so a scrape always sees fresh burn rates).
  std::function<std::string()> metrics_text;
  /// GET /healthz -> (healthy?, body). Unhealthy answers 503.
  std::function<std::pair<bool, std::string>()> healthz;
  /// GET /slo -> JSON body.
  std::function<std::string()> slo_json;
  /// GET /flight -> triggers a dump, returns its JSONL.
  std::function<std::string()> flight_jsonl;
};

/// Render one minimal HTTP/1.0 response: status line, Content-Type,
/// Content-Length, Connection: close, body.
std::string admin_http_render(int code, const std::string& content_type,
                              const std::string& body);

/// Parse one request's header text (request line onward) and dispatch it
/// through `routes`, returning the full rendered response. Shared by the
/// standalone AdminHttpServer below and the delivery reactor's in-loop
/// admin plane, so both speak byte-identical HTTP. Handler exceptions
/// render as 500.
std::string admin_http_respond(const AdminRoutes& routes,
                               const std::string& request);

/// One accept thread serving HTTP/1.0 on a kernel-chosen loopback port.
class AdminHttpServer {
 public:
  /// Request lines + headers larger than this are answered 431 and
  /// dropped (nothing legitimate comes close).
  static constexpr std::size_t kMaxRequestBytes = 8 * 1024;
  /// recv timeout per connection, ms: a stalled scraper cannot wedge the
  /// accept thread for longer than this.
  static constexpr int kRecvTimeoutMs = 2000;

  explicit AdminHttpServer(AdminRoutes routes, int backlog = 8);
  ~AdminHttpServer();
  AdminHttpServer(const AdminHttpServer&) = delete;
  AdminHttpServer& operator=(const AdminHttpServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }
  void stop();

 private:
  void accept_loop();
  void serve(net::TcpStream stream);

  AdminRoutes routes_;
  net::TcpListener listener_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
};

}  // namespace jhdl::server
