#include "server/delivery_service.h"

#include <algorithm>

#include "core/feature.h"
#include "core/params.h"
#include "net/sim_server.h"
#include "sim/thread_pool.h"
#include "util/version.h"

namespace jhdl::server {

using net::decode;
using net::encode;
using net::ErrorCode;
using net::Message;
using net::MsgType;

namespace {

/// Static span label for one request type (ring buffers store the
/// pointer, so labels must be literals).
const char* request_span_name(MsgType type) {
  switch (type) {
    case MsgType::SetInput:
      return "req.set_input";
    case MsgType::GetOutput:
      return "req.get_output";
    case MsgType::Cycle:
      return "req.cycle";
    case MsgType::Reset:
      return "req.reset";
    case MsgType::Eval:
      return "req.eval";
    case MsgType::CycleBatch:
      return "req.cycle_batch";
    case MsgType::PatternBatch:
      return "req.pattern_batch";
    case MsgType::Stats:
      return "req.stats";
    case MsgType::MetricsDump:
      return "req.metrics_dump";
    case MsgType::TraceDump:
      return "req.trace_dump";
    default:
      return "req.other";
  }
}

}  // namespace

DeliveryService::DeliveryService(core::IpCatalog catalog,
                                 DeliveryConfig config)
    : catalog_(std::move(catalog)),
      config_(config),
      artifacts_(core::ArtifactStore::Config{config.artifact_budget_bytes},
                 &metrics_) {
  if (config_.workers == 0) config_.workers = 1;
  tracer_.set_enabled(config_.tracing);
  log_.set_level(config_.log_level);
  // Publish the resolved kernel thread count every session will run with.
  metrics_.gauge("sim.threads")
      .set(static_cast<std::int64_t>(
          resolve_sim_threads(config_.sim_threads)));
  // Binary identity + uptime for every scrape (process.uptime_seconds,
  // build.info{version,protocol}).
  metrics_.enable_process_metrics(kJhdlVersion, net::kProtocolVersion);
  // The service-level objectives every tenant is judged against. Latency
  // and errors page on sustained burn (classic 14x/6x multi-window
  // thresholds); warm_hit's budget makes its burn an indicator that can
  // never page (max burn 1/0.5 = 2 < 6) — cold builds are a cost signal,
  // not an outage.
  slo_.define({.name = "latency", .budget = 0.01});
  slo_.define({.name = "errors", .budget = 0.05});
  slo_.define({.name = "warm_hit", .budget = 0.5});
}

DeliveryService::~DeliveryService() { stop(); }

void DeliveryService::add_license(core::LicensePolicy policy) {
  std::lock_guard<std::mutex> lock(license_mutex_);
  licenses_[policy.customer] = std::move(policy);
}

std::uint16_t DeliveryService::start() {
  listener_ = std::make_unique<net::TcpListener>(config_.listen_backlog);
  std::uint16_t port = listener_->port();
  running_ = true;
  acceptor_ = std::thread([this] { accept_loop(); });
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  if (config_.idle_timeout.count() > 0 || config_.resume_window.count() > 0) {
    reaper_ = std::thread([this] { reaper_loop(); });
  }
  if (config_.admin_http) {
    AdminRoutes routes;
    routes.metrics_text = [this] {
      // Refresh the slo.* gauges first so one scrape carries burn rates
      // as fresh as the counters beside them.
      slo_.evaluate();
      return metrics_.to_text();
    };
    routes.healthz = [this] {
      const obs::SloHealth health = slo_.overall();
      return std::make_pair(health != obs::SloHealth::Critical,
                            std::string(obs::slo_health_name(health)) + "\n");
    };
    routes.slo_json = [this] { return slo_.to_json().dump(2) + "\n"; };
    routes.flight_jsonl = [this] { return flight_.trigger("on_demand"); };
    admin_http_ = std::make_unique<AdminHttpServer>(std::move(routes));
    log_.log(obs::LogLevel::Info, "admin.start",
             {{"port", std::to_string(admin_http_->port())}});
  }
  return port;
}

void DeliveryService::stop() {
  if (!running_.exchange(false)) {
    return;
  }
  admin_http_.reset();  // joins its accept thread; admin_port() goes 0
  if (listener_ != nullptr) listener_->close();  // unblocks accept()
  // Turn away connections still waiting for a worker.
  std::deque<PendingConn> orphans;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    orphans.swap(queue_);
  }
  for (PendingConn& pending : orphans) {
    stats_.record_dequeue();
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    send_error(pending.stream, "server shutting down",
               ErrorCode::ShuttingDown);
  }
  queue_cv_.notify_all();
  reaper_cv_.notify_all();
  // Fail workers blocked in a handshake recv (accepted connections whose
  // client never sent Hello).
  {
    std::lock_guard<std::mutex> lock(handshake_mutex_);
    for (net::Stream* stream : handshaking_) stream->shutdown();
  }
  // Fail the blocked recv of every live session; its worker then runs
  // the ordinary close path and exits.
  sessions_.shutdown_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (reaper_.joinable()) reaper_.join();
  // Parked sessions have no worker and no transport; sweep them all once
  // every thread that could detach one has been joined.
  sessions_.purge_detached(std::chrono::nanoseconds(0));
}

void DeliveryService::accept_loop() {
  while (running_) {
    net::TcpStream stream;
    try {
      stream = listener_->accept();
    } catch (const net::NetError&) {
      continue;  // listener closed during stop(), or transient error
    }
    const std::size_t capacity = config_.workers + config_.queue_capacity;
    // Reserve a slot; the (capacity+1)-th simultaneous connection gets an
    // immediate protocol Error instead of unbounded queueing.
    if (in_flight_.fetch_add(1, std::memory_order_relaxed) >= capacity) {
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
      stats_.record_rejection();
      send_error(stream,
                 "server saturated: " + std::to_string(capacity) +
                     " sessions in flight; retry later",
                 ErrorCode::Saturated);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      queue_.push_back({std::move(stream), obs::Tracer::now_us()});
    }
    stats_.record_enqueue();
    queue_cv_.notify_one();
  }
}

void DeliveryService::worker_loop() {
  while (true) {
    PendingConn pending;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return !running_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (!running_) return;
        continue;
      }
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    stats_.record_dequeue();
    if (tracer_.enabled()) {
      // How long the connection sat between accept and a free worker.
      tracer_.record("accept.queue", 0, pending.enqueued_us,
                     obs::Tracer::now_us() - pending.enqueued_us);
    }
    try {
      serve_connection(std::move(pending.stream));
    } catch (const std::exception& e) {
      // A worker escaping its serve loop is a server bug: capture the
      // postmortem bundle while the evidence is hot, keep the pool alive.
      log_.log(obs::LogLevel::Fatal, "worker.fatal", {{"error", e.what()}});
      flight_.trigger("worker.fatal");
    }
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DeliveryService::reaper_loop() {
  // Wake a few times per timeout so eviction/purge lag stays well under
  // one extra period.
  auto shortest = std::chrono::milliseconds::max();
  if (config_.idle_timeout.count() > 0) {
    shortest = std::min(shortest, config_.idle_timeout);
  }
  if (config_.resume_window.count() > 0) {
    shortest = std::min(shortest, config_.resume_window);
  }
  const auto period =
      std::max<std::chrono::milliseconds>(shortest / 4,
                                          std::chrono::milliseconds(5));
  std::unique_lock<std::mutex> lock(reaper_mutex_);
  while (running_) {
    reaper_cv_.wait_for(lock, period, [this] { return !running_.load(); });
    if (!running_) return;
    if (config_.idle_timeout.count() > 0) {
      sessions_.evict_idle(config_.idle_timeout);
    }
    if (config_.resume_window.count() > 0) {
      sessions_.purge_detached(config_.resume_window);
    }
  }
}

void DeliveryService::serve_connection(net::TcpStream raw) {
  std::unique_ptr<net::Stream> stream =
      net::wrap_stream(std::move(raw), config_.fault_plan);
  if (!register_handshake(stream.get())) return;  // already stopping
  Message first;
  bool handshake_ok = false;
  // A corrupt frame leaves the byte stream aligned, so the handshake is
  // retryable in place - report it and read again (bounded, so a peer
  // spewing garbage cannot pin a worker).
  for (int attempt = 0; attempt < 8; ++attempt) {
    bool malformed = false;
    try {
      first = decode(stream->recv_frame());
      handshake_ok = true;
      break;
    } catch (const net::FrameError&) {
      malformed = true;  // corrupt frame: stream aligned, retryable
    } catch (const net::NetError&) {
      break;  // vanished (or shut down) before the handshake
    } catch (const std::exception&) {
      malformed = true;  // undecodable payload: also retryable
    }
    if (malformed) {
      stats_.record_malformed();
      Message err;
      err.type = MsgType::Error;
      err.text = "malformed frame";
      err.code = ErrorCode::MalformedFrame;
      try {
        stream->send_frame(encode(err));
      } catch (const net::NetError&) {
        break;
      }
    }
  }
  unregister_handshake(stream.get());
  if (!handshake_ok) return;
  if (first.type == MsgType::Stats || first.type == MsgType::MetricsDump ||
      first.type == MsgType::TraceDump) {
    // Bare admin query: answer and close.
    Message reply;
    if (first.type == MsgType::Stats) {
      reply.type = MsgType::StatsReply;
      reply.text = stats_.to_json().dump();
    } else if (first.type == MsgType::MetricsDump) {
      reply.type = MsgType::MetricsReply;
      reply.text = metrics_.to_json().dump();
    } else {
      reply.type = MsgType::TraceReply;
      reply.text = tracer_.to_chrome_json().dump();
    }
    reply.seq = first.seq;
    try {
      stream->send_frame(encode(reply));
    } catch (const net::NetError&) {
    }
    return;
  }
  if (first.type == MsgType::Resume) {
    std::shared_ptr<Session> session;
    {
      obs::ScopedSpan span(tracer_, "session.resume", first.trace);
      session = resume_session(first, stream);
      if (session != nullptr) span.set_trace(session->trace_id);
    }
    if (session == nullptr) return;  // Error already sent
    finish_session(session, serve_session(session));
    return;
  }
  if (first.type != MsgType::Hello) {
    send_error(*stream, "expected Hello to open a session",
               ErrorCode::BadRequest);
    return;
  }
  std::shared_ptr<Session> session;
  Message reply;
  {
    obs::ScopedSpan span(tracer_, "session.handshake", first.trace);
    reply = open_session(first, stream, session);
    // A client that sent no trace id gets the server-minted one.
    if (session != nullptr) span.set_trace(session->trace_id);
  }
  reply.seq = first.seq;
  if (session == nullptr) {
    log_.log(obs::LogLevel::Warn, "session.deny",
             {{"customer", first.customer}, {"reason", reply.text}},
             first.trace);
    try {
      stream->send_frame(encode(reply));
    } catch (const net::NetError&) {
    }
    return;
  }
  try {
    session->stream->send_frame(encode(reply));
  } catch (const net::NetError&) {
    // The Iface never arrived; the client will reconnect and Resume (or
    // Hello afresh), so treat it like any other transport death.
    finish_session(session, end_reason(session));
    return;
  }
  finish_session(session, serve_session(session));
}

Message DeliveryService::open_session(const Message& hello,
                                      std::unique_ptr<net::Stream>& stream,
                                      std::shared_ptr<Session>& session) {
  Message error;
  error.type = MsgType::Error;
  error.code = ErrorCode::BadRequest;
  if (hello.version < net::kMinProtocolVersion ||
      hello.version > net::kProtocolVersion) {
    error.text = "protocol version mismatch: server speaks v" +
                 std::to_string(net::kProtocolVersion) + " (v" +
                 std::to_string(net::kMinProtocolVersion) +
                 " tolerated), client sent v" +
                 std::to_string(hello.version) +
                 (hello.version == 1 ? " (old-format Hello)" : "") +
                 "; upgrade the client";
    error.code = ErrorCode::VersionMismatch;
    stats_.record_denial();
    return error;
  }
  {
    // Denial paths return from inside the scope, which still records the
    // span - a refused handshake shows its license-check time too.
    obs::ScopedSpan span(tracer_, "license.check", hello.trace);
    core::LicensePolicy license;
    {
      std::lock_guard<std::mutex> lock(license_mutex_);
      auto it = licenses_.find(hello.customer);
      if (it == licenses_.end()) {
        error.text = "unknown customer '" + hello.customer +
                     "': no license on file";
        error.code = ErrorCode::LicenseDenied;
        stats_.record_denial();
        return error;
      }
      license = it->second;
    }
    if (!license.features.has(core::Feature::BlackBoxSim)) {
      error.text = "license for '" + hello.customer + "' (" +
                   core::license_tier_name(license.tier) +
                   " tier) does not grant black-box simulation";
      error.code = ErrorCode::LicenseDenied;
      stats_.record_denial();
      return error;
    }
    if (!license.valid_on(config_.today)) {
      error.text = "license for '" + hello.customer + "' expired on day " +
                   std::to_string(license.expires_day);
      error.code = ErrorCode::LicenseDenied;
      stats_.record_denial();
      return error;
    }
  }
  auto generator = catalog_.find(hello.name);
  if (generator == nullptr) {
    error.text = "catalog has no IP named '" + hello.name + "'";
    stats_.record_denial();
    return error;
  }
  std::unique_ptr<core::BlackBoxModel> model;
  std::shared_ptr<const core::IpArtifact> artifact;
  bool was_hit = false;
  try {
    // Store hit vs cold build is only known once get_or_build returns,
    // so the span is renamed at the end. The store canonicalizes the
    // params itself (defaults filled, name-ordered content hash), so
    // aliased spellings of one configuration share one artifact, and
    // concurrent identical Hellos coalesce onto a single elaboration.
    obs::ScopedSpan span(tracer_, "session.elaborate", hello.trace);
    core::ParamMap params;
    for (const auto& [name, value] : hello.params) params.set(name, value);
    artifact = artifacts_.get_or_build(generator, params, &was_hit);
    if (was_hit) {
      stats_.record_program_share();
      span.set_name("session.cache_hit");
    } else {
      stats_.record_program_compile();
    }
    // Private value state bound to the artifact's shared program (and
    // island plan, when the threaded kernel could engage).
    model = artifact->instantiate(config_.sim_threads);
  } catch (const std::exception& e) {
    error.text = std::string("build failed: ") + e.what();
    stats_.record_denial();
    return error;
  }
  session = sessions_.open(hello.customer, hello.name, std::move(model),
                           std::move(stream));
  // The warm-hit SLO judges the artifact store from the tenant's seat:
  // a cold build is the "bad" event (slow first response).
  slo_.record("warm_hit", session->customer, was_hit);
  // Pin the artifact for the session's whole life - including parked
  // (resume_window) time - so store eviction can never free the program
  // a resumed session will replay against.
  session->artifact = std::move(artifact);
  session->protocol = std::min(hello.version, net::kProtocolVersion);
  if (config_.audit) {
    session->auditor =
        std::make_unique<attack::QueryAuditor>(config_.auditor, &metrics_);
  }
  // The trace id that follows this session's spans: the client's, or a
  // server-minted one for clients that sent none (pre-v5, or untraced).
  session->trace_id =
      hello.trace != 0 ? hello.trace : obs::TraceContext::mint().id;
  log_.log(obs::LogLevel::Info, "session.open",
           {{"customer", session->customer},
            {"module", session->module},
            {"cache", was_hit ? "hit" : "miss"}},
           session->trace_id);
  Json iface = session->model->interface_json();
  iface.set("customer", session->customer);
  iface.set("session", session->id);
  // Version negotiation (v4+): the session speaks the lower of the two
  // versions; a pre-v4 client never sees nor needs the field.
  iface.set("protocol", std::size_t{session->protocol});
  iface.set("token", session->token);
  if (session->protocol >= 5) {
    // v5: tell the client which trace id the server files spans under
    // (its own, echoed, or the server-minted one).
    iface.set("trace", obs::TraceContext::hex(session->trace_id));
  }
  Message reply;
  reply.type = MsgType::Iface;
  reply.text = iface.dump();
  if (session->protocol >= 5) reply.trace = session->trace_id;
  return reply;
}

std::shared_ptr<Session> DeliveryService::resume_session(
    const Message& resume, std::unique_ptr<net::Stream>& stream) {
  if (config_.resume_window.count() == 0) {
    send_error(*stream, "this server does not keep detached sessions",
               ErrorCode::UnknownSession);
    return nullptr;
  }
  std::shared_ptr<Session> session = sessions_.resume(resume.text);
  if (session == nullptr) {
    send_error(*stream,
               "no resumable session for token (expired, evicted, or "
               "never issued)",
               ErrorCode::UnknownSession);
    return nullptr;
  }
  sessions_.attach(session, std::move(stream));
  stats_.record_resume();
  Json iface = session->model->interface_json();
  iface.set("customer", session->customer);
  iface.set("session", session->id);
  iface.set("protocol", std::size_t{session->protocol});
  iface.set("token", session->token);
  iface.set("resumed", true);
  iface.set("cycles", session->model->cycle_count());
  iface.set("last_seq", std::size_t{session->last_seq});
  if (session->protocol >= 5) {
    iface.set("trace", obs::TraceContext::hex(session->trace_id));
  }
  Message reply;
  reply.type = MsgType::Iface;
  reply.text = iface.dump();
  reply.seq = resume.seq;
  if (session->protocol >= 5) reply.trace = session->trace_id;
  try {
    session->stream->send_frame(encode(reply));
  } catch (const net::NetError&) {
    finish_session(session, end_reason(session));
    return nullptr;
  }
  return session;
}

DeliveryService::EndReason DeliveryService::serve_session(
    const std::shared_ptr<Session>& session) {
  while (running_ && !session->evicted.load(std::memory_order_relaxed)) {
    Message request;
    std::size_t rx_bytes = 0;
    bool malformed = false;
    try {
      const std::vector<std::uint8_t> payload = session->stream->recv_frame();
      rx_bytes = payload.size() + net::kFrameHeaderBytes;
      request = decode(payload);
    } catch (const net::FrameError&) {
      // The frame arrived but was corrupt (bad CRC / impossible length);
      // the byte stream is still aligned, so report it and keep the
      // session.
      malformed = true;
    } catch (const net::NetError&) {
      return end_reason(session);  // peer closed, evicted, or stopping
    } catch (const std::exception&) {
      // Integrity check passed but the payload does not decode: answer
      // with a typed Error instead of closing (the stream is aligned).
      malformed = true;
    }
    if (malformed) {
      stats_.record_malformed();
      Message err;
      err.type = MsgType::Error;
      err.text = "malformed frame";
      err.code = ErrorCode::MalformedFrame;
      try {
        session->stream->send_frame(encode(err));
        continue;
      } catch (const net::NetError&) {
        return end_reason(session);
      }
    }
    if (request.type == MsgType::Bye) return EndReason::Bye;
    // Idempotent replay: a numbered request this session has already
    // executed (the client retried because our reply was lost) is
    // answered from the cache without touching the model.
    // Spans carry the request's own trace id when the client sent one,
    // else the session's (covers pre-v5 clients end to end).
    const std::uint64_t trace =
        request.trace != 0 ? request.trace : session->trace_id;
    if (request.seq != 0 && request.seq == session->last_seq &&
        !session->last_reply.empty()) {
      obs::ScopedSpan span(tracer_, "req.replay", trace);
      stats_.record_replay();
      session->touch();
      try {
        session->stream->send_frame(session->last_reply);
        continue;
      } catch (const net::NetError&) {
        return end_reason(session);
      }
    }
    const auto t0 = std::chrono::steady_clock::now();
    Message reply;
    {
      obs::ScopedSpan span(tracer_, request_span_name(request.type), trace);
      if (request.seq != 0 && request.seq < session->last_seq) {
        // A frame-level duplicate of an older request; the client has
        // moved on and will discard this reply by its seq.
        span.set_name("req.stale");
        reply.type = MsgType::Error;
        reply.text = "stale request";
        reply.code = ErrorCode::BadRequest;
      } else if (request.type == MsgType::Stats) {
        // Admin counters are also queryable mid-session.
        reply.type = MsgType::StatsReply;
        reply.text = stats_.to_json().dump();
      } else if (request.type == MsgType::MetricsDump) {
        reply.type = MsgType::MetricsReply;
        reply.text = metrics_.to_json().dump();
      } else if (request.type == MsgType::TraceDump) {
        reply.type = MsgType::TraceReply;
        reply.text = tracer_.to_chrome_json().dump();
      } else {
        // Extraction audit (DeliveryConfig::audit): each evaluation shows
        // the session's FULL input image to the auditor before it reaches
        // the model, however the client staged it (Eval carries the image
        // inline; SetInput only updates it; Cycle/CycleBatch evaluate
        // whatever was staged - a batch counts as one observation).
        attack::Verdict verdict = attack::Verdict::Allow;
        if (session->auditor != nullptr) {
          if (request.type == MsgType::SetInput) {
            session->input_image[request.name] = request.value;
          } else if (request.type == MsgType::Eval ||
                     request.type == MsgType::Cycle ||
                     request.type == MsgType::CycleBatch) {
            for (const auto& [name, value] : request.values) {
              session->input_image[name] = value;
            }
            verdict = session->auditor->observe(session->input_image);
          } else if (request.type == MsgType::PatternBatch) {
            // A pattern batch is N independent evaluations: show each
            // pattern's input image to the auditor so batching cannot
            // smuggle an extraction sweep past the detector. The first
            // non-Allow verdict rejects the whole batch.
            const std::size_t n_patterns =
                request.series.empty()
                    ? 0
                    : request.series.begin()->second.size();
            for (std::size_t p = 0;
                 p < n_patterns && verdict == attack::Verdict::Allow; ++p) {
              for (const auto& [name, stream] : request.series) {
                if (p < stream.size()) session->input_image[name] = stream[p];
              }
              verdict = session->auditor->observe(session->input_image);
            }
          }
        }
        if (verdict != attack::Verdict::Allow) {
          span.set_name("req.throttled");
          reply.type = MsgType::Error;
          reply.code = ErrorCode::Throttled;
          const bool parked = verdict == attack::Verdict::Park;
          stats_.record_escalation(session->customer, parked);
          if (parked) {
            reply.text =
                "query auditor: persistent extraction-like traffic; "
                "session parked";
            session->evicted.store(true, std::memory_order_relaxed);
            log_.log(obs::LogLevel::Error, "attack.park",
                     {{"customer", session->customer},
                      {"module", session->module}},
                     trace);
            flight_.trigger("attack.park");
          } else {
            reply.text =
                "query auditor: extraction-like traffic; cooling down";
            log_.log(obs::LogLevel::Warn, "attack.throttle",
                     {{"customer", session->customer},
                      {"module", session->module}},
                     trace);
          }
        } else {
          try {
            reply = net::dispatch_request(*session->model, request);
          } catch (const std::exception& e) {
            reply.type = MsgType::Error;
            reply.text = e.what();
            reply.code = ErrorCode::BadRequest;
          }
        }
      }
    }
    const auto micros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    stats_.record_request(static_cast<std::uint64_t>(micros));
    session->touch();
    reply.seq = request.seq;
    if (session->protocol >= 5) reply.trace = trace;
    std::vector<std::uint8_t> payload = encode(reply);
    // Per-tenant attribution + SLO feed: every serviced request counts
    // against its customer's families and burn-rate windows (cached
    // pointers, relaxed atomics; the SLO record is a short mutex hop).
    const bool is_error = reply.type == MsgType::Error;
    session->tenant.requests->inc();
    if (is_error) session->tenant.errors->inc();
    session->tenant.latency_us->record(static_cast<std::uint64_t>(micros));
    session->tenant.rx_bytes->inc(rx_bytes);
    session->tenant.tx_bytes->inc(payload.size() + net::kFrameHeaderBytes);
    slo_.record("latency", session->customer,
                static_cast<std::uint64_t>(micros) <=
                    config_.slo_latency_threshold_us);
    slo_.record("errors", session->customer, !is_error);
    if (request.seq != 0 && request.seq > session->last_seq) {
      session->last_seq = request.seq;
      session->last_reply = payload;
    }
    try {
      session->stream->send_frame(payload);
    } catch (const net::NetError&) {
      return end_reason(session);
    }
  }
  return end_reason(session);
}

DeliveryService::EndReason DeliveryService::end_reason(
    const std::shared_ptr<Session>& session) const {
  if (!running_.load(std::memory_order_relaxed)) return EndReason::Stopping;
  if (session->evicted.load(std::memory_order_relaxed)) {
    return EndReason::Evicted;
  }
  return EndReason::Transport;
}

void DeliveryService::finish_session(const std::shared_ptr<Session>& session,
                                     EndReason reason) {
  if (reason == EndReason::Transport && config_.resume_window.count() > 0) {
    // The transport died under a healthy session: park it for the client
    // to reclaim with Resume(token) instead of throwing the model away.
    log_.log(obs::LogLevel::Info, "session.park",
             {{"customer", session->customer},
              {"module", session->module}},
             session->trace_id);
    sessions_.detach(session);
    // Snapshot the postmortem bundle while the parked session's state is
    // hot: if the client never resumes, this is the record of why.
    flight_.trigger("session.park");
    return;
  }
  if (reason == EndReason::Evicted) {
    log_.log(obs::LogLevel::Warn, "session.evict",
             {{"customer", session->customer},
              {"module", session->module}},
             session->trace_id);
    flight_.trigger("session.evict");
  } else {
    log_.log(obs::LogLevel::Info, "session.close",
             {{"customer", session->customer},
              {"module", session->module}},
             session->trace_id);
  }
  sessions_.close(session);
}

bool DeliveryService::register_handshake(net::Stream* stream) {
  std::lock_guard<std::mutex> lock(handshake_mutex_);
  if (!running_) return false;
  handshaking_.push_back(stream);
  return true;
}

void DeliveryService::unregister_handshake(net::Stream* stream) {
  std::lock_guard<std::mutex> lock(handshake_mutex_);
  std::erase(handshaking_, stream);
}

void DeliveryService::send_error(net::Stream& stream, const std::string& text,
                                 net::ErrorCode code) {
  // Consume the request the client (almost certainly) already sent,
  // bounded so a silent peer cannot stall the accept thread. Closing
  // with unread data in the receive buffer would RST the connection and
  // discard the very Error we are about to send.
  stream.set_recv_timeout(100);
  try {
    stream.recv_frame();
  } catch (const net::NetError&) {
    // Nothing arrived in time, or the peer is gone; reply regardless.
  }
  Message reply;
  reply.type = MsgType::Error;
  reply.text = text;
  reply.code = code;
  try {
    stream.send_frame(encode(reply));
  } catch (const net::NetError&) {
    // Peer is already gone; nothing to tell it.
  }
  stream.shutdown();
}

namespace {

Json query_admin(std::uint16_t port, MsgType query_type, MsgType reply_type,
                 const char* what) {
  net::TcpStream stream = net::TcpStream::connect(port);
  Message query;
  query.type = query_type;
  stream.send_frame(encode(query));
  Message reply = decode(stream.recv_frame());
  if (reply.type != reply_type) {
    throw net::NetError(std::string(what) +
                        " query failed: unexpected reply");
  }
  return Json::parse(reply.text);
}

}  // namespace

Json query_stats(std::uint16_t port) {
  return query_admin(port, MsgType::Stats, MsgType::StatsReply, "stats");
}

Json query_metrics(std::uint16_t port) {
  return query_admin(port, MsgType::MetricsDump, MsgType::MetricsReply,
                     "metrics");
}

Json query_trace(std::uint16_t port) {
  return query_admin(port, MsgType::TraceDump, MsgType::TraceReply, "trace");
}

}  // namespace jhdl::server
