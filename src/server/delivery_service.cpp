#include "server/delivery_service.h"

#include <sys/socket.h>

#include <algorithm>
#include <deque>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/feature.h"
#include "core/params.h"
#include "net/poller.h"
#include "net/sim_server.h"
#include "net/timer_wheel.h"
#include "server/scheduler.h"
#include "sim/thread_pool.h"
#include "util/version.h"

namespace jhdl::server {

using net::decode;
using net::encode;
using net::ErrorCode;
using net::Message;
using net::MsgType;

namespace {

/// Static span label for one request type (ring buffers store the
/// pointer, so labels must be literals).
const char* request_span_name(MsgType type) {
  switch (type) {
    case MsgType::SetInput:
      return "req.set_input";
    case MsgType::GetOutput:
      return "req.get_output";
    case MsgType::Cycle:
      return "req.cycle";
    case MsgType::Reset:
      return "req.reset";
    case MsgType::Eval:
      return "req.eval";
    case MsgType::CycleBatch:
      return "req.cycle_batch";
    case MsgType::PatternBatch:
      return "req.pattern_batch";
    case MsgType::Stats:
      return "req.stats";
    case MsgType::MetricsDump:
      return "req.metrics_dump";
    case MsgType::TraceDump:
      return "req.trace_dump";
    default:
      return "req.other";
  }
}

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The loop-owned socket state a ConnHandle can reach from other threads.
/// The loop invalidates it (alive=false, fd=-1) under the mutex BEFORE
/// closing the descriptor, so a racing shutdown() can never touch a
/// recycled fd.
struct ConnShared {
  std::mutex m;
  int fd = -1;
  bool alive = false;
};

/// The net::Stream a reactor-owned session carries. The reactor does all
/// real IO on the nonblocking socket itself; this handle exists so the
/// SessionManager's cross-thread choreography (evict, evict_idle,
/// shutdown_all, resume's force-claim) keeps working unchanged: its
/// shutdown() fails the socket out from under the loop, which then sees
/// EOF and runs the ordinary transport-death path.
class ConnHandle : public net::Stream {
 public:
  explicit ConnHandle(std::shared_ptr<ConnShared> shared)
      : shared_(std::move(shared)) {}

  bool valid() const override {
    std::lock_guard<std::mutex> lock(shared_->m);
    return shared_->alive;
  }
  void close() override { shutdown(); }
  void shutdown() override {
    std::lock_guard<std::mutex> lock(shared_->m);
    if (shared_->alive && shared_->fd >= 0) {
      ::shutdown(shared_->fd, SHUT_RDWR);
    }
  }
  void set_recv_timeout(int) override {}
  void send_frame(const std::vector<std::uint8_t>&) override {
    throw net::NetError("reactor-owned transport has no blocking send",
                        net::NetError::Kind::Fatal);
  }
  std::vector<std::uint8_t> recv_frame() override {
    throw net::NetError("reactor-owned transport has no blocking recv",
                        net::NetError::Kind::Fatal);
  }

 private:
  std::shared_ptr<ConnShared> shared_;
};

}  // namespace

// ---------------------------------------------------------------------------
// DeliveryReactor: the event loop, worker pool, and admission machinery.
// ---------------------------------------------------------------------------
//
// Threading contract:
//   - the LOOP thread owns every socket, the poller, the timer wheel, the
//     connection table and the admission bookkeeping;
//   - WORKER threads execute DeliveryService::process_first_frame /
//     process_request / the admin HTTP routes, then post a Completion and
//     ring the wakeup fd — they never touch a socket;
//   - other threads (reaper timers run on the loop; SessionManager
//     callers) reach a connection only through its ConnHandle.
class DeliveryReactor {
 public:
  explicit DeliveryReactor(DeliveryService& service)
      : service_(service),
        wheel_(now_ms()),
        scheduler_(service.config_.scheduler_quantum) {
    routes_.metrics_text = [this] {
      // Refresh the slo.* gauges first so one scrape carries burn rates
      // as fresh as the counters beside them.
      service_.slo_.evaluate();
      return service_.metrics_.to_text();
    };
    routes_.healthz = [this] {
      const obs::SloHealth health = service_.slo_.overall();
      return std::make_pair(health != obs::SloHealth::Critical,
                            std::string(obs::slo_health_name(health)) + "\n");
    };
    routes_.slo_json = [this] {
      return service_.slo_.to_json().dump(2) + "\n";
    };
    routes_.flight_jsonl = [this] {
      return service_.flight_.trigger("on_demand");
    };
  }

  ~DeliveryReactor() { shutdown(); }
  DeliveryReactor(const DeliveryReactor&) = delete;
  DeliveryReactor& operator=(const DeliveryReactor&) = delete;

  /// Bind both listeners, arm the reaper, spawn the loop and the worker
  /// pool. Returns the delivery port.
  std::uint16_t start() {
    const DeliveryConfig& config = service_.config_;
    listener_ = std::make_unique<net::TcpListener>(config.listen_backlog);
    listener_->set_nonblocking(true);
    poller_.add(listener_->fd(), true, false);
    poller_.add(wakeup_.fd(), true, false);
    if (config.admin_http) {
      admin_listener_ = std::make_unique<net::TcpListener>(8);
      admin_listener_->set_nonblocking(true);
      poller_.add(admin_listener_->fd(), true, false);
      admin_port_ = admin_listener_->port();
    }
    arm_reaper();
    const std::uint16_t port = listener_->port();
    loop_thread_ = std::thread([this] { run(); });
    workers_.reserve(config.workers);
    for (std::size_t i = 0; i < config.workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
    return port;
  }

  /// Drain and join everything. Idempotent; the caller clears running_
  /// first so the loop starts its drain on wakeup.
  void shutdown() {
    wakeup_.ring();
    if (loop_thread_.joinable()) loop_thread_.join();
    scheduler_.close();
    for (std::thread& w : workers_) {
      if (w.joinable()) w.join();
    }
    workers_.clear();
  }

  std::uint16_t admin_port() const { return admin_port_; }

 private:
  enum class CState : std::uint8_t {
    Queued,     ///< accepted, waiting for a session slot (no read interest)
    Handshake,  ///< granted a slot, first frame not yet bound to a session
    Active,     ///< bound to a session; frames are requests
    Rejecting,  ///< over capacity: waiting (bounded) for the Hello to answer
    Http,       ///< admin-plane connection (byte protocol, no framing)
  };

  /// One assembled inbound frame awaiting dispatch.
  struct InFrame {
    std::vector<std::uint8_t> raw;
    /// Already passed (or deliberately bypasses) the fault plan: the
    /// second copy of a Duplicate, or a frame re-queued after its Delay.
    bool skip_fault = false;
  };

  /// One outbound byte run. Injected faults render as delayed chunks
  /// (not_before) and kill_after (Drop/Truncate cut the connection).
  struct OutChunk {
    std::vector<std::uint8_t> bytes;
    std::size_t off = 0;
    std::int64_t not_before_ms = 0;  // 0 = immediately
    bool kill_after = false;
  };

  struct Conn {
    std::uint64_t id = 0;
    net::TcpStream stream;
    std::shared_ptr<ConnShared> shared;
    CState state = CState::Handshake;
    bool granted = false;  ///< holds one concurrent-session budget slot
    bool polled = false;   ///< registered with the poller right now
    bool reading = true;   ///< wants read readiness
    bool want_write = false;
    bool rx_eof = false;   ///< orderly peer close seen; drain then reap
    bool inflight = false; ///< a worker is executing this conn's frame
    bool dead = false;     ///< transport died while inflight
    bool close_after_flush = false;
    bool frame_held = false;  ///< recv-fault delay pending on inbox front
    int handshake_attempts = 0;
    std::uint64_t enqueued_us = 0;  ///< accept-queue entry time
    FrameAssembler assembler;
    std::deque<InFrame> inbox;
    std::deque<OutChunk> outbox;
    std::shared_ptr<Session> session;
    std::string http_request;
    net::TimerWheel::TimerId hold_timer = net::TimerWheel::kInvalidTimer;
    net::TimerWheel::TimerId deadline_timer = net::TimerWheel::kInvalidTimer;
    net::TimerWheel::TimerId flush_timer = net::TimerWheel::kInvalidTimer;
  };

  /// Worker -> loop result of one dispatched unit of work.
  struct Completion {
    enum class Kind { Handshake, Request, Http, Fatal };
    std::uint64_t conn_id = 0;
    Kind kind = Kind::Fatal;
    DeliveryService::HandshakeOutcome handshake;
    DeliveryService::RequestOutcome request;
    std::string http;
  };

  /// A frame under dispatch keeps its session pinned at most once: the
  /// reactor never dispatches a second frame for a conn while inflight.
  static constexpr std::size_t kInboxPauseDepth = 8;
  static constexpr std::size_t kReadChunk = 16 * 1024;
  /// How long a Rejecting conn may wait for its Hello before being
  /// answered anyway (the legacy send_error recv-timeout).
  static constexpr std::int64_t kRejectWaitMs = 100;

  std::size_t budget() const {
    const DeliveryConfig& config = service_.config_;
    return config.max_sessions > 0 ? config.max_sessions : config.workers;
  }

  // --- loop -----------------------------------------------------------

  void run() {
    while (true) {
      if (!service_.running_.load(std::memory_order_relaxed) && !draining_) {
        begin_drain();
      }
      if (draining_ && conns_.empty()) break;
      const std::int64_t delay = wheel_.next_delay_ms(now_ms());
      const int timeout =
          delay < 0 ? -1
                    : static_cast<int>(std::min<std::int64_t>(delay, 60'000));
      poller_.wait(events_, timeout);
      for (const net::PollEvent& ev : events_) {
        if (ev.fd == wakeup_.fd()) {
          wakeup_.drain();
          continue;
        }
        if (listener_ != nullptr && ev.fd == listener_->fd()) {
          accept_ready();
          continue;
        }
        if (admin_listener_ != nullptr && ev.fd == admin_listener_->fd()) {
          accept_admin_ready();
          continue;
        }
        auto it = by_fd_.find(ev.fd);
        if (it == by_fd_.end()) continue;  // removed earlier in this batch
        const std::uint64_t id = it->second;
        if (ev.readable) {
          conn_readable(id);
        } else if (ev.error) {
          conn_transport_dead(id);
        }
        if (ev.writable && find(id) != nullptr) flush_outbox(id);
      }
      wheel_.advance(now_ms());
      handle_completions();
    }
  }

  void worker_loop() {
    FairScheduler::Item item;
    while (scheduler_.pop(item)) item.run();
  }

  void post(Completion comp) {
    {
      std::lock_guard<std::mutex> lock(completion_mutex_);
      completions_.push_back(std::move(comp));
    }
    wakeup_.ring();
  }

  Conn* find(std::uint64_t id) {
    auto it = conns_.find(id);
    return it == conns_.end() ? nullptr : it->second.get();
  }

  /// Reconcile the poller with what the conn wants right now. A conn
  /// wanting nothing is deregistered entirely — EPOLLHUP is reported
  /// regardless of the interest mask, so leaving a drained-EOF socket
  /// registered would spin the loop.
  void apply_interest(Conn& c) {
    const bool read = c.reading && !c.rx_eof && !c.dead;
    const bool write = c.want_write && !c.dead;
    if (!read && !write) {
      if (c.polled) {
        poller_.remove(c.stream.fd());
        c.polled = false;
      }
      return;
    }
    if (c.polled) {
      poller_.modify(c.stream.fd(), read, write);
    } else {
      poller_.add(c.stream.fd(), read, write);
      c.polled = true;
    }
  }

  // --- admission ------------------------------------------------------

  void accept_ready() {
    while (listener_ != nullptr) {
      net::TcpStream stream;
      try {
        stream = listener_->try_accept();
      } catch (const net::NetError&) {
        return;  // listener closed under us (drain)
      }
      if (!stream.valid()) return;  // EAGAIN: burst drained
      stream.set_nonblocking(true);
      admit(std::move(stream));
    }
  }

  void admit(net::TcpStream stream) {
    const std::uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Conn>();
    conn->id = id;
    conn->shared = std::make_shared<ConnShared>();
    conn->shared->fd = stream.fd();
    conn->shared->alive = true;
    conn->stream = std::move(stream);
    const int fd = conn->stream.fd();
    Conn& c = *conn;
    conns_[id] = std::move(conn);
    by_fd_[fd] = id;
    if (granted_ < budget()) {
      grant(c);
      return;
    }
    if (accept_queue_.size() < service_.config_.queue_capacity) {
      c.state = CState::Queued;
      c.reading = false;
      c.enqueued_us = obs::Tracer::now_us();
      accept_queue_.push_back(id);
      service_.stats_.record_enqueue();
      return;  // not polled: a dead queued conn is discovered at grant
    }
    // Over budget AND over queue: turn it away. Mirror the legacy
    // send_error choreography — consume the Hello the client (almost
    // certainly) already sent, bounded by a deadline, so closing cannot
    // RST the very Error we answer with.
    c.state = CState::Rejecting;
    c.reading = true;
    apply_interest(c);
    c.deadline_timer = wheel_.schedule(kRejectWaitMs, [this, id] {
      Conn* rc = find(id);
      if (rc != nullptr && rc->state == CState::Rejecting &&
          !rc->close_after_flush) {
        finalize_rejection(id, nullptr);
      }
    });
  }

  void grant(Conn& c) {
    ++granted_;
    c.granted = true;
    c.state = CState::Handshake;
    c.reading = true;
    apply_interest(c);
  }

  /// A granted slot freed: promote accept-queue heads into Handshake.
  void grant_next() {
    while (granted_ < budget() && !accept_queue_.empty()) {
      const std::uint64_t id = accept_queue_.front();
      accept_queue_.pop_front();
      Conn* c = find(id);
      if (c == nullptr) continue;
      service_.stats_.record_dequeue();
      if (service_.tracer_.enabled()) {
        // How long the connection sat between accept and a free slot.
        service_.tracer_.record("accept.queue", 0, c->enqueued_us,
                                obs::Tracer::now_us() - c->enqueued_us);
      }
      grant(*c);
    }
  }

  /// Answer an over-capacity connection with the typed, retryable Error
  /// and count it (labeled per tenant when the Hello was decodable).
  void finalize_rejection(std::uint64_t id,
                          const std::vector<std::uint8_t>* first_raw) {
    Conn* c = find(id);
    if (c == nullptr) return;
    if (c->deadline_timer != net::TimerWheel::kInvalidTimer) {
      wheel_.cancel(c->deadline_timer);
      c->deadline_timer = net::TimerWheel::kInvalidTimer;
    }
    std::string customer = "__unknown__";
    if (first_raw != nullptr) {
      try {
        const Message hello = decode(net::frame_unwrap(*first_raw));
        if (!hello.customer.empty()) customer = hello.customer;
      } catch (const std::exception&) {
        // Rejected before it even spoke the protocol: stays unlabeled.
      }
    }
    service_.stats_.record_rejection();
    service_.stats_.record_admission_reject(customer);
    note_rejection_burst();
    const std::size_t capacity = budget() + service_.config_.queue_capacity;
    Message reply;
    reply.type = MsgType::Error;
    if (service_.config_.max_sessions > 0) {
      reply.code = ErrorCode::Overloaded;
      reply.text = "server overloaded: " + std::to_string(capacity) +
                   " sessions in flight; retry later";
    } else {
      // Legacy sizing keeps the legacy wording and code bit-exact.
      reply.code = ErrorCode::Saturated;
      reply.text = "server saturated: " + std::to_string(capacity) +
                   " sessions in flight; retry later";
    }
    c->reading = false;
    c->close_after_flush = true;
    queue_payload(*c, encode(reply), /*faults=*/false);
    flush_outbox(id);
  }

  /// Sustained admission pressure is an incident, not a curiosity: past
  /// the threshold within one second, capture the flight bundle (at most
  /// once per window) so the overload's shape survives the moment.
  void note_rejection_burst() {
    const std::int64_t now = now_ms();
    if (now - burst_window_start_ms_ >= 1000) {
      burst_window_start_ms_ = now;
      reject_burst_ = 0;
      burst_flight_fired_ = false;
    }
    ++reject_burst_;
    if (!burst_flight_fired_ &&
        reject_burst_ >= service_.config_.overload_flight_threshold) {
      burst_flight_fired_ = true;
      service_.log_.log(obs::LogLevel::Warn, "admission.overload",
                        {{"rejected_last_second",
                          std::to_string(reject_burst_)}});
      service_.flight_.trigger("admission.overload");
    }
  }

  // --- reading / frame assembly ---------------------------------------

  void conn_readable(std::uint64_t id) {
    Conn* c = find(id);
    if (c == nullptr || c->dead) return;
    if (c->state == CState::Http) {
      http_readable(id);
      return;
    }
    bool eof = false;
    while (true) {
      std::uint8_t buf[kReadChunk];
      std::size_t n = 0;
      const net::TcpStream::IoResult res =
          c->stream.recv_some(buf, sizeof buf, n);
      if (res == net::TcpStream::IoResult::Ok) {
        c->assembler.feed(buf, n);
        continue;
      }
      if (res == net::TcpStream::IoResult::WouldBlock) break;
      eof = true;  // Closed or Error: no more bytes will ever arrive
      break;
    }
    // Extract every complete frame. A hostile length prefix throws: the
    // stream can no longer be trusted, so the connection dies.
    while (true) {
      c = find(id);
      if (c == nullptr) return;
      std::vector<std::uint8_t> raw;
      bool have = false;
      try {
        have = c->assembler.next(raw);
      } catch (const net::NetError&) {
        conn_transport_dead(id);
        return;
      }
      if (!have) break;
      on_frame(id, std::move(raw));
    }
    c = find(id);
    if (c == nullptr) return;
    if (eof) {
      c->rx_eof = true;
      apply_interest(*c);
    }
    maybe_reap_eof(id);
    c = find(id);
    if (c == nullptr) return;
    // Backpressure: a conn with a deep inbox stops reading until the
    // dispatch pipeline drains it (level-triggered, so re-arming later
    // re-delivers whatever is still buffered).
    const bool want_read =
        c->inbox.size() < kInboxPauseDepth && !c->close_after_flush;
    if (want_read != c->reading) {
      c->reading = want_read;
      apply_interest(*c);
    }
  }

  void on_frame(std::uint64_t id, std::vector<std::uint8_t> raw) {
    Conn* c = find(id);
    if (c == nullptr) return;
    if (c->state == CState::Rejecting) {
      if (!c->close_after_flush) finalize_rejection(id, &raw);
      return;
    }
    c->inbox.push_back(InFrame{std::move(raw), false});
    dispatch_next(id);
  }

  /// The conn's pipeline tick: when idle, pull the next inbound frame
  /// through the fault plan and hand it to a worker. At most one frame
  /// per conn is ever in flight, which serializes requests per session
  /// exactly like the old one-worker-per-connection loop.
  void dispatch_next(std::uint64_t id) {
    Conn* c = find(id);
    if (c == nullptr || c->inflight || c->dead || c->frame_held ||
        c->close_after_flush) {
      return;
    }
    if (c->inbox.empty()) {
      maybe_reap_eof(id);
      return;
    }
    InFrame frame = std::move(c->inbox.front());
    c->inbox.pop_front();
    // Un-pause a backpressured conn once the inbox drains (the paused
    // socket gets no read events, so this is the only re-arm point).
    if (!c->reading && !c->rx_eof && !c->close_after_flush &&
        c->inbox.size() < kInboxPauseDepth) {
      c->reading = true;
      apply_interest(*c);
    }
    if (service_.config_.fault_plan != nullptr && !frame.skip_fault) {
      // One plan consult per logical frame receive, same counting as
      // FaultyStream::recv_frame (a Duplicate's second copy skips it).
      const net::FaultSpec spec =
          service_.config_.fault_plan->next_recv(net::kFrameHeaderBytes);
      if (spec.kind != net::FaultKind::None) {
        net::FrameFaultAction action =
            net::apply_recv_fault(spec, std::move(frame.raw));
        if (action.kill && action.chunks.empty()) {
          conn_transport_dead(id);
          return;
        }
        if (action.delay.count() > 0) {
          // FaultyStream slept here; the reactor parks the frame on the
          // wheel instead and re-dispatches when the delay elapses.
          for (auto it = action.chunks.rbegin(); it != action.chunks.rend();
               ++it) {
            c->inbox.push_front(InFrame{std::move(*it), true});
          }
          c->frame_held = true;
          c->hold_timer = wheel_.schedule(
              action.delay.count(), [this, id] {
                Conn* hc = find(id);
                if (hc == nullptr) return;
                hc->frame_held = false;
                hc->hold_timer = net::TimerWheel::kInvalidTimer;
                dispatch_next(id);
              });
          return;
        }
        if (action.chunks.size() == 2) {
          c->inbox.push_front(InFrame{std::move(action.chunks[1]), true});
        }
        frame.raw = std::move(action.chunks[0]);
        if (action.kill) {
          // Deliver nothing: a mid-frame kill never yields a frame.
          conn_transport_dead(id);
          return;
        }
      }
    }
    c->inflight = true;
    if (c->state == CState::Handshake) {
      auto shared = c->shared;
      std::vector<std::uint8_t> raw = std::move(frame.raw);
      FairScheduler::Item item;
      item.tenant = "";  // tenant unknown until the Hello decodes
      item.cost = raw.size();
      item.run = [this, id, raw, shared]() mutable {
        Completion comp;
        comp.conn_id = id;
        comp.kind = Completion::Kind::Handshake;
        try {
          comp.handshake = service_.process_first_frame(
              raw, std::make_unique<ConnHandle>(shared));
        } catch (const std::exception& e) {
          worker_fatal(e);
          comp.kind = Completion::Kind::Fatal;
        }
        post(std::move(comp));
      };
      scheduler_.push(std::move(item));
    } else {
      auto session = c->session;
      std::vector<std::uint8_t> raw = std::move(frame.raw);
      FairScheduler::Item item;
      item.tenant = session->customer;
      item.cost = raw.size();
      item.run = [this, id, raw, session]() mutable {
        Completion comp;
        comp.conn_id = id;
        comp.kind = Completion::Kind::Request;
        try {
          comp.request = service_.process_request(session, raw);
        } catch (const std::exception& e) {
          worker_fatal(e);
          comp.kind = Completion::Kind::Fatal;
        }
        post(std::move(comp));
      };
      scheduler_.push(std::move(item));
    }
  }

  /// A worker escaping process_* is a server bug: capture the postmortem
  /// bundle while the evidence is hot, keep the pool alive.
  void worker_fatal(const std::exception& e) {
    service_.log_.log(obs::LogLevel::Fatal, "worker.fatal",
                      {{"error", e.what()}});
    service_.flight_.trigger("worker.fatal");
  }

  /// An EOF'd conn with nothing left to do (no frames buffered, no work
  /// in flight, no bytes to flush) is done: run the transport-death path.
  void maybe_reap_eof(std::uint64_t id) {
    Conn* c = find(id);
    if (c != nullptr && c->rx_eof && !c->inflight && !c->frame_held &&
        c->inbox.empty() && c->outbox.empty() && !c->close_after_flush) {
      conn_transport_dead(id);
    }
  }

  // --- completions ----------------------------------------------------

  void handle_completions() {
    std::vector<Completion> batch;
    {
      std::lock_guard<std::mutex> lock(completion_mutex_);
      batch.swap(completions_);
    }
    for (Completion& comp : batch) handle_completion(comp);
  }

  void handle_completion(Completion& comp) {
    const std::uint64_t id = comp.conn_id;
    Conn* c = find(id);
    if (c == nullptr) return;
    c->inflight = false;
    switch (comp.kind) {
      case Completion::Kind::Fatal: {
        if (c->session != nullptr) {
          auto session = std::move(c->session);
          remove_conn(id);
          service_.finish_session(session, service_.end_reason(session));
        } else {
          remove_conn(id);
        }
        return;
      }
      case Completion::Kind::Http: {
        if (c->dead) {
          remove_conn(id);
          return;
        }
        c->reading = false;
        c->close_after_flush = true;
        queue_raw(*c, std::vector<std::uint8_t>(comp.http.begin(),
                                                comp.http.end()));
        apply_interest(*c);
        flush_outbox(id);
        return;
      }
      case Completion::Kind::Handshake:
        handle_handshake_completion(id, comp.handshake);
        return;
      case Completion::Kind::Request:
        handle_request_completion(id, comp.request);
        return;
    }
  }

  void handle_handshake_completion(std::uint64_t id,
                                   DeliveryService::HandshakeOutcome& h) {
    Conn* c = find(id);
    if (h.retry) {
      // Malformed first frame: the stream is still aligned, so answer
      // and keep listening for the real Hello — bounded, so a peer
      // spewing garbage cannot hold its slot forever.
      if (c->dead) {
        remove_conn(id);
        return;
      }
      queue_payload(*c, h.payload, /*faults=*/true);
      if (++c->handshake_attempts >= 8 || draining_) {
        c->close_after_flush = true;
      }
      flush_outbox(id);
      dispatch_next(id);
      return;
    }
    if (h.session != nullptr) {
      c->session = h.session;
      c->state = CState::Active;
      if (c->dead) {
        // The Iface never arrived; the client will reconnect and Resume
        // (or Hello afresh), so treat it like any other transport death.
        auto session = std::move(c->session);
        remove_conn(id);
        service_.finish_session(session, service_.end_reason(session));
        return;
      }
      if (draining_) {
        auto session = std::move(c->session);
        remove_conn(id);
        service_.finish_session(session, DeliveryService::EndReason::Stopping);
        return;
      }
      queue_payload(*c, h.payload, /*faults=*/true);
      flush_outbox(id);
      dispatch_next(id);  // the client may have pipelined its first request
      return;
    }
    // Denial, bare admin reply, or a failed Resume: answer and close.
    if (c->dead) {
      remove_conn(id);
      return;
    }
    c->reading = false;
    c->close_after_flush = true;
    if (!h.payload.empty()) queue_payload(*c, h.payload, /*faults=*/true);
    apply_interest(*c);
    flush_outbox(id);
  }

  void handle_request_completion(std::uint64_t id,
                                 DeliveryService::RequestOutcome& r) {
    Conn* c = find(id);
    auto session = c->session;
    if (r.bye) {
      // The farewell gets no reply; the session closes cleanly.
      c->session.reset();
      remove_conn(id);
      service_.finish_session(session, DeliveryService::EndReason::Bye);
      return;
    }
    if (c->dead) {
      c->session.reset();
      remove_conn(id);
      service_.finish_session(session, service_.end_reason(session));
      return;
    }
    queue_payload(*c, r.payload, /*faults=*/true);
    if (draining_ || session->evicted.load(std::memory_order_relaxed)) {
      // Eviction (auditor park, admin evict) or service stop: the reply
      // still goes out — exactly like the old loop, which sent before
      // re-checking its loop condition — then the session ends.
      auto ended = std::move(c->session);
      c->reading = false;
      c->close_after_flush = true;
      apply_interest(*c);
      service_.finish_session(ended, draining_
                                         ? DeliveryService::EndReason::Stopping
                                         : service_.end_reason(ended));
      flush_outbox(id);
      return;
    }
    flush_outbox(id);
    dispatch_next(id);
  }

  // --- writing --------------------------------------------------------

  /// Frame-wrap one reply payload and enqueue it, rendering the fault
  /// plan's send-side faults as delayed/truncated/duplicated chunks.
  void queue_payload(Conn& c, const std::vector<std::uint8_t>& payload,
                     bool faults) {
    std::vector<std::uint8_t> raw = net::frame_wrap(payload);
    if (faults && service_.config_.fault_plan != nullptr) {
      const net::FaultSpec spec =
          service_.config_.fault_plan->next_send(raw.size());
      if (spec.kind != net::FaultKind::None) {
        net::FrameFaultAction action =
            net::apply_send_fault(spec, std::move(raw));
        const std::int64_t base = now_ms();
        for (std::size_t i = 0; i < action.chunks.size(); ++i) {
          OutChunk chunk;
          chunk.bytes = std::move(action.chunks[i]);
          if (i == 0 && action.delay.count() > 0) {
            chunk.not_before_ms = base + action.delay.count();
          }
          if (i == 1 && (action.delay.count() > 0 || action.gap.count() > 0)) {
            chunk.not_before_ms =
                base + action.delay.count() + action.gap.count();
          }
          if (i + 1 == action.chunks.size()) chunk.kill_after = action.kill;
          c.outbox.push_back(std::move(chunk));
        }
        if (action.chunks.empty() && action.kill) {
          OutChunk kill;
          kill.kill_after = true;
          c.outbox.push_back(std::move(kill));
        }
        return;
      }
    }
    queue_raw(c, std::move(raw));
  }

  void queue_raw(Conn& c, std::vector<std::uint8_t> bytes) {
    OutChunk chunk;
    chunk.bytes = std::move(bytes);
    c.outbox.push_back(std::move(chunk));
  }

  void flush_outbox(std::uint64_t id) {
    Conn* c = find(id);
    if (c == nullptr || c->dead) return;
    if (c->flush_timer != net::TimerWheel::kInvalidTimer) {
      wheel_.cancel(c->flush_timer);
      c->flush_timer = net::TimerWheel::kInvalidTimer;
    }
    while (!c->outbox.empty()) {
      OutChunk& chunk = c->outbox.front();
      if (chunk.not_before_ms > 0) {
        const std::int64_t wait = chunk.not_before_ms - now_ms();
        if (wait > 0) {
          c->flush_timer =
              wheel_.schedule(wait, [this, id] { flush_outbox(id); });
          if (c->want_write) {
            c->want_write = false;
            apply_interest(*c);
          }
          return;
        }
        chunk.not_before_ms = 0;
      }
      if (chunk.off >= chunk.bytes.size()) {
        const bool kill = chunk.kill_after;
        c->outbox.pop_front();
        if (kill) {
          conn_transport_dead(id);
          return;
        }
        continue;
      }
      std::size_t n = 0;
      const net::TcpStream::IoResult res = c->stream.send_some(
          chunk.bytes.data() + chunk.off, chunk.bytes.size() - chunk.off, n);
      if (res == net::TcpStream::IoResult::Ok) {
        chunk.off += n;
        continue;
      }
      if (res == net::TcpStream::IoResult::WouldBlock) {
        if (!c->want_write) {
          c->want_write = true;
          apply_interest(*c);
        }
        return;
      }
      conn_transport_dead(id);
      return;
    }
    if (c->want_write) {
      c->want_write = false;
      apply_interest(*c);
    }
    if (c->close_after_flush) {
      remove_conn(id);
      return;
    }
    maybe_reap_eof(id);
  }

  // --- teardown -------------------------------------------------------

  /// The transport under a conn is gone (EOF, error, injected kill, or
  /// poller-reported hangup). With a worker still executing the conn's
  /// frame the teardown is deferred to its completion; otherwise the
  /// session (if any) runs the ordinary end-of-life path.
  void conn_transport_dead(std::uint64_t id) {
    Conn* c = find(id);
    if (c == nullptr) return;
    if (c->inflight) {
      c->dead = true;
      apply_interest(*c);  // deregisters: no events until the completion
      return;
    }
    if (c->session != nullptr) {
      auto session = std::move(c->session);
      // Remove first: that invalidates the ConnHandle (alive=false) so
      // finish_session's detach/close can never poke the dying fd.
      remove_conn(id);
      service_.finish_session(session, service_.end_reason(session));
      return;
    }
    remove_conn(id);
  }

  void remove_conn(std::uint64_t id) {
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    Conn& c = *it->second;
    for (net::TimerWheel::TimerId* timer :
         {&c.hold_timer, &c.deadline_timer, &c.flush_timer}) {
      if (*timer != net::TimerWheel::kInvalidTimer) {
        wheel_.cancel(*timer);
        *timer = net::TimerWheel::kInvalidTimer;
      }
    }
    if (c.state == CState::Queued) {
      std::erase(accept_queue_, id);
      service_.stats_.record_dequeue();
    }
    const int fd = c.stream.fd();
    if (c.polled) poller_.remove(fd);
    {
      std::lock_guard<std::mutex> lock(c.shared->m);
      c.shared->alive = false;
      c.shared->fd = -1;
    }
    by_fd_.erase(fd);
    c.stream.close();
    const bool was_granted = c.granted;
    conns_.erase(it);
    if (was_granted) {
      --granted_;
      if (!draining_) grant_next();
    }
  }

  /// running_ went false: stop accepting, turn away the queue, end every
  /// idle conn. Conns with a worker in flight drain through the
  /// completion path; the loop exits once the table is empty.
  void begin_drain() {
    draining_ = true;
    if (listener_ != nullptr) {
      poller_.remove(listener_->fd());
      listener_->close();
    }
    if (admin_listener_ != nullptr) {
      poller_.remove(admin_listener_->fd());
      admin_listener_->close();
    }
    std::vector<std::uint64_t> ids;
    ids.reserve(conns_.size());
    for (const auto& [id, conn] : conns_) ids.push_back(id);
    for (const std::uint64_t id : ids) {
      Conn* c = find(id);
      if (c == nullptr || c->inflight) continue;
      switch (c->state) {
        case CState::Queued: {
          // Turn away connections still waiting for a slot.
          std::erase(accept_queue_, id);
          service_.stats_.record_dequeue();
          c->state = CState::Rejecting;
          Message err;
          err.type = MsgType::Error;
          err.text = "server shutting down";
          err.code = ErrorCode::ShuttingDown;
          c->close_after_flush = true;
          queue_payload(*c, encode(err), /*faults=*/false);
          flush_outbox(id);
          break;
        }
        case CState::Active: {
          auto session = std::move(c->session);
          remove_conn(id);
          if (session != nullptr) {
            service_.finish_session(session,
                                    DeliveryService::EndReason::Stopping);
          }
          break;
        }
        default:
          remove_conn(id);
          break;
      }
    }
  }

  // --- admin HTTP (same loop, own listener) ---------------------------

  void accept_admin_ready() {
    while (admin_listener_ != nullptr) {
      net::TcpStream stream;
      try {
        stream = admin_listener_->try_accept();
      } catch (const net::NetError&) {
        return;
      }
      if (!stream.valid()) return;
      stream.set_nonblocking(true);
      const std::uint64_t id = next_conn_id_++;
      auto conn = std::make_unique<Conn>();
      conn->id = id;
      conn->shared = std::make_shared<ConnShared>();
      conn->shared->fd = stream.fd();
      conn->shared->alive = true;
      conn->stream = std::move(stream);
      conn->state = CState::Http;
      conn->granted = false;  // the admin plane never consumes a session slot
      conn->reading = true;
      const int fd = conn->stream.fd();
      Conn& c = *conn;
      conns_[id] = std::move(conn);
      by_fd_[fd] = id;
      apply_interest(c);
      // A stalled scraper is dropped, same bound as the old accept-thread
      // recv timeout.
      c.deadline_timer =
          wheel_.schedule(AdminHttpServer::kRecvTimeoutMs, [this, id] {
            Conn* hc = find(id);
            if (hc != nullptr && hc->state == CState::Http && !hc->inflight &&
                !hc->close_after_flush) {
              remove_conn(id);
            }
          });
    }
  }

  void http_readable(std::uint64_t id) {
    Conn* c = find(id);
    while (true) {
      std::uint8_t buf[1024];
      std::size_t n = 0;
      const net::TcpStream::IoResult res =
          c->stream.recv_some(buf, sizeof buf, n);
      if (res == net::TcpStream::IoResult::Ok) {
        c->http_request.append(reinterpret_cast<const char*>(buf), n);
        if (c->http_request.size() > AdminHttpServer::kMaxRequestBytes) {
          const std::string r =
              admin_http_render(431, "text/plain", "request too large\n");
          c->reading = false;
          c->close_after_flush = true;
          queue_raw(*c, std::vector<std::uint8_t>(r.begin(), r.end()));
          apply_interest(*c);
          flush_outbox(id);
          return;
        }
        continue;
      }
      if (res == net::TcpStream::IoResult::WouldBlock) break;
      remove_conn(id);  // dropped mid-request; nothing to answer
      return;
    }
    if (c->http_request.find("\r\n\r\n") == std::string::npos &&
        c->http_request.find("\n\n") == std::string::npos) {
      return;  // header block still incomplete
    }
    if (c->deadline_timer != net::TimerWheel::kInvalidTimer) {
      wheel_.cancel(c->deadline_timer);
      c->deadline_timer = net::TimerWheel::kInvalidTimer;
    }
    c->reading = false;
    apply_interest(*c);
    c->inflight = true;
    FairScheduler::Item item;
    item.tenant = "";  // service-internal work
    item.cost = 1;
    std::string request = std::move(c->http_request);
    item.run = [this, id, request] {
      Completion comp;
      comp.conn_id = id;
      comp.kind = Completion::Kind::Http;
      try {
        comp.http = admin_http_respond(routes_, request);
      } catch (const std::exception& e) {
        worker_fatal(e);
        comp.kind = Completion::Kind::Fatal;
      }
      post(std::move(comp));
    };
    scheduler_.push(std::move(item));
  }

  // --- time-driven work ------------------------------------------------

  /// The old reaper thread as a self-re-arming wheel timer: evict idle
  /// sessions and purge expired parked ones a few times per period, so
  /// lag stays well under one extra period.
  void arm_reaper() {
    const DeliveryConfig& config = service_.config_;
    auto shortest = std::chrono::milliseconds::max();
    if (config.idle_timeout.count() > 0) {
      shortest = std::min(shortest, config.idle_timeout);
    }
    if (config.resume_window.count() > 0) {
      shortest = std::min(shortest, config.resume_window);
    }
    if (shortest == std::chrono::milliseconds::max()) return;
    reaper_period_ms_ = std::max<std::int64_t>(shortest.count() / 4, 5);
    wheel_.schedule(reaper_period_ms_, [this] { reaper_tick(); });
  }

  void reaper_tick() {
    const DeliveryConfig& config = service_.config_;
    if (config.idle_timeout.count() > 0) {
      service_.sessions_.evict_idle(config.idle_timeout);
    }
    if (config.resume_window.count() > 0) {
      service_.sessions_.purge_detached(config.resume_window);
    }
    wheel_.schedule(reaper_period_ms_, [this] { reaper_tick(); });
  }

  DeliveryService& service_;
  net::Poller poller_;
  net::WakeupFd wakeup_;
  net::TimerWheel wheel_;
  FairScheduler scheduler_;
  AdminRoutes routes_;

  std::unique_ptr<net::TcpListener> listener_;
  std::unique_ptr<net::TcpListener> admin_listener_;
  std::uint16_t admin_port_ = 0;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::unordered_map<int, std::uint64_t> by_fd_;
  std::uint64_t next_conn_id_ = 1;
  std::size_t granted_ = 0;  ///< conns holding a concurrent-session slot
  std::deque<std::uint64_t> accept_queue_;

  std::mutex completion_mutex_;
  std::vector<Completion> completions_;

  std::int64_t burst_window_start_ms_ = 0;
  std::size_t reject_burst_ = 0;
  bool burst_flight_fired_ = false;
  std::int64_t reaper_period_ms_ = 0;
  bool draining_ = false;
  std::vector<net::PollEvent> events_;
};

// ---------------------------------------------------------------------------
// DeliveryService
// ---------------------------------------------------------------------------

DeliveryService::DeliveryService(core::IpCatalog catalog,
                                 DeliveryConfig config)
    : catalog_(std::move(catalog)),
      config_(config),
      artifacts_(core::ArtifactStore::Config{config.artifact_budget_bytes},
                 &metrics_) {
  if (config_.workers == 0) config_.workers = 1;
  tracer_.set_enabled(config_.tracing);
  log_.set_level(config_.log_level);
  // Publish the resolved kernel thread count every session will run with.
  metrics_.gauge("sim.threads")
      .set(static_cast<std::int64_t>(
          resolve_sim_threads(config_.sim_threads)));
  // Binary identity + uptime for every scrape (process.uptime_seconds,
  // build.info{version,protocol}).
  metrics_.enable_process_metrics(kJhdlVersion, net::kProtocolVersion);
  // The service-level objectives every tenant is judged against. Latency
  // and errors page on sustained burn (classic 14x/6x multi-window
  // thresholds); warm_hit's budget makes its burn an indicator that can
  // never page (max burn 1/0.5 = 2 < 6) — cold builds are a cost signal,
  // not an outage.
  slo_.define({.name = "latency", .budget = 0.01});
  slo_.define({.name = "errors", .budget = 0.05});
  slo_.define({.name = "warm_hit", .budget = 0.5});
}

DeliveryService::~DeliveryService() { stop(); }

void DeliveryService::add_license(core::LicensePolicy policy) {
  std::lock_guard<std::mutex> lock(license_mutex_);
  licenses_[policy.customer] = std::move(policy);
}

std::uint16_t DeliveryService::start() {
  reactor_ = std::make_unique<DeliveryReactor>(*this);
  running_ = true;  // before the loop spins up: it checks running_ to drain
  const std::uint16_t port = reactor_->start();
  if (config_.admin_http) {
    log_.log(obs::LogLevel::Info, "admin.start",
             {{"port", std::to_string(reactor_->admin_port())}});
  }
  return port;
}

void DeliveryService::stop() {
  if (!running_.exchange(false)) {
    return;
  }
  if (reactor_ != nullptr) {
    reactor_->shutdown();
    reactor_.reset();
  }
  // Parked sessions have no conn and no transport; sweep them all once
  // every thread that could detach one has been joined.
  sessions_.purge_detached(std::chrono::nanoseconds(0));
}

std::uint16_t DeliveryService::admin_port() const {
  return (running_.load(std::memory_order_relaxed) && reactor_ != nullptr)
             ? reactor_->admin_port()
             : 0;
}

DeliveryService::HandshakeOutcome DeliveryService::process_first_frame(
    const std::vector<std::uint8_t>& raw, std::unique_ptr<net::Stream> stream) {
  HandshakeOutcome out;
  Message first;
  try {
    first = decode(net::frame_unwrap(raw));
  } catch (const std::exception&) {
    // Corrupt frame (FrameError) or undecodable payload: either way the
    // byte stream is aligned, so the handshake is retryable in place.
    stats_.record_malformed();
    Message err;
    err.type = MsgType::Error;
    err.text = "malformed frame";
    err.code = ErrorCode::MalformedFrame;
    out.payload = encode(err);
    out.retry = true;
    return out;
  }
  if (first.type == MsgType::Stats || first.type == MsgType::MetricsDump ||
      first.type == MsgType::TraceDump) {
    // Bare admin query: answer and close.
    Message reply;
    if (first.type == MsgType::Stats) {
      reply.type = MsgType::StatsReply;
      reply.text = stats_.to_json().dump();
    } else if (first.type == MsgType::MetricsDump) {
      reply.type = MsgType::MetricsReply;
      reply.text = metrics_.to_json().dump();
    } else {
      reply.type = MsgType::TraceReply;
      reply.text = tracer_.to_chrome_json().dump();
    }
    reply.seq = first.seq;
    out.payload = encode(reply);
    return out;
  }
  if (first.type == MsgType::Resume) {
    Message reply;
    {
      obs::ScopedSpan span(tracer_, "session.resume", first.trace);
      out.session = resume_session(first, stream, reply);
      if (out.session != nullptr) span.set_trace(out.session->trace_id);
    }
    out.payload = encode(reply);
    return out;
  }
  if (first.type != MsgType::Hello) {
    Message reply;
    reply.type = MsgType::Error;
    reply.text = "expected Hello to open a session";
    reply.code = ErrorCode::BadRequest;
    out.payload = encode(reply);
    return out;
  }
  if (config_.tenant_max_sessions > 0 &&
      sessions_.active_for(first.customer) >= config_.tenant_max_sessions) {
    // Per-tenant admission cap: refused before any elaboration work, with
    // the same labeled accounting as a global-capacity reject.
    stats_.record_rejection();
    stats_.record_admission_reject(first.customer);
    Message reply;
    reply.type = MsgType::Error;
    reply.code = ErrorCode::Overloaded;
    reply.text = "tenant '" + first.customer + "' is at its session cap (" +
                 std::to_string(config_.tenant_max_sessions) +
                 "); retry later";
    reply.seq = first.seq;
    log_.log(obs::LogLevel::Warn, "session.deny",
             {{"customer", first.customer}, {"reason", reply.text}},
             first.trace);
    out.payload = encode(reply);
    return out;
  }
  std::shared_ptr<Session> session;
  Message reply;
  {
    obs::ScopedSpan span(tracer_, "session.handshake", first.trace);
    reply = open_session(first, stream, session);
    // A client that sent no trace id gets the server-minted one.
    if (session != nullptr) span.set_trace(session->trace_id);
  }
  reply.seq = first.seq;
  if (session == nullptr) {
    log_.log(obs::LogLevel::Warn, "session.deny",
             {{"customer", first.customer}, {"reason", reply.text}},
             first.trace);
  }
  out.session = std::move(session);
  out.payload = encode(reply);
  return out;
}

Message DeliveryService::open_session(const Message& hello,
                                      std::unique_ptr<net::Stream>& stream,
                                      std::shared_ptr<Session>& session) {
  Message error;
  error.type = MsgType::Error;
  error.code = ErrorCode::BadRequest;
  if (hello.version < net::kMinProtocolVersion ||
      hello.version > net::kProtocolVersion) {
    error.text = "protocol version mismatch: server speaks v" +
                 std::to_string(net::kProtocolVersion) + " (v" +
                 std::to_string(net::kMinProtocolVersion) +
                 " tolerated), client sent v" +
                 std::to_string(hello.version) +
                 (hello.version == 1 ? " (old-format Hello)" : "") +
                 "; upgrade the client";
    error.code = ErrorCode::VersionMismatch;
    stats_.record_denial();
    return error;
  }
  {
    // Denial paths return from inside the scope, which still records the
    // span - a refused handshake shows its license-check time too.
    obs::ScopedSpan span(tracer_, "license.check", hello.trace);
    core::LicensePolicy license;
    {
      std::lock_guard<std::mutex> lock(license_mutex_);
      auto it = licenses_.find(hello.customer);
      if (it == licenses_.end()) {
        error.text = "unknown customer '" + hello.customer +
                     "': no license on file";
        error.code = ErrorCode::LicenseDenied;
        stats_.record_denial();
        return error;
      }
      license = it->second;
    }
    if (!license.features.has(core::Feature::BlackBoxSim)) {
      error.text = "license for '" + hello.customer + "' (" +
                   core::license_tier_name(license.tier) +
                   " tier) does not grant black-box simulation";
      error.code = ErrorCode::LicenseDenied;
      stats_.record_denial();
      return error;
    }
    if (!license.valid_on(config_.today)) {
      error.text = "license for '" + hello.customer + "' expired on day " +
                   std::to_string(license.expires_day);
      error.code = ErrorCode::LicenseDenied;
      stats_.record_denial();
      return error;
    }
  }
  auto generator = catalog_.find(hello.name);
  if (generator == nullptr) {
    error.text = "catalog has no IP named '" + hello.name + "'";
    stats_.record_denial();
    return error;
  }
  std::unique_ptr<core::BlackBoxModel> model;
  std::shared_ptr<const core::IpArtifact> artifact;
  bool was_hit = false;
  try {
    // Store hit vs cold build is only known once get_or_build returns,
    // so the span is renamed at the end. The store canonicalizes the
    // params itself (defaults filled, name-ordered content hash), so
    // aliased spellings of one configuration share one artifact, and
    // concurrent identical Hellos coalesce onto a single elaboration.
    obs::ScopedSpan span(tracer_, "session.elaborate", hello.trace);
    core::ParamMap params;
    for (const auto& [name, value] : hello.params) params.set(name, value);
    artifact = artifacts_.get_or_build(generator, params, &was_hit);
    if (was_hit) {
      stats_.record_program_share();
      span.set_name("session.cache_hit");
    } else {
      stats_.record_program_compile();
    }
    // Private value state bound to the artifact's shared program (and
    // island plan, when the threaded kernel could engage).
    model = artifact->instantiate(config_.sim_threads);
  } catch (const std::exception& e) {
    error.text = std::string("build failed: ") + e.what();
    stats_.record_denial();
    return error;
  }
  session = sessions_.open(hello.customer, hello.name, std::move(model),
                           std::move(stream));
  // The warm-hit SLO judges the artifact store from the tenant's seat:
  // a cold build is the "bad" event (slow first response).
  slo_.record("warm_hit", session->customer, was_hit);
  // Pin the artifact for the session's whole life - including parked
  // (resume_window) time - so store eviction can never free the program
  // a resumed session will replay against.
  session->artifact = std::move(artifact);
  session->protocol = std::min(hello.version, net::kProtocolVersion);
  if (config_.audit) {
    session->auditor =
        std::make_unique<attack::QueryAuditor>(config_.auditor, &metrics_);
  }
  // The trace id that follows this session's spans: the client's, or a
  // server-minted one for clients that sent none (pre-v5, or untraced).
  session->trace_id =
      hello.trace != 0 ? hello.trace : obs::TraceContext::mint().id;
  log_.log(obs::LogLevel::Info, "session.open",
           {{"customer", session->customer},
            {"module", session->module},
            {"cache", was_hit ? "hit" : "miss"}},
           session->trace_id);
  Json iface = session->model->interface_json();
  iface.set("customer", session->customer);
  iface.set("session", session->id);
  // Version negotiation (v4+): the session speaks the lower of the two
  // versions; a pre-v4 client never sees nor needs the field.
  iface.set("protocol", std::size_t{session->protocol});
  iface.set("token", session->token);
  if (session->protocol >= 5) {
    // v5: tell the client which trace id the server files spans under
    // (its own, echoed, or the server-minted one).
    iface.set("trace", obs::TraceContext::hex(session->trace_id));
  }
  Message reply;
  reply.type = MsgType::Iface;
  reply.text = iface.dump();
  if (session->protocol >= 5) reply.trace = session->trace_id;
  return reply;
}

std::shared_ptr<Session> DeliveryService::resume_session(
    const Message& resume, std::unique_ptr<net::Stream>& stream,
    Message& reply) {
  reply = Message{};
  reply.type = MsgType::Error;
  reply.seq = resume.seq;
  if (config_.resume_window.count() == 0) {
    reply.text = "this server does not keep detached sessions";
    reply.code = ErrorCode::UnknownSession;
    return nullptr;
  }
  std::shared_ptr<Session> session = sessions_.resume(resume.text);
  if (session == nullptr) {
    reply.text =
        "no resumable session for token (expired, evicted, or "
        "never issued)";
    reply.code = ErrorCode::UnknownSession;
    return nullptr;
  }
  sessions_.attach(session, std::move(stream));
  stats_.record_resume();
  Json iface = session->model->interface_json();
  iface.set("customer", session->customer);
  iface.set("session", session->id);
  iface.set("protocol", std::size_t{session->protocol});
  iface.set("token", session->token);
  iface.set("resumed", true);
  iface.set("cycles", session->model->cycle_count());
  iface.set("last_seq", std::size_t{session->last_seq});
  if (session->protocol >= 5) {
    iface.set("trace", obs::TraceContext::hex(session->trace_id));
  }
  reply.type = MsgType::Iface;
  reply.text = iface.dump();
  reply.seq = resume.seq;
  if (session->protocol >= 5) reply.trace = session->trace_id;
  return session;
}

DeliveryService::RequestOutcome DeliveryService::process_request(
    const std::shared_ptr<Session>& session,
    const std::vector<std::uint8_t>& raw) {
  // Observational state-machine bookkeeping; restored on every exit (the
  // manager overwrites it with Parked/Closing when the session ends).
  session->state.store(SessionState::InFlight, std::memory_order_relaxed);
  struct ReadyAgain {
    Session& s;
    ~ReadyAgain() {
      s.state.store(SessionState::Ready, std::memory_order_relaxed);
    }
  } ready_again{*session};

  RequestOutcome out;
  const std::size_t rx_bytes = raw.size();
  Message request;
  bool malformed = false;
  try {
    request = decode(net::frame_unwrap(raw));
  } catch (const net::FrameError&) {
    // The frame arrived but was corrupt (bad CRC / impossible length);
    // the byte stream is still aligned, so report it and keep the
    // session.
    malformed = true;
  } catch (const std::exception&) {
    // Integrity check passed but the payload does not decode: answer
    // with a typed Error instead of closing (the stream is aligned).
    malformed = true;
  }
  if (malformed) {
    stats_.record_malformed();
    Message err;
    err.type = MsgType::Error;
    err.text = "malformed frame";
    err.code = ErrorCode::MalformedFrame;
    out.payload = encode(err);
    return out;
  }
  if (request.type == MsgType::Bye) {
    out.bye = true;
    return out;
  }
  // Idempotent replay: a numbered request this session has already
  // executed (the client retried because our reply was lost) is
  // answered from the cache without touching the model.
  // Spans carry the request's own trace id when the client sent one,
  // else the session's (covers pre-v5 clients end to end).
  const std::uint64_t trace =
      request.trace != 0 ? request.trace : session->trace_id;
  if (request.seq != 0 && request.seq == session->last_seq &&
      !session->last_reply.empty()) {
    obs::ScopedSpan span(tracer_, "req.replay", trace);
    stats_.record_replay();
    session->touch();
    out.payload = session->last_reply;
    return out;
  }
  const auto t0 = std::chrono::steady_clock::now();
  Message reply;
  {
    obs::ScopedSpan span(tracer_, request_span_name(request.type), trace);
    if (request.seq != 0 && request.seq < session->last_seq) {
      // A frame-level duplicate of an older request; the client has
      // moved on and will discard this reply by its seq.
      span.set_name("req.stale");
      reply.type = MsgType::Error;
      reply.text = "stale request";
      reply.code = ErrorCode::BadRequest;
    } else if (request.type == MsgType::Stats) {
      // Admin counters are also queryable mid-session.
      reply.type = MsgType::StatsReply;
      reply.text = stats_.to_json().dump();
    } else if (request.type == MsgType::MetricsDump) {
      reply.type = MsgType::MetricsReply;
      reply.text = metrics_.to_json().dump();
    } else if (request.type == MsgType::TraceDump) {
      reply.type = MsgType::TraceReply;
      reply.text = tracer_.to_chrome_json().dump();
    } else {
      // Extraction audit (DeliveryConfig::audit): each evaluation shows
      // the session's FULL input image to the auditor before it reaches
      // the model, however the client staged it (Eval carries the image
      // inline; SetInput only updates it; Cycle/CycleBatch evaluate
      // whatever was staged - a batch counts as one observation).
      attack::Verdict verdict = attack::Verdict::Allow;
      if (session->auditor != nullptr) {
        if (request.type == MsgType::SetInput) {
          session->input_image[request.name] = request.value;
        } else if (request.type == MsgType::Eval ||
                   request.type == MsgType::Cycle ||
                   request.type == MsgType::CycleBatch) {
          for (const auto& [name, value] : request.values) {
            session->input_image[name] = value;
          }
          verdict = session->auditor->observe(session->input_image);
        } else if (request.type == MsgType::PatternBatch) {
          // A pattern batch is N independent evaluations: show each
          // pattern's input image to the auditor so batching cannot
          // smuggle an extraction sweep past the detector. The first
          // non-Allow verdict rejects the whole batch.
          const std::size_t n_patterns =
              request.series.empty()
                  ? 0
                  : request.series.begin()->second.size();
          for (std::size_t p = 0;
               p < n_patterns && verdict == attack::Verdict::Allow; ++p) {
            for (const auto& [name, stream] : request.series) {
              if (p < stream.size()) session->input_image[name] = stream[p];
            }
            verdict = session->auditor->observe(session->input_image);
          }
        }
      }
      if (verdict != attack::Verdict::Allow) {
        span.set_name("req.throttled");
        reply.type = MsgType::Error;
        reply.code = ErrorCode::Throttled;
        const bool parked = verdict == attack::Verdict::Park;
        stats_.record_escalation(session->customer, parked);
        if (parked) {
          reply.text =
              "query auditor: persistent extraction-like traffic; "
              "session parked";
          session->evicted.store(true, std::memory_order_relaxed);
          log_.log(obs::LogLevel::Error, "attack.park",
                   {{"customer", session->customer},
                    {"module", session->module}},
                   trace);
          flight_.trigger("attack.park");
        } else {
          reply.text =
              "query auditor: extraction-like traffic; cooling down";
          log_.log(obs::LogLevel::Warn, "attack.throttle",
                   {{"customer", session->customer},
                    {"module", session->module}},
                   trace);
        }
      } else {
        try {
          reply = net::dispatch_request(*session->model, request);
        } catch (const std::exception& e) {
          reply.type = MsgType::Error;
          reply.text = e.what();
          reply.code = ErrorCode::BadRequest;
        }
      }
    }
  }
  const auto micros =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  stats_.record_request(static_cast<std::uint64_t>(micros));
  session->touch();
  reply.seq = request.seq;
  if (session->protocol >= 5) reply.trace = trace;
  std::vector<std::uint8_t> payload = encode(reply);
  // Per-tenant attribution + SLO feed: every serviced request counts
  // against its customer's families and burn-rate windows (cached
  // pointers, relaxed atomics; the SLO record is a short mutex hop).
  const bool is_error = reply.type == MsgType::Error;
  session->tenant.requests->inc();
  if (is_error) session->tenant.errors->inc();
  session->tenant.latency_us->record(static_cast<std::uint64_t>(micros));
  session->tenant.rx_bytes->inc(rx_bytes);
  session->tenant.tx_bytes->inc(payload.size() + net::kFrameHeaderBytes);
  slo_.record("latency", session->customer,
              static_cast<std::uint64_t>(micros) <=
                  config_.slo_latency_threshold_us);
  slo_.record("errors", session->customer, !is_error);
  if (request.seq != 0 && request.seq > session->last_seq) {
    session->last_seq = request.seq;
    session->last_reply = payload;
  }
  out.payload = std::move(payload);
  return out;
}

DeliveryService::EndReason DeliveryService::end_reason(
    const std::shared_ptr<Session>& session) const {
  if (!running_.load(std::memory_order_relaxed)) return EndReason::Stopping;
  if (session->evicted.load(std::memory_order_relaxed)) {
    return EndReason::Evicted;
  }
  return EndReason::Transport;
}

void DeliveryService::finish_session(const std::shared_ptr<Session>& session,
                                     EndReason reason) {
  if (reason == EndReason::Transport && config_.resume_window.count() > 0) {
    // The transport died under a healthy session: park it for the client
    // to reclaim with Resume(token) instead of throwing the model away.
    log_.log(obs::LogLevel::Info, "session.park",
             {{"customer", session->customer},
              {"module", session->module}},
             session->trace_id);
    sessions_.detach(session);
    // Snapshot the postmortem bundle while the parked session's state is
    // hot: if the client never resumes, this is the record of why.
    flight_.trigger("session.park");
    return;
  }
  if (reason == EndReason::Evicted) {
    log_.log(obs::LogLevel::Warn, "session.evict",
             {{"customer", session->customer},
              {"module", session->module}},
             session->trace_id);
    flight_.trigger("session.evict");
  } else {
    log_.log(obs::LogLevel::Info, "session.close",
             {{"customer", session->customer},
              {"module", session->module}},
             session->trace_id);
  }
  sessions_.close(session);
}

namespace {

Json query_admin(std::uint16_t port, MsgType query_type, MsgType reply_type,
                 const char* what) {
  net::TcpStream stream = net::TcpStream::connect(port);
  Message query;
  query.type = query_type;
  stream.send_frame(encode(query));
  Message reply = decode(stream.recv_frame());
  if (reply.type != reply_type) {
    throw net::NetError(std::string(what) +
                        " query failed: unexpected reply");
  }
  return Json::parse(reply.text);
}

}  // namespace

Json query_stats(std::uint16_t port) {
  return query_admin(port, MsgType::Stats, MsgType::StatsReply, "stats");
}

Json query_metrics(std::uint16_t port) {
  return query_admin(port, MsgType::MetricsDump, MsgType::MetricsReply,
                     "metrics");
}

Json query_trace(std::uint16_t port) {
  return query_admin(port, MsgType::TraceDump, MsgType::TraceReply, "trace");
}

}  // namespace jhdl::server
