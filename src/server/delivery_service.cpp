#include "server/delivery_service.h"

#include <algorithm>

#include "core/feature.h"
#include "core/params.h"
#include "net/sim_server.h"

namespace jhdl::server {

using net::decode;
using net::encode;
using net::Message;
using net::MsgType;

DeliveryService::DeliveryService(core::IpCatalog catalog,
                                 DeliveryConfig config)
    : catalog_(std::move(catalog)), config_(config) {
  if (config_.workers == 0) config_.workers = 1;
}

DeliveryService::~DeliveryService() { stop(); }

void DeliveryService::add_license(core::LicensePolicy policy) {
  std::lock_guard<std::mutex> lock(license_mutex_);
  licenses_[policy.customer] = std::move(policy);
}

std::uint16_t DeliveryService::start() {
  listener_ = std::make_unique<net::TcpListener>(config_.listen_backlog);
  std::uint16_t port = listener_->port();
  running_ = true;
  acceptor_ = std::thread([this] { accept_loop(); });
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  if (config_.idle_timeout.count() > 0) {
    reaper_ = std::thread([this] { reaper_loop(); });
  }
  return port;
}

void DeliveryService::stop() {
  if (!running_.exchange(false)) {
    return;
  }
  if (listener_ != nullptr) listener_->close();  // unblocks accept()
  // Turn away connections still waiting for a worker.
  std::deque<net::TcpStream> orphans;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    orphans.swap(queue_);
  }
  for (net::TcpStream& stream : orphans) {
    stats_.record_dequeue();
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    send_error(stream, "server shutting down");
  }
  queue_cv_.notify_all();
  reaper_cv_.notify_all();
  // Fail workers blocked in a handshake recv (accepted connections whose
  // client never sent Hello).
  {
    std::lock_guard<std::mutex> lock(handshake_mutex_);
    for (net::TcpStream* stream : handshaking_) stream->shutdown();
  }
  // Fail the blocked recv of every live session; its worker then runs
  // the ordinary close path and exits.
  sessions_.shutdown_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (reaper_.joinable()) reaper_.join();
}

void DeliveryService::accept_loop() {
  while (running_) {
    net::TcpStream stream;
    try {
      stream = listener_->accept();
    } catch (const net::NetError&) {
      continue;  // listener closed during stop(), or transient error
    }
    const std::size_t capacity = config_.workers + config_.queue_capacity;
    // Reserve a slot; the (capacity+1)-th simultaneous connection gets an
    // immediate protocol Error instead of unbounded queueing.
    if (in_flight_.fetch_add(1, std::memory_order_relaxed) >= capacity) {
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
      stats_.record_rejection();
      send_error(stream,
                 "server saturated: " + std::to_string(capacity) +
                     " sessions in flight; retry later");
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      queue_.push_back(std::move(stream));
    }
    stats_.record_enqueue();
    queue_cv_.notify_one();
  }
}

void DeliveryService::worker_loop() {
  while (true) {
    net::TcpStream stream;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return !running_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (!running_) return;
        continue;
      }
      stream = std::move(queue_.front());
      queue_.pop_front();
    }
    stats_.record_dequeue();
    serve_connection(std::move(stream));
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DeliveryService::reaper_loop() {
  // Wake a few times per timeout so eviction lag stays well under one
  // extra timeout period.
  const auto period =
      std::max<std::chrono::milliseconds>(config_.idle_timeout / 4,
                                          std::chrono::milliseconds(5));
  std::unique_lock<std::mutex> lock(reaper_mutex_);
  while (running_) {
    reaper_cv_.wait_for(lock, period, [this] { return !running_.load(); });
    if (!running_) return;
    sessions_.evict_idle(config_.idle_timeout);
  }
}

void DeliveryService::serve_connection(net::TcpStream stream) {
  if (!register_handshake(&stream)) return;  // already stopping
  Message first;
  bool handshake_ok = true;
  try {
    first = decode(stream.recv_frame());
  } catch (const std::exception&) {
    handshake_ok = false;  // malformed or vanished before the handshake
  }
  unregister_handshake(&stream);
  if (!handshake_ok) return;
  if (first.type == MsgType::Stats) {
    // Bare admin query: answer and close.
    Message reply;
    reply.type = MsgType::StatsReply;
    reply.text = stats_.to_json().dump();
    try {
      stream.send_frame(encode(reply));
    } catch (const net::NetError&) {
    }
    return;
  }
  if (first.type != MsgType::Hello) {
    send_error(stream, "expected Hello to open a session");
    return;
  }
  std::shared_ptr<Session> session;
  Message reply = open_session(first, stream, session);
  if (session == nullptr) {
    try {
      stream.send_frame(encode(reply));
    } catch (const net::NetError&) {
    }
    return;
  }
  try {
    session->stream.send_frame(encode(reply));
  } catch (const net::NetError&) {
    sessions_.close(session);
    return;
  }
  serve_session(session);
  sessions_.close(session);
}

Message DeliveryService::open_session(const Message& hello,
                                      net::TcpStream& stream,
                                      std::shared_ptr<Session>& session) {
  Message error;
  error.type = MsgType::Error;
  if (hello.version != net::kProtocolVersion) {
    error.text = "protocol version mismatch: server speaks v" +
                 std::to_string(net::kProtocolVersion) + ", client sent v" +
                 std::to_string(hello.version) +
                 (hello.version == 1 ? " (old-format Hello)" : "") +
                 "; upgrade the client";
    stats_.record_denial();
    return error;
  }
  core::LicensePolicy license;
  {
    std::lock_guard<std::mutex> lock(license_mutex_);
    auto it = licenses_.find(hello.customer);
    if (it == licenses_.end()) {
      error.text = "unknown customer '" + hello.customer +
                   "': no license on file";
      stats_.record_denial();
      return error;
    }
    license = it->second;
  }
  if (!license.features.has(core::Feature::BlackBoxSim)) {
    error.text = "license for '" + hello.customer + "' (" +
                 core::license_tier_name(license.tier) +
                 " tier) does not grant black-box simulation";
    stats_.record_denial();
    return error;
  }
  if (!license.valid_on(config_.today)) {
    error.text = "license for '" + hello.customer + "' expired on day " +
                 std::to_string(license.expires_day);
    stats_.record_denial();
    return error;
  }
  auto generator = catalog_.find(hello.name);
  if (generator == nullptr) {
    error.text = "catalog has no IP named '" + hello.name + "'";
    stats_.record_denial();
    return error;
  }
  std::unique_ptr<core::BlackBoxModel> model;
  try {
    core::ParamMap params;
    for (const auto& [name, value] : hello.params) params.set(name, value);
    model = std::make_unique<core::BlackBoxModel>(
        generator->build(params.resolved(generator->params())),
        generator->name());
  } catch (const std::exception& e) {
    error.text = std::string("build failed: ") + e.what();
    stats_.record_denial();
    return error;
  }
  session = sessions_.open(hello.customer, hello.name, std::move(model),
                           std::move(stream));
  Json iface = session->model->interface_json();
  iface.set("customer", session->customer);
  iface.set("session", session->id);
  iface.set("protocol", std::size_t{net::kProtocolVersion});
  Message reply;
  reply.type = MsgType::Iface;
  reply.text = iface.dump();
  return reply;
}

void DeliveryService::serve_session(const std::shared_ptr<Session>& session) {
  while (running_ && !session->evicted.load(std::memory_order_relaxed)) {
    Message request;
    try {
      request = decode(session->stream.recv_frame());
    } catch (const std::exception&) {
      return;  // peer closed, evicted mid-recv, or malformed frame
    }
    if (request.type == MsgType::Bye) return;
    const auto t0 = std::chrono::steady_clock::now();
    Message reply;
    if (request.type == MsgType::Stats) {
      // Admin counters are also queryable mid-session.
      reply.type = MsgType::StatsReply;
      reply.text = stats_.to_json().dump();
    } else {
      try {
        reply = net::dispatch_request(*session->model, request);
      } catch (const std::exception& e) {
        reply.type = MsgType::Error;
        reply.text = e.what();
      }
    }
    const auto micros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    stats_.record_request(static_cast<std::uint64_t>(micros));
    session->touch();
    try {
      session->stream.send_frame(encode(reply));
    } catch (const net::NetError&) {
      return;
    }
  }
}

bool DeliveryService::register_handshake(net::TcpStream* stream) {
  std::lock_guard<std::mutex> lock(handshake_mutex_);
  if (!running_) return false;
  handshaking_.push_back(stream);
  return true;
}

void DeliveryService::unregister_handshake(net::TcpStream* stream) {
  std::lock_guard<std::mutex> lock(handshake_mutex_);
  std::erase(handshaking_, stream);
}

void DeliveryService::send_error(net::TcpStream& stream,
                                 const std::string& text) {
  // Consume the request the client (almost certainly) already sent,
  // bounded so a silent peer cannot stall the accept thread. Closing
  // with unread data in the receive buffer would RST the connection and
  // discard the very Error we are about to send.
  stream.set_recv_timeout(100);
  try {
    stream.recv_frame();
  } catch (const net::NetError&) {
    // Nothing arrived in time, or the peer is gone; reply regardless.
  }
  Message reply;
  reply.type = MsgType::Error;
  reply.text = text;
  try {
    stream.send_frame(encode(reply));
  } catch (const net::NetError&) {
    // Peer is already gone; nothing to tell it.
  }
  stream.shutdown();
}

Json query_stats(std::uint16_t port) {
  net::TcpStream stream = net::TcpStream::connect(port);
  Message query;
  query.type = MsgType::Stats;
  stream.send_frame(encode(query));
  Message reply = decode(stream.recv_frame());
  if (reply.type != MsgType::StatsReply) {
    throw net::NetError("stats query failed: unexpected reply");
  }
  return Json::parse(reply.text);
}

}  // namespace jhdl::server
