// Per-tenant fair scheduling for the delivery plane's worker pool.
//
// The reactor classifies every CPU-heavy unit of work (handshake
// elaboration, request execution) by the tenant that caused it and
// pushes it here; workers pop. Ordering across tenants is deficit round
// robin (Shreedhar & Varghese): the ring visits active tenants in turn,
// each visit grants the tenant `quantum` bytes of deficit, and a tenant
// may run work only while its accumulated deficit covers the work's
// byte cost. A tenant streaming 64 KiB CycleBatches therefore cannot
// starve one sending 40-byte Evals: the big frames drain the deficit
// quickly and the ring moves on, giving every tenant the same long-run
// byte share regardless of how requests are sized or how many
// connections a tenant opens.
//
// Within one tenant, work stays FIFO — per-session request ordering is
// already serialized upstream (the reactor dispatches one frame per
// session at a time), so FIFO here preserves it.
//
// The queue is the reactor/worker seam: push never blocks, pop blocks
// until work arrives or the scheduler closes. close() drains to
// nothing — after it, pop returns false once the backlog is empty.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace jhdl::server {

class FairScheduler {
 public:
  /// One schedulable unit: an opaque closure plus its accounting.
  struct Item {
    std::string tenant;        ///< customer id ("" = service-internal)
    std::size_t cost = 1;      ///< bytes of request this work represents
    std::function<void()> run;
  };

  /// `quantum` is the per-visit deficit grant in bytes. One quantum per
  /// ring visit should cover a typical small request so light tenants
  /// never wait a second revolution.
  explicit FairScheduler(std::size_t quantum = 4096)
      : quantum_(quantum == 0 ? 1 : quantum) {}

  /// Enqueue; wakes one waiting worker. Safe from any thread. Work
  /// pushed after close() is still delivered (drain-to-empty semantics).
  void push(Item item);

  /// Blocking DRR pop. Returns false only when the scheduler is closed
  /// AND the backlog is empty.
  bool pop(Item& out);

  /// Stop the pool: wakes every blocked pop. Pending work remains
  /// poppable so in-flight sessions can finish.
  void close();

  /// Total queued items (all tenants).
  std::size_t size() const;

  /// Observational: tenants currently holding queued work.
  std::size_t active_tenants() const;

 private:
  struct TenantQueue {
    std::deque<Item> items;
    std::size_t deficit = 0;
    bool in_ring = false;
  };

  /// Pick the next item per DRR. Caller holds mutex_ and has checked the
  /// backlog is nonempty.
  Item take_locked();

  const std::size_t quantum_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<std::string, TenantQueue> tenants_;
  std::vector<std::string> ring_;  ///< round-robin order of active tenants
  std::size_t cursor_ = 0;
  /// True while the cursor's tenant has already received this visit's
  /// quantum (multi-item visits span multiple pop() calls).
  bool visit_granted_ = false;
  std::size_t queued_ = 0;
  bool closed_ = false;
};

}  // namespace jhdl::server
