// ServerStats: lock-free counters for the multi-tenant delivery service.
//
// Every mutation is a relaxed atomic so the hot request path never takes
// a lock; request latencies go into power-of-two microsecond buckets from
// which p50/p95 are read back as bucket upper bounds (exact enough for
// capacity planning, immune to unbounded memory growth).
//
// The counters are exposed two ways: in-process via snapshot(), and over
// the wire as JSON through the Stats admin query (bench/ dumps that JSON
// as BENCH_delivery.json).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "util/json.h"

namespace jhdl::server {

/// Counters block for one DeliveryService instance.
class ServerStats {
 public:
  /// Plain-value copy of all counters at one instant.
  struct Snapshot {
    std::uint64_t sessions_opened = 0;
    std::uint64_t sessions_active = 0;   // gauge
    std::uint64_t sessions_evicted = 0;  // idle-timeout or admin eviction
    std::uint64_t sessions_closed = 0;   // orderly Bye / peer close
    std::uint64_t queued = 0;            // gauge: accepted, awaiting worker
    std::uint64_t requests = 0;
    std::uint64_t rejections = 0;  // saturation: accept queue full
    std::uint64_t denials = 0;     // license / version / catalog refusals
    std::uint64_t resumes = 0;     // sessions reattached via Resume
    std::uint64_t retries = 0;     // requests served from the replay cache
    std::uint64_t malformed_frames = 0;  // frames failing CRC / decode
    std::uint64_t programs_compiled = 0;  // elaboration-cache misses
    std::uint64_t program_shares = 0;     // sessions reusing a cached program
    double p50_request_us = 0.0;
    double p95_request_us = 0.0;

    Json to_json() const;
  };

  void record_open() {
    sessions_opened_.fetch_add(1, std::memory_order_relaxed);
    sessions_active_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_close(bool evicted) {
    sessions_active_.fetch_sub(1, std::memory_order_relaxed);
    (evicted ? sessions_evicted_ : sessions_closed_)
        .fetch_add(1, std::memory_order_relaxed);
  }
  void record_enqueue() { queued_.fetch_add(1, std::memory_order_relaxed); }
  void record_dequeue() { queued_.fetch_sub(1, std::memory_order_relaxed); }
  void record_rejection() {
    rejections_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_denial() { denials_.fetch_add(1, std::memory_order_relaxed); }
  void record_resume() { resumes_.fetch_add(1, std::memory_order_relaxed); }
  void record_replay() { retries_.fetch_add(1, std::memory_order_relaxed); }
  void record_malformed() {
    malformed_frames_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_program_compile() {
    programs_compiled_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_program_share() {
    program_shares_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Count one serviced request taking `micros` µs end to end.
  void record_request(std::uint64_t micros);

  Snapshot snapshot() const;
  Json to_json() const { return snapshot().to_json(); }

 private:
  // Bucket b holds latencies in [2^(b-1), 2^b) µs; bucket 0 holds < 1 µs.
  static constexpr std::size_t kBuckets = 40;

  std::atomic<std::uint64_t> sessions_opened_{0};
  std::atomic<std::uint64_t> sessions_active_{0};
  std::atomic<std::uint64_t> sessions_evicted_{0};
  std::atomic<std::uint64_t> sessions_closed_{0};
  std::atomic<std::uint64_t> queued_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> rejections_{0};
  std::atomic<std::uint64_t> denials_{0};
  std::atomic<std::uint64_t> resumes_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> malformed_frames_{0};
  std::atomic<std::uint64_t> programs_compiled_{0};
  std::atomic<std::uint64_t> program_shares_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> latency_buckets_{};
};

}  // namespace jhdl::server
