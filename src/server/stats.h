// ServerStats: the delivery service's counters, registered into the
// obs::MetricsRegistry instead of owned as a bespoke atomic block.
//
// The record_* API and the Stats wire query are unchanged from the
// pre-registry days (bench/ still dumps the same JSON keys into
// BENCH_delivery.json), but the storage now lives in named registry
// instruments — "server.sessions_opened", "server.request_us", ... — so
// the same numbers are also visible through MetricsDump (JSON) and the
// Prometheus-style text exposition, alongside whatever other subsystems
// register. Every mutation is still one relaxed atomic through a cached
// instrument pointer: registration takes the registry mutex once, in the
// constructor, never on the request path.
//
// Request latencies go into the registry histogram's power-of-two
// microsecond buckets; p50/p95/p99 are interpolated within the crossing
// bucket (obs::Histogram::percentile) rather than read back as bucket
// upper bounds.
//
// PR 9 adds the per-tenant dimension: alongside every service-wide flat
// instrument, labeled families keyed by {customer} attribute requests,
// errors, latency, wire bytes, sessions, simulator work, and attack
// escalations to the tenant that caused them. The flat instruments are
// untouched (same names, same wire bytes); the families are additive.
// tenant() resolves one customer's instrument block ONCE (mutex-guarded
// family lookups); the session caches the block and mutates lock-free
// per request, the same two-phase discipline as the flat pointers.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "util/json.h"

namespace jhdl::server {

/// Counters block for one DeliveryService instance, backed by `registry`.
class ServerStats {
 public:
  /// Registers every instrument under the "server." prefix. The registry
  /// must outlive this object.
  explicit ServerStats(obs::MetricsRegistry& registry);

  /// Plain-value copy of all counters at one instant.
  struct Snapshot {
    std::uint64_t sessions_opened = 0;
    std::uint64_t sessions_active = 0;   // gauge
    std::uint64_t sessions_evicted = 0;  // idle-timeout or admin eviction
    std::uint64_t sessions_closed = 0;   // orderly Bye / peer close
    std::uint64_t resume_expired = 0;    // parked past resume_window
    std::uint64_t queued = 0;            // gauge: accepted, awaiting worker
    std::uint64_t requests = 0;
    std::uint64_t rejections = 0;  // saturation: accept queue full
    std::uint64_t denials = 0;     // license / version / catalog refusals
    std::uint64_t resumes = 0;     // sessions reattached via Resume
    std::uint64_t retries = 0;     // requests served from the replay cache
    std::uint64_t malformed_frames = 0;  // frames failing CRC / decode
    std::uint64_t programs_compiled = 0;  // elaboration-cache misses
    std::uint64_t program_shares = 0;     // sessions reusing a cached program
    double p50_request_us = 0.0;
    double p95_request_us = 0.0;
    double p99_request_us = 0.0;

    Json to_json() const;
  };

  void record_open() {
    sessions_opened_->inc();
    sessions_active_->add();
  }
  void record_close(bool evicted) {
    sessions_active_->sub();
    (evicted ? sessions_evicted_ : sessions_closed_)->inc();
  }
  /// A parked session aged out of its resume window: closed, but counted
  /// apart from evictions (the client never misbehaved — it just never
  /// came back).
  void record_resume_expired() {
    sessions_active_->sub();
    resume_expired_->inc();
  }
  void record_enqueue() { queued_->add(); }
  void record_dequeue() { queued_->sub(); }
  void record_rejection() { rejections_->inc(); }
  void record_denial() { denials_->inc(); }
  void record_resume() { resumes_->inc(); }
  void record_replay() { retries_->inc(); }
  void record_malformed() { malformed_frames_->inc(); }
  void record_program_compile() { programs_compiled_->inc(); }
  void record_program_share() { program_shares_->inc(); }

  /// Count one serviced request taking `micros` µs end to end.
  void record_request(std::uint64_t micros) {
    requests_->inc();
    request_us_->record(micros);
  }

  /// Fold a closing session's simulator totals into the service-wide
  /// engine-attribution counters (sim.cycles / sim.interp.evals /
  /// sim.kernel.evals). Not part of the Stats snapshot — these live in
  /// the registry and surface through MetricsDump.
  void record_sim(std::uint64_t cycles, std::uint64_t interp_evals,
                  std::uint64_t kernel_evals) {
    sim_cycles_->inc(cycles);
    sim_interp_evals_->inc(interp_evals);
    sim_kernel_evals_->inc(kernel_evals);
  }

  /// One customer's cached instrument block: resolved once per session
  /// (mutex-guarded family lookups), mutated lock-free per request. The
  /// pointers stay valid for the registry's whole life.
  struct TenantInstruments {
    obs::Counter* requests = nullptr;   ///< req.count{customer}
    obs::Counter* errors = nullptr;     ///< req.errors{customer}
    obs::Histogram* latency_us = nullptr;  ///< req.latency_us{customer}
    obs::Counter* rx_bytes = nullptr;   ///< net.rx_bytes{customer}
    obs::Counter* tx_bytes = nullptr;   ///< net.tx_bytes{customer}
  };
  TenantInstruments tenant(const std::string& customer) {
    TenantInstruments t;
    t.requests = &req_count_family_->with({customer});
    t.errors = &req_errors_family_->with({customer});
    t.latency_us = &req_latency_family_->with({customer});
    t.rx_bytes = &rx_bytes_family_->with({customer});
    t.tx_bytes = &tx_bytes_family_->with({customer});
    return t;
  }

  /// session.opened{customer} — counted at SessionManager::open.
  void record_session_open_for(const std::string& customer) {
    session_opened_family_->with({customer}).inc();
  }

  /// The per-tenant side of record_sim: a closing session's simulator
  /// totals attributed to the customer that ran them
  /// (sim.tenant.*{customer}).
  void record_sim_tenant(const std::string& customer, std::uint64_t cycles,
                         std::uint64_t interp_evals,
                         std::uint64_t kernel_evals) {
    sim_tenant_cycles_->with({customer}).inc(cycles);
    sim_tenant_interp_->with({customer}).inc(interp_evals);
    sim_tenant_kernel_->with({customer}).inc(kernel_evals);
  }

  /// An admission rejection (saturation or overload cap) attributed to
  /// the tenant that was turned away: accept.rejected{customer}. Callers
  /// that cannot decode a Hello before rejecting pass "__unknown__".
  /// Additive to the flat record_rejection() counter.
  void record_admission_reject(const std::string& customer) {
    accept_rejected_family_->with({customer}).inc();
  }

  /// An auditor escalation attributed to the offending tenant:
  /// attack.tenant.throttled{customer}, plus attack.tenant.parked when
  /// the verdict parked the session. (The flat attack.* counters are the
  /// auditor's own.)
  void record_escalation(const std::string& customer, bool parked) {
    attack_throttled_family_->with({customer}).inc();
    if (parked) attack_parked_family_->with({customer}).inc();
  }

  Snapshot snapshot() const;
  Json to_json() const { return snapshot().to_json(); }

 private:
  obs::Counter* sessions_opened_;
  obs::Gauge* sessions_active_;
  obs::Counter* sessions_evicted_;
  obs::Counter* sessions_closed_;
  obs::Counter* resume_expired_;
  obs::Gauge* queued_;
  obs::Counter* requests_;
  obs::Counter* rejections_;
  obs::Counter* denials_;
  obs::Counter* resumes_;
  obs::Counter* retries_;
  obs::Counter* malformed_frames_;
  obs::Counter* programs_compiled_;
  obs::Counter* program_shares_;
  obs::Histogram* request_us_;
  obs::Counter* sim_cycles_;
  obs::Counter* sim_interp_evals_;
  obs::Counter* sim_kernel_evals_;

  /// Per-tenant families, all keyed {customer}.
  obs::CounterFamily* req_count_family_;
  obs::CounterFamily* req_errors_family_;
  obs::HistogramFamily* req_latency_family_;
  obs::CounterFamily* rx_bytes_family_;
  obs::CounterFamily* tx_bytes_family_;
  obs::CounterFamily* session_opened_family_;
  obs::CounterFamily* sim_tenant_cycles_;
  obs::CounterFamily* sim_tenant_interp_;
  obs::CounterFamily* sim_tenant_kernel_;
  obs::CounterFamily* attack_throttled_family_;
  obs::CounterFamily* attack_parked_family_;
  obs::CounterFamily* accept_rejected_family_;
};

}  // namespace jhdl::server
