#include "server/stats.h"

namespace jhdl::server {

ServerStats::ServerStats(obs::MetricsRegistry& registry)
    : sessions_opened_(&registry.counter("server.sessions_opened")),
      sessions_active_(&registry.gauge("server.sessions_active")),
      sessions_evicted_(&registry.counter("server.sessions_evicted")),
      sessions_closed_(&registry.counter("server.sessions_closed")),
      resume_expired_(&registry.counter("server.resume_expired")),
      queued_(&registry.gauge("server.queued")),
      requests_(&registry.counter("server.requests")),
      rejections_(&registry.counter("server.rejections")),
      denials_(&registry.counter("server.denials")),
      resumes_(&registry.counter("server.resumes")),
      retries_(&registry.counter("server.retries")),
      malformed_frames_(&registry.counter("server.malformed_frames")),
      programs_compiled_(&registry.counter("server.programs_compiled")),
      program_shares_(&registry.counter("server.program_shares")),
      request_us_(&registry.histogram("server.request_us")),
      sim_cycles_(&registry.counter("sim.cycles")),
      sim_interp_evals_(&registry.counter("sim.interp.evals")),
      sim_kernel_evals_(&registry.counter("sim.kernel.evals")),
      req_count_family_(&registry.counter_family("req.count", {"customer"})),
      req_errors_family_(
          &registry.counter_family("req.errors", {"customer"})),
      req_latency_family_(
          &registry.histogram_family("req.latency_us", {"customer"})),
      rx_bytes_family_(&registry.counter_family("net.rx_bytes", {"customer"})),
      tx_bytes_family_(&registry.counter_family("net.tx_bytes", {"customer"})),
      session_opened_family_(
          &registry.counter_family("session.opened", {"customer"})),
      sim_tenant_cycles_(
          &registry.counter_family("sim.tenant.cycles", {"customer"})),
      sim_tenant_interp_(
          &registry.counter_family("sim.tenant.interp_evals", {"customer"})),
      sim_tenant_kernel_(
          &registry.counter_family("sim.tenant.kernel_evals", {"customer"})),
      attack_throttled_family_(
          &registry.counter_family("attack.tenant.throttled", {"customer"})),
      attack_parked_family_(
          &registry.counter_family("attack.tenant.parked", {"customer"})),
      accept_rejected_family_(
          &registry.counter_family("accept.rejected", {"customer"})) {}

ServerStats::Snapshot ServerStats::snapshot() const {
  Snapshot s;
  s.sessions_opened = sessions_opened_->value();
  s.sessions_active = static_cast<std::uint64_t>(
      sessions_active_->value() < 0 ? 0 : sessions_active_->value());
  s.sessions_evicted = sessions_evicted_->value();
  s.sessions_closed = sessions_closed_->value();
  s.resume_expired = resume_expired_->value();
  s.queued =
      static_cast<std::uint64_t>(queued_->value() < 0 ? 0 : queued_->value());
  s.requests = requests_->value();
  s.rejections = rejections_->value();
  s.denials = denials_->value();
  s.resumes = resumes_->value();
  s.retries = retries_->value();
  s.malformed_frames = malformed_frames_->value();
  s.programs_compiled = programs_compiled_->value();
  s.program_shares = program_shares_->value();

  const obs::Histogram::Summary lat = request_us_->summarize();
  s.p50_request_us = lat.p50;
  s.p95_request_us = lat.p95;
  s.p99_request_us = lat.p99;
  return s;
}

Json ServerStats::Snapshot::to_json() const {
  Json j = Json::object();
  j.set("sessions_opened", sessions_opened);
  j.set("sessions_active", sessions_active);
  j.set("sessions_evicted", sessions_evicted);
  j.set("sessions_closed", sessions_closed);
  j.set("resume_expired", resume_expired);
  j.set("queued", queued);
  j.set("requests", requests);
  j.set("rejections", rejections);
  j.set("denials", denials);
  j.set("resumes", resumes);
  j.set("retries", retries);
  j.set("malformed_frames", malformed_frames);
  j.set("programs_compiled", programs_compiled);
  j.set("program_shares", program_shares);
  j.set("p50_request_us", p50_request_us);
  j.set("p95_request_us", p95_request_us);
  j.set("p99_request_us", p99_request_us);
  return j;
}

}  // namespace jhdl::server
