#include "server/stats.h"

#include <bit>

namespace jhdl::server {
namespace {

// Percentile over the log2 histogram: the upper bound (2^b µs) of the
// bucket where the cumulative count crosses `fraction` of the total.
double percentile_us(const std::array<std::uint64_t, 40>& buckets,
                     std::uint64_t total, double fraction) {
  if (total == 0) return 0.0;
  const double threshold = fraction * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) >= threshold) {
      return static_cast<double>(std::uint64_t{1} << b);
    }
  }
  return static_cast<double>(std::uint64_t{1} << (buckets.size() - 1));
}

}  // namespace

void ServerStats::record_request(std::uint64_t micros) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  std::size_t bucket = static_cast<std::size_t>(std::bit_width(micros));
  if (bucket >= kBuckets) bucket = kBuckets - 1;
  latency_buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

ServerStats::Snapshot ServerStats::snapshot() const {
  Snapshot s;
  s.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  s.sessions_active = sessions_active_.load(std::memory_order_relaxed);
  s.sessions_evicted = sessions_evicted_.load(std::memory_order_relaxed);
  s.sessions_closed = sessions_closed_.load(std::memory_order_relaxed);
  s.queued = queued_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.rejections = rejections_.load(std::memory_order_relaxed);
  s.denials = denials_.load(std::memory_order_relaxed);
  s.resumes = resumes_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.malformed_frames = malformed_frames_.load(std::memory_order_relaxed);
  s.programs_compiled = programs_compiled_.load(std::memory_order_relaxed);
  s.program_shares = program_shares_.load(std::memory_order_relaxed);

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    buckets[b] = latency_buckets_[b].load(std::memory_order_relaxed);
    total += buckets[b];
  }
  s.p50_request_us = percentile_us(buckets, total, 0.50);
  s.p95_request_us = percentile_us(buckets, total, 0.95);
  return s;
}

Json ServerStats::Snapshot::to_json() const {
  Json j = Json::object();
  j.set("sessions_opened", sessions_opened);
  j.set("sessions_active", sessions_active);
  j.set("sessions_evicted", sessions_evicted);
  j.set("sessions_closed", sessions_closed);
  j.set("queued", queued);
  j.set("requests", requests);
  j.set("rejections", rejections);
  j.set("denials", denials);
  j.set("resumes", resumes);
  j.set("retries", retries);
  j.set("malformed_frames", malformed_frames);
  j.set("programs_compiled", programs_compiled);
  j.set("program_shares", program_shares);
  j.set("p50_request_us", p50_request_us);
  j.set("p95_request_us", p95_request_us);
  return j;
}

}  // namespace jhdl::server
