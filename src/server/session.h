// Session bookkeeping for the multi-tenant delivery service.
//
// One Session = one customer connection bound to one freshly built
// BlackBoxModel. The worker that owns the connection is the only thread
// that touches the model; other threads (the idle reaper, admin eviction,
// service shutdown) interact with a session exclusively through its
// atomic activity stamp and Stream::shutdown(), which fails the worker's
// blocked recv and makes it run the ordinary close path.
//
// Protocol v3 adds DETACHED sessions: when a transport dies under a
// session and the service has a resume window, the worker parks the
// session (model, seq cache and all) instead of closing it. A client
// reconnecting with the session's token claims it back via
// SessionManager::resume(); the reaper purges parked sessions that
// outlive the window.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "attack/auditor.h"
#include "core/artifact.h"
#include "core/blackbox.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "server/stats.h"

namespace jhdl::server {

/// Explicit lifecycle of a session on the event-driven delivery plane.
/// Transitions are driven by the reactor loop and the SessionManager:
///
///   Handshake --Hello/Resume ok--> Ready
///   Ready     --request frame----> InFlight --reply sent--> Ready
///   Ready|InFlight --transport death + resume window--> Parked
///   Parked    --Resume claim-----> Ready
///   any       --Bye / evict / expiry / stop--> Closing (terminal)
///
/// The state is observational (admin/debug/tests): correctness still
/// rests on the atomic flags below (detached, evicted, ...), which
/// predate it and keep their exact semantics.
enum class SessionState : std::uint8_t {
  Handshake = 0,  ///< connection accepted, Hello/Resume not yet processed
  Ready,          ///< attached, no request outstanding
  InFlight,       ///< a request is executing on a worker
  Parked,         ///< detached; resumable until the window expires
  Closing,        ///< terminal: being torn down
};

const char* session_state_name(SessionState state);

/// Incremental assembly of length-framed wire bytes into complete raw
/// frames, for transports read in EAGAIN-bounded chunks. feed() appends
/// whatever recv_some produced; next() yields one complete raw frame
/// (header + payload, same bytes frame_unwrap expects) per call. The
/// length prefix is validated against kMaxFrameBytes BEFORE any payload
/// buffering, mirroring recv_frame_bytes' refusal to let a hostile
/// length drive the allocator.
class FrameAssembler {
 public:
  /// Append `n` raw bytes from the wire.
  void feed(const std::uint8_t* data, std::size_t n);

  /// Extract the next complete raw frame into `raw`. Returns false when
  /// the buffer holds only a partial frame. Throws NetError when the
  /// advertised payload length exceeds kMaxFrameBytes (the stream can no
  /// longer be trusted; the caller must kill the connection).
  bool next(std::vector<std::uint8_t>& raw);

  /// Bytes currently buffered (incomplete frame tail).
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix, compacted opportunistically
};

/// One live (or detached) co-simulation session.
struct Session {
  std::uint64_t id = 0;
  std::string customer;
  std::string module;
  /// Unguessable resume credential, issued in the Iface handshake reply.
  std::string token;
  /// Negotiated wire version: min(client Hello, kProtocolVersion). Echoed
  /// in the Iface "protocol" field, including on Resume.
  std::uint16_t protocol = net::kProtocolVersion;
  /// Trace id for this session's spans: the client's (protocol v5 Hello
  /// carried one) or minted server-side at Hello. Survives detach/resume
  /// so a reconnect continues the same trace.
  std::uint64_t trace_id = 0;
  std::unique_ptr<core::BlackBoxModel> model;
  /// The artifact-store snapshot this session's model was instantiated
  /// from. Holding it PINS the artifact for the session's whole life -
  /// attached or parked - so LRU eviction in the store can never free
  /// the compiled program a resumed session replays against. Released by
  /// SessionManager::close().
  std::shared_ptr<const core::IpArtifact> artifact;
  /// The transport currently bound to the session; null while detached.
  /// Guarded by stream_mutex for replacement/shutdown; the owning worker
  /// reads it without the lock (it is replaced only between workers).
  std::unique_ptr<net::Stream> stream;
  std::mutex stream_mutex;
  /// Idempotent-replay cache: highest executed request seq + its encoded
  /// reply. Only the worker currently attached to the session touches it,
  /// and it survives detach/resume - that is the whole point.
  std::uint64_t last_seq = 0;
  std::vector<std::uint8_t> last_reply;
  /// steady_clock time of the last serviced request, as nanosecond ticks.
  std::atomic<std::int64_t> last_active_ns{0};
  /// Set by the reaper / admin before shutting the stream down, so the
  /// worker can tell an eviction from an ordinary peer close.
  std::atomic<bool> evicted{false};
  /// Set by purge_detached when a parked session outlives its resume
  /// window, so close() counts it under resume_expired rather than
  /// folding it into sessions_evicted.
  std::atomic<bool> resume_expired{false};
  /// True while parked awaiting a Resume; set by detach(), cleared by
  /// resume() when a reconnecting client claims the session.
  std::atomic<bool> detached{false};
  /// When the session was parked, for the resume-window purge.
  std::atomic<std::int64_t> detached_at_ns{0};
  /// This customer's per-tenant instrument block (req.count{customer},
  /// ...), resolved once by SessionManager::open so the serve loop
  /// mutates per-tenant counters lock-free, exactly like the flat ones.
  ServerStats::TenantInstruments tenant;
  /// Extraction-attack auditor (null unless DeliveryConfig::audit). Only
  /// the owning worker touches it; like the replay cache it survives
  /// detach/resume, so a reconnect cannot launder a tripped session.
  std::unique_ptr<attack::QueryAuditor> auditor;
  /// The session's current full input image, maintained across SetInput
  /// so the auditor can judge each evaluation's complete stimulus vector
  /// no matter how the client staged it.
  std::map<std::string, BitVector> input_image;
  /// Lifecycle state (see SessionState). Advisory alongside the flags;
  /// SessionManager keeps it in step on detach/attach/close, the reactor
  /// on Ready <-> InFlight.
  std::atomic<SessionState> state{SessionState::Handshake};

  void touch() {
    last_active_ns.store(
        std::chrono::steady_clock::now().time_since_epoch().count(),
        std::memory_order_relaxed);
  }
};

/// Owns all live sessions of one DeliveryService; thread-safe.
class SessionManager {
 public:
  explicit SessionManager(ServerStats& stats) : stats_(stats) {}

  /// Register a new session (assigns id + resume token, stamps activity,
  /// counts it).
  std::shared_ptr<Session> open(std::string customer, std::string module,
                                std::unique_ptr<core::BlackBoxModel> model,
                                std::unique_ptr<net::Stream> stream);

  /// Unregister; counts evicted vs closed from session->evicted. Called
  /// by the owning worker once its serve loop ends. Idempotent.
  void close(const std::shared_ptr<Session>& session);

  /// Park the session after a transport death: drops the dead stream and
  /// marks it resumable. Called by the owning worker, which must not
  /// touch the session afterwards.
  void detach(const std::shared_ptr<Session>& session);

  /// Claim the detached session with this token for a reconnecting
  /// client. If the session is still attached (the client gave up before
  /// the server noticed the dead transport), its old stream is shut down
  /// and the claim waits up to `force_wait` for the owning worker to
  /// park it. Returns null if no session matches or the claim times out;
  /// on success the caller must bind a new stream via attach().
  std::shared_ptr<Session> resume(
      const std::string& token,
      std::chrono::milliseconds force_wait = std::chrono::milliseconds(500));

  /// Bind a fresh transport to a session claimed by resume().
  void attach(const std::shared_ptr<Session>& session,
              std::unique_ptr<net::Stream> stream);

  /// Close every session detached for longer than `older_than` (pass 0
  /// to sweep them all, e.g. at service stop). Returns how many.
  std::size_t purge_detached(std::chrono::nanoseconds older_than);

  /// Admin view of one live session.
  struct Info {
    std::uint64_t id;
    std::string customer;
    std::string module;
  };
  std::vector<Info> list() const;
  std::size_t active() const;

  /// Live sessions (attached or parked) belonging to one customer, for
  /// per-tenant admission caps.
  std::size_t active_for(const std::string& customer) const;

  /// Explicit admin eviction. Marks the session and shuts its stream
  /// down; the owning worker then closes it. A detached session is
  /// closed on the spot. False if the id is gone.
  bool evict(std::uint64_t id);

  /// Evict every ATTACHED session idle longer than `older_than`. Returns
  /// how many were marked. Called by the service's reaper thread.
  /// (Detached sessions age out via purge_detached instead.)
  std::size_t evict_idle(std::chrono::nanoseconds older_than);

  /// Shut down every live session's stream (service stop). Sessions are
  /// not marked evicted: shutdown closures count as ordinary closes.
  void shutdown_all();

 private:
  ServerStats& stats_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  std::uint64_t next_id_ = 1;
};

}  // namespace jhdl::server
