// Session bookkeeping for the multi-tenant delivery service.
//
// One Session = one customer connection bound to one freshly built
// BlackBoxModel. The worker that owns the connection is the only thread
// that touches the model; other threads (the idle reaper, admin eviction,
// service shutdown) interact with a session exclusively through its
// atomic activity stamp and TcpStream::shutdown(), which fails the
// worker's blocked recv and makes it run the ordinary close path.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/blackbox.h"
#include "net/socket.h"
#include "server/stats.h"

namespace jhdl::server {

/// One live co-simulation session.
struct Session {
  std::uint64_t id = 0;
  std::string customer;
  std::string module;
  std::unique_ptr<core::BlackBoxModel> model;
  net::TcpStream stream;
  /// steady_clock time of the last serviced request, as nanosecond ticks.
  std::atomic<std::int64_t> last_active_ns{0};
  /// Set by the reaper / admin before shutting the stream down, so the
  /// worker can tell an eviction from an ordinary peer close.
  std::atomic<bool> evicted{false};

  void touch() {
    last_active_ns.store(
        std::chrono::steady_clock::now().time_since_epoch().count(),
        std::memory_order_relaxed);
  }
};

/// Owns all live sessions of one DeliveryService; thread-safe.
class SessionManager {
 public:
  explicit SessionManager(ServerStats& stats) : stats_(stats) {}

  /// Register a new session (assigns the id, stamps activity, counts it).
  std::shared_ptr<Session> open(std::string customer, std::string module,
                                std::unique_ptr<core::BlackBoxModel> model,
                                net::TcpStream stream);

  /// Unregister; counts evicted vs closed from session->evicted. Called
  /// by the owning worker once its serve loop ends. Idempotent.
  void close(const std::shared_ptr<Session>& session);

  /// Admin view of one live session.
  struct Info {
    std::uint64_t id;
    std::string customer;
    std::string module;
  };
  std::vector<Info> list() const;
  std::size_t active() const;

  /// Explicit admin eviction. Marks the session and shuts its stream
  /// down; the owning worker then closes it. False if the id is gone.
  bool evict(std::uint64_t id);

  /// Evict every session idle longer than `older_than`. Returns how many
  /// were marked. Called by the service's reaper thread.
  std::size_t evict_idle(std::chrono::nanoseconds older_than);

  /// Shut down every live session's stream (service stop). Sessions are
  /// not marked evicted: shutdown closures count as ordinary closes.
  void shutdown_all();

 private:
  ServerStats& stats_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  std::uint64_t next_id_ = 1;
};

}  // namespace jhdl::server
