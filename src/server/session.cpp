#include "server/session.h"

#include <cstdio>
#include <random>
#include <thread>

namespace jhdl::server {
namespace {

std::string make_token(std::uint64_t id) {
  // Unguessable enough that one customer cannot claim another's detached
  // session: 64 random bits from the OS, plus the id for uniqueness even
  // if the entropy source misbehaves.
  std::random_device rd;
  const std::uint64_t word =
      (static_cast<std::uint64_t>(rd()) << 32) | rd();
  char buf[40];
  std::snprintf(buf, sizeof buf, "s%llu-%016llx",
                static_cast<unsigned long long>(id),
                static_cast<unsigned long long>(word));
  return std::string(buf);
}

std::uint32_t read_u32le(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

}  // namespace

const char* session_state_name(SessionState state) {
  switch (state) {
    case SessionState::Handshake:
      return "handshake";
    case SessionState::Ready:
      return "ready";
    case SessionState::InFlight:
      return "inflight";
    case SessionState::Parked:
      return "parked";
    case SessionState::Closing:
      return "closing";
  }
  return "?";
}

void FrameAssembler::feed(const std::uint8_t* data, std::size_t n) {
  // Compact once the dead prefix dominates, so a long-lived connection
  // does not grow its buffer with every frame.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

bool FrameAssembler::next(std::vector<std::uint8_t>& raw) {
  if (buffered() < net::kFrameHeaderBytes) return false;
  const std::uint32_t len = read_u32le(buf_.data() + pos_);
  if (len > net::kMaxFrameBytes) throw net::NetError("frame too large");
  const std::size_t total = net::kFrameHeaderBytes + len;
  if (buffered() < total) return false;
  raw.assign(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
             buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + total));
  pos_ += total;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return true;
}

std::shared_ptr<Session> SessionManager::open(
    std::string customer, std::string module,
    std::unique_ptr<core::BlackBoxModel> model,
    std::unique_ptr<net::Stream> stream) {
  auto session = std::make_shared<Session>();
  session->customer = std::move(customer);
  session->module = std::move(module);
  session->model = std::move(model);
  session->stream = std::move(stream);
  session->tenant = stats_.tenant(session->customer);
  // The Session object is born at the end of a successful handshake; the
  // Handshake state belongs to the pre-session connection.
  session->state.store(SessionState::Ready, std::memory_order_relaxed);
  session->touch();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    session->id = next_id_++;
    session->token = make_token(session->id);
    sessions_.emplace(session->id, session);
  }
  stats_.record_open();
  stats_.record_session_open_for(session->customer);
  return session;
}

void SessionManager::close(const std::shared_ptr<Session>& session) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (sessions_.erase(session->id) == 0) return;  // already closed
  }
  // No explicit stream close here: a concurrent evictor may still be
  // inside Stream::shutdown(). The fd closes in the Session destructor,
  // once every holder (worker, map, evictor) has dropped its reference.
  if (session->resume_expired.load(std::memory_order_relaxed)) {
    stats_.record_resume_expired();
  } else {
    stats_.record_close(session->evicted.load(std::memory_order_relaxed));
  }
  // The model dies with the session: fold its engine attribution into
  // the service-wide sim.* counters while the totals are still readable.
  if (session->model != nullptr) {
    const Simulator& sim = session->model->simulator();
    stats_.record_sim(sim.cycle_count(), sim.interp_eval_count(),
                      sim.kernel_eval_count());
    // Same totals, attributed to the tenant that ran them.
    stats_.record_sim_tenant(session->customer, sim.cycle_count(),
                             sim.interp_eval_count(),
                             sim.kernel_eval_count());
  }
  // Unpin the artifact only after the session is truly gone; until here a
  // parked session kept its program safe from store eviction.
  session->artifact.reset();
  session->state.store(SessionState::Closing, std::memory_order_relaxed);
}

void SessionManager::detach(const std::shared_ptr<Session>& session) {
  {
    std::lock_guard<std::mutex> lock(session->stream_mutex);
    session->stream.reset();  // the transport is dead; drop it now
  }
  session->state.store(SessionState::Parked, std::memory_order_relaxed);
  session->detached_at_ns.store(
      std::chrono::steady_clock::now().time_since_epoch().count(),
      std::memory_order_relaxed);
  // The detached flag is the ownership handover: once it is true, a
  // resume() claim may bind a new stream and a new worker takes over, so
  // it must be the LAST thing the old worker does to the session.
  session->detached.store(true, std::memory_order_release);
}

std::shared_ptr<Session> SessionManager::resume(
    const std::string& token, std::chrono::milliseconds force_wait) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, candidate] : sessions_) {
      if (candidate->token == token) {
        session = candidate;
        break;
      }
    }
    if (session == nullptr) return nullptr;
    if (session->evicted.load(std::memory_order_relaxed)) return nullptr;
    if (session->detached.load(std::memory_order_acquire)) {
      session->detached.store(false, std::memory_order_relaxed);  // claimed
      return session;
    }
  }
  // The server still believes the old transport is alive (the client gave
  // up first, e.g. on a request timeout). Kill it and wait - bounded -
  // for the owning worker to notice and park the session.
  {
    std::lock_guard<std::mutex> lock(session->stream_mutex);
    if (session->stream != nullptr) session->stream->shutdown();
  }
  const auto deadline = std::chrono::steady_clock::now() + force_wait;
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    std::lock_guard<std::mutex> lock(mutex_);
    if (sessions_.find(session->id) == sessions_.end()) return nullptr;
    if (session->detached.load(std::memory_order_acquire)) {
      session->detached.store(false, std::memory_order_relaxed);
      return session;
    }
  }
  return nullptr;  // old worker never let go; the client must start over
}

void SessionManager::attach(const std::shared_ptr<Session>& session,
                            std::unique_ptr<net::Stream> stream) {
  {
    std::lock_guard<std::mutex> lock(session->stream_mutex);
    session->stream = std::move(stream);
  }
  session->state.store(SessionState::Ready, std::memory_order_relaxed);
  session->touch();
}

std::size_t SessionManager::purge_detached(std::chrono::nanoseconds older_than) {
  const std::int64_t now =
      std::chrono::steady_clock::now().time_since_epoch().count();
  std::vector<std::shared_ptr<Session>> stale;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, session] : sessions_) {
      if (!session->detached.load(std::memory_order_acquire)) continue;
      const std::int64_t parked =
          session->detached_at_ns.load(std::memory_order_relaxed);
      if (now - parked >= older_than.count()) stale.push_back(session);
    }
  }
  for (const auto& session : stale) {
    // A resume() may have claimed the session between the scan and here;
    // re-check under the claim discipline (manager lock) before closing.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!session->detached.load(std::memory_order_acquire)) continue;
      session->detached.store(false, std::memory_order_relaxed);
    }
    session->resume_expired.store(true, std::memory_order_relaxed);
    close(session);
  }
  return stale.size();
}

std::vector<SessionManager::Info> SessionManager::list() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Info> out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    out.push_back({id, session->customer, session->module});
  }
  return out;
}

std::size_t SessionManager::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

std::size_t SessionManager::active_for(const std::string& customer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [id, session] : sessions_) {
    if (session->customer == customer) ++n;
  }
  return n;
}

bool SessionManager::evict(std::uint64_t id) {
  std::shared_ptr<Session> session;
  bool close_now = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return false;
    session = it->second;
    session->evicted.store(true, std::memory_order_relaxed);
    if (session->detached.load(std::memory_order_acquire)) {
      // No worker owns a detached session; claim and close it ourselves.
      session->detached.store(false, std::memory_order_relaxed);
      close_now = true;
    }
  }
  if (close_now) {
    close(session);
  } else {
    // The owning worker closes it once its blocked recv fails.
    std::lock_guard<std::mutex> lock(session->stream_mutex);
    if (session->stream != nullptr) session->stream->shutdown();
  }
  return true;
}

std::size_t SessionManager::evict_idle(std::chrono::nanoseconds older_than) {
  const std::int64_t now =
      std::chrono::steady_clock::now().time_since_epoch().count();
  std::vector<std::shared_ptr<Session>> stale;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, session] : sessions_) {
      if (session->detached.load(std::memory_order_acquire)) continue;
      const std::int64_t last =
          session->last_active_ns.load(std::memory_order_relaxed);
      if (now - last > older_than.count()) stale.push_back(session);
    }
  }
  for (const auto& session : stale) {
    session->evicted.store(true, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(session->stream_mutex);
    if (session->stream != nullptr) session->stream->shutdown();
  }
  return stale.size();
}

void SessionManager::shutdown_all() {
  std::vector<std::shared_ptr<Session>> live;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    live.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) live.push_back(session);
  }
  for (const auto& session : live) {
    std::lock_guard<std::mutex> lock(session->stream_mutex);
    if (session->stream != nullptr) session->stream->shutdown();
  }
}

}  // namespace jhdl::server
