#include "server/session.h"

namespace jhdl::server {

std::shared_ptr<Session> SessionManager::open(
    std::string customer, std::string module,
    std::unique_ptr<core::BlackBoxModel> model, net::TcpStream stream) {
  auto session = std::make_shared<Session>();
  session->customer = std::move(customer);
  session->module = std::move(module);
  session->model = std::move(model);
  session->stream = std::move(stream);
  session->touch();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    session->id = next_id_++;
    sessions_.emplace(session->id, session);
  }
  stats_.record_open();
  return session;
}

void SessionManager::close(const std::shared_ptr<Session>& session) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (sessions_.erase(session->id) == 0) return;  // already closed
  }
  // No explicit stream.close() here: a concurrent evictor may still be
  // inside stream.shutdown(). The fd closes in the Session destructor,
  // once every holder (worker, map, evictor) has dropped its reference.
  stats_.record_close(session->evicted.load(std::memory_order_relaxed));
}

std::vector<SessionManager::Info> SessionManager::list() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Info> out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    out.push_back({id, session->customer, session->module});
  }
  return out;
}

std::size_t SessionManager::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

bool SessionManager::evict(std::uint64_t id) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return false;
    session = it->second;
  }
  session->evicted.store(true, std::memory_order_relaxed);
  session->stream.shutdown();
  return true;
}

std::size_t SessionManager::evict_idle(std::chrono::nanoseconds older_than) {
  const std::int64_t now =
      std::chrono::steady_clock::now().time_since_epoch().count();
  std::vector<std::shared_ptr<Session>> stale;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, session] : sessions_) {
      const std::int64_t last =
          session->last_active_ns.load(std::memory_order_relaxed);
      if (now - last > older_than.count()) stale.push_back(session);
    }
  }
  for (const auto& session : stale) {
    session->evicted.store(true, std::memory_order_relaxed);
    session->stream.shutdown();
  }
  return stale.size();
}

void SessionManager::shutdown_all() {
  std::vector<std::shared_ptr<Session>> live;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    live.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) live.push_back(session);
  }
  for (const auto& session : live) session->stream.shutdown();
}

}  // namespace jhdl::server
