#include "sim/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace jhdl {

SimThreadPool::SimThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SimThreadPool::~SimThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void SimThreadPool::drain(Job& job) {
  for (;;) {
    const std::size_t t = job.next.fetch_add(1, std::memory_order_relaxed);
    if (t >= job.tasks) return;
    try {
      (*job.fn)(t);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (job.error == nullptr) job.error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (++job.finished == job.tasks) cv_done_.notify_all();
  }
}

void SimThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t seen = 0;
  for (;;) {
    cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    // Hold a reference to this generation's job: a worker that resumes
    // after the job completed drains an exhausted cursor and goes back to
    // sleep without ever touching the next generation's tasks.
    std::shared_ptr<Job> job = job_;
    lock.unlock();
    drain(*job);
    lock.lock();
  }
}

void SimThreadPool::run(std::size_t tasks,
                        const std::function<void(std::size_t)>& fn) {
  if (tasks == 0) return;
  if (workers_.empty() || tasks == 1) {
    for (std::size_t t = 0; t < tasks; ++t) fn(t);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->tasks = tasks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++generation_;
  }
  cv_start_.notify_all();
  drain(*job);
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return job->finished == job->tasks; });
  if (job->error != nullptr) std::rethrow_exception(job->error);
}

std::size_t resolve_sim_threads(std::size_t requested) {
  constexpr std::size_t kMax = 64;
  if (requested > 0) return std::min(requested, kMax);
  if (const char* env = std::getenv("JHDL_SIM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) {
      return std::min<std::size_t>(static_cast<std::size_t>(v), kMax);
    }
  }
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return std::min<std::size_t>(hw, 8);
}

}  // namespace jhdl
