// Testbench helper: a thin convenience layer over the simulator for
// stimulus/expect loops, used by unit tests, examples, and the applet
// framework's interactive simulation feature.
#pragma once

#include <cstdint>
#include <string>

#include "sim/simulator.h"

namespace jhdl {

/// Drives inputs and checks outputs with informative failure messages.
class Testbench {
 public:
  explicit Testbench(Simulator& sim) : sim_(sim) {}

  Testbench& put(Wire* w, std::uint64_t v) {
    sim_.put(w, v);
    return *this;
  }

  Testbench& put_signed(Wire* w, std::int64_t v) {
    sim_.put_signed(w, v);
    return *this;
  }

  Testbench& cycle(std::size_t n = 1) {
    sim_.cycle(n);
    return *this;
  }

  Testbench& propagate() {
    sim_.propagate();
    return *this;
  }

  std::uint64_t peek(Wire* w) { return sim_.get(w).to_uint(); }
  std::int64_t peek_signed(Wire* w) { return sim_.get(w).to_int(); }

  /// Throws SimError with a detailed message if the wire does not carry
  /// `expected`.
  Testbench& expect(Wire* w, std::uint64_t expected,
                    const std::string& context = "");

  /// Signed variant.
  Testbench& expect_signed(Wire* w, std::int64_t expected,
                           const std::string& context = "");

  std::size_t failures() const { return failures_; }

  /// When false (default), expect() throws on mismatch; when true it
  /// counts failures instead (soft-check mode for sweeps).
  void set_soft(bool soft) { soft_ = soft; }

 private:
  void fail(Wire* w, const std::string& got, const std::string& want,
            const std::string& context);
  Simulator& sim_;
  bool soft_ = false;
  std::size_t failures_ = 0;
};

}  // namespace jhdl
