// Island partition of a compiled program's combinational graph.
//
// An island is a connected component of the acyclic combinational ops over
// the relation "op A produces a net that op B consumes (or vice versa)".
// Flip-flop and port boundaries fall out of the definition for free: a
// flip-flop q net and an external (testbench-driven) net have no
// combinational writer, so they never merge the islands that read them -
// this is the Icarus vvp `island_tran` cut. Because nets have exactly one
// driver, two ops in different islands can never read or write the same
// comb-driven net, and every cut net (FF q, external input, constant
// pseudo-slot) is written only between sweeps by single-threaded code
// (clock commit, stimulus put). One parallel sweep per settle - each
// worker evaluating whole islands in the program's topological op order -
// is therefore race-free and produces bit-identical results for every
// thread count and every shard assignment: determinism by construction,
// not by locking.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace jhdl {

struct CompiledProgram;

/// Partition of a program's acyclic combinational ops into islands.
/// Immutable and session-shareable (by-index, like the program itself), so
/// the artifact store can memoize one plan per (module, params).
struct IslandPlan {
  /// Acyclic op indices grouped by island. Within an island the indices
  /// are ascending, so the program's (level, opcode) order restricted to
  /// the island is still a valid topological order.
  std::vector<std::uint32_t> op_order;
  /// CSR over `op_order`: island i owns [island_begin[i], island_begin[i+1]).
  /// Islands are numbered by their smallest op index (deterministic).
  std::vector<std::uint32_t> island_begin;

  std::size_t num_islands() const {
    return island_begin.empty() ? 0 : island_begin.size() - 1;
  }
  std::size_t island_size(std::size_t i) const {
    return island_begin[i + 1] - island_begin[i];
  }

  /// Deterministic longest-processing-time assignment of islands onto
  /// `k` shards: islands sorted by (size desc, id asc), each placed on the
  /// currently lightest shard (ties to the lowest shard index). Returns
  /// exactly `k` entries (some possibly empty when k > num_islands()).
  std::vector<std::vector<std::uint32_t>> shards(std::size_t k) const;
};

/// Partition `program`'s acyclic ops (union-find over comb-driven net
/// adjacency). Programs with combinational cycles keep their cyclic tail
/// out of the plan - callers must not use the parallel sweep on them.
std::shared_ptr<const IslandPlan> partition_islands(
    const CompiledProgram& program);

}  // namespace jhdl
