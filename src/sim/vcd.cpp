#include "sim/vcd.h"

#include "util/strings.h"

namespace jhdl {
namespace {

// VCD identifier codes: printable ASCII 33..126, multi-char when needed.
std::string vcd_id(std::size_t index) {
  std::string id;
  do {
    id.push_back(static_cast<char>(33 + index % 94));
    index /= 94;
  } while (index > 0);
  return id;
}

void write_value(std::ostream& os, const BitVector& v, const std::string& id) {
  if (v.width() == 1) {
    os << logic_char(v.get(0)) << id << "\n";
  } else {
    os << "b";
    for (std::size_t i = v.width(); i-- > 0;) os << logic_char(v.get(i));
    os << " " << id << "\n";
  }
}

}  // namespace

void write_vcd(std::ostream& os, const WaveformRecorder& rec,
               const std::string& module_name) {
  os << "$timescale 1ns $end\n";
  os << "$scope module " << sanitize_identifier(module_name) << " $end\n";
  const auto& traces = rec.traces();
  for (std::size_t i = 0; i < traces.size(); ++i) {
    os << "$var wire " << traces[i].wire->width() << " " << vcd_id(i) << " "
       << sanitize_identifier(traces[i].label) << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";

  for (std::size_t t = 0; t < rec.num_samples(); ++t) {
    os << "#" << t << "\n";
    for (std::size_t i = 0; i < traces.size(); ++i) {
      // Emit only changes after the first sample, like standard VCD.
      if (t == 0 || traces[i].samples[t] != traces[i].samples[t - 1]) {
        write_value(os, traces[i].samples[t], vcd_id(i));
      }
    }
  }
  os << "#" << rec.num_samples() << "\n";
}

}  // namespace jhdl
