// Compiled simulation kernel: the levelized primitive graph lowered into a
// flat structure-of-arrays program evaluated by a switch-dispatch loop.
//
// Why: the interpreter in simulator.cpp makes one virtual propagate() call
// per primitive per settle and re-evaluates the whole combinational
// subgraph even when a single input bit changed. Once the paper's applet
// has delivered the simulation model to the client, this kernel IS the hot
// path, so it is lowered once at elaboration:
//
//   - a dense Logic4 value array indexed by net id (the HWSystem arena
//     hands out ids 0..n-1 in construction order, so the array is exact);
//   - one opcode record per combinational primitive (AND/OR/XOR/NAND/NOR/
//     NOT/BUF/MUX/LUT/ROM/CONST plus a Fallback opcode that calls the
//     original virtual propagate() for exotic primitives), with all input
//     and output net ids in flat side arrays;
//   - precomputed fanout lists (CSR over net id -> reader op indices) and
//     per-op levels, so settling is event-driven: only the fan-out cone
//     of nets that actually changed is re-evaluated. Acyclic ops are
//     scheduled by (level, opcode) - equal-level ops are independent, so
//     grouping by opcode keeps a valid topological order while turning
//     the full-graph sweep into long same-opcode runs with one dispatch
//     per run instead of one indirect branch per op;
//   - flip-flops (FD/FDC/FDCE/FDRE) lowered into flat sample/commit
//     records so a clock edge is two tight array passes instead of two
//     virtual calls per flip-flop (RAMs, SRLs and BRAMs keep the virtual
//     two-phase protocol).
//
// Settling is adaptive: when only a few ops are dirty a linear scan of
// the per-op dirty bytes re-evaluates just the changed cone (marking a
// reader is one idempotent byte store; scan order is the topological op
// order, so a cascade only ever marks ops ahead of the scan); once the
// dirty set passes a quarter of the graph - at settle entry or mid-scan -
// the kernel finishes with the flat opcode-run sweep instead, which is
// cheaper than bookkeeping a change wave that touches everything (broad
// random stimulus, clock edges that flip most registers). Either way a
// settle evaluates each op at most once, so the evaluation count never
// exceeds the interpreter's full pass.
//
// The CompiledProgram is immutable and *shareable*: it references nets and
// primitives by id/ordinal, never by pointer, so every session elaborated
// from the same (module, params) pair can reuse one program while keeping
// its own CompiledKernel (value array + its own primitive instances for
// sequential state). The DeliveryService's elaboration cache relies on
// module generators being deterministic: identical parameters produce an
// identical net/primitive numbering.
//
// Net values live in the HWSystem's dense per-id array (hwsystem.h) and
// Net::value() reads that same storage, so the kernel evaluates *in place*:
// one byte store updates both the fast path and every Net-level observer
// (Wire::value(), waveform probes, testbenches) with no write-through pass.
//
// Graphs with combinational cycles keep the interpreter's bounded-fixpoint
// semantics: every op is evaluated per pass (same order, same eval counts,
// same oscillation diagnosis), just through the opcode dispatch instead of
// virtual calls.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hdl/hwsystem.h"
#include "hdl/primitive.h"
#include "util/logic.h"

namespace jhdl {

struct IslandPlan;
class SimThreadPool;

/// Opcode of one lowered combinational primitive.
enum class SimOp : std::uint8_t {
  And,       ///< n-ary AND, 0 dominates
  Or,        ///< n-ary OR, 1 dominates
  Xor,       ///< n-ary XOR, any X/Z input -> X
  Nand,      ///< n-ary AND then NOT
  Nor,       ///< n-ary OR then NOT
  Not,       ///< inverter
  Buf,       ///< route-through (Buf, Ibuf, Obuf)
  Mux,       ///< o = s ? i1 : i0 (Mux2, MuxCY, MuxF5 pin orders unified)
  Lut,       ///< 1..4-input truth table with X-agreement semantics
  Rom,       ///< Rom16: 4-bit address, W data bits; contents read live
  Const,     ///< constant driver (Gnd, Vcc, Constant)
  Fallback,  ///< anything else: call the primitive's virtual propagate()
};

/// One lowered primitive. Input/output net ids live in the program's flat
/// `inputs` / `outputs` arrays; `aux` is opcode-specific (Lut: INIT truth
/// table; Const: index into `const_values`; Rom/Fallback: index into
/// `live_prims`).
struct CompiledOp {
  SimOp op = SimOp::Fallback;
  std::uint16_t n_in = 0;
  std::uint16_t n_out = 0;
  std::uint16_t level = 0;  ///< levelized depth (0 for cyclic-graph ops)
  std::uint32_t in_begin = 0;
  std::uint32_t out_begin = 0;
  std::uint32_t aux = 0;
};

/// A flip-flop lowered to flat net ids: sampled and committed by the
/// kernel directly, no virtual dispatch. Variants without a CE / CLR pin
/// point at the kernel's constant One / Zero pseudo-net slots (indices
/// num_nets and num_nets + 1), so the sample loop is uniform and
/// branchless; clear dominates enable, both with the interpreter's X
/// rules (tech/ff.cpp).
struct CompiledFF {
  std::uint32_t d = 0;
  std::uint32_t ce = 0;
  std::uint32_t clr = 0;
  std::uint32_t q = 0;
  Logic4 init = Logic4::Zero;
};

/// The immutable, session-shareable compiled form of one elaborated
/// circuit. Everything is by net id / primitive ordinal so a second
/// deterministic elaboration of the same generator + params can bind it.
struct CompiledProgram {
  std::size_t num_nets = 0;
  std::size_t num_prims = 0;  ///< collect_primitives() size (bind check)
  bool has_comb_cycle = false;

  std::vector<CompiledOp> ops;  ///< acyclic prims sorted by (level, opcode)
                                ///< - a topological order - then cyclic
  std::size_t num_acyclic = 0;
  /// Same-opcode spans of the sorted acyclic prefix: the sweep dispatches
  /// once per run and evaluates each span in a tight specialized loop.
  struct Run {
    SimOp op = SimOp::Fallback;
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
  };
  std::vector<Run> runs;
  std::vector<std::uint32_t> inputs;       ///< flat input net ids
  std::vector<std::uint32_t> outputs;      ///< flat output net ids
  std::vector<std::uint64_t> const_values; ///< Const opcode payloads
  /// Primitive ordinals (index into collect_primitives() order) for ops
  /// that need the live instance at eval time (Rom contents can be
  /// watermarked after elaboration; Fallback calls virtual propagate()).
  std::vector<std::uint32_t> live_prims;

  /// Fanout CSR: ops reading net `id` are fanout[fanout_begin[id] ..
  /// fanout_begin[id+1]).
  std::vector<std::uint32_t> fanout_begin;
  std::vector<std::uint32_t> fanout;

  /// Flip-flops lowered to flat records (not in seq_prims/seq_outputs);
  /// `ff_prims` holds their ordinals for reset(), which still goes through
  /// the virtual protocol to keep the live objects coherent.
  std::vector<CompiledFF> ffs;
  std::vector<std::uint32_t> ff_prims;

  std::vector<std::uint32_t> seq_prims;    ///< ordinals of sequential prims
                                           ///< kept on the virtual protocol
  std::vector<std::uint32_t> seq_outputs;  ///< their output net ids (flat)
  /// Op indices owned by sequential primitives (async-read RAM / SRL tap
  /// logic): re-marked dirty after every clock edge because their output
  /// depends on internal state, not only on input nets.
  std::vector<std::uint32_t> seq_ops;

  std::uint16_t max_level = 0;
  /// FNV-1a over the structural arrays; equal programs from equal builds.
  std::uint64_t fingerprint = 0;

  /// True when this program can drive a simulator over `system` (same net
  /// count and primitive count - the determinism contract's cheap check).
  bool binds(const HWSystem& system, std::size_t prim_count) const {
    return num_nets == system.net_count() && num_prims == prim_count;
  }
};

/// Opt-in profiling counters for one CompiledKernel. Attach with
/// CompiledKernel::set_profile; detached (the default) the kernel pays
/// one nullable-pointer check per settle and per opcode run — never per
/// op — so the hot loops are untouched. Timings come from one
/// steady_clock read per run, so they are meaningful for sweeps over
/// hundreds of ops, not for single-op scans (which is why the scan path
/// counts evals, not nanoseconds).
struct KernelProfile {
  /// Cumulative sweep cost of one (level, opcode) run of the program
  /// (parallel to CompiledProgram::runs).
  struct RunStat {
    std::uint64_t ns = 0;     ///< time spent sweeping this run
    std::uint64_t evals = 0;  ///< ops evaluated through this run
  };
  std::vector<RunStat> runs;

  std::uint64_t settles_event = 0;     ///< event-driven (dirty-scan) settles
  std::uint64_t settles_sweep = 0;     ///< whole-graph flat-sweep settles
  std::uint64_t settles_fixpoint = 0;  ///< bounded-fixpoint settles (cyclic)
  /// Dirty scans whose cascade crossed the sweep threshold mid-scan and
  /// finished flat. High escalation rates mean the stimulus is broad and
  /// the sweep threshold is doing its job.
  std::uint64_t escalations = 0;
  std::uint64_t fixpoint_passes = 0;  ///< total passes over cyclic graphs
  /// Ops evaluated one-by-one by the dirty scan (the escalated remainder
  /// is attributed to `runs` instead).
  std::uint64_t scan_evals = 0;

  /// Per-island attribution of the parallel and multi-pattern sweeps
  /// (indexed by IslandPlan island id), so profiling stays truthful when
  /// the work no longer flows through one sweep stream.
  struct IslandStat {
    std::uint64_t evals = 0;  ///< op evaluations swept inside this island
  };
  std::vector<IslandStat> islands;
  std::uint64_t settles_parallel = 0;  ///< island-threaded full sweeps

  /// Multi-pattern (64-lane) kernel counters.
  std::uint64_t mp_settles = 0;      ///< 64-wide full sweeps
  std::uint64_t mp_words = 0;        ///< op-words evaluated (64 lanes each)
  /// LUT words whose input X/Z occupancy union was non-zero and fell back
  /// to the scalar four-state tables for the flagged lanes only.
  std::uint64_t mp_escalations = 0;
  std::uint64_t mp_lane_evals = 0;   ///< scalar lane evals those words cost
};

/// Lower-case mnemonic for `op` ("and", "mux", "fallback", ...): the
/// stable label used in profiling metric names (sim.kernel.sweep.<op>.*).
const char* sim_op_name(SimOp op);

/// Lower an elaborated circuit. `comb_order` / `comb_cyclic` / `sequential`
/// are the Simulator's levelization results; `all_prims` is the full
/// collect_primitives() order used for primitive ordinals.
std::shared_ptr<const CompiledProgram> compile_program(
    const HWSystem& system, const std::vector<Primitive*>& all_prims,
    const std::vector<Primitive*>& comb_order,
    const std::vector<Primitive*>& comb_cyclic,
    const std::vector<Primitive*>& sequential);

/// Per-session executor: evaluates over the HWSystem's dense net-value
/// array and owns the dirty-op worklist, binding a shared CompiledProgram
/// to one HWSystem instance.
class CompiledKernel {
 public:
  /// Binds `program` to `system`. `all_prims` must be the system's
  /// collect_primitives() order (same ordinals the program was compiled
  /// against). Throws SimError if the program does not fit.
  CompiledKernel(HWSystem& system,
                 std::shared_ptr<const CompiledProgram> program,
                 const std::vector<Primitive*>& all_prims);

  CompiledKernel(const CompiledKernel&) = delete;
  CompiledKernel& operator=(const CompiledKernel&) = delete;

  const std::shared_ptr<const CompiledProgram>& program() const {
    return program_;
  }

  /// External (testbench) write into the shared value array; marks the
  /// fanout cone dirty when the value actually changed.
  void write_net(Net* net, Logic4 value);

  /// Event-driven settling (bounded fixpoint when the graph has a
  /// combinational cycle). Throws SimError on oscillation.
  void settle();

  /// Full-sweep settling with the islands of `plan` distributed over
  /// `pool` per `shards` (see island_partition.h for why this is race-free
  /// and bit-exact for any thread count). Caller contract: the program has
  /// no combinational cycle and `plan`/`shards` were built from this
  /// kernel's program. No-op when nothing is dirty, like settle().
  void settle_parallel(const IslandPlan& plan,
                       const std::vector<std::vector<std::uint32_t>>& shards,
                       SimThreadPool& pool);

  /// Two-phase clock edge over the sequential primitives, then marks the
  /// cones of every sequential output that changed.
  void clock_edge();

  /// Power-on reset of sequential state + cone marking.
  void reset();

  bool dirty() const { return dirty_; }
  /// Combinational evaluations performed so far (event-driven: only ops
  /// actually re-evaluated; fixpoint: every op per pass, matching the
  /// interpreter).
  std::size_t eval_count() const { return eval_count_; }

  /// Attach (or detach with nullptr) a profiling sink. The caller owns
  /// `profile` and must keep it alive while attached; `profile->runs` is
  /// sized to the program's run table on attach. Counters accumulate
  /// across calls — zero the struct to restart.
  void set_profile(KernelProfile* profile);
  KernelProfile* profile() const { return profile_; }

  Logic4 value(const Net* net) const { return (*values_)[net->id()]; }

 private:
  /// Raw-pointer snapshot of the program/value arrays. Logic4 stores are
  /// byte stores, which the compiler must assume can alias the member
  /// vectors' internals; hoisting the base pointers into locals before a
  /// settle loop removes per-op reloads of six dependent pointers.
  struct EvalCtx;
  EvalCtx make_ctx();
  /// Evaluate op `i`; returns true when any output net changed. When
  /// `Mark` is set, changed outputs mark their fanout dirty.
  template <bool Mark>
  bool eval_one(const EvalCtx& c, std::uint32_t i);
  void mark_op(std::uint32_t i);
  void mark_fanout(std::uint32_t net_id);
  /// Wake the cone of a net written behind the kernel's back (sequential
  /// ov() writes land directly in the shared value array, so the new value
  /// is already visible - only the marking is needed, conservatively).
  void touch_net(std::uint32_t net_id);
  /// Linear scan of the dirty bytes in topological op order; escalates to
  /// sweep_range for the remainder once the marked set crosses the
  /// threshold mid-scan.
  void settle_event_driven();
  /// One flat pass over every acyclic op, event bookkeeping off. Taken
  /// when the dirty set is too large for marking to pay.
  void settle_sweep();
  /// Evaluate acyclic ops [from, to) through the opcode-run table.
  void sweep_range(const EvalCtx& c, std::uint32_t from, std::uint32_t to);
  void settle_fixpoint();

  std::shared_ptr<const CompiledProgram> program_;
  /// The bound HWSystem's dense net-value array (shared with Net::value();
  /// extended by two constant pseudo-slots for flip-flops missing CLR/CE).
  std::vector<Logic4>* values_ = nullptr;
  std::vector<Primitive*> live_prims_;   // per program_->live_prims
  std::vector<Primitive*> seq_;          // per program_->seq_prims
  std::vector<Primitive*> ff_prims_;     // per program_->ff_prims (reset)
  std::vector<Logic4> ff_state_;         // committed flip-flop state
  std::vector<Logic4> ff_next_;          // sampled next state
  std::vector<std::uint8_t> op_dirty_;
  std::size_t eval_count_ = 0;
  std::size_t marked_count_ = 0;   // ops currently marked dirty
  std::size_t sweep_threshold_ = 0;
  bool dirty_ = false;
  KernelProfile* profile_ = nullptr;  // null = profiling off (default)
};

}  // namespace jhdl
