#include "sim/waveform.h"

namespace jhdl {

WaveformRecorder::WaveformRecorder(Simulator& sim) : sim_(sim) {
  sim.add_cycle_observer([this](std::size_t) { sample(); });
}

void WaveformRecorder::watch(Wire* wire, std::string label) {
  Trace t;
  t.label = label.empty() ? wire->name() : std::move(label);
  t.wire = wire;
  // Backfill missing samples with X so all traces stay aligned.
  t.samples.assign(num_samples_, BitVector(wire->width(), Logic4::X));
  traces_.push_back(std::move(t));
}

void WaveformRecorder::sample() {
  for (Trace& t : traces_) {
    t.samples.push_back(sim_.get(t.wire));
  }
  ++num_samples_;
}

}  // namespace jhdl
