// Branchless four-state truth tables shared by the scalar compiled kernel
// (compiled_kernel.cpp) and the bit-parallel multi-pattern kernel
// (multi_pattern_kernel.cpp). The tables match util/logic.cpp exactly
// (Z behaves as X inside operators); the multi-pattern kernel needs the
// same scalar semantics for its per-lane escalation path, so there is one
// definition of each rule.
#pragma once

#include <array>
#include <cstdint>

#include "util/logic.h"

namespace jhdl::simtab {

constexpr Logic4 k0 = Logic4::Zero;
constexpr Logic4 k1 = Logic4::One;
constexpr Logic4 kX = Logic4::X;

// Four-state truth tables indexed by (a << 2) | b.
constexpr Logic4 kAndTable[16] = {
    k0, k0, k0, k0,   // a = 0
    k0, k1, kX, kX,   // a = 1
    k0, kX, kX, kX,   // a = X
    k0, kX, kX, kX};  // a = Z
constexpr Logic4 kOrTable[16] = {
    k0, k1, kX, kX,   // a = 0
    k1, k1, k1, k1,   // a = 1
    kX, k1, kX, kX,   // a = X
    kX, k1, kX, kX};  // a = Z
constexpr Logic4 kXorTable[16] = {
    k0, k1, kX, kX,   // a = 0
    k1, k0, kX, kX,   // a = 1
    kX, kX, kX, kX,   // a = X
    kX, kX, kX, kX};  // a = Z
constexpr Logic4 kNotTable[4] = {k1, k0, kX, kX};

inline Logic4 table2(const Logic4* table, Logic4 a, Logic4 b) {
  return table[(static_cast<std::size_t>(a) << 2) |
               static_cast<std::size_t>(b)];
}

/// o = s ? b : a with the Mux2/MuxCY/MuxF5 X rule: an undefined select
/// yields the data value only when both data inputs agree and are binary.
/// Precomputed over (s, a, b) because the select branch is a coin flip
/// under real data - one table load replaces two unpredictable branches.
constexpr std::array<Logic4, 64> make_mux_table() {
  std::array<Logic4, 64> t{};
  for (std::size_t s = 0; s < 4; ++s) {
    for (std::size_t a = 0; a < 4; ++a) {
      for (std::size_t b = 0; b < 4; ++b) {
        const Logic4 la = static_cast<Logic4>(a);
        const Logic4 lb = static_cast<Logic4>(b);
        Logic4 out;
        if (is_binary(static_cast<Logic4>(s))) {
          out = s == 1 ? lb : la;
        } else {
          out = (la == lb && is_binary(la)) ? la : Logic4::X;
        }
        t[(s << 4) | (a << 2) | b] = out;
      }
    }
  }
  return t;
}
constexpr std::array<Logic4, 64> kMuxTable = make_mux_table();

inline Logic4 mux3(Logic4 a, Logic4 b, Logic4 s) {
  return kMuxTable[(static_cast<std::size_t>(s) << 4) |
                   (static_cast<std::size_t>(a) << 2) |
                   static_cast<std::size_t>(b)];
}

/// Truth-table evaluation with the Lut X-agreement semantics: an undefined
/// select bit keeps the output defined only when both candidate halves of
/// the table agree.
inline Logic4 lut_eval(std::uint32_t init, const Logic4* in, std::uint8_t k,
                       std::uint8_t bit, std::uint32_t addr) {
  if (bit == k) {
    return to_logic(((init >> addr) & 1u) != 0);
  }
  const Logic4 v = in[bit];
  if (is_binary(v)) {
    return lut_eval(init, in, k, bit + 1,
                    addr | (to_bool(v) ? (1u << bit) : 0u));
  }
  const Logic4 lo = lut_eval(init, in, k, bit + 1, addr);
  const Logic4 hi = lut_eval(init, in, k, bit + 1, addr | (1u << bit));
  return lo == hi ? lo : Logic4::X;
}

/// Flip-flop sample decision over (clr, ce), branchless: 0 = take D,
/// 1 = hold state, 2 = clear to Zero, 3 = X. Clear dominates enable and
/// a non-binary control pin poisons the sample (tech/ff.cpp rules).
constexpr std::array<std::uint8_t, 16> make_ff_sel_table() {
  std::array<std::uint8_t, 16> t{};
  for (std::size_t clr = 0; clr < 4; ++clr) {
    for (std::size_t ce = 0; ce < 4; ++ce) {
      std::uint8_t sel = 0;
      if (clr == 1) {
        sel = 2;
      } else if (clr >= 2) {
        sel = 3;
      } else if (ce == 0) {
        sel = 1;
      } else if (ce == 1) {
        sel = 0;
      } else {
        sel = 3;
      }
      t[(clr << 2) | ce] = sel;
    }
  }
  return t;
}
constexpr std::array<std::uint8_t, 16> kFfSelTable = make_ff_sel_table();

}  // namespace jhdl::simtab
