// Fixed worker pool for the island-threaded settle loop.
//
// A settle is one fork/join over a handful of shard tasks, repeated for
// every clock edge of a batch, so the pool keeps its workers parked on a
// condition variable between jobs instead of spawning threads. run() is a
// barrier: the calling thread participates as a worker (so `threads = N`
// costs N-1 OS threads) and returns only when every task has finished.
// Each job carries its own atomic task cursor, so a worker that wakes late
// from a previous generation can never claim work from the next one.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace jhdl {

class SimThreadPool {
 public:
  /// A pool of `threads` total lanes (>= 1); one is the caller inside
  /// run(), the rest are parked worker threads.
  explicit SimThreadPool(std::size_t threads);
  ~SimThreadPool();

  SimThreadPool(const SimThreadPool&) = delete;
  SimThreadPool& operator=(const SimThreadPool&) = delete;

  std::size_t size() const { return workers_.size() + 1; }

  /// Run fn(0) .. fn(tasks-1), any order, across the pool; returns when
  /// all have completed. Rethrows the first task exception (after every
  /// task has finished). Not reentrant: one run() at a time.
  void run(std::size_t tasks, const std::function<void(std::size_t)>& fn);

 private:
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t tasks = 0;
    std::atomic<std::size_t> next{0};
    std::size_t finished = 0;  // guarded by the pool mutex
    std::exception_ptr error;  // first failure, guarded by the pool mutex
  };

  void worker_loop();
  /// Claim-and-execute loop shared by workers and the run() caller.
  void drain(Job& job);

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::shared_ptr<Job> job_;        // guarded by mu_
  std::uint64_t generation_ = 0;    // guarded by mu_
  bool stop_ = false;               // guarded by mu_
  std::vector<std::thread> workers_;
};

/// Resolve the kernel thread count: `requested` when non-zero, else the
/// JHDL_SIM_THREADS env var, else hardware_concurrency clamped to 8
/// (island sweeps stop scaling long before a big machine runs out of
/// cores). Always >= 1, capped at 64.
std::size_t resolve_sim_threads(std::size_t requested);

}  // namespace jhdl
