#include "sim/simulator.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <unordered_map>

#include "hdl/error.h"
#include "hdl/visitor.h"
#include "sim/multi_pattern_kernel.h"

namespace jhdl {

SimMode default_sim_mode() {
  const char* env = std::getenv("JHDL_SIM_MODE");
  if (env != nullptr) {
    const std::string v(env);
    if (v == "interpreted" || v == "interp" || v == "0") {
      return SimMode::Interpreted;
    }
    if (v == "compiled" || v == "1") return SimMode::Compiled;
  }
  return SimMode::Compiled;
}

Simulator::Simulator(HWSystem& system, SimOptions options)
    : system_(system),
      mode_(options.mode),
      threads_(resolve_sim_threads(options.threads)),
      parallel_min_ops_(options.parallel_min_ops) {
  elaborate();
  if (mode_ == SimMode::Compiled) {
    if (options.program != nullptr &&
        options.program->binds(system_, all_prims_.size())) {
      program_ = std::move(options.program);
    } else {
      // No program supplied, or a cached one that does not fit this
      // circuit (determinism contract violated): compile fresh.
      program_ = compile_program(system_, all_prims_, comb_order_,
                                 comb_cyclic_, sequential_);
    }
    kernel_ =
        std::make_unique<CompiledKernel>(system_, program_, all_prims_);
    islands_ = std::move(options.islands);
  }
}

Simulator::~Simulator() = default;

void Simulator::elaborate() {
  all_prims_ = collect_primitives(system_);
  std::vector<Primitive*> comb;
  for (Primitive* p : all_prims_) {
    if (p->sequential()) sequential_.push_back(p);
    // Primitives with a combinational input->output path take part in
    // settling; this includes async-read RAMs, which are also clocked.
    if (p->has_comb_path()) comb.push_back(p);
  }

  // Kahn levelization of the combinational subgraph. Edges run from a net's
  // driving primitive to each combinational sink; in-degrees and adjacency
  // are built from the same sink lists so the counts always agree.
  std::unordered_map<Primitive*, std::size_t> indegree;
  indegree.reserve(comb.size());
  for (Primitive* p : comb) indegree[p] = 0;

  for (Primitive* q : comb) {
    for (Net* n : q->output_nets()) {
      for (Primitive* sink : n->sinks()) {
        auto it = indegree.find(sink);
        if (it != indegree.end()) ++it->second;
      }
    }
  }

  std::vector<Primitive*> ready;
  for (Primitive* p : comb) {
    if (indegree[p] == 0) ready.push_back(p);
  }
  comb_order_.reserve(comb.size());
  while (!ready.empty()) {
    Primitive* q = ready.back();
    ready.pop_back();
    comb_order_.push_back(q);
    for (Net* n : q->output_nets()) {
      for (Primitive* sink : n->sinks()) {
        auto it = indegree.find(sink);
        if (it != indegree.end() && --it->second == 0) {
          ready.push_back(sink);
        }
      }
    }
  }
  if (comb_order_.size() != comb.size()) {
    has_comb_cycle_ = true;
    for (Primitive* p : comb) {
      if (indegree[p] != 0) comb_cyclic_.push_back(p);
    }
  }
  dirty_ = true;
}

void Simulator::settle() {
  if (kernel_ != nullptr) {
    kernel_->settle();
    return;
  }
  if (!has_comb_cycle_) {
    for (Primitive* p : comb_order_) {
      p->propagate();
    }
    eval_count_ += comb_order_.size();
    dirty_ = false;
    return;
  }
  // Combinational cycle present: iterate every combinational primitive to a
  // fixpoint. Bounded by the primitive count (longest possible dependency
  // chain) plus slack; non-convergence means an oscillating loop.
  const std::size_t max_passes = comb_order_.size() + comb_cyclic_.size() + 2;
  std::vector<Logic4> before;
  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    bool changed = false;
    auto eval = [&](Primitive* p) {
      // Compare output values around the evaluation to detect change.
      const auto& outs = p->output_nets();
      before.clear();
      for (Net* n : outs) before.push_back(n->value());
      p->propagate();
      ++eval_count_;
      for (std::size_t i = 0; i < outs.size(); ++i) {
        if (outs[i]->value() != before[i]) changed = true;
      }
    };
    for (Primitive* p : comb_order_) eval(p);
    for (Primitive* p : comb_cyclic_) eval(p);
    if (!changed) {
      dirty_ = false;
      return;
    }
  }
  throw SimError("combinational loop did not settle (oscillation)");
}

void Simulator::put(Wire* wire, const BitVector& value) {
  if (wire == nullptr) throw HdlError("put on null wire");
  if (value.width() != wire->width()) {
    throw HdlError("put width mismatch on wire '" + wire->name() + "': wire " +
                   std::to_string(wire->width()) + " bits, value " +
                   std::to_string(value.width()) + " bits");
  }
  bool changed = false;
  for (std::size_t i = 0; i < wire->width(); ++i) {
    Net* n = wire->net(i);
    if (n->driver_kind() != DriverKind::External) n->bind_external();
    const Logic4 v = value.get(i);
    if (kernel_ != nullptr) {
      kernel_->write_net(n, v);
    } else if (n->value() != v) {
      n->set_value(v);
      changed = true;
    }
  }
  // Only a value that actually changed requires re-settling; a repeated
  // put of the same stimulus is a no-op.
  if (changed) dirty_ = true;
}

void Simulator::put(Wire* wire, std::uint64_t value) {
  put(wire, BitVector::from_uint(wire->width(), value));
}

void Simulator::put_signed(Wire* wire, std::int64_t value) {
  put(wire, BitVector::from_int(wire->width(), value));
}

BitVector Simulator::get(Wire* wire) {
  if (wire == nullptr) throw HdlError("get on null wire");
  propagate();
  return wire->value();
}

void Simulator::propagate() {
  if (kernel_ != nullptr) {
    kernel_->settle();
    return;
  }
  if (dirty_) settle();
}

void Simulator::step(bool parallel) {
  if (kernel_ != nullptr) {
    if (parallel) {
      kernel_->settle_parallel(*islands_, shards_, *pool_);
      kernel_->clock_edge();
      eval_count_ += 2 * sequential_.size();
      kernel_->settle_parallel(*islands_, shards_, *pool_);
    } else {
      kernel_->settle();
      kernel_->clock_edge();
      eval_count_ += 2 * sequential_.size();
      kernel_->settle();
    }
  } else {
    if (dirty_) settle();
    for (Primitive* p : sequential_) p->pre_clock();
    for (Primitive* p : sequential_) p->post_clock();
    eval_count_ += 2 * sequential_.size();
    dirty_ = true;
    settle();
  }
  ++cycle_count_;
  for (auto& fn : observers_) fn(cycle_count_);
}

void Simulator::cycle(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) step(/*parallel=*/false);
}

bool Simulator::parallel_ready() {
  if (kernel_ == nullptr || has_comb_cycle_ || threads_ < 2) return false;
  if (program_->num_acyclic < parallel_min_ops_) return false;
  if (!parallel_init_) {
    parallel_init_ = true;
    if (islands_ == nullptr) islands_ = partition_islands(*program_);
    if (islands_->num_islands() >= 2) {
      shards_ = islands_->shards(
          std::min(threads_, islands_->num_islands()));
      pool_ = std::make_unique<SimThreadPool>(shards_.size());
    }
  }
  return pool_ != nullptr && shards_.size() >= 2;
}

std::vector<std::vector<BitVector>> Simulator::cycle_batch(
    std::size_t n, const std::vector<BatchStimulus>& stimulus,
    const std::vector<Wire*>& probes) {
  for (const auto& s : stimulus) {
    if (s.wire == nullptr) throw HdlError("cycle_batch on null wire");
    if (s.values.size() != n) {
      throw HdlError("cycle_batch stimulus for wire '" + s.wire->name() +
                     "' has " + std::to_string(s.values.size()) +
                     " values for " + std::to_string(n) + " cycles");
    }
  }
  const bool parallel = parallel_ready();
  // One batch-level fence: probe net-id views are hoisted out of the
  // cycle loop and samples read the dense value array directly - after
  // step() the kernel is settled, so no per-probe propagate() is needed.
  std::vector<std::vector<std::uint32_t>> probe_ids;
  probe_ids.reserve(probes.size());
  for (Wire* w : probes) {
    if (w == nullptr) throw HdlError("cycle_batch on null probe");
    probe_ids.push_back(w->ids());
  }
  const std::vector<Logic4>& values = system_.net_values();
  std::vector<std::vector<BitVector>> result(probes.size());
  for (auto& column : result) column.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    for (const auto& s : stimulus) put(s.wire, s.values[t]);
    step(parallel);
    for (std::size_t p = 0; p < probes.size(); ++p) {
      const std::vector<std::uint32_t>& ids = probe_ids[p];
      BitVector v(ids.size());
      for (std::size_t i = 0; i < ids.size(); ++i) v.set(i, values[ids[i]]);
      result[p].push_back(std::move(v));
    }
  }
  return result;
}

std::vector<std::vector<BitVector>> Simulator::pattern_sweep(
    std::size_t n_patterns, const std::vector<PatternStimulus>& stimulus,
    std::size_t cycles, const std::vector<Wire*>& probes) {
  for (const auto& s : stimulus) {
    if (s.wire == nullptr) throw HdlError("pattern_sweep on null wire");
    if (s.values.size() != n_patterns) {
      throw HdlError("pattern_sweep stimulus for wire '" + s.wire->name() +
                     "' has " + std::to_string(s.values.size()) +
                     " values for " + std::to_string(n_patterns) +
                     " patterns");
    }
    for (const BitVector& v : s.values) {
      if (v.width() != s.wire->width()) {
        throw HdlError("pattern_sweep width mismatch on wire '" +
                       s.wire->name() + "': wire " +
                       std::to_string(s.wire->width()) + " bits, value " +
                       std::to_string(v.width()) + " bits");
      }
    }
    // Claim external driver slots up front (and fail identically to put()
    // on primitive-driven wires) - the packed path writes lane planes, not
    // Net values, so the claim cannot ride on put().
    for (Net* n : s.wire->nets()) {
      if (n->driver_kind() != DriverKind::External) n->bind_external();
    }
  }
  std::vector<std::vector<std::uint32_t>> probe_ids;
  probe_ids.reserve(probes.size());
  for (Wire* w : probes) {
    if (w == nullptr) throw HdlError("pattern_sweep on null probe");
    probe_ids.push_back(w->ids());
  }
  std::vector<std::vector<BitVector>> result(probes.size());
  for (auto& column : result) column.reserve(n_patterns);

  constexpr std::size_t kLanes = MultiPatternKernel::kLanes;
  if (kernel_ != nullptr && MultiPatternKernel::supports(*program_)) {
    // Packed path: 64 patterns per machine word. Unlisted inputs already
    // hold their entry values because the kernel broadcasts the scalar
    // array at construction; the scalar array itself is never touched, so
    // the entry values survive for the caller.
    propagate();  // broadcast from a settled scalar state
    MultiPatternKernel mp(program_, all_prims_, system_.net_values());
    if (profile_ != nullptr) mp.set_profile(profile_.get());
    const bool parallel = parallel_ready();
    for (std::size_t base = 0; base < n_patterns; base += kLanes) {
      const std::size_t lanes = std::min(kLanes, n_patterns - base);
      mp.reset();
      for (const auto& s : stimulus) {
        const std::vector<std::uint32_t> ids = s.wire->ids();
        for (std::size_t bit = 0; bit < ids.size(); ++bit) {
          std::uint64_t v0 = 0;
          std::uint64_t v1 = 0;
          for (std::size_t l = 0; l < kLanes; ++l) {
            // Spare lanes replicate the last real pattern (their results
            // are never read).
            const std::size_t p = base + std::min(l, lanes - 1);
            const auto u =
                static_cast<std::uint32_t>(s.values[p].get(bit));
            v0 |= static_cast<std::uint64_t>(u & 1u) << l;
            v1 |= static_cast<std::uint64_t>((u >> 1) & 1u) << l;
          }
          mp.poke(ids[bit], v0, v1);
        }
      }
      if (parallel) {
        mp.settle(*pool_, *islands_, shards_);
      } else {
        mp.settle();
      }
      for (std::size_t c = 0; c < cycles; ++c) {
        mp.clock_edge();
        if (parallel) {
          mp.settle(*pool_, *islands_, shards_);
        } else {
          mp.settle();
        }
      }
      for (std::size_t p = 0; p < probes.size(); ++p) {
        const std::vector<std::uint32_t>& ids = probe_ids[p];
        for (std::size_t l = 0; l < lanes; ++l) {
          BitVector v(ids.size());
          for (std::size_t i = 0; i < ids.size(); ++i) {
            v.set(i, mp.peek_lane(ids[i], l));
          }
          result[p].push_back(std::move(v));
        }
      }
    }
    reset();
    return result;
  }

  // Scalar fallback (interpreted mode, Fallback ops, RAM/SRL state or a
  // comb cycle): per-pattern reset + put + cycle loop, same observable
  // semantics. Entry values of the stimulus wires are restored at the end
  // so both paths leave identical state.
  std::vector<BitVector> entry_values;
  entry_values.reserve(stimulus.size());
  for (const auto& s : stimulus) entry_values.push_back(s.wire->value());
  for (std::size_t p = 0; p < n_patterns; ++p) {
    reset();
    for (const auto& s : stimulus) put(s.wire, s.values[p]);
    if (cycles > 0) {
      cycle(cycles);
    } else {
      propagate();
    }
    for (std::size_t i = 0; i < probes.size(); ++i) {
      result[i].push_back(get(probes[i]));
    }
  }
  for (std::size_t i = 0; i < stimulus.size(); ++i) {
    put(stimulus[i].wire, entry_values[i]);
  }
  reset();
  return result;
}

void Simulator::reset() {
  if (kernel_ != nullptr) {
    kernel_->reset();
    kernel_->settle();
    return;
  }
  for (Primitive* p : sequential_) p->reset();
  dirty_ = true;
  settle();
}

std::size_t Simulator::eval_count() const {
  return eval_count_ + (kernel_ != nullptr ? kernel_->eval_count() : 0);
}

std::size_t Simulator::kernel_eval_count() const {
  return kernel_ != nullptr ? kernel_->eval_count() : 0;
}

void Simulator::enable_profiling() {
  if (profile_ != nullptr) return;
  profile_ = std::make_unique<KernelProfile>();
  if (kernel_ != nullptr) kernel_->set_profile(profile_.get());
}

void Simulator::export_metrics(obs::MetricsRegistry& registry) const {
  registry.gauge("sim.cycles").set(static_cast<std::int64_t>(cycle_count_));
  registry.gauge("sim.threads").set(static_cast<std::int64_t>(threads_));
  registry.gauge("sim.interp.evals")
      .set(static_cast<std::int64_t>(eval_count_));
  registry.gauge("sim.kernel.evals")
      .set(static_cast<std::int64_t>(kernel_eval_count()));
  if (profile_ == nullptr) return;
  const KernelProfile& p = *profile_;
  registry.gauge("sim.kernel.settles_event")
      .set(static_cast<std::int64_t>(p.settles_event));
  registry.gauge("sim.kernel.settles_sweep")
      .set(static_cast<std::int64_t>(p.settles_sweep));
  registry.gauge("sim.kernel.settles_fixpoint")
      .set(static_cast<std::int64_t>(p.settles_fixpoint));
  registry.gauge("sim.kernel.escalations")
      .set(static_cast<std::int64_t>(p.escalations));
  registry.gauge("sim.kernel.fixpoint_passes")
      .set(static_cast<std::int64_t>(p.fixpoint_passes));
  registry.gauge("sim.kernel.scan_evals")
      .set(static_cast<std::int64_t>(p.scan_evals));
  registry.gauge("sim.kernel.settles_parallel")
      .set(static_cast<std::int64_t>(p.settles_parallel));
  registry.gauge("sim.kernel.islands")
      .set(static_cast<std::int64_t>(p.islands.size()));
  std::uint64_t island_evals = 0;
  for (const auto& is : p.islands) island_evals += is.evals;
  registry.gauge("sim.kernel.island_evals")
      .set(static_cast<std::int64_t>(island_evals));
  registry.gauge("sim.mp.settles")
      .set(static_cast<std::int64_t>(p.mp_settles));
  registry.gauge("sim.mp.words").set(static_cast<std::int64_t>(p.mp_words));
  registry.gauge("sim.mp.escalations")
      .set(static_cast<std::int64_t>(p.mp_escalations));
  registry.gauge("sim.mp.lane_evals")
      .set(static_cast<std::int64_t>(p.mp_lane_evals));
  // Runs of the same opcode at different levels are separate program
  // entries; the exported view aggregates them per opcode mnemonic.
  constexpr std::size_t kOps =
      static_cast<std::size_t>(SimOp::Fallback) + 1;
  std::uint64_t op_ns[kOps] = {};
  std::uint64_t op_evals[kOps] = {};
  std::uint64_t total_ns = 0;
  if (program_ != nullptr) {
    const std::size_t n =
        std::min(p.runs.size(), program_->runs.size());
    for (std::size_t i = 0; i < n; ++i) {
      const auto op = static_cast<std::size_t>(program_->runs[i].op);
      op_ns[op] += p.runs[i].ns;
      op_evals[op] += p.runs[i].evals;
      total_ns += p.runs[i].ns;
    }
  }
  registry.gauge("sim.kernel.sweep_ns")
      .set(static_cast<std::int64_t>(total_ns));
  for (std::size_t op = 0; op < kOps; ++op) {
    if (op_ns[op] == 0 && op_evals[op] == 0) continue;
    const std::string base =
        std::string("sim.kernel.sweep.") +
        sim_op_name(static_cast<SimOp>(op));
    registry.gauge(base + ".ns").set(static_cast<std::int64_t>(op_ns[op]));
    registry.gauge(base + ".evals")
        .set(static_cast<std::int64_t>(op_evals[op]));
  }
}

void Simulator::add_cycle_observer(std::function<void(std::size_t)> fn) {
  observers_.push_back(std::move(fn));
}

}  // namespace jhdl
