#include "sim/simulator.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <unordered_map>

#include "hdl/error.h"
#include "hdl/visitor.h"

namespace jhdl {

SimMode default_sim_mode() {
  const char* env = std::getenv("JHDL_SIM_MODE");
  if (env != nullptr) {
    const std::string v(env);
    if (v == "interpreted" || v == "interp" || v == "0") {
      return SimMode::Interpreted;
    }
    if (v == "compiled" || v == "1") return SimMode::Compiled;
  }
  return SimMode::Compiled;
}

Simulator::Simulator(HWSystem& system, SimOptions options)
    : system_(system), mode_(options.mode) {
  elaborate();
  if (mode_ == SimMode::Compiled) {
    if (options.program != nullptr &&
        options.program->binds(system_, all_prims_.size())) {
      program_ = std::move(options.program);
    } else {
      // No program supplied, or a cached one that does not fit this
      // circuit (determinism contract violated): compile fresh.
      program_ = compile_program(system_, all_prims_, comb_order_,
                                 comb_cyclic_, sequential_);
    }
    kernel_ =
        std::make_unique<CompiledKernel>(system_, program_, all_prims_);
  }
}

Simulator::~Simulator() = default;

void Simulator::elaborate() {
  all_prims_ = collect_primitives(system_);
  std::vector<Primitive*> comb;
  for (Primitive* p : all_prims_) {
    if (p->sequential()) sequential_.push_back(p);
    // Primitives with a combinational input->output path take part in
    // settling; this includes async-read RAMs, which are also clocked.
    if (p->has_comb_path()) comb.push_back(p);
  }

  // Kahn levelization of the combinational subgraph. Edges run from a net's
  // driving primitive to each combinational sink; in-degrees and adjacency
  // are built from the same sink lists so the counts always agree.
  std::unordered_map<Primitive*, std::size_t> indegree;
  indegree.reserve(comb.size());
  for (Primitive* p : comb) indegree[p] = 0;

  for (Primitive* q : comb) {
    for (Net* n : q->output_nets()) {
      for (Primitive* sink : n->sinks()) {
        auto it = indegree.find(sink);
        if (it != indegree.end()) ++it->second;
      }
    }
  }

  std::vector<Primitive*> ready;
  for (Primitive* p : comb) {
    if (indegree[p] == 0) ready.push_back(p);
  }
  comb_order_.reserve(comb.size());
  while (!ready.empty()) {
    Primitive* q = ready.back();
    ready.pop_back();
    comb_order_.push_back(q);
    for (Net* n : q->output_nets()) {
      for (Primitive* sink : n->sinks()) {
        auto it = indegree.find(sink);
        if (it != indegree.end() && --it->second == 0) {
          ready.push_back(sink);
        }
      }
    }
  }
  if (comb_order_.size() != comb.size()) {
    has_comb_cycle_ = true;
    for (Primitive* p : comb) {
      if (indegree[p] != 0) comb_cyclic_.push_back(p);
    }
  }
  dirty_ = true;
}

void Simulator::settle() {
  if (kernel_ != nullptr) {
    kernel_->settle();
    return;
  }
  if (!has_comb_cycle_) {
    for (Primitive* p : comb_order_) {
      p->propagate();
    }
    eval_count_ += comb_order_.size();
    dirty_ = false;
    return;
  }
  // Combinational cycle present: iterate every combinational primitive to a
  // fixpoint. Bounded by the primitive count (longest possible dependency
  // chain) plus slack; non-convergence means an oscillating loop.
  const std::size_t max_passes = comb_order_.size() + comb_cyclic_.size() + 2;
  std::vector<Logic4> before;
  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    bool changed = false;
    auto eval = [&](Primitive* p) {
      // Compare output values around the evaluation to detect change.
      const auto& outs = p->output_nets();
      before.clear();
      for (Net* n : outs) before.push_back(n->value());
      p->propagate();
      ++eval_count_;
      for (std::size_t i = 0; i < outs.size(); ++i) {
        if (outs[i]->value() != before[i]) changed = true;
      }
    };
    for (Primitive* p : comb_order_) eval(p);
    for (Primitive* p : comb_cyclic_) eval(p);
    if (!changed) {
      dirty_ = false;
      return;
    }
  }
  throw SimError("combinational loop did not settle (oscillation)");
}

void Simulator::put(Wire* wire, const BitVector& value) {
  if (wire == nullptr) throw HdlError("put on null wire");
  if (value.width() != wire->width()) {
    throw HdlError("put width mismatch on wire '" + wire->name() + "': wire " +
                   std::to_string(wire->width()) + " bits, value " +
                   std::to_string(value.width()) + " bits");
  }
  bool changed = false;
  for (std::size_t i = 0; i < wire->width(); ++i) {
    Net* n = wire->net(i);
    if (n->driver_kind() != DriverKind::External) n->bind_external();
    const Logic4 v = value.get(i);
    if (kernel_ != nullptr) {
      kernel_->write_net(n, v);
    } else if (n->value() != v) {
      n->set_value(v);
      changed = true;
    }
  }
  // Only a value that actually changed requires re-settling; a repeated
  // put of the same stimulus is a no-op.
  if (changed) dirty_ = true;
}

void Simulator::put(Wire* wire, std::uint64_t value) {
  put(wire, BitVector::from_uint(wire->width(), value));
}

void Simulator::put_signed(Wire* wire, std::int64_t value) {
  put(wire, BitVector::from_int(wire->width(), value));
}

BitVector Simulator::get(Wire* wire) {
  if (wire == nullptr) throw HdlError("get on null wire");
  propagate();
  return wire->value();
}

void Simulator::propagate() {
  if (kernel_ != nullptr) {
    kernel_->settle();
    return;
  }
  if (dirty_) settle();
}

void Simulator::cycle(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (kernel_ != nullptr) {
      kernel_->settle();
      kernel_->clock_edge();
      eval_count_ += 2 * sequential_.size();
      kernel_->settle();
    } else {
      if (dirty_) settle();
      for (Primitive* p : sequential_) p->pre_clock();
      for (Primitive* p : sequential_) p->post_clock();
      eval_count_ += 2 * sequential_.size();
      dirty_ = true;
      settle();
    }
    ++cycle_count_;
    for (auto& fn : observers_) fn(cycle_count_);
  }
}

std::vector<std::vector<BitVector>> Simulator::cycle_batch(
    std::size_t n, const std::vector<BatchStimulus>& stimulus,
    const std::vector<Wire*>& probes) {
  for (const auto& s : stimulus) {
    if (s.wire == nullptr) throw HdlError("cycle_batch on null wire");
    if (s.values.size() != n) {
      throw HdlError("cycle_batch stimulus for wire '" + s.wire->name() +
                     "' has " + std::to_string(s.values.size()) +
                     " values for " + std::to_string(n) + " cycles");
    }
  }
  std::vector<std::vector<BitVector>> result(probes.size());
  for (auto& column : result) column.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    for (const auto& s : stimulus) put(s.wire, s.values[t]);
    cycle(1);
    for (std::size_t p = 0; p < probes.size(); ++p) {
      result[p].push_back(get(probes[p]));
    }
  }
  return result;
}

void Simulator::reset() {
  if (kernel_ != nullptr) {
    kernel_->reset();
    kernel_->settle();
    return;
  }
  for (Primitive* p : sequential_) p->reset();
  dirty_ = true;
  settle();
}

std::size_t Simulator::eval_count() const {
  return eval_count_ + (kernel_ != nullptr ? kernel_->eval_count() : 0);
}

std::size_t Simulator::kernel_eval_count() const {
  return kernel_ != nullptr ? kernel_->eval_count() : 0;
}

void Simulator::enable_profiling() {
  if (profile_ != nullptr) return;
  profile_ = std::make_unique<KernelProfile>();
  if (kernel_ != nullptr) kernel_->set_profile(profile_.get());
}

void Simulator::export_metrics(obs::MetricsRegistry& registry) const {
  registry.gauge("sim.cycles").set(static_cast<std::int64_t>(cycle_count_));
  registry.gauge("sim.interp.evals")
      .set(static_cast<std::int64_t>(eval_count_));
  registry.gauge("sim.kernel.evals")
      .set(static_cast<std::int64_t>(kernel_eval_count()));
  if (profile_ == nullptr) return;
  const KernelProfile& p = *profile_;
  registry.gauge("sim.kernel.settles_event")
      .set(static_cast<std::int64_t>(p.settles_event));
  registry.gauge("sim.kernel.settles_sweep")
      .set(static_cast<std::int64_t>(p.settles_sweep));
  registry.gauge("sim.kernel.settles_fixpoint")
      .set(static_cast<std::int64_t>(p.settles_fixpoint));
  registry.gauge("sim.kernel.escalations")
      .set(static_cast<std::int64_t>(p.escalations));
  registry.gauge("sim.kernel.fixpoint_passes")
      .set(static_cast<std::int64_t>(p.fixpoint_passes));
  registry.gauge("sim.kernel.scan_evals")
      .set(static_cast<std::int64_t>(p.scan_evals));
  // Runs of the same opcode at different levels are separate program
  // entries; the exported view aggregates them per opcode mnemonic.
  constexpr std::size_t kOps =
      static_cast<std::size_t>(SimOp::Fallback) + 1;
  std::uint64_t op_ns[kOps] = {};
  std::uint64_t op_evals[kOps] = {};
  std::uint64_t total_ns = 0;
  if (program_ != nullptr) {
    const std::size_t n =
        std::min(p.runs.size(), program_->runs.size());
    for (std::size_t i = 0; i < n; ++i) {
      const auto op = static_cast<std::size_t>(program_->runs[i].op);
      op_ns[op] += p.runs[i].ns;
      op_evals[op] += p.runs[i].evals;
      total_ns += p.runs[i].ns;
    }
  }
  registry.gauge("sim.kernel.sweep_ns")
      .set(static_cast<std::int64_t>(total_ns));
  for (std::size_t op = 0; op < kOps; ++op) {
    if (op_ns[op] == 0 && op_evals[op] == 0) continue;
    const std::string base =
        std::string("sim.kernel.sweep.") +
        sim_op_name(static_cast<SimOp>(op));
    registry.gauge(base + ".ns").set(static_cast<std::int64_t>(op_ns[op]));
    registry.gauge(base + ".evals")
        .set(static_cast<std::int64_t>(op_evals[op]));
  }
}

void Simulator::add_cycle_observer(std::function<void(std::size_t)> fn) {
  observers_.push_back(std::move(fn));
}

}  // namespace jhdl
