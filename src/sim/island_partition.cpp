#include "sim/island_partition.h"

#include <algorithm>
#include <numeric>

#include "sim/compiled_kernel.h"

namespace jhdl {
namespace {

// Path-halving union-find over acyclic op indices.
struct UnionFind {
  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0u);
  }
  std::uint32_t find(std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    // Deterministic: smaller root wins, so island numbering is stable.
    if (a < b) {
      parent[b] = a;
    } else {
      parent[a] = b;
    }
  }
  std::vector<std::uint32_t> parent;
};

}  // namespace

std::vector<std::vector<std::uint32_t>> IslandPlan::shards(
    std::size_t k) const {
  if (k == 0) k = 1;
  std::vector<std::vector<std::uint32_t>> out(k);
  const std::size_t n = num_islands();
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const std::size_t sa = island_size(a);
              const std::size_t sb = island_size(b);
              if (sa != sb) return sa > sb;
              return a < b;
            });
  std::vector<std::size_t> load(k, 0);
  for (std::uint32_t island : order) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < k; ++s) {
      if (load[s] < load[best]) best = s;
    }
    out[best].push_back(island);
    load[best] += island_size(island);
  }
  return out;
}

std::shared_ptr<const IslandPlan> partition_islands(
    const CompiledProgram& program) {
  auto plan = std::make_shared<IslandPlan>();
  const auto n = static_cast<std::uint32_t>(program.num_acyclic);
  if (n == 0) {
    plan->island_begin.push_back(0);
    return plan;
  }

  // comb_writer[net] = acyclic op producing that net, or ~0 for cut nets
  // (FF q, external input, constant pseudo-slot, sequential output).
  constexpr std::uint32_t kNone = ~0u;
  std::vector<std::uint32_t> comb_writer(program.num_nets, kNone);
  for (std::uint32_t i = 0; i < n; ++i) {
    const CompiledOp& op = program.ops[i];
    for (std::uint32_t k = 0; k < op.n_out; ++k) {
      comb_writer[program.outputs[op.out_begin + k]] = i;
    }
  }

  UnionFind uf(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const CompiledOp& op = program.ops[i];
    for (std::uint32_t k = 0; k < op.n_in; ++k) {
      const std::uint32_t w = comb_writer[program.inputs[op.in_begin + k]];
      if (w != kNone) uf.unite(i, w);
    }
  }

  // Number islands by smallest member op index, then bucket ops (already
  // ascending within each island because i runs ascending).
  std::vector<std::uint32_t> island_of(n);
  std::vector<std::uint32_t> root_island(n, kNone);
  std::uint32_t num_islands = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t r = uf.find(i);
    if (root_island[r] == kNone) root_island[r] = num_islands++;
    island_of[i] = root_island[r];
  }

  std::vector<std::uint32_t> counts(num_islands, 0);
  for (std::uint32_t i = 0; i < n; ++i) ++counts[island_of[i]];
  plan->island_begin.resize(num_islands + 1, 0);
  for (std::uint32_t c = 0; c < num_islands; ++c) {
    plan->island_begin[c + 1] = plan->island_begin[c] + counts[c];
  }
  plan->op_order.resize(n);
  std::vector<std::uint32_t> cursor(plan->island_begin.begin(),
                                    plan->island_begin.end() - 1);
  for (std::uint32_t i = 0; i < n; ++i) {
    plan->op_order[cursor[island_of[i]]++] = i;
  }
  return plan;
}

}  // namespace jhdl
