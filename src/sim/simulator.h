// The JHDL-style cycle simulator.
//
// Model (matching JHDL's built-in simulator as described in the paper):
// a single implicit clock; combinational logic settles between edges;
// Simulator::cycle() advances one clock. Sequential primitives use a
// two-phase sample/commit protocol so evaluation order never matters.
//
// Combinational evaluation is levelized once at elaboration: primitives
// are topologically sorted over the net graph, so one pass settles the
// logic. If the design contains a combinational cycle the simulator falls
// back to bounded fixpoint iteration and throws SimError if the cycle does
// not converge (e.g. a ring oscillator).
//
// Two execution engines sit behind the same API:
//
//   - SimMode::Compiled (default): the levelized graph is lowered into a
//     flat opcode program (sim/compiled_kernel.h) and settling is
//     event-driven - only the fan-out cone of changed nets re-evaluates.
//     A pre-compiled program can be injected through SimOptions so
//     sessions elaborated from the same (module, params) share one.
//   - SimMode::Interpreted: the original one-virtual-call-per-primitive
//     walk; selectable per instance or globally via JHDL_SIM_MODE
//     ("interpreted" / "compiled").
//
// Both produce bit-exact wire values; eval_count() differs in compiled
// mode (event-driven skips primitives whose inputs did not change).
//
// Typical use:
//
//   Simulator sim(hw);
//   sim.put(a, 1);
//   sim.put(b, 0);
//   sim.cycle();
//   std::uint64_t s = sim.get(sum).to_uint();
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "hdl/hwsystem.h"
#include "hdl/primitive.h"
#include "obs/metrics.h"
#include "sim/compiled_kernel.h"
#include "sim/island_partition.h"
#include "sim/thread_pool.h"
#include "util/bitvector.h"

namespace jhdl {

/// Which evaluation engine a Simulator runs.
enum class SimMode {
  Interpreted,  ///< virtual propagate() per primitive, full re-settle
  Compiled,     ///< flat opcode program, event-driven settling
};

/// Process-wide default mode: JHDL_SIM_MODE env var ("interpreted" /
/// "compiled"), SimMode::Compiled when unset.
SimMode default_sim_mode();

/// Below this many acyclic ops the island-threaded settle cannot pay for
/// its fork/join and batched entry points stay single-threaded.
inline constexpr std::size_t kParallelMinOps = 2048;

/// Construction options for Simulator.
struct SimOptions {
  SimMode mode = default_sim_mode();
  /// Optional pre-compiled program for SimMode::Compiled (the delivery
  /// service's elaboration cache). Ignored in interpreted mode; if it does
  /// not bind to the circuit a fresh program is compiled instead.
  std::shared_ptr<const CompiledProgram> program;
  /// Optional pre-partitioned island plan for the threaded settle (the
  /// artifact store's memoized stage). Must come from `program`; when null
  /// the simulator partitions on demand the first time threading engages.
  std::shared_ptr<const IslandPlan> islands;
  /// Kernel worker threads for the batched entry points (cycle_batch,
  /// pattern_sweep): 0 = auto (JHDL_SIM_THREADS env var, else
  /// hardware_concurrency clamped - see resolve_sim_threads()). 1 forces
  /// the deterministic single-thread path. Single-cycle cycle()/get()
  /// calls are always single-threaded.
  std::size_t threads = 0;
  /// Minimum acyclic op count before threading engages (tests lower it to
  /// exercise the pool on small circuits).
  std::size_t parallel_min_ops = kParallelMinOps;
};

/// Per-wire input stream for Simulator::cycle_batch.
struct BatchStimulus {
  Wire* wire = nullptr;
  std::vector<BitVector> values;  ///< one value per batched cycle
};

/// Per-wire input stream for Simulator::pattern_sweep: one value per
/// independent pattern (not per cycle).
struct PatternStimulus {
  Wire* wire = nullptr;
  std::vector<BitVector> values;  ///< one value per pattern
};

/// Cycle-based simulator over an HWSystem.
class Simulator {
 public:
  /// Elaborates immediately: collects primitives, levelizes combinational
  /// logic, applies power-on values. The circuit must not change after
  /// the simulator is constructed.
  explicit Simulator(HWSystem& system, SimOptions options = {});

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  /// Drive a wire from the testbench (claims external driver slots on
  /// first use; throws HdlError if a primitive drives it). Values wider
  /// than the wire throw; narrower BitVectors are not accepted.
  void put(Wire* wire, const BitVector& value);
  /// Convenience: drive from the low bits of an unsigned integer.
  void put(Wire* wire, std::uint64_t value);
  /// Drive from a signed value (two's complement at the wire's width).
  void put_signed(Wire* wire, std::int64_t value);

  /// Read a wire's settled value (propagates pending changes first).
  BitVector get(Wire* wire);

  /// Settle combinational logic without advancing the clock.
  void propagate();

  /// Advance `n` clock cycles.
  void cycle(std::size_t n = 1);

  /// Batched evaluation: per cycle t, apply stimulus[...].values[t], clock
  /// once, sample every probe. Returns one value column per probe wire
  /// (probes.size() x n). Throws HdlError if any stimulus stream is not
  /// exactly n values long.
  ///
  /// This is a true batched kernel entry: probe net-id views and the
  /// settle strategy are resolved once per batch, and on multi-island
  /// programs large enough to pay for fork/join (SimOptions::threads > 1)
  /// every settle runs as one island-parallel sweep - bit-exact vs the
  /// single-threaded path for any thread count.
  std::vector<std::vector<BitVector>> cycle_batch(
      std::size_t n, const std::vector<BatchStimulus>& stimulus,
      const std::vector<Wire*>& probes);

  /// Multi-pattern sweep: for each of `n_patterns` independent patterns,
  /// start from power-on reset, apply that pattern's stimulus values
  /// (wires not listed keep their value at call entry), run `cycles`
  /// clock cycles (0 = settle only), and sample every probe. Returns one
  /// column per probe wire (probes.size() x n_patterns). On programs the
  /// 64-lane kernel supports (no Fallback ops / virtual sequential
  /// primitives / comb cycles, compiled mode) the patterns run packed 64
  /// per machine word; otherwise a scalar per-pattern loop produces the
  /// same values. Either way the simulator is left in power-on reset
  /// state with the stimulus wires restored to their entry values.
  std::vector<std::vector<BitVector>> pattern_sweep(
      std::size_t n_patterns, const std::vector<PatternStimulus>& stimulus,
      std::size_t cycles, const std::vector<Wire*>& probes);

  /// Restore all sequential state to power-on values and re-settle.
  void reset();

  std::size_t cycle_count() const { return cycle_count_; }

  /// Number of primitive evaluations performed so far (perf metric used by
  /// the benchmarks). In compiled mode this counts only the ops actually
  /// re-evaluated by event-driven settling.
  std::size_t eval_count() const;

  /// Engine attribution of eval_count(): the interpreter share covers the
  /// virtual sequential protocol (both modes) plus interpreted
  /// combinational settling; the kernel share is the compiled opcode
  /// program's event-driven evals (0 in interpreted mode).
  std::size_t interp_eval_count() const { return eval_count_; }
  std::size_t kernel_eval_count() const;

  /// Opt-in profiling: attaches a KernelProfile to the compiled kernel
  /// (per-run sweep timings, settle-strategy and escalation counters).
  /// Idempotent; harmless in interpreted mode, where the profile stays
  /// empty but export_metrics still publishes engine attribution.
  void enable_profiling();
  /// The attached profile (null until enable_profiling()).
  const KernelProfile* profile() const { return profile_.get(); }

  /// Publish this simulator's counters into `registry` as sim.* gauges:
  /// sim.cycles, sim.interp.evals, sim.kernel.evals always; with
  /// profiling enabled also sim.kernel.settles_{event,sweep,fixpoint},
  /// sim.kernel.escalations, sim.kernel.fixpoint_passes,
  /// sim.kernel.scan_evals, sim.kernel.sweep_ns and per-opcode
  /// sim.kernel.sweep.<op>.{ns,evals} aggregates. Gauges are set(), not
  /// added, so repeated exports refresh in place.
  void export_metrics(obs::MetricsRegistry& registry) const;

  /// Observers run after every cycle() step (waveform recorders hook here).
  void add_cycle_observer(std::function<void(std::size_t)> fn);

  HWSystem& system() { return system_; }

  /// True if elaboration found a combinational cycle (iterative fallback).
  bool has_comb_cycle() const { return has_comb_cycle_; }

  SimMode mode() const { return mode_; }

  /// Resolved kernel thread count for batched entry points (>= 1).
  std::size_t threads() const { return threads_; }

  /// The compiled program driving this simulator (null in interpreted
  /// mode). Shareable with other simulators over identical circuits.
  const std::shared_ptr<const CompiledProgram>& compiled_program() const {
    return program_;
  }

  /// The island plan backing the threaded settle (null until threading
  /// first engages, unless one was injected via SimOptions).
  const std::shared_ptr<const IslandPlan>& islands() const {
    return islands_;
  }

 private:
  void elaborate();
  void settle();
  /// settle + clock edge + settle, observers, counters - one cycle, with
  /// the settles island-parallel when `parallel` is set.
  void step(bool parallel);
  /// Lazily builds the plan/shards/pool; true when the threaded settle is
  /// engaged for batched entry points.
  bool parallel_ready();

  HWSystem& system_;
  SimMode mode_;
  std::vector<Primitive*> all_prims_;    // collect_primitives() order
  std::vector<Primitive*> comb_order_;   // levelized combinational prims
  std::vector<Primitive*> comb_cyclic_;  // prims in comb cycles (fixpoint)
  std::vector<Primitive*> sequential_;
  std::shared_ptr<const CompiledProgram> program_;
  std::unique_ptr<CompiledKernel> kernel_;
  std::unique_ptr<KernelProfile> profile_;  // owned; attached to kernel_
  std::vector<std::function<void(std::size_t)>> observers_;
  std::shared_ptr<const IslandPlan> islands_;
  std::vector<std::vector<std::uint32_t>> shards_;
  std::unique_ptr<SimThreadPool> pool_;
  std::size_t threads_ = 1;
  std::size_t parallel_min_ops_ = kParallelMinOps;
  bool parallel_init_ = false;
  std::size_t cycle_count_ = 0;
  std::size_t eval_count_ = 0;
  bool dirty_ = true;
  bool has_comb_cycle_ = false;
};

}  // namespace jhdl
