// The JHDL-style cycle simulator.
//
// Model (matching JHDL's built-in simulator as described in the paper):
// a single implicit clock; combinational logic settles between edges;
// Simulator::cycle() advances one clock. Sequential primitives use a
// two-phase sample/commit protocol so evaluation order never matters.
//
// Combinational evaluation is levelized once at elaboration: primitives
// are topologically sorted over the net graph, so one pass settles the
// logic. If the design contains a combinational cycle the simulator falls
// back to bounded fixpoint iteration and throws SimError if the cycle does
// not converge (e.g. a ring oscillator).
//
// Typical use:
//
//   Simulator sim(hw);
//   sim.put(a, 1);
//   sim.put(b, 0);
//   sim.cycle();
//   std::uint64_t s = sim.get(sum).to_uint();
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "hdl/hwsystem.h"
#include "hdl/primitive.h"
#include "util/bitvector.h"

namespace jhdl {

/// Cycle-based simulator over an HWSystem.
class Simulator {
 public:
  /// Elaborates immediately: collects primitives, levelizes combinational
  /// logic, applies power-on values. The circuit must not change after
  /// the simulator is constructed.
  explicit Simulator(HWSystem& system);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Drive a wire from the testbench (claims external driver slots on
  /// first use; throws HdlError if a primitive drives it). Values wider
  /// than the wire throw; narrower BitVectors are not accepted.
  void put(Wire* wire, const BitVector& value);
  /// Convenience: drive from the low bits of an unsigned integer.
  void put(Wire* wire, std::uint64_t value);
  /// Drive from a signed value (two's complement at the wire's width).
  void put_signed(Wire* wire, std::int64_t value);

  /// Read a wire's settled value (propagates pending changes first).
  BitVector get(Wire* wire);

  /// Settle combinational logic without advancing the clock.
  void propagate();

  /// Advance `n` clock cycles.
  void cycle(std::size_t n = 1);

  /// Restore all sequential state to power-on values and re-settle.
  void reset();

  std::size_t cycle_count() const { return cycle_count_; }

  /// Number of primitive evaluations performed so far (perf metric used by
  /// the benchmarks).
  std::size_t eval_count() const { return eval_count_; }

  /// Observers run after every cycle() step (waveform recorders hook here).
  void add_cycle_observer(std::function<void(std::size_t)> fn);

  HWSystem& system() { return system_; }

  /// True if elaboration found a combinational cycle (iterative fallback).
  bool has_comb_cycle() const { return has_comb_cycle_; }

 private:
  void elaborate();
  void settle();

  HWSystem& system_;
  std::vector<Primitive*> comb_order_;   // levelized combinational prims
  std::vector<Primitive*> comb_cyclic_;  // prims in comb cycles (fixpoint)
  std::vector<Primitive*> sequential_;
  std::vector<std::function<void(std::size_t)>> observers_;
  std::size_t cycle_count_ = 0;
  std::size_t eval_count_ = 0;
  bool dirty_ = true;
  bool has_comb_cycle_ = false;
};

}  // namespace jhdl
