#include "sim/compiled_kernel.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <unordered_map>

#include "hdl/error.h"
#include "sim/island_partition.h"
#include "sim/logic_tables.h"
#include "sim/thread_pool.h"
#include "tech/carry.h"
#include "tech/constants.h"
#include "tech/ff.h"
#include "tech/gates.h"
#include "tech/lut.h"
#include "tech/memory.h"
#include "tech/pads.h"

namespace jhdl {
namespace {

// The four-state truth tables live in sim/logic_tables.h, shared with the
// multi-pattern kernel so both engines apply one definition of each rule.
using simtab::kAndTable;
using simtab::kFfSelTable;
using simtab::kNotTable;
using simtab::kOrTable;
using simtab::kXorTable;
using simtab::lut_eval;
using simtab::mux3;
using simtab::table2;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= 0x100000001b3ULL;
}

inline std::uint64_t profile_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

// Pure compute kernels shared by the per-op switch and the specialized
// run loops. All read the dense value array through local pointers.
inline Logic4 eval_nary(const Logic4* table, const Logic4* values,
                        const std::uint32_t* in, std::uint16_t n) {
  Logic4 acc = values[in[0]];
  for (std::uint16_t k = 1; k < n; ++k) {
    acc = table2(table, acc, values[in[k]]);
  }
  return acc;
}

inline Logic4 eval_lut_op(std::uint32_t init, const Logic4* values,
                          const std::uint32_t* in, std::uint16_t n) {
  // Branchless address build: bit 0 of the encoding is the binary value,
  // bit 1 flags X/Z. The address is only consulted when every input was
  // binary; the X-agreement fallback is the rare path.
  Logic4 ins[4];
  std::uint32_t addr = 0;
  std::uint32_t undef = 0;
  for (std::uint16_t k = 0; k < n; ++k) {
    const std::uint32_t u =
        static_cast<std::uint32_t>(ins[k] = values[in[k]]);
    addr |= (u & 1u) << k;
    undef |= u >> 1;
  }
  if (undef == 0) return to_logic(((init >> addr) & 1u) != 0);
  return lut_eval(init, ins, static_cast<std::uint8_t>(n), 0, 0);
}

}  // namespace

std::shared_ptr<const CompiledProgram> compile_program(
    const HWSystem& system, const std::vector<Primitive*>& all_prims,
    const std::vector<Primitive*>& comb_order,
    const std::vector<Primitive*>& comb_cyclic,
    const std::vector<Primitive*>& sequential) {
  auto program = std::make_shared<CompiledProgram>();
  CompiledProgram& p = *program;
  p.num_nets = system.net_count();
  p.num_prims = all_prims.size();
  p.has_comb_cycle = !comb_cyclic.empty();
  p.num_acyclic = comb_order.size();

  std::unordered_map<const Primitive*, std::uint32_t> ordinal;
  ordinal.reserve(all_prims.size());
  for (std::size_t i = 0; i < all_prims.size(); ++i) {
    ordinal[all_prims[i]] = static_cast<std::uint32_t>(i);
  }

  // Level of the combinational op driving each net (0 = not comb-driven).
  std::vector<std::uint32_t> net_level(p.num_nets, 0);

  auto lower = [&](Primitive* prim, bool cyclic) {
    CompiledOp op;
    op.in_begin = static_cast<std::uint32_t>(p.inputs.size());
    op.out_begin = static_cast<std::uint32_t>(p.outputs.size());
    for (Net* n : prim->input_nets()) p.inputs.push_back(n->id());
    for (Net* n : prim->output_nets()) p.outputs.push_back(n->id());
    op.n_in = static_cast<std::uint16_t>(prim->input_nets().size());
    op.n_out = static_cast<std::uint16_t>(prim->output_nets().size());

    using tech::NaryGate;
    if (auto* gate = dynamic_cast<NaryGate*>(prim)) {
      switch (gate->op()) {
        case NaryGate::Op::And: op.op = SimOp::And; break;
        case NaryGate::Op::Or: op.op = SimOp::Or; break;
        case NaryGate::Op::Xor: op.op = SimOp::Xor; break;
        case NaryGate::Op::Nand: op.op = SimOp::Nand; break;
        case NaryGate::Op::Nor: op.op = SimOp::Nor; break;
      }
    } else if (dynamic_cast<tech::Inv*>(prim) != nullptr) {
      op.op = SimOp::Not;
    } else if (dynamic_cast<tech::Buf*>(prim) != nullptr ||
               dynamic_cast<tech::Ibuf*>(prim) != nullptr ||
               dynamic_cast<tech::Obuf*>(prim) != nullptr) {
      op.op = SimOp::Buf;
    } else if (dynamic_cast<tech::Mux2*>(prim) != nullptr ||
               dynamic_cast<tech::MuxCY*>(prim) != nullptr ||
               dynamic_cast<tech::MuxF5*>(prim) != nullptr) {
      // All three share pin order (i0, i1, select) and X semantics.
      op.op = SimOp::Mux;
    } else if (dynamic_cast<tech::XorCY*>(prim) != nullptr) {
      op.op = SimOp::Xor;
    } else if (auto* lut = dynamic_cast<tech::Lut*>(prim)) {
      op.op = SimOp::Lut;
      op.aux = lut->init();
    } else if (dynamic_cast<tech::Rom16*>(prim) != nullptr) {
      // Contents are read through the live primitive so post-elaboration
      // watermarking (Rom16::set_entry) stays visible.
      op.op = SimOp::Rom;
      op.aux = static_cast<std::uint32_t>(p.live_prims.size());
      p.live_prims.push_back(ordinal.at(prim));
    } else if (dynamic_cast<tech::Gnd*>(prim) != nullptr) {
      op.op = SimOp::Const;
      op.aux = static_cast<std::uint32_t>(p.const_values.size());
      p.const_values.push_back(0);
    } else if (dynamic_cast<tech::Vcc*>(prim) != nullptr) {
      op.op = SimOp::Const;
      op.aux = static_cast<std::uint32_t>(p.const_values.size());
      p.const_values.push_back(1);
    } else if (auto* constant = dynamic_cast<tech::Constant*>(prim)) {
      op.op = SimOp::Const;
      op.aux = static_cast<std::uint32_t>(p.const_values.size());
      p.const_values.push_back(constant->value());
    } else {
      op.op = SimOp::Fallback;
      op.aux = static_cast<std::uint32_t>(p.live_prims.size());
      p.live_prims.push_back(ordinal.at(prim));
    }

    if (!cyclic) {
      std::uint32_t level = 0;
      for (std::uint32_t k = 0; k < op.n_in; ++k) {
        level = std::max(level, net_level[p.inputs[op.in_begin + k]]);
      }
      if (level > 0xFFFEu) {
        throw SimError("combinational depth exceeds compiled-kernel limit");
      }
      op.level = static_cast<std::uint16_t>(level);
      p.max_level = std::max(p.max_level, op.level);
      for (std::uint32_t k = 0; k < op.n_out; ++k) {
        net_level[p.outputs[op.out_begin + k]] = level + 1;
      }
    }
    if (prim->sequential()) {
      p.seq_ops.push_back(static_cast<std::uint32_t>(p.ops.size()));
    }
    p.ops.push_back(op);
  };

  for (Primitive* prim : comb_order) lower(prim, /*cyclic=*/false);
  for (Primitive* prim : comb_cyclic) lower(prim, /*cyclic=*/true);

  // Schedule the acyclic prefix by (level, opcode). A driver's output
  // level strictly exceeds its own, so equal-level ops are independent
  // and grouping them by opcode keeps a valid topological order while
  // turning the sweep's dispatch into long predictable same-opcode runs.
  // stable_sort keeps the permutation deterministic across builds.
  {
    std::vector<std::uint32_t> order(p.ops.size());
    for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(
        order.begin(), order.begin() + static_cast<std::ptrdiff_t>(p.num_acyclic),
        [&](std::uint32_t a, std::uint32_t b) {
          if (p.ops[a].level != p.ops[b].level) {
            return p.ops[a].level < p.ops[b].level;
          }
          return static_cast<std::uint8_t>(p.ops[a].op) <
                 static_cast<std::uint8_t>(p.ops[b].op);
        });
    std::vector<CompiledOp> sorted(p.ops.size());
    std::vector<std::uint32_t> new_index(p.ops.size());
    for (std::uint32_t pos = 0; pos < order.size(); ++pos) {
      sorted[pos] = p.ops[order[pos]];
      new_index[order[pos]] = pos;
    }
    p.ops = std::move(sorted);
    for (std::uint32_t& i : p.seq_ops) i = new_index[i];
  }
  for (std::uint32_t i = 0; i < p.num_acyclic;) {
    std::uint32_t j = i + 1;
    while (j < p.num_acyclic && p.ops[j].op == p.ops[i].op) ++j;
    p.runs.push_back({p.ops[i].op, i, j});
    i = j;
  }

  // Fanout CSR: which ops read each net.
  std::vector<std::uint32_t> counts(p.num_nets, 0);
  for (const CompiledOp& op : p.ops) {
    for (std::uint32_t k = 0; k < op.n_in; ++k) {
      ++counts[p.inputs[op.in_begin + k]];
    }
  }
  p.fanout_begin.resize(p.num_nets + 1, 0);
  for (std::size_t i = 0; i < p.num_nets; ++i) {
    p.fanout_begin[i + 1] = p.fanout_begin[i] + counts[i];
  }
  p.fanout.resize(p.fanout_begin[p.num_nets]);
  std::vector<std::uint32_t> cursor(p.fanout_begin.begin(),
                                    p.fanout_begin.end() - 1);
  for (std::size_t i = 0; i < p.ops.size(); ++i) {
    const CompiledOp& op = p.ops[i];
    for (std::uint32_t k = 0; k < op.n_in; ++k) {
      p.fanout[cursor[p.inputs[op.in_begin + k]]++] =
          static_cast<std::uint32_t>(i);
    }
  }

  // Pseudo-net slots appended after the real nets in the kernel's value
  // array: a missing CLR pin reads constant Zero, a missing CE constant
  // One, keeping the flip-flop sample loop uniform.
  const std::uint32_t kZeroSlot = static_cast<std::uint32_t>(p.num_nets);
  const std::uint32_t kOneSlot = kZeroSlot + 1;
  for (Primitive* prim : sequential) {
    if (auto* ff = dynamic_cast<tech::FlipFlop*>(prim)) {
      const auto& ins = ff->input_nets();
      CompiledFF rec;
      rec.d = ins[static_cast<std::size_t>(ff->d_pin())]->id();
      rec.ce = ff->ce_pin() >= 0
                   ? ins[static_cast<std::size_t>(ff->ce_pin())]->id()
                   : kOneSlot;
      rec.clr = ff->clr_pin() >= 0
                    ? ins[static_cast<std::size_t>(ff->clr_pin())]->id()
                    : kZeroSlot;
      rec.q = ff->output_nets()[0]->id();
      rec.init = ff->init_value();
      p.ffs.push_back(rec);
      p.ff_prims.push_back(ordinal.at(prim));
      continue;
    }
    p.seq_prims.push_back(ordinal.at(prim));
    for (Net* n : prim->output_nets()) p.seq_outputs.push_back(n->id());
  }

  std::uint64_t h = 0xcbf29ce484222325ULL;
  fnv_mix(h, p.num_nets);
  fnv_mix(h, p.num_prims);
  for (const CompiledOp& op : p.ops) {
    fnv_mix(h, (static_cast<std::uint64_t>(op.op) << 48) |
                   (static_cast<std::uint64_t>(op.n_in) << 32) | op.aux);
  }
  for (std::uint32_t id : p.inputs) fnv_mix(h, id);
  for (std::uint32_t id : p.outputs) fnv_mix(h, id);
  for (std::uint64_t v : p.const_values) fnv_mix(h, v);
  for (const CompiledFF& ff : p.ffs) {
    fnv_mix(h, (static_cast<std::uint64_t>(ff.d) << 32) | ff.q);
    fnv_mix(h, (static_cast<std::uint64_t>(ff.ce) << 32) | ff.clr);
    fnv_mix(h, static_cast<std::uint64_t>(ff.init));
  }
  p.fingerprint = h;
  return program;
}

CompiledKernel::CompiledKernel(HWSystem& system,
                               std::shared_ptr<const CompiledProgram> program,
                               const std::vector<Primitive*>& all_prims)
    : program_(std::move(program)) {
  if (program_ == nullptr || !program_->binds(system, all_prims.size())) {
    throw SimError("compiled program does not bind to this circuit");
  }
  // Evaluate in place over the system's dense net-value array - the same
  // storage Net::value() reads, so no write-through is ever needed. The
  // two constant pseudo-net slots for flip-flops without a CLR / CE pin
  // (see compile_program) are appended past the real nets; they are only
  // ever read by the sample loop.
  values_ = &system.net_values();
  values_->resize(program_->num_nets + 2);
  (*values_)[program_->num_nets] = Logic4::Zero;
  (*values_)[program_->num_nets + 1] = Logic4::One;
  live_prims_.reserve(program_->live_prims.size());
  for (std::uint32_t ord : program_->live_prims) {
    live_prims_.push_back(all_prims[ord]);
  }
  seq_.reserve(program_->seq_prims.size());
  for (std::uint32_t ord : program_->seq_prims) {
    seq_.push_back(all_prims[ord]);
  }
  ff_prims_.reserve(program_->ff_prims.size());
  for (std::uint32_t ord : program_->ff_prims) {
    ff_prims_.push_back(all_prims[ord]);
  }
  // Flip-flop ctors drive their power-on value onto the q net, so the
  // value array already holds every committed state.
  ff_state_.reserve(program_->ffs.size());
  for (const CompiledFF& ff : program_->ffs) {
    ff_state_.push_back((*values_)[ff.q]);
  }
  ff_next_.assign(program_->ffs.size(), Logic4::X);
  op_dirty_.assign(program_->ops.size(), 0);
  // Below this many dirty ops the event-driven scan wins; above it the
  // flat sweep does. The specialized run loops evaluate an op several
  // times cheaper than the marking path can track one, so the crossover
  // sits at a small fraction of the graph.
  sweep_threshold_ = std::max<std::size_t>(16, program_->num_acyclic / 16);
  // Power-on parity with the interpreter: the first settle evaluates the
  // whole combinational graph.
  if (program_->has_comb_cycle) {
    dirty_ = !program_->ops.empty();
  } else if (program_->num_acyclic > 0) {
    std::fill(op_dirty_.begin(),
              op_dirty_.begin() +
                  static_cast<std::ptrdiff_t>(program_->num_acyclic),
              1);
    marked_count_ = program_->num_acyclic;
    dirty_ = true;
  }
}

const char* sim_op_name(SimOp op) {
  switch (op) {
    case SimOp::And: return "and";
    case SimOp::Or: return "or";
    case SimOp::Xor: return "xor";
    case SimOp::Nand: return "nand";
    case SimOp::Nor: return "nor";
    case SimOp::Not: return "not";
    case SimOp::Buf: return "buf";
    case SimOp::Mux: return "mux";
    case SimOp::Lut: return "lut";
    case SimOp::Rom: return "rom";
    case SimOp::Const: return "const";
    case SimOp::Fallback: return "fallback";
  }
  return "unknown";
}

void CompiledKernel::set_profile(KernelProfile* profile) {
  profile_ = profile;
  if (profile_ != nullptr) profile_->runs.resize(program_->runs.size());
}

void CompiledKernel::mark_op(std::uint32_t i) {
  if (program_->has_comb_cycle) {
    dirty_ = true;
    return;
  }
  dirty_ = true;
  if (op_dirty_[i] == 0) {
    op_dirty_[i] = 1;
    ++marked_count_;
  }
}

void CompiledKernel::mark_fanout(std::uint32_t net_id) {
  const std::uint32_t begin = program_->fanout_begin[net_id];
  const std::uint32_t end = program_->fanout_begin[net_id + 1];
  for (std::uint32_t k = begin; k < end; ++k) mark_op(program_->fanout[k]);
}

void CompiledKernel::write_net(Net* net, Logic4 value) {
  const std::uint32_t id = net->id();
  Logic4& slot = (*values_)[id];
  if (slot == value) return;
  slot = value;
  if (program_->has_comb_cycle) {
    dirty_ = true;
  } else {
    mark_fanout(id);
  }
}

void CompiledKernel::touch_net(std::uint32_t net_id) {
  // The writer stored straight into the shared value array, so the value
  // is already current; conservatively wake the readers (marking an
  // unchanged net's cone just re-produces the same outputs downstream).
  if (program_->has_comb_cycle) {
    dirty_ = true;
  } else {
    mark_fanout(net_id);
  }
}

struct CompiledKernel::EvalCtx {
  const CompiledOp* ops;
  const std::uint32_t* ins;
  const std::uint32_t* outs;
  const std::uint64_t* const_vals;
  Logic4* values;
  Primitive* const* live;
};

CompiledKernel::EvalCtx CompiledKernel::make_ctx() {
  return {program_->ops.data(),          program_->inputs.data(),
          program_->outputs.data(),      program_->const_values.data(),
          values_->data(),               live_prims_.data()};
}

template <bool Mark>
bool CompiledKernel::eval_one(const EvalCtx& c, std::uint32_t i) {
  const CompiledOp& op = c.ops[i];
  const std::uint32_t* in = c.ins + op.in_begin;
  const std::uint32_t* out = c.outs + op.out_begin;
  Logic4* values = c.values;
  Logic4 result = Logic4::X;
  switch (op.op) {
    case SimOp::And:
    case SimOp::Nand: {
      const Logic4 acc = eval_nary(kAndTable, values, in, op.n_in);
      result = op.op == SimOp::Nand
                   ? kNotTable[static_cast<std::size_t>(acc)]
                   : acc;
      break;
    }
    case SimOp::Or:
    case SimOp::Nor: {
      const Logic4 acc = eval_nary(kOrTable, values, in, op.n_in);
      result =
          op.op == SimOp::Nor ? kNotTable[static_cast<std::size_t>(acc)] : acc;
      break;
    }
    case SimOp::Xor:
      result = eval_nary(kXorTable, values, in, op.n_in);
      break;
    case SimOp::Not:
      result = kNotTable[static_cast<std::size_t>(values[in[0]])];
      break;
    case SimOp::Buf:
      result = values[in[0]];
      break;
    case SimOp::Mux:
      result = mux3(values[in[0]], values[in[1]], values[in[2]]);
      break;
    case SimOp::Lut:
      result = eval_lut_op(op.aux, values, in, op.n_in);
      break;
    case SimOp::Rom: {
      auto* rom = static_cast<tech::Rom16*>(c.live[op.aux]);
      std::uint32_t addr = 0;
      bool defined = true;
      for (std::uint16_t k = 0; k < 4; ++k) {
        const Logic4 v = values[in[k]];
        if (!is_binary(v)) {
          defined = false;
          break;
        }
        if (to_bool(v)) addr |= 1u << k;
      }
      const std::uint64_t word = defined ? rom->contents()[addr] : 0;
      bool changed = false;
      for (std::uint16_t b = 0; b < op.n_out; ++b) {
        const Logic4 v =
            defined ? to_logic(((word >> b) & 1u) != 0) : Logic4::X;
        const std::uint32_t id = out[b];
        if (values[id] != v) {
          values[id] = v;
          changed = true;
          if constexpr (Mark) mark_fanout(id);
        }
      }
      return changed;
    }
    case SimOp::Const: {
      const std::uint64_t word = c.const_vals[op.aux];
      bool changed = false;
      for (std::uint16_t b = 0; b < op.n_out; ++b) {
        const Logic4 v = to_logic(((word >> b) & 1u) != 0);
        const std::uint32_t id = out[b];
        if (values[id] != v) {
          values[id] = v;
          changed = true;
          if constexpr (Mark) mark_fanout(id);
        }
      }
      return changed;
    }
    case SimOp::Fallback: {
      // The primitive reads and writes the shared dense array through its
      // Net pins; snapshot the outputs first so a change still wakes the
      // fanout (and still counts for fixpoint convergence). The scratch is
      // thread-local because settle_parallel sweeps islands concurrently
      // and a Fallback op may land on any worker.
      thread_local std::vector<Logic4> fb_scratch;
      if (fb_scratch.size() < op.n_out) fb_scratch.resize(op.n_out);
      Logic4* old = fb_scratch.data();
      for (std::uint16_t b = 0; b < op.n_out; ++b) old[b] = values[out[b]];
      c.live[op.aux]->propagate();
      bool changed = false;
      for (std::uint16_t b = 0; b < op.n_out; ++b) {
        const std::uint32_t id = out[b];
        if (old[b] != values[id]) {
          changed = true;
          if constexpr (Mark) mark_fanout(id);
        }
      }
      return changed;
    }
  }
  const std::uint32_t id = out[0];
  if (values[id] == result) return false;
  values[id] = result;
  if constexpr (Mark) mark_fanout(id);
  return true;
}

void CompiledKernel::settle() {
  if (!dirty_) return;
  if (program_->has_comb_cycle) {
    settle_fixpoint();
  } else if (marked_count_ >= sweep_threshold_) {
    settle_sweep();
  } else {
    settle_event_driven();
  }
}

void CompiledKernel::settle_event_driven() {
  // Linear scan of the dirty bytes in topological op order: evaluating a
  // dirty op can only mark readers ahead of the scan, so one pass settles
  // the graph. When the cascade crosses the sweep threshold mid-scan, the
  // remainder is finished flat - every op behind the scan was evaluated
  // at most once and every op ahead is evaluated exactly once, so the
  // settle total stays <= num_acyclic, the interpreter's per-settle count.
  const EvalCtx c = make_ctx();
  const std::uint32_t n = static_cast<std::uint32_t>(program_->num_acyclic);
  const std::size_t evals_before = eval_count_;
  std::uint32_t escalated_at = n;  // n = the scan ran to completion
  std::uint8_t* dirty = op_dirty_.data();
  for (std::uint32_t i = 0; i < n; ++i) {
    if (marked_count_ >= sweep_threshold_) {
      escalated_at = i;
      sweep_range(c, i, n);
      eval_count_ += n - i;
      std::fill(dirty, dirty + n, 0);
      marked_count_ = 0;
      break;
    }
    if (dirty[i] != 0) {
      dirty[i] = 0;
      --marked_count_;
      eval_one<true>(c, i);
      ++eval_count_;
    }
  }
  dirty_ = false;
  if (profile_ != nullptr) {
    ++profile_->settles_event;
    std::size_t scanned = eval_count_ - evals_before;
    if (escalated_at < n) {
      ++profile_->escalations;
      scanned -= n - escalated_at;  // the flat remainder counts via runs
    }
    profile_->scan_evals += scanned;
  }
}

void CompiledKernel::settle_sweep() {
  const EvalCtx c = make_ctx();
  const std::uint32_t n = static_cast<std::uint32_t>(program_->num_acyclic);
  if (profile_ != nullptr) ++profile_->settles_sweep;
  sweep_range(c, 0, n);
  eval_count_ += n;
  if (marked_count_ != 0) {
    std::fill(op_dirty_.begin(), op_dirty_.end(), 0);
    marked_count_ = 0;
  }
  dirty_ = false;
}

void CompiledKernel::settle_parallel(
    const IslandPlan& plan,
    const std::vector<std::vector<std::uint32_t>>& shards,
    SimThreadPool& pool) {
  if (!dirty_) return;
  // A parallel settle is a full sweep: every acyclic op is evaluated once
  // in topological order inside its island, so the result matches
  // settle_sweep() exactly and no event bookkeeping is needed. Workers
  // never share a combinational net (the island cut), so plain Logic4
  // stores race with nothing.
  const EvalCtx c = make_ctx();
  if (profile_ != nullptr && profile_->islands.size() < plan.num_islands()) {
    profile_->islands.resize(plan.num_islands());
  }
  pool.run(shards.size(), [&](std::size_t s) {
    for (std::uint32_t island : shards[s]) {
      const std::uint32_t b = plan.island_begin[island];
      const std::uint32_t e = plan.island_begin[island + 1];
      for (std::uint32_t k = b; k < e; ++k) {
        eval_one<false>(c, plan.op_order[k]);
      }
      if (profile_ != nullptr) {
        profile_->islands[island].evals += e - b;
      }
    }
  });
  eval_count_ += program_->num_acyclic;
  if (profile_ != nullptr) ++profile_->settles_parallel;
  if (marked_count_ != 0) {
    std::fill(op_dirty_.begin(), op_dirty_.end(), 0);
    marked_count_ = 0;
  }
  dirty_ = false;
}

void CompiledKernel::sweep_range(const EvalCtx& c, std::uint32_t from,
                                 std::uint32_t to) {
  const Logic4* values = c.values;
  // Unconditional commit: under real stimulus roughly half the outputs
  // change per sweep, so the equality test is an unpredictable branch;
  // one plain byte store is cheaper than one coin-flip compare.
  auto commit1 = [&](const CompiledOp& op, Logic4 v) {
    c.values[c.outs[op.out_begin]] = v;
  };
  // Profiling costs one predictable branch (and, attached, two clock
  // reads) per RUN - the per-op loops below stay untouched.
  const bool profiled = profile_ != nullptr;
  const std::size_t num_runs = program_->runs.size();
  for (std::size_t ri = 0; ri < num_runs; ++ri) {
    const CompiledProgram::Run& run = program_->runs[ri];
    if (run.end <= from) continue;
    if (run.begin >= to) break;
    const std::uint32_t b = std::max(run.begin, from);
    const std::uint32_t e = std::min(run.end, to);
    const std::uint64_t t0 = profiled ? profile_now_ns() : 0;
    switch (run.op) {
      case SimOp::And:
        for (std::uint32_t i = b; i < e; ++i) {
          const CompiledOp& op = c.ops[i];
          commit1(op, eval_nary(kAndTable, values, c.ins + op.in_begin,
                                op.n_in));
        }
        break;
      case SimOp::Nand:
        for (std::uint32_t i = b; i < e; ++i) {
          const CompiledOp& op = c.ops[i];
          const Logic4 acc =
              eval_nary(kAndTable, values, c.ins + op.in_begin, op.n_in);
          commit1(op, kNotTable[static_cast<std::size_t>(acc)]);
        }
        break;
      case SimOp::Or:
        for (std::uint32_t i = b; i < e; ++i) {
          const CompiledOp& op = c.ops[i];
          commit1(op,
                  eval_nary(kOrTable, values, c.ins + op.in_begin, op.n_in));
        }
        break;
      case SimOp::Nor:
        for (std::uint32_t i = b; i < e; ++i) {
          const CompiledOp& op = c.ops[i];
          const Logic4 acc =
              eval_nary(kOrTable, values, c.ins + op.in_begin, op.n_in);
          commit1(op, kNotTable[static_cast<std::size_t>(acc)]);
        }
        break;
      case SimOp::Xor:
        for (std::uint32_t i = b; i < e; ++i) {
          const CompiledOp& op = c.ops[i];
          commit1(op,
                  eval_nary(kXorTable, values, c.ins + op.in_begin, op.n_in));
        }
        break;
      case SimOp::Not:
        for (std::uint32_t i = b; i < e; ++i) {
          const CompiledOp& op = c.ops[i];
          commit1(op, kNotTable[static_cast<std::size_t>(
                          values[c.ins[op.in_begin]])]);
        }
        break;
      case SimOp::Buf:
        for (std::uint32_t i = b; i < e; ++i) {
          const CompiledOp& op = c.ops[i];
          commit1(op, values[c.ins[op.in_begin]]);
        }
        break;
      case SimOp::Mux:
        for (std::uint32_t i = b; i < e; ++i) {
          const CompiledOp& op = c.ops[i];
          const std::uint32_t* in = c.ins + op.in_begin;
          commit1(op, mux3(values[in[0]], values[in[1]], values[in[2]]));
        }
        break;
      case SimOp::Lut:
        for (std::uint32_t i = b; i < e; ++i) {
          const CompiledOp& op = c.ops[i];
          commit1(op,
                  eval_lut_op(op.aux, values, c.ins + op.in_begin, op.n_in));
        }
        break;
      default:
        // Rom / Const / Fallback: multi-output commit via the generic path.
        for (std::uint32_t i = b; i < e; ++i) {
          eval_one<false>(c, i);
        }
        break;
    }
    if (profiled) {
      KernelProfile::RunStat& rs = profile_->runs[ri];
      rs.ns += profile_now_ns() - t0;
      rs.evals += e - b;
    }
  }
}

void CompiledKernel::settle_fixpoint() {
  // Mirror of the interpreter's bounded fixpoint: every op per pass, in
  // the same order (topo-sorted part, then cycle members), same pass
  // bound, same oscillation diagnosis - and identical eval counts.
  const EvalCtx c = make_ctx();
  const std::uint32_t num_ops = static_cast<std::uint32_t>(program_->ops.size());
  const std::size_t max_passes = program_->ops.size() + 2;
  if (profile_ != nullptr) ++profile_->settles_fixpoint;
  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    if (profile_ != nullptr) ++profile_->fixpoint_passes;
    bool changed = false;
    for (std::uint32_t i = 0; i < num_ops; ++i) {
      if (eval_one<false>(c, i)) changed = true;
      ++eval_count_;
    }
    if (!changed) {
      dirty_ = false;
      return;
    }
  }
  throw SimError("combinational loop did not settle (oscillation)");
}

void CompiledKernel::clock_edge() {
  // Sample phase: compiled flip-flops read the settled value array with
  // the interpreter's exact rules (clear dominates, then enable gates,
  // non-binary control goes X; tech/ff.cpp). Virtual sample/commit runs
  // between the two compiled passes, which is safe because every sample -
  // compiled or virtual - happens before any commit.
  const CompiledFF* ffs = program_->ffs.data();
  const std::size_t num_ffs = program_->ffs.size();
  const Logic4* values = values_->data();
  Logic4* state = ff_state_.data();
  Logic4* next_state = ff_next_.data();
  for (std::size_t k = 0; k < num_ffs; ++k) {
    const CompiledFF& ff = ffs[k];
    const std::uint8_t sel =
        kFfSelTable[(static_cast<std::size_t>(values[ff.clr]) << 2) |
                    static_cast<std::size_t>(values[ff.ce])];
    // Conditional-move chain (no branches, no local-array store/load).
    Logic4 next = values[ff.d];
    next = sel == 1 ? state[k] : next;
    next = sel == 2 ? Logic4::Zero : next;
    next = sel == 3 ? Logic4::X : next;
    next_state[k] = next;
  }
  for (Primitive* p : seq_) p->pre_clock();
  for (Primitive* p : seq_) p->post_clock();
  // Commit phase: write the flip-flop states into the shared value array
  // (which IS the nets' storage).
  {
    Logic4* wvalues = values_->data();
    const bool cyclic = program_->has_comb_cycle;
    if (!cyclic && num_ffs >= 16) {
      // Wide register bank: commit with unconditional stores and one
      // aggregated change flag. Any change forces the post-edge settle
      // to sweep, which is what a wide update needs anyway - marking
      // each q's cone op-by-op would cost more than the sweep saves.
      unsigned changed = 0;
      for (std::size_t k = 0; k < num_ffs; ++k) {
        const Logic4 next = next_state[k];
        state[k] = next;
        const std::uint32_t id = ffs[k].q;
        changed |= static_cast<unsigned>(wvalues[id] != next);
        wvalues[id] = next;
      }
      if (changed != 0) {
        dirty_ = true;
        marked_count_ = std::max(marked_count_, sweep_threshold_);
      }
    } else {
      // Few registers: a changed q wakes just its cone (a byte store per
      // reader op).
      for (std::size_t k = 0; k < num_ffs; ++k) {
        const Logic4 next = next_state[k];
        state[k] = next;
        const std::uint32_t id = ffs[k].q;
        if (wvalues[id] != next) {
          wvalues[id] = next;
          dirty_ = true;
          if (!cyclic) mark_fanout(id);
        }
      }
    }
  }
  // Remaining sequential primitives drove their output nets directly via
  // ov() (same shared storage); wake their cones.
  for (std::uint32_t id : program_->seq_outputs) touch_net(id);
  // Comb ops owned by sequential primitives (async-read RAM, SRL taps)
  // depend on internal state as well as input nets, so a clock edge must
  // always re-evaluate them.
  for (std::uint32_t i : program_->seq_ops) mark_op(i);
  if (program_->has_comb_cycle) {
    // Parity with the interpreter, which settles unconditionally after an
    // edge (an extra confirming fixpoint pass even when nothing changed).
    dirty_ = true;
  }
}

void CompiledKernel::reset() {
  // Flip-flops go through the virtual protocol so the live objects stay
  // coherent (they are bypassed during normal cycles); their q-net writes
  // land in the shared value array like any other sequential output.
  for (Primitive* p : ff_prims_) p->reset();
  for (Primitive* p : seq_) p->reset();
  for (std::size_t k = 0; k < program_->ffs.size(); ++k) {
    ff_state_[k] = program_->ffs[k].init;
    ff_next_[k] = program_->ffs[k].init;
    touch_net(program_->ffs[k].q);
  }
  for (std::uint32_t id : program_->seq_outputs) touch_net(id);
  for (std::uint32_t i : program_->seq_ops) mark_op(i);
  if (program_->has_comb_cycle) dirty_ = true;
}

}  // namespace jhdl
