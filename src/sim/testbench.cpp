#include "sim/testbench.h"

#include "hdl/error.h"

namespace jhdl {

void Testbench::fail(Wire* w, const std::string& got, const std::string& want,
                     const std::string& context) {
  ++failures_;
  if (!soft_) {
    std::string msg = "expect failed on wire '" + w->name() + "': got " + got +
                      ", want " + want;
    if (!context.empty()) msg += " (" + context + ")";
    throw SimError(msg);
  }
}

Testbench& Testbench::expect(Wire* w, std::uint64_t expected,
                             const std::string& context) {
  BitVector v = sim_.get(w);
  if (!v.is_fully_defined() || v.to_uint() != expected) {
    fail(w, v.to_string(), std::to_string(expected), context);
  }
  return *this;
}

Testbench& Testbench::expect_signed(Wire* w, std::int64_t expected,
                                    const std::string& context) {
  BitVector v = sim_.get(w);
  if (!v.is_fully_defined() || v.to_int() != expected) {
    fail(w, v.to_string(), std::to_string(expected), context);
  }
  return *this;
}

}  // namespace jhdl
