// Waveform recording - the data behind JHDL's waveform viewer.
//
// A WaveformRecorder watches a set of wires and samples them after every
// simulator cycle. The recorded history can be rendered as ASCII art
// (viewer module) or exported to a VCD file for external viewers.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "hdl/wire.h"
#include "sim/simulator.h"
#include "util/bitvector.h"

namespace jhdl {

/// History of one wire: a label plus one BitVector sample per cycle.
struct Trace {
  std::string label;
  Wire* wire;
  std::vector<BitVector> samples;
};

/// Records wire values each cycle. Attach to a simulator before running.
class WaveformRecorder {
 public:
  /// Registers a cycle observer on `sim`; the recorder must outlive it.
  explicit WaveformRecorder(Simulator& sim);

  /// Watch a wire. Label defaults to the wire's name.
  void watch(Wire* wire, std::string label = "");

  /// Take a sample immediately (also called automatically per cycle).
  void sample();

  std::size_t num_samples() const { return num_samples_; }
  const std::vector<Trace>& traces() const { return traces_; }

 private:
  Simulator& sim_;
  std::vector<Trace> traces_;
  std::size_t num_samples_ = 0;
};

}  // namespace jhdl
