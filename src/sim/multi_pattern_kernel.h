// Bit-parallel multi-pattern simulation kernel: 64 independent stimulus
// vectors packed per machine word, evaluated with bitwise ops over the
// same flat SoA program the scalar kernel runs.
//
// Encoding: each net carries two 64-bit planes, v0 and v1, holding bit 0
// and bit 1 of the Logic4 encoding per lane - lane L's value is
// (v1_bit << 1) | v0_bit, i.e. 00=Zero, 01=One, 10=X, 11=Z. The v1 plane
// doubles as the per-net X/Z occupancy mask: v1 == 0 means every lane is
// binary, which is the common case after reset stimuli land, so the whole
// word runs the two-state fast path. Gates have exact branchless
// four-state formulas over the planes (derived from the scalar tables in
// logic_tables.h and verified bit-for-bit by the parity tests); only the
// LUT X-agreement rule resists a closed form, so a LUT whose input union
// mask is non-zero escalates just the unknown lanes to the scalar
// lut_eval - the word's binary lanes still take the fast path.
//
// The kernel owns its planes (it never touches the HWSystem's scalar
// value array): one MultiPatternKernel is a disposable 64-wide sweep over
// a shared immutable CompiledProgram. Construction broadcasts the current
// scalar net values across all lanes, so inputs the sweep does not drive
// behave exactly like the scalar fallback path. Sequential support covers
// the compiled flip-flops (planes of committed state, same
// clear/enable/X sample rules); programs with Fallback ops, virtual
// sequential primitives (RAM/SRL/BRAM) or combinational cycles are
// rejected by supports() and take the scalar path instead.
//
// Settling is always one flat topological sweep - a 64-pattern stimulus
// word dirties essentially every cone, so event bookkeeping cannot pay.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hdl/primitive.h"
#include "sim/compiled_kernel.h"
#include "sim/island_partition.h"
#include "sim/thread_pool.h"
#include "util/logic.h"

namespace jhdl {

class MultiPatternKernel {
 public:
  static constexpr std::size_t kLanes = 64;

  /// True when `program` can run 64-wide: no Fallback ops, no virtual
  /// sequential primitives, no combinational cycle. (Rom16 is fine - its
  /// contents are read live but never written during simulation.)
  static bool supports(const CompiledProgram& program);

  /// Binds the shared program and broadcasts `initial_values` (the bound
  /// HWSystem's scalar net array) across every lane. `all_prims` is the
  /// collect_primitives() order, for live Rom16 instances.
  MultiPatternKernel(std::shared_ptr<const CompiledProgram> program,
                     const std::vector<Primitive*>& all_prims,
                     const std::vector<Logic4>& initial_values);

  MultiPatternKernel(const MultiPatternKernel&) = delete;
  MultiPatternKernel& operator=(const MultiPatternKernel&) = delete;

  /// Drive one net with 64 lane values as raw planes.
  void poke(std::uint32_t net_id, std::uint64_t v0, std::uint64_t v1) {
    v0_[net_id] = v0;
    v1_[net_id] = v1;
  }
  void poke_lane(std::uint32_t net_id, std::size_t lane, Logic4 v);
  Logic4 peek_lane(std::uint32_t net_id, std::size_t lane) const {
    const std::uint64_t bit = 1ull << lane;
    return static_cast<Logic4>(((v0_[net_id] & bit) != 0 ? 1u : 0u) |
                               ((v1_[net_id] & bit) != 0 ? 2u : 0u));
  }

  /// One full topological sweep over the acyclic ops (all 64 lanes).
  void settle();
  /// Same sweep, shard tasks run on `pool`. Bit-exact vs settle() for any
  /// thread count (islands share no combinational nets).
  void settle(SimThreadPool& pool, const IslandPlan& plan,
              const std::vector<std::vector<std::uint32_t>>& shards);

  /// Sample + commit every compiled flip-flop across all lanes.
  void clock_edge();

  /// Re-arm power-on state: every flip-flop plane and q net back to its
  /// init value in all lanes. Combinational nets keep stale planes until
  /// the next settle().
  void reset();

  /// Attach the owning simulator's profile: settles/words/escalations
  /// accumulate into its mp_* counters.
  void set_profile(KernelProfile* profile) { profile_ = profile; }

 private:
  struct Planes {
    std::uint64_t v0;
    std::uint64_t v1;
  };
  Planes eval_op(std::uint32_t i, std::uint64_t& escalations,
                 std::uint64_t& lane_evals);
  void sweep_ops(const std::uint32_t* order, std::size_t count,
                 std::uint64_t& escalations, std::uint64_t& lane_evals);
  void store_op(std::uint32_t i, Planes out);

  std::shared_ptr<const CompiledProgram> program_;
  std::vector<Primitive*> live_prims_;  // per program_->live_prims (Rom16)
  std::vector<std::uint64_t> v0_, v1_;  // per-net planes (+2 pseudo slots)
  std::vector<std::uint64_t> s0_, s1_;  // committed flip-flop planes
  std::vector<std::uint64_t> n0_, n1_;  // sampled next-state planes
  KernelProfile* profile_ = nullptr;
};

}  // namespace jhdl
