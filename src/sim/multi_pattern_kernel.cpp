#include "sim/multi_pattern_kernel.h"

#include <algorithm>

#include "hdl/error.h"
#include "sim/logic_tables.h"
#include "tech/memory.h"

namespace jhdl {
namespace {

// Lane-plane helpers. A lane's Logic4 is (v1_bit << 1) | v0_bit, so
//   one  = v0 & ~v1   (01)
//   zero = ~v0 & ~v1  (00)
//   unknown = v1      (10 = X, 11 = Z)
// The formulas below are the scalar tables of logic_tables.h lifted to 64
// lanes; the parity tests check them lane-for-lane against the scalar
// kernel.
struct Pl {
  std::uint64_t v0;
  std::uint64_t v1;
};

inline Pl and2(Pl a, Pl b) {
  const std::uint64_t one = (a.v0 & ~a.v1) & (b.v0 & ~b.v1);
  const std::uint64_t zero = (~a.v0 & ~a.v1) | (~b.v0 & ~b.v1);
  return {one, ~(zero | one)};
}

inline Pl or2(Pl a, Pl b) {
  const std::uint64_t one = (a.v0 & ~a.v1) | (b.v0 & ~b.v1);
  const std::uint64_t zero = (~a.v0 & ~a.v1) & (~b.v0 & ~b.v1);
  return {one, ~(one | zero)};
}

inline Pl xor2(Pl a, Pl b) {
  const std::uint64_t unk = a.v1 | b.v1;
  return {(a.v0 ^ b.v0) & ~unk, unk};
}

inline Pl not1(Pl a) { return {~a.v0 & ~a.v1, a.v1}; }

/// o = s ? b : a; an unknown select passes the data only when both sides
/// agree and are binary (the kMuxTable rule).
inline Pl mux(Pl a, Pl b, Pl s) {
  const std::uint64_t s_one = s.v0 & ~s.v1;
  const std::uint64_t s_zero = ~s.v0 & ~s.v1;
  const std::uint64_t agree = ~a.v1 & ~b.v1 & ~(a.v0 ^ b.v0);
  return {(s_zero & a.v0) | (s_one & b.v0) | (s.v1 & agree & a.v0),
          (s_zero & a.v1) | (s_one & b.v1) | (s.v1 & ~agree)};
}

inline unsigned lowest_lane(std::uint64_t m) {
  return static_cast<unsigned>(__builtin_ctzll(m));
}

}  // namespace

bool MultiPatternKernel::supports(const CompiledProgram& program) {
  if (program.has_comb_cycle) return false;
  if (!program.seq_prims.empty()) return false;
  for (const CompiledOp& op : program.ops) {
    if (op.op == SimOp::Fallback) return false;
  }
  return true;
}

MultiPatternKernel::MultiPatternKernel(
    std::shared_ptr<const CompiledProgram> program,
    const std::vector<Primitive*>& all_prims,
    const std::vector<Logic4>& initial_values)
    : program_(std::move(program)) {
  if (program_ == nullptr || !supports(*program_)) {
    throw SimError("program does not support multi-pattern simulation");
  }
  live_prims_.reserve(program_->live_prims.size());
  for (std::uint32_t ord : program_->live_prims) {
    live_prims_.push_back(all_prims.at(ord));
  }
  const std::size_t slots = program_->num_nets + 2;
  v0_.assign(slots, 0);
  v1_.assign(slots, 0);
  // Broadcast the scalar state across every lane so nets this sweep never
  // drives (unlisted inputs, stale combinational values) agree with the
  // scalar fallback path.
  const std::size_t n = std::min(initial_values.size(), slots);
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = static_cast<std::uint32_t>(initial_values[i]);
    v0_[i] = (v & 1u) != 0 ? ~0ull : 0ull;
    v1_[i] = (v & 2u) != 0 ? ~0ull : 0ull;
  }
  v0_[program_->num_nets] = 0;  // pseudo Zero slot
  v1_[program_->num_nets] = 0;
  v0_[program_->num_nets + 1] = ~0ull;  // pseudo One slot
  v1_[program_->num_nets + 1] = 0;
  const std::size_t num_ffs = program_->ffs.size();
  s0_.resize(num_ffs);
  s1_.resize(num_ffs);
  n0_.assign(num_ffs, 0);
  n1_.assign(num_ffs, 0);
  for (std::size_t k = 0; k < num_ffs; ++k) {
    s0_[k] = v0_[program_->ffs[k].q];
    s1_[k] = v1_[program_->ffs[k].q];
  }
}

void MultiPatternKernel::poke_lane(std::uint32_t net_id, std::size_t lane,
                                   Logic4 v) {
  const std::uint64_t bit = 1ull << lane;
  const auto u = static_cast<std::uint32_t>(v);
  v0_[net_id] = (v0_[net_id] & ~bit) | ((u & 1u) != 0 ? bit : 0);
  v1_[net_id] = (v1_[net_id] & ~bit) | ((u & 2u) != 0 ? bit : 0);
}

void MultiPatternKernel::sweep_ops(const std::uint32_t* order,
                                   std::size_t count,
                                   std::uint64_t& escalations,
                                   std::uint64_t& lane_evals) {
  const CompiledOp* ops = program_->ops.data();
  const std::uint32_t* ins = program_->inputs.data();
  const std::uint32_t* outs = program_->outputs.data();
  const std::uint64_t* cv = program_->const_values.data();
  std::uint64_t* p0 = v0_.data();
  std::uint64_t* p1 = v1_.data();
  for (std::size_t idx = 0; idx < count; ++idx) {
    const std::uint32_t i = order != nullptr ? order[idx]
                                             : static_cast<std::uint32_t>(idx);
    const CompiledOp& op = ops[i];
    const std::uint32_t* in = ins + op.in_begin;
    const std::uint32_t* out = outs + op.out_begin;
    const auto ld = [&](std::uint16_t k) -> Pl {
      return {p0[in[k]], p1[in[k]]};
    };
    switch (op.op) {
      case SimOp::And:
      case SimOp::Nand: {
        Pl acc = ld(0);
        for (std::uint16_t k = 1; k < op.n_in; ++k) acc = and2(acc, ld(k));
        if (op.op == SimOp::Nand) acc = not1(acc);
        p0[out[0]] = acc.v0;
        p1[out[0]] = acc.v1;
        break;
      }
      case SimOp::Or:
      case SimOp::Nor: {
        Pl acc = ld(0);
        for (std::uint16_t k = 1; k < op.n_in; ++k) acc = or2(acc, ld(k));
        if (op.op == SimOp::Nor) acc = not1(acc);
        p0[out[0]] = acc.v0;
        p1[out[0]] = acc.v1;
        break;
      }
      case SimOp::Xor: {
        Pl acc = ld(0);
        for (std::uint16_t k = 1; k < op.n_in; ++k) acc = xor2(acc, ld(k));
        p0[out[0]] = acc.v0;
        p1[out[0]] = acc.v1;
        break;
      }
      case SimOp::Not: {
        const Pl r = not1(ld(0));
        p0[out[0]] = r.v0;
        p1[out[0]] = r.v1;
        break;
      }
      case SimOp::Buf:
        p0[out[0]] = p0[in[0]];
        p1[out[0]] = p1[in[0]];
        break;
      case SimOp::Mux: {
        const Pl r = mux(ld(0), ld(1), ld(2));
        p0[out[0]] = r.v0;
        p1[out[0]] = r.v1;
        break;
      }
      case SimOp::Lut: {
        // Two-state fast path: fold the 2^k constant table words pairwise
        // over the input v0 planes, LSB select first. Lanes flagged in the
        // union occupancy mask get the scalar X-agreement evaluation.
        std::uint64_t unk = 0;
        for (std::uint16_t k = 0; k < op.n_in; ++k) unk |= p1[in[k]];
        std::uint64_t w[16];
        unsigned entries = 1u << op.n_in;
        for (unsigned a = 0; a < entries; ++a) {
          w[a] = ((op.aux >> a) & 1u) != 0 ? ~0ull : 0ull;
        }
        for (std::uint16_t j = 0; j < op.n_in; ++j) {
          const std::uint64_t sel = p0[in[j]];
          entries >>= 1;
          for (unsigned a = 0; a < entries; ++a) {
            w[a] = (w[2 * a] & ~sel) | (w[2 * a + 1] & sel);
          }
        }
        std::uint64_t o0 = w[0] & ~unk;
        std::uint64_t o1 = 0;
        if (unk != 0) {
          ++escalations;
          Logic4 lane_in[4];
          for (std::uint64_t m = unk; m != 0; m &= m - 1) {
            const unsigned lane = lowest_lane(m);
            const std::uint64_t bit = 1ull << lane;
            for (std::uint16_t k = 0; k < op.n_in; ++k) {
              lane_in[k] = static_cast<Logic4>(
                  ((p0[in[k]] & bit) != 0 ? 1u : 0u) |
                  ((p1[in[k]] & bit) != 0 ? 2u : 0u));
            }
            const Logic4 r = simtab::lut_eval(
                op.aux, lane_in, static_cast<std::uint8_t>(op.n_in), 0, 0);
            const auto u = static_cast<std::uint32_t>(r);
            o0 |= (u & 1u) != 0 ? bit : 0;
            o1 |= (u & 2u) != 0 ? bit : 0;
            ++lane_evals;
          }
        }
        p0[out[0]] = o0;
        p1[out[0]] = o1;
        break;
      }
      case SimOp::Rom: {
        // Any non-binary address lane reads X on every data bit (the
        // scalar rule), so the address occupancy union is the exact
        // unknown mask - no per-lane escalation needed.
        auto* rom = static_cast<tech::Rom16*>(live_prims_[op.aux]);
        const std::uint64_t unk =
            p1[in[0]] | p1[in[1]] | p1[in[2]] | p1[in[3]];
        for (std::uint16_t b = 0; b < op.n_out; ++b) {
          std::uint32_t init = 0;
          for (unsigned a = 0; a < 16; ++a) {
            init |= static_cast<std::uint32_t>((rom->contents()[a] >> b) & 1u)
                    << a;
          }
          std::uint64_t w[16];
          unsigned entries = 16;
          for (unsigned a = 0; a < entries; ++a) {
            w[a] = ((init >> a) & 1u) != 0 ? ~0ull : 0ull;
          }
          for (std::uint16_t j = 0; j < 4; ++j) {
            const std::uint64_t sel = p0[in[j]];
            entries >>= 1;
            for (unsigned a = 0; a < entries; ++a) {
              w[a] = (w[2 * a] & ~sel) | (w[2 * a + 1] & sel);
            }
          }
          p0[out[b]] = w[0] & ~unk;
          p1[out[b]] = unk;
        }
        break;
      }
      case SimOp::Const: {
        const std::uint64_t word = cv[op.aux];
        for (std::uint16_t b = 0; b < op.n_out; ++b) {
          p0[out[b]] = ((word >> b) & 1u) != 0 ? ~0ull : 0ull;
          p1[out[b]] = 0;
        }
        break;
      }
      case SimOp::Fallback:
        break;  // excluded by supports()
    }
  }
}

void MultiPatternKernel::settle() {
  std::uint64_t escalations = 0;
  std::uint64_t lane_evals = 0;
  sweep_ops(nullptr, program_->num_acyclic, escalations, lane_evals);
  if (profile_ != nullptr) {
    ++profile_->mp_settles;
    profile_->mp_words += program_->num_acyclic;
    profile_->mp_escalations += escalations;
    profile_->mp_lane_evals += lane_evals;
  }
}

void MultiPatternKernel::settle(
    SimThreadPool& pool, const IslandPlan& plan,
    const std::vector<std::vector<std::uint32_t>>& shards) {
  struct ShardStat {
    std::uint64_t escalations = 0;
    std::uint64_t lane_evals = 0;
  };
  std::vector<ShardStat> stats(shards.size());
  if (profile_ != nullptr && profile_->islands.size() < plan.num_islands()) {
    profile_->islands.resize(plan.num_islands());
  }
  pool.run(shards.size(), [&](std::size_t s) {
    for (std::uint32_t island : shards[s]) {
      const std::uint32_t b = plan.island_begin[island];
      const std::uint32_t e = plan.island_begin[island + 1];
      sweep_ops(plan.op_order.data() + b, e - b, stats[s].escalations,
                stats[s].lane_evals);
      if (profile_ != nullptr) {
        profile_->islands[island].evals += e - b;
      }
    }
  });
  if (profile_ != nullptr) {
    ++profile_->mp_settles;
    profile_->mp_words += program_->num_acyclic;
    for (const ShardStat& st : stats) {
      profile_->mp_escalations += st.escalations;
      profile_->mp_lane_evals += st.lane_evals;
    }
  }
}

void MultiPatternKernel::clock_edge() {
  const CompiledFF* ffs = program_->ffs.data();
  const std::size_t num_ffs = program_->ffs.size();
  const std::uint64_t* p0 = v0_.data();
  const std::uint64_t* p1 = v1_.data();
  for (std::size_t k = 0; k < num_ffs; ++k) {
    const CompiledFF& ff = ffs[k];
    const std::uint64_t clr0 = p0[ff.clr];
    const std::uint64_t clr1 = p1[ff.clr];
    const std::uint64_t ce0 = p0[ff.ce];
    const std::uint64_t ce1 = p1[ff.ce];
    // kFfSelTable lifted to planes: clear (live low) dominates, a binary
    // enable takes D or holds, any unknown control lane samples X.
    const std::uint64_t live = ~clr1 & ~(clr0 & ~clr1);
    const std::uint64_t take_d = live & ce0 & ~ce1;
    const std::uint64_t hold = live & ~ce0 & ~ce1;
    const std::uint64_t x_mask = clr1 | (live & ce1);
    n0_[k] = (p0[ff.d] & take_d) | (s0_[k] & hold);
    n1_[k] = (p1[ff.d] & take_d) | (s1_[k] & hold) | x_mask;
  }
  std::uint64_t* w0 = v0_.data();
  std::uint64_t* w1 = v1_.data();
  for (std::size_t k = 0; k < num_ffs; ++k) {
    s0_[k] = n0_[k];
    s1_[k] = n1_[k];
    w0[ffs[k].q] = n0_[k];
    w1[ffs[k].q] = n1_[k];
  }
}

void MultiPatternKernel::reset() {
  const CompiledFF* ffs = program_->ffs.data();
  const std::size_t num_ffs = program_->ffs.size();
  for (std::size_t k = 0; k < num_ffs; ++k) {
    const auto v = static_cast<std::uint32_t>(ffs[k].init);
    const std::uint64_t b0 = (v & 1u) != 0 ? ~0ull : 0ull;
    const std::uint64_t b1 = (v & 2u) != 0 ? ~0ull : 0ull;
    s0_[k] = n0_[k] = b0;
    s1_[k] = n1_[k] = b1;
    v0_[ffs[k].q] = b0;
    v1_[ffs[k].q] = b1;
  }
}

}  // namespace jhdl
