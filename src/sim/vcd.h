// VCD (Value Change Dump) export of recorded waveforms, so traces recorded
// by the built-in simulator can be inspected in standard external viewers -
// the "interfacing with a user's own simulation tools" path of the paper.
#pragma once

#include <ostream>
#include <string>

#include "sim/waveform.h"

namespace jhdl {

/// Write all traces in `rec` as a VCD file. One timestep per cycle; the
/// timescale is nominal (1 ns per cycle).
void write_vcd(std::ostream& os, const WaveformRecorder& rec,
               const std::string& module_name = "jhdl");

}  // namespace jhdl
