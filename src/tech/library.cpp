#include "tech/library.h"

#include <stdexcept>

#include "util/bytestream.h"

namespace jhdl::tech {

const std::vector<PrimitiveDesc>& virtex_library() {
  static const std::vector<PrimitiveDesc> lib = {
      {"buf", {"i0"}, {"o"}, false, "non-inverting buffer (route-through)"},
      {"inv", {"i0"}, {"o"}, false, "inverter"},
      {"and2", {"i0", "i1"}, {"o"}, false, "2-input AND"},
      {"and3", {"i0", "i1", "i2"}, {"o"}, false, "3-input AND"},
      {"and4", {"i0", "i1", "i2", "i3"}, {"o"}, false, "4-input AND"},
      {"or2", {"i0", "i1"}, {"o"}, false, "2-input OR"},
      {"or3", {"i0", "i1", "i2"}, {"o"}, false, "3-input OR"},
      {"or4", {"i0", "i1", "i2", "i3"}, {"o"}, false, "4-input OR"},
      {"xor2", {"i0", "i1"}, {"o"}, false, "2-input XOR"},
      {"xor3", {"i0", "i1", "i2"}, {"o"}, false, "3-input XOR"},
      {"nand2", {"i0", "i1"}, {"o"}, false, "2-input NAND"},
      {"nor2", {"i0", "i1"}, {"o"}, false, "2-input NOR"},
      {"mux2", {"i0", "i1", "sel"}, {"o"}, false, "2:1 multiplexer"},
      {"lut1", {"i0"}, {"o"}, false, "1-input LUT with INIT"},
      {"lut2", {"i0", "i1"}, {"o"}, false, "2-input LUT with INIT"},
      {"lut3", {"i0", "i1", "i2"}, {"o"}, false, "3-input LUT with INIT"},
      {"lut4", {"i0", "i1", "i2", "i3"}, {"o"}, false, "4-input LUT with INIT"},
      {"muxcy", {"di", "ci", "s"}, {"o"}, false, "carry-chain mux"},
      {"xorcy", {"li", "ci"}, {"o"}, false, "carry-chain xor"},
      {"muxf5", {"i0", "i1", "s"}, {"o"}, false, "F5 combiner mux"},
      {"fd", {"d"}, {"q"}, true, "D flip-flop"},
      {"fdc", {"d", "clr"}, {"q"}, true, "D flip-flop with clear"},
      {"fdce", {"d", "ce", "clr"}, {"q"}, true, "D flip-flop with CE + clear"},
      {"fdre", {"d", "ce", "r"}, {"q"}, true, "D flip-flop with CE + sync reset"},
      {"rom16", {"a[3:0]"}, {"d"}, false, "16-entry LUT ROM (one LUT per output bit)"},
      {"ram16x1s", {"a[3:0]", "d", "we"}, {"o"}, true, "16x1 distributed RAM"},
      {"gnd", {}, {"o"}, false, "constant 0 driver"},
      {"vcc", {}, {"o"}, false, "constant 1 driver"},
      {"srl16", {"d", "a[3:0]"}, {"q"}, true,
       "16-stage shift register LUT with dynamic tap"},
      {"srl16e", {"d", "a[3:0]", "ce"}, {"q"}, true,
       "16-stage shift register LUT with clock enable"},
      {"ramb4_s8", {"a[8:0]", "d[7:0]", "we", "en"}, {"o[7:0]"}, true,
       "512x8 synchronous block RAM"},
      {"ibuf", {"pad"}, {"o"}, false, "input pad buffer"},
      {"obuf", {"i"}, {"pad"}, false, "output pad buffer"},
  };
  return lib;
}

std::vector<std::uint8_t> serialize_virtex_library() {
  ByteWriter w;
  const auto& lib = virtex_library();
  w.u32(0x56544C42);  // "VTLB"
  w.varint(lib.size());
  for (const auto& p : lib) {
    w.str(p.name);
    w.u8(p.sequential ? 1 : 0);
    w.varint(p.inputs.size());
    for (const auto& pin : p.inputs) w.str(pin);
    w.varint(p.outputs.size());
    for (const auto& pin : p.outputs) w.str(pin);
    w.str(p.doc);
    // Truth tables for combinational cells up to 4 inputs: the "compiled
    // simulation model" part of the payload. 16 entries regardless of
    // arity keeps the format simple.
    if (!p.sequential) {
      for (std::uint32_t a = 0; a < 16; ++a) {
        w.u8(static_cast<std::uint8_t>(a & 1));  // placeholder row tag
      }
    }
  }
  return w.take();
}

std::vector<PrimitiveDesc> parse_virtex_library(
    const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  if (r.u32() != 0x56544C42) {
    throw std::runtime_error("virtex library payload: bad magic");
  }
  std::size_t n = r.varint();
  std::vector<PrimitiveDesc> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    PrimitiveDesc d;
    d.name = r.str();
    d.sequential = r.u8() != 0;
    std::size_t ni = r.varint();
    for (std::size_t k = 0; k < ni; ++k) d.inputs.push_back(r.str());
    std::size_t no = r.varint();
    for (std::size_t k = 0; k < no; ++k) d.outputs.push_back(r.str());
    d.doc = r.str();
    if (!d.sequential) {
      for (int k = 0; k < 16; ++k) r.u8();
    }
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace jhdl::tech
