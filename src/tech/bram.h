// Block RAM: Virtex RAMB4-class 4-kbit synchronous memory, organized
// 512x8 (the S8 port aspect). Both read and write are registered on the
// clock, matching the silicon's synchronous port.
#pragma once

#include <cstdint>
#include <vector>

#include "hdl/primitive.h"

namespace jhdl::tech {

/// 512x8 synchronous block RAM.
class RamB4S8 final : public Primitive {
 public:
  /// addr: 9 bits, din/dout: 8 bits, we/en: 1 bit. `init` may be shorter
  /// than 512 bytes (rest zero-filled).
  RamB4S8(Cell* parent, Wire* addr, Wire* din, Wire* we, Wire* en,
          Wire* dout, std::vector<std::uint8_t> init = {});

  bool sequential() const override { return true; }
  void pre_clock() override;
  void post_clock() override;
  void reset() override;
  Resources resources() const override;

  const std::vector<std::uint8_t>& contents() const { return mem_; }

 private:
  std::vector<std::uint8_t> init_;
  std::vector<std::uint8_t> mem_;
  // Sampled at the clock edge.
  bool en_pending_ = false;
  bool we_pending_ = false;
  bool addr_valid_ = false;
  std::uint32_t addr_pending_ = 0;
  std::uint8_t din_pending_ = 0;
  bool din_valid_ = false;
  bool out_valid_ = false;
  std::uint8_t out_ = 0;
};

}  // namespace jhdl::tech
