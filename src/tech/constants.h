// Constant drivers: GND and VCC, plus a convenience multi-bit constant.
#pragma once

#include <cstdint>

#include "hdl/primitive.h"

namespace jhdl::tech {

/// Drives a 1-bit wire to logic 0.
class Gnd final : public Primitive {
 public:
  Gnd(Cell* parent, Wire* o);
  void propagate() override;
  Resources resources() const override { return {}; }
};

/// Drives a 1-bit wire to logic 1.
class Vcc final : public Primitive {
 public:
  Vcc(Cell* parent, Wire* o);
  void propagate() override;
  Resources resources() const override { return {}; }
};

/// Drives an arbitrary-width wire to a constant (one Gnd/Vcc per bit is the
/// netlist view; simulation drives all bits in one primitive).
class Constant final : public Primitive {
 public:
  Constant(Cell* parent, Wire* o, std::uint64_t value);
  void propagate() override;
  Resources resources() const override { return {}; }

  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_;
};

}  // namespace jhdl::tech
