// SRL16: the Virtex LUT configured as a 16-stage shift register with a
// dynamically addressable tap - the area trick that lets a 16-deep delay
// line cost one LUT instead of 16 flip-flops.
//
//   q = stage[addr]   (combinational from addr, like the silicon)
//   on each enabled clock: stages shift, stage[0] <= d
#pragma once

#include <cstdint>

#include "hdl/primitive.h"

namespace jhdl::tech {

/// 16-stage shift register LUT with dynamic tap address.
class Srl16 final : public Primitive {
 public:
  /// `addr` is 4 bits (tap select: 0 = newest), `ce` may be null.
  Srl16(Cell* parent, Wire* d, Wire* addr, Wire* q, Wire* ce = nullptr,
        std::uint16_t init = 0);

  void propagate() override;
  bool sequential() const override { return true; }
  bool has_comb_path() const override { return true; }  // addr -> q
  void pre_clock() override;
  void post_clock() override;
  void reset() override;
  Resources resources() const override;

  std::uint16_t state() const { return state_; }

 private:
  std::uint16_t init_;
  std::uint16_t state_;
  int ce_pin_ = -1;
  bool shift_pending_ = false;
  Logic4 shift_in_ = Logic4::X;
};

}  // namespace jhdl::tech
