#include "tech/bram.h"

#include "hdl/error.h"
#include "tech/timing.h"

namespace jhdl::tech {

RamB4S8::RamB4S8(Cell* parent, Wire* addr, Wire* din, Wire* we, Wire* en,
                 Wire* dout, std::vector<std::uint8_t> init)
    : Primitive(parent, "ramb4_s8"), init_(std::move(init)) {
  if (addr->width() != 9 || din->width() != 8 || dout->width() != 8 ||
      we->width() != 1 || en->width() != 1) {
    throw HdlError("RamB4S8 pin width error: " + full_name());
  }
  if (init_.size() > 512) {
    throw HdlError("RamB4S8 init longer than 512 bytes: " + full_name());
  }
  set_type_name("ramb4_s8");
  in("a", addr);   // inputs 0..8
  in("d", din);    // inputs 9..16
  in("we", we);    // input 17
  in("en", en);    // input 18
  out("o", dout);
  init_.resize(512, 0);
  mem_ = init_;
  // Synchronous read port: output register powers up undefined until the
  // first enabled clock.
  for (std::size_t i = 0; i < 8; ++i) ov(i, Logic4::X);
}

void RamB4S8::pre_clock() {
  en_pending_ = false;
  Logic4 en = iv(18);
  if (en == Logic4::Zero || !is_binary(en)) return;
  en_pending_ = true;

  addr_valid_ = true;
  addr_pending_ = 0;
  for (std::size_t i = 0; i < 9; ++i) {
    Logic4 v = iv(i);
    if (!is_binary(v)) {
      addr_valid_ = false;
      break;
    }
    if (to_bool(v)) addr_pending_ |= 1u << i;
  }

  Logic4 we = iv(17);
  we_pending_ = (we == Logic4::One);

  din_valid_ = true;
  din_pending_ = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    Logic4 v = iv(9 + i);
    if (!is_binary(v)) {
      din_valid_ = false;
      break;
    }
    if (to_bool(v)) din_pending_ |= static_cast<std::uint8_t>(1u << i);
  }
}

void RamB4S8::post_clock() {
  if (!en_pending_) return;
  if (!addr_valid_) {
    out_valid_ = false;
    for (std::size_t i = 0; i < 8; ++i) ov(i, Logic4::X);
    return;
  }
  if (we_pending_) {
    // Write-first behaviour (the Virtex default): the new data appears on
    // the read port. X data writes store 0 (documented simplification).
    mem_[addr_pending_] = din_valid_ ? din_pending_ : 0;
  }
  out_ = mem_[addr_pending_];
  out_valid_ = we_pending_ ? din_valid_ : true;
  for (std::size_t i = 0; i < 8; ++i) {
    ov(i, out_valid_ ? to_logic((out_ >> i) & 1) : Logic4::X);
  }
}

void RamB4S8::reset() {
  mem_ = init_;
  out_valid_ = false;
  en_pending_ = false;
  for (std::size_t i = 0; i < 8; ++i) ov(i, Logic4::X);
}

Resources RamB4S8::resources() const {
  return {.luts = 0, .ffs = 0, .carries = 0, .brams = 1,
          .delay_ns = timing::kFfClkToQNs};
}

}  // namespace jhdl::tech
