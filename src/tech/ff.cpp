#include "tech/ff.h"

#include "hdl/error.h"
#include "tech/timing.h"

namespace jhdl::tech {

FlipFlop::FlipFlop(Cell* parent, const std::string& type, Wire* d, Wire* q,
                   Wire* ce, Wire* clr, bool init_one,
                   const char* clr_pin_name)
    : Primitive(parent, type),
      init_(init_one ? Logic4::One : Logic4::Zero),
      state_(init_) {
  set_type_name(type);
  if (d->width() != 1 || q->width() != 1) {
    throw HdlError("flip-flop pins must be 1 bit: " + full_name());
  }
  in("d", d);
  d_pin_ = 0;
  int next_pin = 1;
  if (ce != nullptr) {
    in("ce", ce);
    ce_pin_ = next_pin++;
  }
  if (clr != nullptr) {
    in(clr_pin_name, clr);
    clr_pin_ = next_pin++;
  }
  out("q", q);
  set_property("INIT", init_one ? "1" : "0");
  // Drive the power-on value so downstream logic sees it before any clock.
  ov(0, state_);
}

void FlipFlop::pre_clock() {
  // Clear dominates; clock-enable gates the data load.
  if (clr_pin_ >= 0) {
    Logic4 clr = iv(static_cast<std::size_t>(clr_pin_));
    if (clr == Logic4::One) {
      next_ = Logic4::Zero;
      return;
    }
    if (!is_binary(clr)) {
      next_ = Logic4::X;
      return;
    }
  }
  if (ce_pin_ >= 0) {
    Logic4 ce = iv(static_cast<std::size_t>(ce_pin_));
    if (ce == Logic4::Zero) {
      next_ = state_;  // hold
      return;
    }
    if (!is_binary(ce)) {
      next_ = Logic4::X;
      return;
    }
  }
  next_ = iv(static_cast<std::size_t>(d_pin_));
}

void FlipFlop::post_clock() {
  state_ = next_;
  ov(0, state_);
}

void FlipFlop::reset() {
  state_ = init_;
  next_ = init_;
  ov(0, state_);
}

Resources FlipFlop::resources() const {
  return {.luts = 0, .ffs = 1, .carries = 0, .delay_ns = timing::kFfClkToQNs};
}

}  // namespace jhdl::tech
