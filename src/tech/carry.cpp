#include "tech/carry.h"

#include "hdl/error.h"
#include "tech/timing.h"

namespace jhdl::tech {
namespace {
void check_1bit(const Primitive& p, const Wire* w) {
  if (w == nullptr || w->width() != 1) {
    throw HdlError("carry primitive pins must be 1 bit: " + p.full_name());
  }
}

Logic4 mux(Logic4 a, Logic4 b, Logic4 s) {
  if (!is_binary(s)) {
    return (a == b && is_binary(a)) ? a : Logic4::X;
  }
  return to_bool(s) ? b : a;
}
}  // namespace

MuxCY::MuxCY(Cell* parent, Wire* di, Wire* ci, Wire* s, Wire* o)
    : Primitive(parent, "muxcy") {
  set_type_name("muxcy");
  check_1bit(*this, di);
  check_1bit(*this, ci);
  check_1bit(*this, s);
  check_1bit(*this, o);
  in("di", di);
  in("ci", ci);
  in("s", s);
  out("o", o);
}

void MuxCY::propagate() {
  // o = s ? ci : di
  ov(0, mux(iv(0), iv(1), iv(2)));
}

Resources MuxCY::resources() const {
  return {.luts = 0, .ffs = 0, .carries = 1,
          .delay_ns = timing::kCarryMuxDelayNs};
}

XorCY::XorCY(Cell* parent, Wire* li, Wire* ci, Wire* o)
    : Primitive(parent, "xorcy") {
  set_type_name("xorcy");
  check_1bit(*this, li);
  check_1bit(*this, ci);
  check_1bit(*this, o);
  in("li", li);
  in("ci", ci);
  out("o", o);
}

void XorCY::propagate() { ov(0, logic_xor(iv(0), iv(1))); }

Resources XorCY::resources() const {
  return {.luts = 0, .ffs = 0, .carries = 0, .delay_ns = timing::kXorCyDelayNs};
}

MuxF5::MuxF5(Cell* parent, Wire* i0, Wire* i1, Wire* s, Wire* o)
    : Primitive(parent, "muxf5") {
  set_type_name("muxf5");
  check_1bit(*this, i0);
  check_1bit(*this, i1);
  check_1bit(*this, s);
  check_1bit(*this, o);
  in("i0", i0);
  in("i1", i1);
  in("s", s);
  out("o", o);
}

void MuxF5::propagate() { ov(0, mux(iv(0), iv(1), iv(2))); }

Resources MuxF5::resources() const {
  return {.luts = 0, .ffs = 0, .carries = 0, .delay_ns = timing::kMuxF5DelayNs};
}

}  // namespace jhdl::tech
