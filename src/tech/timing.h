// Timing constants of the Virtex-class delay model.
//
// Values are representative of a Xilinx Virtex -6 speed grade (public
// datasheet magnitudes). Benchmarks depend only on the *relative* shape of
// these numbers (LUT >> carry mux), not on absolute fidelity.
#pragma once

namespace jhdl::tech::timing {

inline constexpr double kLutDelayNs = 0.5;     ///< LUT4 pin-to-pin
inline constexpr double kRouteDelayNs = 0.1;   ///< route-through buffer
inline constexpr double kCarryMuxDelayNs = 0.06;  ///< MUXCY along the chain
inline constexpr double kXorCyDelayNs = 0.3;   ///< XORCY sum output
inline constexpr double kMuxF5DelayNs = 0.2;   ///< F5 combiner mux
inline constexpr double kFfClkToQNs = 0.6;     ///< flip-flop clock-to-out
inline constexpr double kFfSetupNs = 0.4;      ///< flip-flop setup time
inline constexpr double kRomDelayNs = 0.5;     ///< LUT-ROM access (one LUT)
inline constexpr double kRamAccessNs = 0.5;    ///< LUT-RAM read access

}  // namespace jhdl::tech::timing
