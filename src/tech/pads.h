// I/O pad primitives (IBUF/OBUF): electrically they are buffers, but
// netlists must carry them explicitly so downstream tools know which nets
// reach package pins.
#pragma once

#include "hdl/primitive.h"

namespace jhdl::tech {

/// Input pad buffer.
class Ibuf final : public Primitive {
 public:
  Ibuf(Cell* parent, Wire* pad, Wire* o);
  void propagate() override;
  Resources resources() const override;
};

/// Output pad buffer.
class Obuf final : public Primitive {
 public:
  Obuf(Cell* parent, Wire* i, Wire* pad);
  void propagate() override;
  Resources resources() const override;
};

}  // namespace jhdl::tech
