#include "tech/pads.h"

#include "hdl/error.h"
#include "tech/timing.h"

namespace jhdl::tech {
namespace {
constexpr double kPadDelayNs = 1.2;  // pad + input/output buffer
}

Ibuf::Ibuf(Cell* parent, Wire* pad, Wire* o) : Primitive(parent, "ibuf") {
  set_type_name("ibuf");
  if (pad->width() != 1 || o->width() != 1) {
    throw HdlError("Ibuf pins must be 1 bit: " + full_name());
  }
  in("pad", pad);
  out("o", o);
}

void Ibuf::propagate() { ov(0, iv(0)); }

Resources Ibuf::resources() const {
  return {.luts = 0, .ffs = 0, .carries = 0, .brams = 0,
          .delay_ns = kPadDelayNs};
}

Obuf::Obuf(Cell* parent, Wire* i, Wire* pad) : Primitive(parent, "obuf") {
  set_type_name("obuf");
  if (pad->width() != 1 || i->width() != 1) {
    throw HdlError("Obuf pins must be 1 bit: " + full_name());
  }
  in("i", i);
  out("pad", pad);
}

void Obuf::propagate() { ov(0, iv(0)); }

Resources Obuf::resources() const {
  return {.luts = 0, .ffs = 0, .carries = 0, .brams = 0,
          .delay_ns = kPadDelayNs};
}

}  // namespace jhdl::tech
