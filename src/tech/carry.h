// Virtex carry-chain primitives (MUXCY, XORCY) and the F5 combiner mux.
//
// These are what make Virtex ripple-carry adders fast: the carry propagates
// through a dedicated mux (MUXCY, ~0.06 ns) instead of general routing, and
// XORCY forms the sum from the LUT's half-sum output for free.
//
//   MUXCY: o = s ? ci : di     (s comes from a LUT computing a XOR b)
//   XORCY: o = li XOR ci
//   MUXF5: o = s ? i1 : i0     (combines two LUT outputs into 5-input logic)
#pragma once

#include "hdl/primitive.h"

namespace jhdl::tech {

/// Carry-chain mux: o = s ? ci : di.
class MuxCY final : public Primitive {
 public:
  MuxCY(Cell* parent, Wire* di, Wire* ci, Wire* s, Wire* o);
  void propagate() override;
  Resources resources() const override;
};

/// Carry-chain xor: o = li ^ ci.
class XorCY final : public Primitive {
 public:
  XorCY(Cell* parent, Wire* li, Wire* ci, Wire* o);
  void propagate() override;
  Resources resources() const override;
};

/// F5 multiplexer combining two LUT outputs: o = s ? i1 : i0.
class MuxF5 final : public Primitive {
 public:
  MuxF5(Cell* parent, Wire* i0, Wire* i1, Wire* s, Wire* o);
  void propagate() override;
  Resources resources() const override;
};

}  // namespace jhdl::tech
