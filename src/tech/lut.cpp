#include "tech/lut.h"

#include "hdl/error.h"
#include "tech/timing.h"
#include "util/strings.h"

namespace jhdl::tech {

Lut::Lut(Cell* parent, std::vector<Wire*> inputs, Wire* out,
         std::uint16_t init)
    : Primitive(parent, "lut" + std::to_string(inputs.size())), init_(init) {
  if (inputs.empty() || inputs.size() > 4) {
    throw HdlError("Lut supports 1..4 inputs");
  }
  set_type_name("lut" + std::to_string(inputs.size()));
  static const char* const kPinNames[] = {"i0", "i1", "i2", "i3"};
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (inputs[i]->width() != 1) {
      throw HdlError("LUT input must be 1 bit: " + full_name());
    }
    in(kPinNames[i], inputs[i]);
  }
  if (out->width() != 1) {
    throw HdlError("LUT output must be 1 bit: " + full_name());
  }
  this->out("o", out);
  const unsigned table_bits = 1u << inputs.size();
  if (table_bits < 16 && (init >> table_bits) != 0) {
    throw HdlError("INIT wider than truth table on " + full_name());
  }
  set_property("INIT", format("%04X", init));
}

Logic4 Lut::eval(std::size_t bit, std::uint32_t addr) const {
  if (bit == num_inputs()) {
    return to_logic(((init_ >> addr) & 1) != 0);
  }
  Logic4 v = iv(bit);
  if (is_binary(v)) {
    return eval(bit + 1, addr | (to_bool(v) ? (1u << bit) : 0u));
  }
  // Undefined select bit: output defined only if both halves agree.
  Logic4 lo = eval(bit + 1, addr);
  Logic4 hi = eval(bit + 1, addr | (1u << bit));
  return lo == hi ? lo : Logic4::X;
}

void Lut::propagate() { ov(0, eval(0, 0)); }

Resources Lut::resources() const {
  return {.luts = 1, .ffs = 0, .carries = 0, .delay_ns = timing::kLutDelayNs};
}

}  // namespace jhdl::tech
