// Technology library metadata: a machine-readable catalog of every Virtex
// primitive this library provides. The packaging system serializes this
// catalog (plus simulation tables) into the "Virtex" archive - the
// equivalent of Virtex.jar in Table 1 of the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace jhdl::tech {

/// Description of one library primitive.
struct PrimitiveDesc {
  std::string name;                   ///< cell type, e.g. "and2"
  std::vector<std::string> inputs;    ///< input pin names
  std::vector<std::string> outputs;   ///< output pin names
  bool sequential = false;
  std::string doc;                    ///< one-line description
};

/// The full Virtex-class catalog, in a stable order.
const std::vector<PrimitiveDesc>& virtex_library();

/// Serialize the catalog (including generated truth tables for the
/// combinational cells, standing in for compiled simulation models) into a
/// byte payload suitable for packaging.
std::vector<std::uint8_t> serialize_virtex_library();

/// Parse a payload produced by serialize_virtex_library (round-trip test
/// support and applet-side library loading).
std::vector<PrimitiveDesc> parse_virtex_library(
    const std::vector<std::uint8_t>& payload);

}  // namespace jhdl::tech
