#include "tech/gates.h"

#include "hdl/error.h"
#include "tech/timing.h"

namespace jhdl::tech {

NaryGate::NaryGate(Cell* parent, Op op, const std::string& type,
                   std::vector<Wire*> ins, Wire* out)
    : Primitive(parent, type), op_(op) {
  set_type_name(type);
  static const char* const kPinNames[] = {"i0", "i1", "i2", "i3"};
  if (ins.size() > 4) {
    throw HdlError("NaryGate supports at most 4 inputs");
  }
  for (std::size_t i = 0; i < ins.size(); ++i) {
    if (ins[i]->width() != 1) {
      throw HdlError("gate input must be 1 bit wide: " + full_name());
    }
    in(kPinNames[i], ins[i]);
  }
  if (out->width() != 1) {
    throw HdlError("gate output must be 1 bit wide: " + full_name());
  }
  this->out("o", out);
}

void NaryGate::propagate() {
  Logic4 acc = iv(0);
  switch (op_) {
    case Op::And:
    case Op::Nand:
      for (std::size_t i = 1; i < num_inputs(); ++i) acc = logic_and(acc, iv(i));
      break;
    case Op::Or:
    case Op::Nor:
      for (std::size_t i = 1; i < num_inputs(); ++i) acc = logic_or(acc, iv(i));
      break;
    case Op::Xor:
      for (std::size_t i = 1; i < num_inputs(); ++i) acc = logic_xor(acc, iv(i));
      break;
  }
  if (op_ == Op::Nand || op_ == Op::Nor) acc = logic_not(acc);
  ov(0, acc);
}

Resources NaryGate::resources() const {
  return {.luts = 1, .ffs = 0, .carries = 0, .delay_ns = timing::kLutDelayNs};
}

Inv::Inv(Cell* parent, Wire* a, Wire* o) : Primitive(parent, "inv") {
  set_type_name("inv");
  in("i0", a);
  out("o", o);
}

void Inv::propagate() { ov(0, logic_not(iv(0))); }

Resources Inv::resources() const {
  return {.luts = 1, .ffs = 0, .carries = 0, .delay_ns = timing::kLutDelayNs};
}

Buf::Buf(Cell* parent, Wire* a, Wire* o) : Primitive(parent, "buf") {
  set_type_name("buf");
  in("i0", a);
  out("o", o);
}

void Buf::propagate() { ov(0, iv(0)); }

Resources Buf::resources() const {
  return {.luts = 0, .ffs = 0, .carries = 0, .delay_ns = timing::kRouteDelayNs};
}

Mux2::Mux2(Cell* parent, Wire* a, Wire* b, Wire* sel, Wire* o)
    : Primitive(parent, "mux2") {
  set_type_name("mux2");
  in("i0", a);
  in("i1", b);
  in("sel", sel);
  out("o", o);
}

void Mux2::propagate() {
  Logic4 sel = iv(2);
  if (!is_binary(sel)) {
    // X on select: output is X unless both data inputs agree.
    ov(0, iv(0) == iv(1) && is_binary(iv(0)) ? iv(0) : Logic4::X);
    return;
  }
  ov(0, to_bool(sel) ? iv(1) : iv(0));
}

Resources Mux2::resources() const {
  return {.luts = 1, .ffs = 0, .carries = 0, .delay_ns = timing::kLutDelayNs};
}

}  // namespace jhdl::tech
