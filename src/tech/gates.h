// Basic combinational gate primitives of the Virtex-class technology
// library: the and2/or3/xor3/... cells the paper's full-adder listing
// instances. All gate pins are single-bit.
//
// Resource model: every gate up to four inputs maps to one 4-input LUT
// (that is how a technology mapper implements it on Virtex); Buf is a
// route-through costing no logic.
#pragma once

#include <string>
#include <vector>

#include "hdl/primitive.h"

namespace jhdl::tech {

/// Shared implementation for simple n-ary gates.
class NaryGate : public Primitive {
 public:
  enum class Op { And, Or, Xor, Nand, Nor };

  void propagate() override;
  Resources resources() const override;

  Op op() const { return op_; }

 protected:
  NaryGate(Cell* parent, Op op, const std::string& type,
           std::vector<Wire*> ins, Wire* out);

 private:
  Op op_;
};

class And2 final : public NaryGate {
 public:
  And2(Cell* parent, Wire* a, Wire* b, Wire* o)
      : NaryGate(parent, Op::And, "and2", {a, b}, o) {}
};

class And3 final : public NaryGate {
 public:
  And3(Cell* parent, Wire* a, Wire* b, Wire* c, Wire* o)
      : NaryGate(parent, Op::And, "and3", {a, b, c}, o) {}
};

class And4 final : public NaryGate {
 public:
  And4(Cell* parent, Wire* a, Wire* b, Wire* c, Wire* d, Wire* o)
      : NaryGate(parent, Op::And, "and4", {a, b, c, d}, o) {}
};

class Or2 final : public NaryGate {
 public:
  Or2(Cell* parent, Wire* a, Wire* b, Wire* o)
      : NaryGate(parent, Op::Or, "or2", {a, b}, o) {}
};

class Or3 final : public NaryGate {
 public:
  Or3(Cell* parent, Wire* a, Wire* b, Wire* c, Wire* o)
      : NaryGate(parent, Op::Or, "or3", {a, b, c}, o) {}
};

class Or4 final : public NaryGate {
 public:
  Or4(Cell* parent, Wire* a, Wire* b, Wire* c, Wire* d, Wire* o)
      : NaryGate(parent, Op::Or, "or4", {a, b, c, d}, o) {}
};

class Xor2 final : public NaryGate {
 public:
  Xor2(Cell* parent, Wire* a, Wire* b, Wire* o)
      : NaryGate(parent, Op::Xor, "xor2", {a, b}, o) {}
};

class Xor3 final : public NaryGate {
 public:
  Xor3(Cell* parent, Wire* a, Wire* b, Wire* c, Wire* o)
      : NaryGate(parent, Op::Xor, "xor3", {a, b, c}, o) {}
};

class Nand2 final : public NaryGate {
 public:
  Nand2(Cell* parent, Wire* a, Wire* b, Wire* o)
      : NaryGate(parent, Op::Nand, "nand2", {a, b}, o) {}
};

class Nor2 final : public NaryGate {
 public:
  Nor2(Cell* parent, Wire* a, Wire* b, Wire* o)
      : NaryGate(parent, Op::Nor, "nor2", {a, b}, o) {}
};

/// Inverter (one LUT).
class Inv final : public Primitive {
 public:
  Inv(Cell* parent, Wire* a, Wire* o);
  void propagate() override;
  Resources resources() const override;
};

/// Non-inverting buffer; a route-through with no logic cost.
class Buf final : public Primitive {
 public:
  Buf(Cell* parent, Wire* a, Wire* o);
  void propagate() override;
  Resources resources() const override;
};

/// 2:1 multiplexer: o = sel ? b : a.
class Mux2 final : public Primitive {
 public:
  Mux2(Cell* parent, Wire* a, Wire* b, Wire* sel, Wire* o);
  void propagate() override;
  Resources resources() const override;
};

}  // namespace jhdl::tech
