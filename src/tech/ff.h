// Flip-flop primitives: FD (plain D-FF), FDC (with clear), FDCE (clock
// enable + clear), FDRE (clock enable + synchronous reset).
//
// The simulator is cycle-based with a single implicit clock (JHDL's model):
// Simulator::cycle() samples every flip-flop's inputs, then commits all
// outputs, then re-propagates combinational logic. Clear/reset inputs are
// sampled at the clock edge (a documented simplification of Virtex's
// asynchronous CLR; at cycle granularity the observable behaviour matches).
//
// Power-on state follows Virtex GSR semantics: all flip-flops start at the
// INIT value (0 by default) rather than X; Simulator::reset() restores it.
#pragma once

#include "hdl/primitive.h"

namespace jhdl::tech {

/// Base for single-bit D flip-flops with optional enable and clear pins.
class FlipFlop : public Primitive {
 public:
  bool sequential() const final { return true; }
  void pre_clock() final;
  void post_clock() final;
  void reset() final;
  Resources resources() const final;

  Logic4 state() const { return state_; }

  // Pin layout + power-on value, exposed so the compiled simulation kernel
  // (sim/compiled_kernel.cpp) can lower flip-flops into flat records
  // instead of paying two virtual calls per primitive per clock edge.
  int d_pin() const { return d_pin_; }
  int ce_pin() const { return ce_pin_; }    ///< -1 when the variant lacks CE
  int clr_pin() const { return clr_pin_; }  ///< -1 when the variant lacks CLR
  Logic4 init_value() const { return init_; }

 protected:
  /// `ce` and/or `clr` may be null when the variant lacks the pin.
  /// `clr_pin_name` is the library pin name ("clr" for FDC/FDCE, "r" for
  /// FDRE's synchronous reset).
  FlipFlop(Cell* parent, const std::string& type, Wire* d, Wire* q, Wire* ce,
           Wire* clr, bool init_one, const char* clr_pin_name = "clr");

 private:
  int d_pin_ = 0;
  int ce_pin_ = -1;
  int clr_pin_ = -1;
  Logic4 init_;
  Logic4 state_;
  Logic4 next_ = Logic4::X;
};

/// Plain D flip-flop.
class FD final : public FlipFlop {
 public:
  FD(Cell* parent, Wire* d, Wire* q, bool init_one = false)
      : FlipFlop(parent, "fd", d, q, nullptr, nullptr, init_one) {}
};

/// D flip-flop with clear (sampled at the clock edge).
class FDC final : public FlipFlop {
 public:
  FDC(Cell* parent, Wire* d, Wire* q, Wire* clr, bool init_one = false)
      : FlipFlop(parent, "fdc", d, q, nullptr, clr, init_one) {}
};

/// D flip-flop with clock enable and clear.
class FDCE final : public FlipFlop {
 public:
  FDCE(Cell* parent, Wire* d, Wire* q, Wire* ce, Wire* clr,
       bool init_one = false)
      : FlipFlop(parent, "fdce", d, q, ce, clr, init_one) {}
};

/// D flip-flop with clock enable and synchronous reset (same cycle-level
/// behaviour as FDCE in this simulator; kept as a distinct library cell so
/// netlists carry the intended primitive).
class FDRE final : public FlipFlop {
 public:
  FDRE(Cell* parent, Wire* d, Wire* q, Wire* ce, Wire* r,
       bool init_one = false)
      : FlipFlop(parent, "fdre", d, q, ce, r, init_one, "r") {}
};

}  // namespace jhdl::tech
