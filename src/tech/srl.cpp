#include "tech/srl.h"

#include "hdl/error.h"
#include "tech/timing.h"
#include "util/strings.h"

namespace jhdl::tech {

Srl16::Srl16(Cell* parent, Wire* d, Wire* addr, Wire* q, Wire* ce,
             std::uint16_t init)
    : Primitive(parent, "srl16"), init_(init), state_(init) {
  if (d->width() != 1 || q->width() != 1 || addr->width() != 4) {
    throw HdlError("Srl16 pin width error: " + full_name());
  }
  set_type_name(ce != nullptr ? "srl16e" : "srl16");
  in("d", d);      // input 0
  in("a", addr);   // inputs 1..4
  if (ce != nullptr) {
    in("ce", ce);  // input 5
    ce_pin_ = 5;
  }
  out("q", q);
  set_property("INIT", format("%04X", init));
  propagate();
}

void Srl16::propagate() {
  std::uint32_t tap = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    Logic4 v = iv(1 + i);
    if (!is_binary(v)) {
      ov(0, Logic4::X);
      return;
    }
    if (to_bool(v)) tap |= 1u << i;
  }
  ov(0, to_logic((state_ >> tap) & 1));
}

void Srl16::pre_clock() {
  shift_pending_ = true;
  if (ce_pin_ >= 0) {
    Logic4 ce = iv(static_cast<std::size_t>(ce_pin_));
    if (ce == Logic4::Zero) {
      shift_pending_ = false;
      return;
    }
    // X clock-enable conservatively still shifts (documented
    // simplification; fully defined designs never hit it).
  }
  shift_in_ = iv(0);
}

void Srl16::post_clock() {
  if (!shift_pending_) return;
  // X shift-in is stored as 0 with the limitation documented in
  // Ram16x1s; fully defined designs never exercise it.
  bool bit = is_binary(shift_in_) && to_bool(shift_in_);
  state_ = static_cast<std::uint16_t>((state_ << 1) | (bit ? 1 : 0));
  shift_pending_ = false;
  propagate();
}

void Srl16::reset() {
  state_ = init_;
  shift_pending_ = false;
  propagate();
}

Resources Srl16::resources() const {
  return {.luts = 1, .ffs = 0, .carries = 0, .brams = 0,
          .delay_ns = timing::kRamAccessNs};
}

}  // namespace jhdl::tech
