// LUT-based memory primitives: ROM16xW (the partial-product tables of the
// KCM multiplier) and RAM16x1S (single-port distributed RAM).
//
// A ROM16xW is W LUT4s sharing a 4-bit address; each output bit has its own
// 16-bit truth table. This is exactly how the paper's constant-coefficient
// multiplier stores constant*digit partial products on Virtex.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "hdl/primitive.h"

namespace jhdl::tech {

/// 16-entry ROM with a W-bit data output (W LUTs).
class Rom16 final : public Primitive {
 public:
  /// `addr` must be 4 bits; `data` is W bits; `contents[i]` is the value
  /// read when addr == i (low `data->width()` bits are used).
  Rom16(Cell* parent, Wire* addr, Wire* data,
        const std::array<std::uint64_t, 16>& contents);

  void propagate() override;
  Resources resources() const override;

  const std::array<std::uint64_t, 16>& contents() const { return contents_; }

  /// Rewrite one table entry (watermarking hook; see core/protect.h).
  /// Updates the INIT_* properties to match.
  void set_entry(unsigned addr, std::uint64_t value);

 private:
  void refresh_init_properties();
  std::array<std::uint64_t, 16> contents_;
};

/// 16x1 single-port synchronous-write distributed RAM (asynchronous read,
/// like Virtex RAM16X1S): read data appears combinationally from the
/// address; writes latch on the clock edge when we=1.
class Ram16x1s final : public Primitive {
 public:
  Ram16x1s(Cell* parent, Wire* addr, Wire* din, Wire* we, Wire* dout,
           std::uint16_t init = 0);

  void propagate() override;
  bool sequential() const override { return true; }
  /// Asynchronous read: dout follows the address combinationally.
  bool has_comb_path() const override { return true; }
  void pre_clock() override;
  void post_clock() override;
  void reset() override;
  Resources resources() const override;

  std::uint16_t state() const { return state_; }

 private:
  std::uint32_t sample_addr(bool& defined) const;
  std::uint16_t init_;
  std::uint16_t state_;
  // Pending write captured in pre_clock.
  bool write_pending_ = false;
  std::uint32_t write_addr_ = 0;
  Logic4 write_data_ = Logic4::X;
};

}  // namespace jhdl::tech
