// Generic LUT primitives with an INIT truth table, like Xilinx LUT1-LUT4.
//
// The INIT value encodes the output for each input combination: output =
// INIT bit at index {i3,i2,i1,i0} (i0 is the least significant address
// bit). INIT is stored as a property ("INIT", hex) so netlisters emit it.
#pragma once

#include <cstdint>
#include <vector>

#include "hdl/primitive.h"

namespace jhdl::tech {

/// k-input lookup table, 1 <= k <= 4. Output is X if any *selecting* input
/// is non-binary and the two candidate truth-table halves disagree.
class Lut : public Primitive {
 public:
  /// `inputs` are 1-bit wires i0..i{k-1}; `init` is the truth table in the
  /// low 2^k bits.
  Lut(Cell* parent, std::vector<Wire*> inputs, Wire* out, std::uint16_t init);

  void propagate() override;
  Resources resources() const override;

  std::uint16_t init() const { return init_; }

 private:
  /// Evaluates the truth table over a partial assignment; returns X when
  /// undefined inputs make the output ambiguous.
  Logic4 eval(std::size_t bit, std::uint32_t addr) const;

  std::uint16_t init_;
};

class Lut1 final : public Lut {
 public:
  Lut1(Cell* parent, Wire* i0, Wire* o, std::uint16_t init)
      : Lut(parent, {i0}, o, init) {}
};

class Lut2 final : public Lut {
 public:
  Lut2(Cell* parent, Wire* i0, Wire* i1, Wire* o, std::uint16_t init)
      : Lut(parent, {i0, i1}, o, init) {}
};

class Lut3 final : public Lut {
 public:
  Lut3(Cell* parent, Wire* i0, Wire* i1, Wire* i2, Wire* o,
       std::uint16_t init)
      : Lut(parent, {i0, i1, i2}, o, init) {}
};

class Lut4 final : public Lut {
 public:
  Lut4(Cell* parent, Wire* i0, Wire* i1, Wire* i2, Wire* i3, Wire* o,
       std::uint16_t init)
      : Lut(parent, {i0, i1, i2, i3}, o, init) {}
};

}  // namespace jhdl::tech
