#include "tech/constants.h"

#include "hdl/error.h"
#include "util/strings.h"

namespace jhdl::tech {

Gnd::Gnd(Cell* parent, Wire* o) : Primitive(parent, "gnd") {
  set_type_name("gnd");
  if (o->width() != 1) throw HdlError("Gnd output must be 1 bit");
  out("o", o);
  ov(0, Logic4::Zero);
}

void Gnd::propagate() { ov(0, Logic4::Zero); }

Vcc::Vcc(Cell* parent, Wire* o) : Primitive(parent, "vcc") {
  set_type_name("vcc");
  if (o->width() != 1) throw HdlError("Vcc output must be 1 bit");
  out("o", o);
  ov(0, Logic4::One);
}

void Vcc::propagate() { ov(0, Logic4::One); }

Constant::Constant(Cell* parent, Wire* o, std::uint64_t value)
    : Primitive(parent, "const"), value_(value) {
  set_type_name("const" + std::to_string(o->width()));
  if (o->width() > 64) throw HdlError("Constant wider than 64 bits");
  out("o", o);
  set_property("VALUE", format("%llu", static_cast<unsigned long long>(value)));
  propagate();
}

void Constant::propagate() {
  for (std::size_t i = 0; i < num_outputs(); ++i) {
    ov(i, to_logic((value_ >> i) & 1));
  }
}

}  // namespace jhdl::tech
