#include "tech/memory.h"

#include "hdl/error.h"
#include "tech/timing.h"
#include "util/strings.h"

namespace jhdl::tech {

Rom16::Rom16(Cell* parent, Wire* addr, Wire* data,
             const std::array<std::uint64_t, 16>& contents)
    : Primitive(parent, "rom16x" + std::to_string(data->width())),
      contents_(contents) {
  if (addr->width() != 4) {
    throw HdlError("Rom16 address must be 4 bits: " + full_name());
  }
  if (data->width() == 0 || data->width() > 64) {
    throw HdlError("Rom16 data width must be 1..64: " + full_name());
  }
  set_type_name("rom16x" + std::to_string(data->width()));
  in("a", addr);
  out("d", data);
  refresh_init_properties();
}

void Rom16::refresh_init_properties() {
  // Record per-output-bit INIT strings, as a netlist would for each LUT.
  for (std::size_t bit = 0; bit < num_outputs(); ++bit) {
    std::uint16_t table = 0;
    for (std::uint32_t a = 0; a < 16; ++a) {
      if ((contents_[a] >> bit) & 1) table |= static_cast<std::uint16_t>(1u << a);
    }
    set_property("INIT_" + std::to_string(bit), format("%04X", table));
  }
}

void Rom16::set_entry(unsigned addr, std::uint64_t value) {
  if (addr >= 16) throw HdlError("Rom16::set_entry: address out of range");
  contents_[addr] = value;
  refresh_init_properties();
}

void Rom16::propagate() {
  std::uint32_t addr = 0;
  bool defined = true;
  for (std::size_t i = 0; i < 4; ++i) {
    Logic4 v = iv(i);
    if (!is_binary(v)) {
      defined = false;
      break;
    }
    if (to_bool(v)) addr |= 1u << i;
  }
  for (std::size_t bit = 0; bit < num_outputs(); ++bit) {
    if (!defined) {
      ov(bit, Logic4::X);
    } else {
      ov(bit, to_logic((contents_[addr] >> bit) & 1));
    }
  }
}

Resources Rom16::resources() const {
  return {.luts = static_cast<int>(num_outputs()), .ffs = 0, .carries = 0,
          .delay_ns = timing::kRomDelayNs};
}

Ram16x1s::Ram16x1s(Cell* parent, Wire* addr, Wire* din, Wire* we, Wire* dout,
                   std::uint16_t init)
    : Primitive(parent, "ram16x1s"), init_(init), state_(init) {
  if (addr->width() != 4 || din->width() != 1 || we->width() != 1 ||
      dout->width() != 1) {
    throw HdlError("Ram16x1s pin width error: " + full_name());
  }
  set_type_name("ram16x1s");
  in("a", addr);   // inputs 0..3
  in("d", din);    // input 4
  in("we", we);    // input 5
  out("o", dout);
  set_property("INIT", format("%04X", init));
}

std::uint32_t Ram16x1s::sample_addr(bool& defined) const {
  std::uint32_t addr = 0;
  defined = true;
  for (std::size_t i = 0; i < 4; ++i) {
    Logic4 v = iv(i);
    if (!is_binary(v)) {
      defined = false;
      return 0;
    }
    if (to_bool(v)) addr |= 1u << i;
  }
  return addr;
}

void Ram16x1s::propagate() {
  bool defined = false;
  std::uint32_t addr = sample_addr(defined);
  if (!defined) {
    ov(0, Logic4::X);
  } else {
    ov(0, to_logic((state_ >> addr) & 1));
  }
}

void Ram16x1s::pre_clock() {
  write_pending_ = false;
  Logic4 we = iv(5);
  if (we == Logic4::Zero) return;
  bool defined = false;
  std::uint32_t addr = sample_addr(defined);
  if (!is_binary(we) || !defined) {
    // Unknown write enable or address: conservatively X the whole array by
    // writing X to the addressed bit if known, else leave state (documented
    // simplification: full-array corruption is not modeled).
    if (defined) {
      write_pending_ = true;
      write_addr_ = addr;
      write_data_ = Logic4::X;
    }
    return;
  }
  write_pending_ = true;
  write_addr_ = addr;
  write_data_ = iv(4);
}

void Ram16x1s::post_clock() {
  if (!write_pending_) return;
  // X data writes are stored as 0 with the limitation documented above;
  // fully-defined designs never hit this path.
  bool bit = is_binary(write_data_) && to_bool(write_data_);
  if (bit) {
    state_ = static_cast<std::uint16_t>(state_ | (1u << write_addr_));
  } else {
    state_ = static_cast<std::uint16_t>(state_ & ~(1u << write_addr_));
  }
  write_pending_ = false;
  propagate();
}

void Ram16x1s::reset() {
  state_ = init_;
  write_pending_ = false;
  propagate();
}

Resources Ram16x1s::resources() const {
  return {.luts = 1, .ffs = 0, .carries = 0, .delay_ns = timing::kRamAccessNs};
}

}  // namespace jhdl::tech
