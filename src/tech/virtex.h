// Umbrella header for the Virtex-class technology library.
#pragma once

#include "tech/bram.h"
#include "tech/carry.h"
#include "tech/constants.h"
#include "tech/ff.h"
#include "tech/gates.h"
#include "tech/library.h"
#include "tech/lut.h"
#include "tech/memory.h"
#include "tech/pads.h"
#include "tech/srl.h"
#include "tech/timing.h"
