#include "net/sim_client.h"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace jhdl::net {

namespace {

ConnectSpec rtt_only(double injected_rtt_ms) {
  ConnectSpec spec;
  spec.injected_rtt_ms = injected_rtt_ms;
  return spec;
}

}  // namespace

SimClient::SimClient(std::uint16_t port, double injected_rtt_ms)
    : SimClient(port, rtt_only(injected_rtt_ms)) {}

SimClient::SimClient(std::uint16_t port, const ConnectSpec& spec)
    : port_(port),
      customer_(spec.customer),
      module_(spec.module),
      params_(spec.params),
      policy_(spec.retry),
      fault_plan_(spec.fault_plan),
      injected_rtt_ms_(spec.injected_rtt_ms),
      tracer_(spec.tracer != nullptr ? spec.tracer : &obs::Tracer::global()),
      trace_id_(spec.trace_id != 0 ? spec.trace_id
                                   : obs::TraceContext::mint().id),
      jitter_rng_(spec.retry.jitter_seed) {
  if (policy_.max_attempts < 1) policy_.max_attempts = 1;
  for (int attempt = 0;; ++attempt) {
    try {
      connect_and_handshake();
      return;
    } catch (const NetError& e) {
      if (!e.retryable() || attempt + 1 >= policy_.max_attempts) throw;
      ++retries_;
      backoff(attempt);
    }
  }
}

void SimClient::connect_and_handshake() {
  // Named for what actually happened: a reconnect turns into a Resume.
  obs::ScopedSpan span(*tracer_, "client.connect", trace_id_);
  connected_ = false;
  TcpStream raw = TcpStream::connect(port_);
  if (policy_.request_timeout.count() > 0) {
    raw.set_recv_timeout(static_cast<int>(policy_.request_timeout.count()));
  }
  stream_ = wrap_stream(std::move(raw), fault_plan_);
  Message handshake;
  const bool resuming = !token_.empty();
  span.set_name(resuming ? "client.resume" : "client.hello");
  if (resuming) {
    // Transport died mid-session: reattach to the server-side session
    // instead of opening a fresh one, so model state (and the
    // idempotent-replay cache) survives the reconnect.
    handshake.type = MsgType::Resume;
    handshake.text = token_;
    handshake.count = last_acked_cycles_;
  } else {
    handshake.type = MsgType::Hello;
    handshake.customer = customer_;
    handshake.name = module_;
    handshake.params = params_;
  }
  handshake.seq = ++seq_;
  handshake.trace = trace_id_;
  Message reply = transact(handshake);
  if (reply.type == MsgType::Error) {
    throw NetError("remote error: " + reply.text,
                   error_retryable(reply.code) ? NetError::Kind::Retryable
                                               : NetError::Kind::Fatal);
  }
  if (reply.type != MsgType::Iface) {
    throw NetError("handshake failed: unexpected reply",
                   NetError::Kind::Fatal);
  }
  iface_ = Json::parse(reply.text);
  if (iface_.has("token")) token_ = iface_.at("token").as_string();
  connected_ = true;
  if (ever_connected_) ++reconnects_;
  ever_connected_ = true;
  ++round_trips_;
}

Message SimClient::transact(const Message& msg) {
  if (injected_rtt_ms_ > 0.0) {
    // One synthetic RTT per request: the wire itself is loopback, so the
    // sleep stands in for propagation delay both ways.
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(injected_rtt_ms_));
  }
  stream_->send_frame(encode(msg));
  while (true) {
    Message reply = decode(stream_->recv_frame());
    if (reply.type == MsgType::Bye) {
      // The server's farewell handshake: it is shutting down (or evicted
      // this session) and will not answer the request.
      stream_->close();
      connected_ = false;
      throw NetError("server closed the session", NetError::Kind::Fatal);
    }
    if (reply.seq != 0 && msg.seq != 0 && reply.seq != msg.seq) {
      // A duplicated or stale reply for some other seq (frame-level
      // duplication, or a reply that raced a retry); the one we are
      // waiting for is still in flight. An exact match is required:
      // a reconnect handshake consumes a HIGHER seq than the request
      // being retried, so `<` alone would let a duplicated Iface reply
      // masquerade as the request's answer.
      continue;
    }
    return reply;
  }
}

void SimClient::backoff(int attempt) {
  obs::ScopedSpan span(*tracer_, "client.backoff", trace_id_);
  const int shift = std::min(attempt, 20);
  auto delay = std::min(policy_.backoff_max, policy_.backoff_base * (1 << shift));
  if (policy_.jitter > 0.0) {
    const double scale = 1.0 - policy_.jitter * jitter_rng_.uniform();
    delay = std::chrono::milliseconds(
        static_cast<std::int64_t>(delay.count() * scale));
  }
  if (delay.count() > 0) std::this_thread::sleep_for(delay);
}

Message SimClient::request(Message msg) {
  obs::ScopedSpan span(*tracer_, "client.request", trace_id_);
  msg.seq = ++seq_;
  msg.trace = trace_id_;
  for (int attempt = 0;; ++attempt) {
    const bool last_attempt = attempt + 1 >= policy_.max_attempts;
    try {
      if (!connected_) connect_and_handshake();
      Message reply = transact(msg);
      if (reply.type == MsgType::Error) {
        if (!error_retryable(reply.code) || last_attempt) {
          throw NetError("remote error: " + reply.text,
                         error_retryable(reply.code)
                             ? NetError::Kind::Retryable
                             : NetError::Kind::Fatal);
        }
        // Retryable remote error. MalformedFrame means only the frame
        // was damaged - the connection is still aligned, resend in
        // place; anything else (saturation, shutdown) warrants a fresh
        // connection.
        if (reply.code != ErrorCode::MalformedFrame) {
          stream_->close();
          connected_ = false;
        }
        ++retries_;
        backoff(attempt);
        continue;
      }
      ++round_trips_;
      if (reply.type == MsgType::Ok || reply.type == MsgType::BatchValues) {
        last_acked_cycles_ = reply.count;
      }
      return reply;
    } catch (const FrameError&) {
      // A corrupt reply frame: the stream is still aligned, so resend
      // the same seq on the same connection; the server's idempotency
      // cache answers without re-executing.
      if (last_attempt) throw;
      ++retries_;
      backoff(attempt);
    } catch (const NetError& e) {
      if (!e.retryable() || last_attempt) throw;
      if (connected_ && stream_ != nullptr) {
        stream_->close();
        connected_ = false;
      }
      ++retries_;
      backoff(attempt);
    }
  }
}

void SimClient::set_input(const std::string& name, const BitVector& value) {
  Message msg;
  msg.type = MsgType::SetInput;
  msg.name = name;
  msg.value = value;
  request(msg);
}

BitVector SimClient::get_output(const std::string& name) {
  Message msg;
  msg.type = MsgType::GetOutput;
  msg.name = name;
  return request(msg).value;
}

void SimClient::cycle(std::size_t n) {
  Message msg;
  msg.type = MsgType::Cycle;
  msg.count = n;
  request(msg);
}

void SimClient::reset() {
  Message msg;
  msg.type = MsgType::Reset;
  request(msg);
}

std::map<std::string, BitVector> SimClient::eval(
    const std::map<std::string, BitVector>& inputs, std::size_t n) {
  Message msg;
  msg.type = MsgType::Eval;
  msg.values = inputs;
  msg.count = n;
  return request(msg).values;
}

std::uint16_t SimClient::negotiated_protocol() const {
  if (iface_.has("protocol")) {
    return static_cast<std::uint16_t>(iface_.at("protocol").as_int());
  }
  // Servers up to v3 issue no "protocol" field; they all predate
  // CycleBatch.
  return 3;
}

std::map<std::string, std::vector<BitVector>> SimClient::cycle_batch(
    std::size_t n,
    const std::map<std::string, std::vector<BitVector>>& stimulus,
    const std::vector<std::string>& probes) {
  for (const auto& [name, values] : stimulus) {
    if (values.size() != n) {
      throw NetError("cycle_batch stimulus for '" + name + "' has " +
                         std::to_string(values.size()) + " values for " +
                         std::to_string(n) + " cycles",
                     NetError::Kind::Fatal);
    }
  }
  if (negotiated_protocol() >= 4) {
    Message msg;
    msg.type = MsgType::CycleBatch;
    msg.count = n;
    msg.series = stimulus;
    msg.probes = probes;
    return request(msg).series;
  }
  // v3 (or older) server: emulate the batch with one Eval round trip per
  // cycle. Identical results, pre-v4 cost.
  std::map<std::string, std::vector<BitVector>> out;
  for (std::size_t t = 0; t < n; ++t) {
    std::map<std::string, BitVector> inputs;
    for (const auto& [name, values] : stimulus) {
      inputs.emplace(name, values[t]);
    }
    std::map<std::string, BitVector> sampled = eval(inputs, 1);
    if (probes.empty()) {
      for (auto& [name, value] : sampled) {
        out[name].push_back(std::move(value));
      }
    } else {
      for (const std::string& name : probes) {
        auto it = sampled.find(name);
        if (it == sampled.end()) {
          throw NetError("server reported no output named '" + name + "'",
                         NetError::Kind::Fatal);
        }
        out[name].push_back(std::move(it->second));
      }
    }
  }
  return out;
}

std::map<std::string, std::vector<BitVector>> SimClient::pattern_batch(
    const std::map<std::string, std::vector<BitVector>>& patterns,
    std::size_t cycles, const std::vector<std::string>& probes) {
  if (patterns.empty()) {
    throw NetError("pattern_batch needs at least one stimulus stream",
                   NetError::Kind::Fatal);
  }
  const std::size_t n_patterns = patterns.begin()->second.size();
  for (const auto& [name, values] : patterns) {
    if (values.size() != n_patterns) {
      throw NetError("pattern_batch stream '" + name + "' has " +
                         std::to_string(values.size()) + " values, expected " +
                         std::to_string(n_patterns),
                     NetError::Kind::Fatal);
    }
  }
  if (negotiated_protocol() >= 6) {
    Message msg;
    msg.type = MsgType::PatternBatch;
    msg.count = cycles;
    msg.series = patterns;
    msg.probes = probes;
    return request(msg).series;
  }
  // Pre-v6 server: emulate the sweep with Reset + Eval per pattern.
  // Identical results (every pattern starts from power-on reset and the
  // model is left reset), per-pattern round trips.
  std::map<std::string, std::vector<BitVector>> out;
  for (std::size_t p = 0; p < n_patterns; ++p) {
    reset();
    std::map<std::string, BitVector> inputs;
    for (const auto& [name, values] : patterns) {
      inputs.emplace(name, values[p]);
    }
    std::map<std::string, BitVector> sampled = eval(inputs, cycles);
    if (probes.empty()) {
      for (auto& [name, value] : sampled) {
        out[name].push_back(std::move(value));
      }
    } else {
      for (const std::string& name : probes) {
        auto it = sampled.find(name);
        if (it == sampled.end()) {
          throw NetError("server reported no output named '" + name + "'",
                         NetError::Kind::Fatal);
        }
        out[name].push_back(std::move(it->second));
      }
    }
  }
  reset();
  return out;
}

void SimClient::bye() {
  if (stream_ == nullptr || !stream_->valid()) return;
  Message msg;
  msg.type = MsgType::Bye;
  try {
    stream_->send_frame(encode(msg));
  } catch (const NetError&) {
    // Farewell is best effort; the server reaps the session either way.
  }
  stream_->close();
  connected_ = false;
  token_.clear();
}

}  // namespace jhdl::net
