#include "net/sim_client.h"

#include <chrono>
#include <stdexcept>
#include <thread>

namespace jhdl::net {

namespace {

ConnectSpec rtt_only(double injected_rtt_ms) {
  ConnectSpec spec;
  spec.injected_rtt_ms = injected_rtt_ms;
  return spec;
}

}  // namespace

SimClient::SimClient(std::uint16_t port, double injected_rtt_ms)
    : SimClient(port, rtt_only(injected_rtt_ms)) {}

SimClient::SimClient(std::uint16_t port, const ConnectSpec& spec)
    : stream_(TcpStream::connect(port)), injected_rtt_ms_(spec.injected_rtt_ms) {
  Message hello;
  hello.type = MsgType::Hello;
  hello.customer = spec.customer;
  hello.name = spec.module;
  hello.params = spec.params;
  Message reply = request(hello);
  if (reply.type != MsgType::Iface) {
    throw NetError("handshake failed: unexpected reply");
  }
  iface_ = Json::parse(reply.text);
}

Message SimClient::request(const Message& msg) {
  if (injected_rtt_ms_ > 0.0) {
    // One synthetic RTT per request: the wire itself is loopback, so the
    // sleep stands in for propagation delay both ways.
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(injected_rtt_ms_));
  }
  stream_.send_frame(encode(msg));
  ++round_trips_;
  Message reply = decode(stream_.recv_frame());
  if (reply.type == MsgType::Error) {
    throw std::runtime_error("remote error: " + reply.text);
  }
  if (reply.type == MsgType::Bye) {
    // The server's farewell handshake: it is shutting down (or evicted
    // this session) and will not answer the request.
    stream_.close();
    throw NetError("server closed the session");
  }
  return reply;
}

void SimClient::set_input(const std::string& name, const BitVector& value) {
  Message msg;
  msg.type = MsgType::SetInput;
  msg.name = name;
  msg.value = value;
  request(msg);
}

BitVector SimClient::get_output(const std::string& name) {
  Message msg;
  msg.type = MsgType::GetOutput;
  msg.name = name;
  return request(msg).value;
}

void SimClient::cycle(std::size_t n) {
  Message msg;
  msg.type = MsgType::Cycle;
  msg.count = n;
  request(msg);
}

void SimClient::reset() {
  Message msg;
  msg.type = MsgType::Reset;
  request(msg);
}

std::map<std::string, BitVector> SimClient::eval(
    const std::map<std::string, BitVector>& inputs, std::size_t n) {
  Message msg;
  msg.type = MsgType::Eval;
  msg.values = inputs;
  msg.count = n;
  return request(msg).values;
}

void SimClient::bye() {
  if (!stream_.valid()) return;
  Message msg;
  msg.type = MsgType::Bye;
  stream_.send_frame(encode(msg));
  stream_.close();
}

}  // namespace jhdl::net
