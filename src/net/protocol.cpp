#include "net/protocol.h"

#include <stdexcept>

#include "util/bytestream.h"

namespace jhdl::net {
namespace {

void put_value(ByteWriter& w, const BitVector& v) { w.str(v.to_string()); }

BitVector get_value(ByteReader& r) { return BitVector::from_string(r.str()); }

/// Read a collection count and sanity-check it against the bytes that are
/// actually left: every entry needs at least two bytes (an empty string
/// plus an empty value), so a huge count from a hostile frame is rejected
/// before any per-entry work, not discovered one allocation at a time.
std::size_t get_count(ByteReader& r) {
  const std::uint64_t n = r.varint();
  if (n > r.remaining()) {
    throw std::runtime_error("protocol: collection count " +
                             std::to_string(n) + " exceeds payload size");
  }
  return static_cast<std::size_t>(n);
}

/// Optional trailing fields: the v3 sequence number, then the v5 trace
/// id. v2 encoders simply end the payload before either, so absence
/// decodes as 0. Order matters: the first trailing varint is ALWAYS the
/// seq (a v5 encoder with a trace writes the seq explicitly even when 0),
/// so a v3/v4 decoder reading one varint still gets the right seq and
/// harmlessly ignores the trace bytes after it.
void get_tail(ByteReader& r, Message& msg) {
  if (r.done()) return;
  msg.seq = r.varint();
  if (!r.done()) msg.trace = r.varint();
}

void put_tail(ByteWriter& w, const Message& msg) {
  if (msg.trace != 0) {
    w.varint(msg.seq);  // explicit even when 0; see get_tail
    w.varint(msg.trace);
  } else if (msg.seq != 0) {
    w.varint(msg.seq);
  }
}

}  // namespace

bool error_retryable(ErrorCode code) {
  switch (code) {
    case ErrorCode::Saturated:
    case ErrorCode::MalformedFrame:
    case ErrorCode::ShuttingDown:
    case ErrorCode::Throttled:
    case ErrorCode::Overloaded:
      return true;
    default:
      return false;
  }
}

std::vector<std::uint8_t> encode(const Message& msg) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(msg.type));
  switch (msg.type) {
    case MsgType::Hello:
      w.u32(kHelloMagic);
      w.u16(kProtocolVersion);
      w.str(msg.customer);
      w.str(msg.name);  // requested module ("" = whatever the server has)
      w.varint(msg.params.size());
      for (const auto& [name, value] : msg.params) {
        w.str(name);
        w.svarint(value);
      }
      break;
    case MsgType::Reset:
    case MsgType::Bye:
    case MsgType::Stats:
    case MsgType::MetricsDump:
    case MsgType::TraceDump:
      break;
    case MsgType::SetInput:
      w.str(msg.name);
      put_value(w, msg.value);
      break;
    case MsgType::GetOutput:
      w.str(msg.name);
      break;
    case MsgType::Cycle:
      w.varint(msg.count);
      break;
    case MsgType::Eval:
      w.varint(msg.values.size());
      for (const auto& [name, value] : msg.values) {
        w.str(name);
        put_value(w, value);
      }
      w.varint(msg.count);
      break;
    case MsgType::Resume:
      w.str(msg.text);     // session token
      w.varint(msg.count);  // last-acked cycle count
      break;
    case MsgType::CycleBatch:
    case MsgType::PatternBatch:  // same layout; count = per-pattern cycles
      w.varint(msg.count);  // cycles
      w.varint(msg.series.size());
      for (const auto& [name, stream] : msg.series) {
        w.str(name);
        // Self-describing length: decoders validate it against `count`
        // rather than trusting it.
        w.varint(stream.size());
        for (const BitVector& v : stream) put_value(w, v);
      }
      w.varint(msg.probes.size());
      for (const std::string& name : msg.probes) w.str(name);
      break;
    case MsgType::Iface:
    case MsgType::StatsReply:
    case MsgType::MetricsReply:
    case MsgType::TraceReply:
      w.str(msg.text);
      break;
    case MsgType::Error:
      w.str(msg.text);
      w.u8(static_cast<std::uint8_t>(msg.code));
      break;
    case MsgType::Ok:
      w.varint(msg.count);
      break;
    case MsgType::Value:
      put_value(w, msg.value);
      break;
    case MsgType::Values:
      w.varint(msg.values.size());
      for (const auto& [name, value] : msg.values) {
        w.str(name);
        put_value(w, value);
      }
      break;
    case MsgType::BatchValues:
      w.varint(msg.count);  // cycle_count after the batch
      w.varint(msg.series.size());
      for (const auto& [name, stream] : msg.series) {
        w.str(name);
        w.varint(stream.size());
        for (const BitVector& v : stream) put_value(w, v);
      }
      break;
  }
  put_tail(w, msg);
  return w.take();
}

Message decode(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  Message msg;
  msg.type = static_cast<MsgType>(r.u8());
  switch (msg.type) {
    case MsgType::Hello:
      if (r.done()) {
        // Legacy v1 Hello: bare type byte. Decodes cleanly so servers can
        // answer with a version-mismatch Error instead of a parse failure.
        msg.version = 1;
        break;
      }
      if (r.u32() != kHelloMagic) {
        throw std::runtime_error("protocol: bad Hello magic");
      }
      msg.version = r.u16();
      if (msg.version >= kMinProtocolVersion &&
          msg.version <= kProtocolVersion) {
        // v2 and v3 share the Hello layout; v3 may append a seq.
        msg.customer = r.str();
        msg.name = r.str();
        std::size_t n = get_count(r);
        for (std::size_t i = 0; i < n; ++i) {
          std::string name = r.str();
          msg.params.emplace(std::move(name), r.svarint());
        }
        get_tail(r, msg);
      }
      // Unknown future versions: keep only the version; the server
      // replies Error before trusting any field.
      break;
    case MsgType::Reset:
    case MsgType::Bye:
    case MsgType::Stats:
    case MsgType::MetricsDump:
    case MsgType::TraceDump:
      get_tail(r, msg);
      break;
    case MsgType::SetInput:
      msg.name = r.str();
      msg.value = get_value(r);
      get_tail(r, msg);
      break;
    case MsgType::GetOutput:
      msg.name = r.str();
      get_tail(r, msg);
      break;
    case MsgType::Cycle:
      msg.count = r.varint();
      get_tail(r, msg);
      break;
    case MsgType::Eval: {
      std::size_t n = get_count(r);
      for (std::size_t i = 0; i < n; ++i) {
        std::string name = r.str();
        msg.values.emplace(std::move(name), get_value(r));
      }
      msg.count = r.varint();
      get_tail(r, msg);
      break;
    }
    case MsgType::Resume:
      msg.text = r.str();
      msg.count = r.varint();
      get_tail(r, msg);
      break;
    case MsgType::CycleBatch:
    case MsgType::PatternBatch: {
      msg.count = r.varint();
      const std::size_t streams = get_count(r);
      for (std::size_t i = 0; i < streams; ++i) {
        std::string name = r.str();
        const std::size_t len = get_count(r);
        std::vector<BitVector> stream;
        stream.reserve(len);
        for (std::size_t k = 0; k < len; ++k) stream.push_back(get_value(r));
        msg.series.emplace(std::move(name), std::move(stream));
      }
      const std::size_t probes = get_count(r);
      for (std::size_t i = 0; i < probes; ++i) msg.probes.push_back(r.str());
      get_tail(r, msg);
      break;
    }
    case MsgType::Iface:
    case MsgType::StatsReply:
    case MsgType::MetricsReply:
    case MsgType::TraceReply:
      msg.text = r.str();
      get_tail(r, msg);
      break;
    case MsgType::Error:
      msg.text = r.str();
      // v2 Errors end after the text; v3 appends a code byte (and maybe
      // a seq).
      if (!r.done()) {
        const std::uint8_t code = r.u8();
        if (code > static_cast<std::uint8_t>(ErrorCode::Overloaded)) {
          throw std::runtime_error("protocol: unknown error code " +
                                   std::to_string(code));
        }
        msg.code = static_cast<ErrorCode>(code);
      }
      get_tail(r, msg);
      break;
    case MsgType::Ok:
      msg.count = r.varint();
      get_tail(r, msg);
      break;
    case MsgType::Value:
      msg.value = get_value(r);
      get_tail(r, msg);
      break;
    case MsgType::Values: {
      std::size_t n = get_count(r);
      for (std::size_t i = 0; i < n; ++i) {
        std::string name = r.str();
        msg.values.emplace(std::move(name), get_value(r));
      }
      get_tail(r, msg);
      break;
    }
    case MsgType::BatchValues: {
      msg.count = r.varint();
      const std::size_t streams = get_count(r);
      for (std::size_t i = 0; i < streams; ++i) {
        std::string name = r.str();
        const std::size_t len = get_count(r);
        std::vector<BitVector> stream;
        stream.reserve(len);
        for (std::size_t k = 0; k < len; ++k) stream.push_back(get_value(r));
        msg.series.emplace(std::move(name), std::move(stream));
      }
      get_tail(r, msg);
      break;
    }
    default:
      throw std::runtime_error("protocol: unknown message type " +
                               std::to_string(static_cast<int>(msg.type)));
  }
  return msg;
}

}  // namespace jhdl::net
