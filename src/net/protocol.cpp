#include "net/protocol.h"

#include <stdexcept>

#include "util/bytestream.h"

namespace jhdl::net {
namespace {

void put_value(ByteWriter& w, const BitVector& v) { w.str(v.to_string()); }

BitVector get_value(ByteReader& r) { return BitVector::from_string(r.str()); }

}  // namespace

std::vector<std::uint8_t> encode(const Message& msg) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(msg.type));
  switch (msg.type) {
    case MsgType::Hello:
      w.u32(kHelloMagic);
      w.u16(kProtocolVersion);
      w.str(msg.customer);
      w.str(msg.name);  // requested module ("" = whatever the server has)
      w.varint(msg.params.size());
      for (const auto& [name, value] : msg.params) {
        w.str(name);
        w.svarint(value);
      }
      break;
    case MsgType::Reset:
    case MsgType::Bye:
    case MsgType::Stats:
      break;
    case MsgType::SetInput:
      w.str(msg.name);
      put_value(w, msg.value);
      break;
    case MsgType::GetOutput:
      w.str(msg.name);
      break;
    case MsgType::Cycle:
      w.varint(msg.count);
      break;
    case MsgType::Eval:
      w.varint(msg.values.size());
      for (const auto& [name, value] : msg.values) {
        w.str(name);
        put_value(w, value);
      }
      w.varint(msg.count);
      break;
    case MsgType::Iface:
    case MsgType::Error:
    case MsgType::StatsReply:
      w.str(msg.text);
      break;
    case MsgType::Ok:
      w.varint(msg.count);
      break;
    case MsgType::Value:
      put_value(w, msg.value);
      break;
    case MsgType::Values:
      w.varint(msg.values.size());
      for (const auto& [name, value] : msg.values) {
        w.str(name);
        put_value(w, value);
      }
      break;
  }
  return w.take();
}

Message decode(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  Message msg;
  msg.type = static_cast<MsgType>(r.u8());
  switch (msg.type) {
    case MsgType::Hello:
      if (r.done()) {
        // Legacy v1 Hello: bare type byte. Decodes cleanly so servers can
        // answer with a version-mismatch Error instead of a parse failure.
        msg.version = 1;
        break;
      }
      if (r.u32() != kHelloMagic) {
        throw std::runtime_error("protocol: bad Hello magic");
      }
      msg.version = r.u16();
      if (msg.version == kProtocolVersion) {
        msg.customer = r.str();
        msg.name = r.str();
        std::size_t n = r.varint();
        for (std::size_t i = 0; i < n; ++i) {
          std::string name = r.str();
          msg.params.emplace(std::move(name), r.svarint());
        }
      }
      // Unknown future versions: keep only the version; the server
      // replies Error before trusting any field.
      break;
    case MsgType::Reset:
    case MsgType::Bye:
    case MsgType::Stats:
      break;
    case MsgType::SetInput:
      msg.name = r.str();
      msg.value = get_value(r);
      break;
    case MsgType::GetOutput:
      msg.name = r.str();
      break;
    case MsgType::Cycle:
      msg.count = r.varint();
      break;
    case MsgType::Eval: {
      std::size_t n = r.varint();
      for (std::size_t i = 0; i < n; ++i) {
        std::string name = r.str();
        msg.values.emplace(std::move(name), get_value(r));
      }
      msg.count = r.varint();
      break;
    }
    case MsgType::Iface:
    case MsgType::Error:
    case MsgType::StatsReply:
      msg.text = r.str();
      break;
    case MsgType::Ok:
      msg.count = r.varint();
      break;
    case MsgType::Value:
      msg.value = get_value(r);
      break;
    case MsgType::Values: {
      std::size_t n = r.varint();
      for (std::size_t i = 0; i < n; ++i) {
        std::string name = r.str();
        msg.values.emplace(std::move(name), get_value(r));
      }
      break;
    }
    default:
      throw std::runtime_error("protocol: unknown message type " +
                               std::to_string(static_cast<int>(msg.type)));
  }
  return msg;
}

}  // namespace jhdl::net
