// Deterministic fault injection for the co-simulation transport.
//
// FaultyStream wraps a TcpStream and perturbs frames at the raw-byte
// level — below the CRC framing of socket.h — so injected corruption is
// indistinguishable from a hostile or lossy network: checksums fail,
// connections die mid-frame, frames arrive twice or late. A FaultPlan
// decides which operation gets which fault; plans are either scripted
// (fault exactly the k-th send/recv — replayable by construction) or
// random with a fixed seed and per-frame rate (replayable by reseeding).
//
// Both servers and the client accept a shared FaultPlan
// (DeliveryConfig::fault_plan, SimServer::set_fault_plan,
// ConnectSpec::fault_plan), so the whole protocol stack can be exercised
// under injected faults by tests/fault_test.cpp and
// bench/bench_fault_recovery.cpp.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "net/socket.h"
#include "util/rng.h"

namespace jhdl::net {

/// What to do to one frame.
enum class FaultKind : std::uint8_t {
  None = 0,
  /// Forward only the first `offset % frame_size` raw bytes, then kill
  /// the connection ("drop after N bytes").
  Drop,
  /// Chop bytes off the end of the frame. On send the connection dies
  /// after the partial frame (a truncated frame desynchronizes the
  /// stream); on recv the truncation is detected locally as FrameError.
  Truncate,
  /// Flip one bit in the CRC/payload region. The framing stays aligned,
  /// so the receiver sees a checksum mismatch (FrameError), not chaos.
  BitFlip,
  /// Deliver the frame twice.
  Duplicate,
  /// Deliver the frame after `delay`.
  Delay,
  /// Send the frame in two bursts with `delay` between them, exercising
  /// the receiver's partial-read reassembly.
  ShortWrite,
};

const char* fault_kind_name(FaultKind kind);

/// One injected fault. `offset` seeds the position (bytes for
/// Drop/Truncate, bit index for BitFlip); it is taken modulo the legal
/// range, so any value is safe.
struct FaultSpec {
  FaultKind kind = FaultKind::None;
  std::size_t offset = 0;
  std::chrono::milliseconds delay{0};
};

/// Decides the fault for each frame operation. Thread-safe: one plan may
/// be shared by every stream of a service. Deterministic: scripted
/// entries fire on exact operation indices; random mode draws from a
/// seeded xoshiro stream, so a failing run replays from its seed.
class FaultPlan {
 public:
  /// No faults (script entries may be added).
  FaultPlan() : rng_(0) {}

  /// Random mode: each frame operation independently suffers a fault
  /// with probability `per_frame_rate`; kind and parameters are drawn
  /// from `seed`.
  FaultPlan(std::uint64_t seed, double per_frame_rate)
      : rng_(seed), rate_(per_frame_rate) {}

  /// Script a fault for the `index`-th (0-based) sent / received frame,
  /// counted across every stream sharing this plan.
  void script_send(std::size_t index, FaultSpec spec);
  void script_recv(std::size_t index, FaultSpec spec);

  /// Called by FaultyStream once per operation; returns the fault to
  /// apply (kind None = pass through).
  FaultSpec next_send(std::size_t frame_bytes);
  FaultSpec next_recv(std::size_t frame_bytes);

  std::size_t sends() const;
  std::size_t recvs() const;
  /// Operations that actually had a fault applied.
  std::size_t injected() const;

 private:
  FaultSpec next(std::map<std::size_t, FaultSpec>& scripted,
                 std::size_t& counter, std::size_t frame_bytes);

  mutable std::mutex mutex_;
  Rng rng_;
  double rate_ = 0.0;
  std::map<std::size_t, FaultSpec> scripted_send_;
  std::map<std::size_t, FaultSpec> scripted_recv_;
  std::size_t sends_ = 0;
  std::size_t recvs_ = 0;
  std::size_t injected_ = 0;
};

/// A Stream that forwards frames through an inner TcpStream, applying
/// the plan's faults at the raw-byte level.
class FaultyStream : public Stream {
 public:
  FaultyStream(TcpStream inner, std::shared_ptr<FaultPlan> plan)
      : inner_(std::move(inner)), plan_(std::move(plan)) {}

  bool valid() const override { return inner_.valid(); }
  void close() override { inner_.close(); }
  void shutdown() override { inner_.shutdown(); }
  void set_recv_timeout(int ms) override { inner_.set_recv_timeout(ms); }

  void send_frame(const std::vector<std::uint8_t>& payload) override;
  std::vector<std::uint8_t> recv_frame() override;

 private:
  TcpStream inner_;
  std::shared_ptr<FaultPlan> plan_;
  /// Duplicate-on-recv: the second copy, delivered by the next recv.
  std::vector<std::uint8_t> pending_dup_;
  bool has_pending_dup_ = false;
};

/// Wrap an accepted/connected TcpStream: FaultyStream when `plan` is
/// set, the bare TcpStream otherwise.
std::unique_ptr<Stream> wrap_stream(TcpStream stream,
                                    std::shared_ptr<FaultPlan> plan);

// --- frame-level fault application for event-driven transports ---
//
// FaultyStream injects faults from inside blocking send_frame/recv_frame
// calls; a reactor has no such call to inject into, so it applies the
// SAME per-frame transformations out-of-line: the plan is consulted once
// per frame (identical operation counting), the raw-byte mutations are
// shared with FaultyStream, and the sleeps become timer-wheel deadlines.

/// The reactor-side rendering of one injected fault.
struct FrameFaultAction {
  /// Byte chunks to deliver, in order (send: onto the wire; recv: into
  /// the frame pipeline). Usually one chunk; Duplicate yields two copies,
  /// ShortWrite two bursts, Drop/Truncate a prefix.
  std::vector<std::vector<std::uint8_t>> chunks;
  /// Delay before the FIRST chunk (FaultyStream slept here).
  std::chrono::milliseconds delay{0};
  /// Delay between chunk 0 and chunk 1 (ShortWrite's mid-frame stall).
  std::chrono::milliseconds gap{0};
  /// Kill the connection after the chunks (Drop / send-side Truncate).
  bool kill = false;
};

/// Render a SEND-side fault for one wrapped frame (header + payload), as
/// FaultyStream::send_frame would apply it.
FrameFaultAction apply_send_fault(const FaultSpec& spec,
                                  std::vector<std::uint8_t> raw);

/// Render a RECV-side fault for one assembled frame, as
/// FaultyStream::recv_frame would: BitFlip/Truncate corrupt the bytes
/// (the caller's frame_unwrap then reports FrameError), Duplicate yields
/// the frame twice, Drop kills the connection.
FrameFaultAction apply_recv_fault(const FaultSpec& spec,
                                  std::vector<std::uint8_t> raw);

}  // namespace jhdl::net
