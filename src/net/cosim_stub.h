// Co-simulation stub generator: emits the Verilog wrapper module and the
// PLI C skeleton that connect a customer's Verilog simulator to a
// black-box applet over the socket protocol - the integration path the
// paper demonstrates: "a simulation wrapper was created to interface the
// JHDL black-box simulator with a Verilog simulation using PLI;
// simulation events are exchanged over network sockets and a custom
// communication protocol" (Section 4.2).
//
// The generated artifacts are source text the customer drops into their
// flow; the C skeleton documents the exact frame format of
// net/protocol.h so any PLI 1.0/VPI environment can implement it.
#pragma once

#include <string>

#include "core/blackbox.h"

namespace jhdl::net {

/// Verilog module with the black box's ports; its always-blocks call the
/// PLI tasks that forward events to the applet socket.
std::string verilog_pli_wrapper(const core::BlackBoxModel& model,
                                std::uint16_t port);

/// C skeleton implementing the PLI tasks over a TCP socket, with the
/// frame format documented inline.
std::string pli_c_skeleton(const core::BlackBoxModel& model,
                           std::uint16_t port);

}  // namespace jhdl::net
