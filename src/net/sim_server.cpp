#include "net/sim_server.h"

namespace jhdl::net {

Message dispatch_request(core::BlackBoxModel& model, const Message& request) {
  Message reply;
  switch (request.type) {
    case MsgType::SetInput:
      model.set_input(request.name, request.value);
      reply.type = MsgType::Ok;
      reply.count = model.cycle_count();
      break;
    case MsgType::GetOutput:
      reply.type = MsgType::Value;
      reply.value = model.get_output(request.name);
      break;
    case MsgType::Cycle:
      model.cycle(request.count);
      reply.type = MsgType::Ok;
      reply.count = model.cycle_count();
      break;
    case MsgType::Reset:
      model.reset();
      reply.type = MsgType::Ok;
      reply.count = model.cycle_count();
      break;
    case MsgType::Eval: {
      // RMI-style transaction: set all inputs, advance, read all outputs.
      for (const auto& [name, value] : request.values) {
        model.set_input(name, value);
      }
      if (request.count > 0) model.cycle(request.count);
      reply.type = MsgType::Values;
      for (const core::BlackBoxPort& p : model.ports()) {
        if (!p.is_input) {
          reply.values.emplace(p.name, model.get_output(p.name));
        }
      }
      break;
    }
    default:
      reply.type = MsgType::Error;
      reply.text = "unexpected message type";
  }
  return reply;
}

SimServer::SimServer(std::unique_ptr<core::BlackBoxModel> model)
    : model_(std::move(model)) {}

SimServer::~SimServer() { stop(); }

std::uint16_t SimServer::start() {
  listener_ = std::make_unique<TcpListener>();
  std::uint16_t port = listener_->port();
  running_ = true;
  thread_ = std::thread([this] {
    while (running_) {
      try {
        serve_session(listener_->accept());
      } catch (const NetError&) {
        // Listener closed during stop(), or a session died; either way,
        // re-check running_ and exit or accept the next session.
      }
    }
  });
  return port;
}

void SimServer::stop() {
  running_ = false;
  if (listener_ != nullptr) {
    listener_->close();  // unblocks accept()
  }
  {
    // Final handshake on a live session: a Bye frame tells a blocked
    // client the server is going away; the shutdown then fails any
    // in-flight recv on both sides immediately.
    std::lock_guard<std::mutex> session_lock(session_mutex_);
    if (session_.valid()) {
      try {
        Message bye;
        bye.type = MsgType::Bye;
        std::lock_guard<std::mutex> send_lock(send_mutex_);
        session_.send_frame(encode(bye));
      } catch (const NetError&) {
        // Peer already gone; shutdown below still unblocks our thread.
      }
      session_.shutdown();
    }
  }
  if (thread_.joinable()) thread_.join();
}

void SimServer::serve_session(TcpStream stream) {
  {
    std::lock_guard<std::mutex> lock(session_mutex_);
    session_ = std::move(stream);
  }
  while (true) {
    Message request;
    try {
      request = decode(session_.recv_frame());
    } catch (const std::exception&) {
      // Peer closed, stop() shut us down, or the frame was malformed;
      // the session is over either way.
      break;
    }
    if (request.type == MsgType::Bye) break;
    ++requests_;
    Message reply;
    try {
      reply = handle(request);
    } catch (const std::exception& e) {
      reply.type = MsgType::Error;
      reply.text = e.what();
    }
    try {
      send_reply(reply);
    } catch (const NetError&) {
      break;
    }
  }
  std::lock_guard<std::mutex> lock(session_mutex_);
  session_.close();
}

void SimServer::send_reply(const Message& reply) {
  std::lock_guard<std::mutex> lock(send_mutex_);
  session_.send_frame(encode(reply));
}

Message SimServer::handle(const Message& request) {
  Message reply;
  switch (request.type) {
    case MsgType::Hello:
      if (request.version != kProtocolVersion) {
        reply.type = MsgType::Error;
        reply.text = "protocol version mismatch: server speaks v" +
                     std::to_string(kProtocolVersion) + ", client sent v" +
                     std::to_string(request.version) +
                     " (old-format Hello); upgrade the client";
        break;
      }
      reply.type = MsgType::Iface;
      reply.text = model_->interface_json().dump();
      break;
    default:
      reply = dispatch_request(*model_, request);
  }
  return reply;
}

}  // namespace jhdl::net
