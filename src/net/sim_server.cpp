#include "net/sim_server.h"

#include <algorithm>
#include <random>

namespace jhdl::net {
namespace {

std::string make_token() {
  // Tokens only need to be unguessable enough that one customer cannot
  // stumble into another's session; 64 random bits from the OS suffice.
  std::random_device rd;
  const std::uint64_t word =
      (static_cast<std::uint64_t>(rd()) << 32) | rd();
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(word));
  return std::string(buf);
}

}  // namespace

Message dispatch_request(core::BlackBoxModel& model, const Message& request) {
  Message reply;
  switch (request.type) {
    case MsgType::SetInput:
      model.set_input(request.name, request.value);
      reply.type = MsgType::Ok;
      reply.count = model.cycle_count();
      break;
    case MsgType::GetOutput:
      reply.type = MsgType::Value;
      reply.value = model.get_output(request.name);
      break;
    case MsgType::Cycle:
      model.cycle(request.count);
      reply.type = MsgType::Ok;
      reply.count = model.cycle_count();
      break;
    case MsgType::Reset:
      model.reset();
      reply.type = MsgType::Ok;
      reply.count = model.cycle_count();
      break;
    case MsgType::Eval: {
      // RMI-style transaction: set all inputs, advance, read all outputs.
      for (const auto& [name, value] : request.values) {
        model.set_input(name, value);
      }
      if (request.count > 0) model.cycle(request.count);
      reply.type = MsgType::Values;
      for (const core::BlackBoxPort& p : model.ports()) {
        if (!p.is_input) {
          reply.values.emplace(p.name, model.get_output(p.name));
        }
      }
      break;
    }
    case MsgType::CycleBatch: {
      // v4 batched transaction. The cap keeps a hostile cycle count from
      // pinning the worker; stream lengths are validated by the model
      // against the cycle count.
      if (request.count > kMaxCycleBatch) {
        reply.type = MsgType::Error;
        reply.text = "cycle batch of " + std::to_string(request.count) +
                     " exceeds the per-request limit of " +
                     std::to_string(kMaxCycleBatch);
        reply.code = ErrorCode::BadRequest;
        break;
      }
      reply.type = MsgType::BatchValues;
      reply.series = model.cycle_batch(
          static_cast<std::size_t>(request.count), request.series,
          request.probes);
      reply.count = model.cycle_count();
      break;
    }
    case MsgType::PatternBatch: {
      // v6 multi-pattern sweep: series carries one value per PATTERN,
      // count the per-pattern cycle depth. Caps bound both dimensions so
      // a hostile request cannot pin the worker.
      const std::size_t n_patterns =
          request.series.empty() ? 0 : request.series.begin()->second.size();
      if (n_patterns > kMaxPatternBatch) {
        reply.type = MsgType::Error;
        reply.text = "pattern batch of " + std::to_string(n_patterns) +
                     " exceeds the per-request limit of " +
                     std::to_string(kMaxPatternBatch);
        reply.code = ErrorCode::BadRequest;
        break;
      }
      if (request.count > kMaxCycleBatch) {
        reply.type = MsgType::Error;
        reply.text = "pattern batch depth of " + std::to_string(request.count) +
                     " cycles exceeds the per-request limit of " +
                     std::to_string(kMaxCycleBatch);
        reply.code = ErrorCode::BadRequest;
        break;
      }
      reply.type = MsgType::BatchValues;
      reply.series = model.pattern_batch(
          request.series, static_cast<std::size_t>(request.count),
          request.probes);
      reply.count = model.cycle_count();
      break;
    }
    default:
      reply.type = MsgType::Error;
      reply.text = "unexpected message type";
      reply.code = ErrorCode::BadRequest;
  }
  return reply;
}

SimServer::SimServer(std::unique_ptr<core::BlackBoxModel> model)
    : model_(std::move(model)), token_(make_token()) {}

SimServer::~SimServer() { stop(); }

std::uint16_t SimServer::start() {
  listener_ = std::make_unique<TcpListener>();
  std::uint16_t port = listener_->port();
  running_ = true;
  thread_ = std::thread([this] {
    while (running_) {
      try {
        serve_session(listener_->accept());
      } catch (const NetError&) {
        // Listener closed during stop(), or a session died; either way,
        // re-check running_ and exit or accept the next session.
      }
    }
  });
  return port;
}

void SimServer::stop() {
  running_ = false;
  if (listener_ != nullptr) {
    listener_->close();  // unblocks accept()
  }
  {
    // Final handshake on a live session: a Bye frame tells a blocked
    // client the server is going away; the shutdown then fails any
    // in-flight recv on both sides immediately.
    std::lock_guard<std::mutex> session_lock(session_mutex_);
    if (session_ != nullptr && session_->valid()) {
      try {
        Message bye;
        bye.type = MsgType::Bye;
        std::lock_guard<std::mutex> send_lock(send_mutex_);
        session_->send_frame(encode(bye));
      } catch (const NetError&) {
        // Peer already gone; shutdown below still unblocks our thread.
      }
      session_->shutdown();
    }
  }
  if (thread_.joinable()) thread_.join();
}

void SimServer::serve_session(TcpStream stream) {
  {
    std::lock_guard<std::mutex> lock(session_mutex_);
    session_ = wrap_stream(std::move(stream), fault_plan_);
  }
  while (true) {
    Message request;
    try {
      request = decode(session_->recv_frame());
    } catch (const FrameError&) {
      // The frame arrived but was corrupt (bad CRC / impossible length);
      // the byte stream is still aligned, so report it and keep the
      // session.
      if (!report_malformed()) break;
      continue;
    } catch (const NetError&) {
      // Peer closed, stop() shut us down, or an oversized length prefix;
      // the session is over either way.
      break;
    } catch (const std::exception&) {
      // The frame passed its integrity check but the payload does not
      // decode (hostile or buggy peer). The stream is aligned, so answer
      // with a typed Error instead of closing.
      if (!report_malformed()) break;
      continue;
    }
    if (request.type == MsgType::Bye) break;
    ++requests_;
    // Handshakes live outside the idempotency cache: a fresh Hello's low
    // seq must not look stale against the previous session, and a
    // reconnect's Resume must not displace the pending request it is
    // about to replay (the client numbers the Resume AFTER that request).
    const bool handshake = request.type == MsgType::Hello ||
                           request.type == MsgType::Resume;
    // Idempotent replay: a numbered request the session already executed
    // (the client retried because our reply was lost or damaged) is
    // answered from the cache without touching the model.
    if (!handshake && request.seq != 0 && request.seq == last_seq_ &&
        !last_reply_.empty()) {
      ++replays_;
      try {
        send_reply(last_reply_);
        continue;
      } catch (const NetError&) {
        break;
      }
    }
    Message reply;
    if (!handshake && request.seq != 0 && request.seq < last_seq_) {
      // A duplicated older request; the client has already moved on and
      // will discard this reply by its seq.
      reply.type = MsgType::Error;
      reply.text = "stale request";
      reply.code = ErrorCode::BadRequest;
    } else {
      try {
        reply = handle(request);
      } catch (const std::exception& e) {
        reply.type = MsgType::Error;
        reply.text = e.what();
        reply.code = ErrorCode::BadRequest;
      }
    }
    reply.seq = request.seq;
    std::vector<std::uint8_t> payload = encode(reply);
    if (!handshake && request.seq != 0 && request.seq > last_seq_) {
      last_seq_ = request.seq;
      last_reply_ = payload;
    }
    try {
      send_reply(payload);
    } catch (const NetError&) {
      break;
    }
  }
  std::lock_guard<std::mutex> lock(session_mutex_);
  session_->close();
}

void SimServer::send_reply(const std::vector<std::uint8_t>& payload) {
  std::lock_guard<std::mutex> lock(send_mutex_);
  session_->send_frame(payload);
}

bool SimServer::report_malformed() {
  ++malformed_frames_;
  Message err;
  err.type = MsgType::Error;
  err.text = "malformed frame";
  err.code = ErrorCode::MalformedFrame;
  try {
    send_reply(encode(err));
    return true;
  } catch (const NetError&) {
    return false;
  }
}

Message SimServer::handle(const Message& request) {
  Message reply;
  switch (request.type) {
    case MsgType::Hello:
      if (request.version < kMinProtocolVersion ||
          request.version > kProtocolVersion) {
        reply.type = MsgType::Error;
        reply.text = "protocol version mismatch: server speaks v" +
                     std::to_string(kProtocolVersion) + ", client sent v" +
                     std::to_string(request.version) +
                     " (old-format Hello); upgrade the client";
        reply.code = ErrorCode::VersionMismatch;
        break;
      }
      reply.type = MsgType::Iface;
      {
        Json iface = model_->interface_json();
        iface.set("token", token_);
        // Version negotiation: the session speaks the lower of the two.
        // A v3 client ignores the field and never sends CycleBatch; a v4
        // client checks it before batching.
        iface.set("protocol", std::size_t{std::min(request.version,
                                                   kProtocolVersion)});
        reply.text = iface.dump();
      }
      // A Hello opens a FRESH session: its client numbers requests from 1
      // again, so the previous session's idempotency cache must not make
      // them look stale (or worse, replay an old reply). Only Resume
      // carries the cache across connections.
      last_seq_ = 0;
      last_reply_.clear();
      break;
    case MsgType::Resume:
      if (request.text != token_) {
        reply.type = MsgType::Error;
        reply.text = "no resumable session for token";
        reply.code = ErrorCode::UnknownSession;
        break;
      }
      ++resumes_;
      reply.type = MsgType::Iface;
      {
        Json iface = model_->interface_json();
        iface.set("token", token_);
        iface.set("resumed", true);
        iface.set("cycles", model_->cycle_count());
        iface.set("last_seq", std::size_t{last_seq_});
        reply.text = iface.dump();
      }
      break;
    default:
      reply = dispatch_request(*model_, request);
  }
  return reply;
}

}  // namespace jhdl::net
