#include "net/sim_server.h"

namespace jhdl::net {

SimServer::SimServer(std::unique_ptr<core::BlackBoxModel> model)
    : model_(std::move(model)) {}

SimServer::~SimServer() { stop(); }

std::uint16_t SimServer::start() {
  listener_ = std::make_unique<TcpListener>();
  std::uint16_t port = listener_->port();
  running_ = true;
  thread_ = std::thread([this] {
    while (running_) {
      try {
        serve_session(listener_->accept());
      } catch (const NetError&) {
        // Listener closed during stop(), or a session died; either way,
        // re-check running_ and exit or accept the next session.
      }
    }
  });
  return port;
}

void SimServer::stop() {
  running_ = false;
  if (listener_ != nullptr) {
    listener_->close();  // unblocks accept()
  }
  if (thread_.joinable()) thread_.join();
}

void SimServer::serve_session(TcpStream stream) {
  while (true) {
    Message request = decode(stream.recv_frame());
    if (request.type == MsgType::Bye) return;
    ++requests_;
    Message reply;
    try {
      reply = handle(request);
    } catch (const std::exception& e) {
      reply.type = MsgType::Error;
      reply.text = e.what();
    }
    stream.send_frame(encode(reply));
  }
}

Message SimServer::handle(const Message& request) {
  Message reply;
  switch (request.type) {
    case MsgType::Hello:
      reply.type = MsgType::Iface;
      reply.text = model_->interface_json().dump();
      break;
    case MsgType::SetInput:
      model_->set_input(request.name, request.value);
      reply.type = MsgType::Ok;
      reply.count = model_->cycle_count();
      break;
    case MsgType::GetOutput:
      reply.type = MsgType::Value;
      reply.value = model_->get_output(request.name);
      break;
    case MsgType::Cycle:
      model_->cycle(request.count);
      reply.type = MsgType::Ok;
      reply.count = model_->cycle_count();
      break;
    case MsgType::Reset:
      model_->reset();
      reply.type = MsgType::Ok;
      reply.count = model_->cycle_count();
      break;
    case MsgType::Eval: {
      // RMI-style transaction: set all inputs, advance, read all outputs.
      for (const auto& [name, value] : request.values) {
        model_->set_input(name, value);
      }
      if (request.count > 0) model_->cycle(request.count);
      reply.type = MsgType::Values;
      for (const core::BlackBoxPort& p : model_->ports()) {
        if (!p.is_input) {
          reply.values.emplace(p.name, model_->get_output(p.name));
        }
      }
      break;
    }
    default:
      reply.type = MsgType::Error;
      reply.text = "unexpected message type";
  }
  return reply;
}

}  // namespace jhdl::net
