#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/crc32.h"

namespace jhdl::net {
namespace {

[[noreturn]] void raise_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void put_u32le(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32le(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

}  // namespace

std::vector<std::uint8_t> frame_wrap(
    const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> raw(kFrameHeaderBytes + payload.size());
  put_u32le(raw.data(), static_cast<std::uint32_t>(payload.size()));
  put_u32le(raw.data() + 4, crc32(payload));
  std::memcpy(raw.data() + kFrameHeaderBytes, payload.data(), payload.size());
  return raw;
}

std::vector<std::uint8_t> frame_unwrap(const std::vector<std::uint8_t>& raw) {
  if (raw.size() < kFrameHeaderBytes) {
    throw FrameError("frame truncated: header incomplete");
  }
  const std::uint32_t len = get_u32le(raw.data());
  if (len > kMaxFrameBytes) throw NetError("frame too large");
  if (raw.size() != kFrameHeaderBytes + len) {
    throw FrameError("frame truncated: " +
                     std::to_string(raw.size() - kFrameHeaderBytes) + " of " +
                     std::to_string(len) + " payload bytes");
  }
  std::vector<std::uint8_t> payload(raw.begin() + kFrameHeaderBytes,
                                    raw.end());
  if (crc32(payload) != get_u32le(raw.data() + 4)) {
    throw FrameError("frame checksum mismatch");
  }
  return payload;
}

TcpStream::~TcpStream() { close(); }

TcpStream::TcpStream(TcpStream&& rhs) noexcept : fd_(rhs.fd_) {
  rhs.fd_ = -1;
}

TcpStream& TcpStream::operator=(TcpStream&& rhs) noexcept {
  if (this != &rhs) {
    close();
    fd_ = rhs.fd_;
    rhs.fd_ = -1;
  }
  return *this;
}

void TcpStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TcpStream::shutdown() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

void TcpStream::set_recv_timeout(int ms) {
  if (fd_ < 0) return;
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

TcpStream TcpStream::connect(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) raise_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    raise_errno("connect");
  }
  set_nodelay(fd);
  return TcpStream(fd);
}

void TcpStream::send_all(const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    ssize_t n = ::send(fd_, data, size, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      raise_errno("send");
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

void TcpStream::recv_all(std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    ssize_t n = ::recv(fd_, data, size, 0);
    if (n == 0) throw NetError("connection closed by peer");
    if (n < 0) {
      if (errno == EINTR) continue;
      raise_errno("recv");
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

void TcpStream::send_frame(const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxFrameBytes) throw NetError("frame too large");
  send_bytes(frame_wrap(payload));
}

void TcpStream::send_bytes(const std::vector<std::uint8_t>& raw) {
  if (!valid()) throw NetError("send on closed stream");
  if (!raw.empty()) send_all(raw.data(), raw.size());
}

std::vector<std::uint8_t> TcpStream::recv_frame_bytes() {
  if (!valid()) throw NetError("recv on closed stream");
  std::vector<std::uint8_t> raw(kFrameHeaderBytes);
  recv_all(raw.data(), kFrameHeaderBytes);
  const std::uint32_t len = get_u32le(raw.data());
  // Reject before resizing: a hostile length prefix must not drive the
  // allocator (and could not be trusted even if it did fit).
  if (len > kMaxFrameBytes) throw NetError("frame too large");
  raw.resize(kFrameHeaderBytes + len);
  if (len > 0) recv_all(raw.data() + kFrameHeaderBytes, len);
  return raw;
}

std::size_t TcpStream::recv_raw(std::uint8_t* data, std::size_t max) {
  if (!valid()) throw NetError("recv on closed stream");
  while (true) {
    ssize_t n = ::recv(fd_, data, max, 0);
    if (n == 0) throw NetError("connection closed by peer");
    if (n < 0) {
      if (errno == EINTR) continue;
      raise_errno("recv");
    }
    return static_cast<std::size_t>(n);
  }
}

std::vector<std::uint8_t> TcpStream::recv_frame() {
  return frame_unwrap(recv_frame_bytes());
}

void TcpStream::set_nonblocking(bool on) {
  if (fd_ < 0) return;
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return;
  ::fcntl(fd_, F_SETFL, on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK));
}

TcpStream::IoResult TcpStream::recv_some(std::uint8_t* data, std::size_t max,
                                         std::size_t& n) {
  n = 0;
  if (fd_ < 0) return IoResult::Error;
  while (true) {
    const ssize_t r = ::recv(fd_, data, max, 0);
    if (r > 0) {
      n = static_cast<std::size_t>(r);
      return IoResult::Ok;
    }
    if (r == 0) return IoResult::Closed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::WouldBlock;
    return IoResult::Error;
  }
}

TcpStream::IoResult TcpStream::send_some(const std::uint8_t* data,
                                         std::size_t size, std::size_t& n) {
  n = 0;
  if (fd_ < 0) return IoResult::Error;
  while (true) {
    const ssize_t r = ::send(fd_, data, size, MSG_NOSIGNAL);
    if (r > 0) {
      n = static_cast<std::size_t>(r);
      return IoResult::Ok;
    }
    if (r < 0 && errno == EINTR) continue;
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return IoResult::WouldBlock;
    }
    return IoResult::Error;
  }
}

TcpListener::TcpListener(int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) raise_errno("socket");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;  // kernel-chosen port
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    raise_errno("bind");
  }
  if (::listen(fd_, backlog) != 0) raise_errno("listen");
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    raise_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  close();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TcpListener::close() {
  // shutdown() rather than ::close(): it wakes a thread blocked in
  // accept() on Linux (closing alone would not, deadlocking stop()), and
  // it leaves fd_ untouched so a concurrent accept() never races on the
  // descriptor or accidentally targets a recycled fd number.
  if (fd_ >= 0 && !closed_.exchange(true)) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

TcpStream TcpListener::accept() {
  if (closed_.load()) throw NetError("listener closed");
  int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) raise_errno("accept");
  set_nodelay(fd);
  return TcpStream(fd);
}

TcpStream TcpListener::try_accept() {
  if (closed_.load()) throw NetError("listener closed");
  int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      return TcpStream();  // nothing pending / aborted handshake
    }
    raise_errno("accept");
  }
  set_nodelay(fd);
  return TcpStream(fd);
}

void TcpListener::set_nonblocking(bool on) {
  if (fd_ < 0) return;
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return;
  ::fcntl(fd_, F_SETFL, on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK));
}

}  // namespace jhdl::net
