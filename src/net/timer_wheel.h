// Hashed timer wheel for the delivery reactor.
//
// One wheel absorbs every time-driven concern of the event loop — idle
// session reaping, resume-window expiry, admission-reject deadlines,
// injected-fault delays, linger-before-close — so the loop computes a
// single poll timeout (time to the next armed tick) instead of running a
// dedicated reaper thread.
//
// Classic hashed-wheel design: kSlots buckets of kTickMs granularity,
// each holding a list of entries with a remaining-rounds counter for
// deadlines further than one revolution out. schedule() and cancel() are
// O(1); advance() touches only the slots whose time has come. The wheel
// is intentionally single-threaded (the loop's), so there are no locks:
// cross-thread deadline changes go through the loop's wakeup channel.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <vector>

namespace jhdl::net {

class TimerWheel {
 public:
  /// Tick granularity. Deadlines round UP to the next tick, so a timer
  /// never fires early; the reactor's timing contracts (idle timeouts,
  /// resume windows) are all "at least this long", matching the old
  /// reaper's behaviour.
  static constexpr std::int64_t kTickMs = 2;
  static constexpr std::size_t kSlots = 256;

  using TimerId = std::uint64_t;
  static constexpr TimerId kInvalidTimer = 0;

  /// Construct with the wheel's notion of "now" in milliseconds (any
  /// monotonic origin; the reactor feeds steady_clock).
  explicit TimerWheel(std::int64_t now_ms);

  /// Arm `fn` to run once, no earlier than `delay_ms` from the last
  /// advance(). Returns an id for cancel(). Zero/negative delays fire on
  /// the next advance.
  TimerId schedule(std::int64_t delay_ms, std::function<void()> fn);

  /// Disarm. Returns false if the timer already fired or was cancelled.
  bool cancel(TimerId id);

  /// Run every timer whose deadline is <= now_ms. Callbacks may schedule
  /// new timers (including re-arming themselves for periodic work).
  /// Returns how many fired.
  std::size_t advance(std::int64_t now_ms);

  /// Milliseconds until the earliest armed deadline, or -1 when empty
  /// (the loop turns this into its poll timeout). Never negative: an
  /// overdue timer reports 0.
  std::int64_t next_delay_ms(std::int64_t now_ms) const;

  std::size_t armed() const { return armed_; }

 private:
  struct Entry {
    TimerId id;
    std::int64_t deadline_ms;
    std::function<void()> fn;
  };

  std::vector<std::list<Entry>> slots_;
  std::int64_t current_tick_;  // last tick fully advanced past
  TimerId next_id_ = 1;
  std::size_t armed_ = 0;

  static std::int64_t tick_of(std::int64_t ms) {
    // Round up: a deadline mid-tick belongs to the NEXT tick boundary.
    return (ms + kTickMs - 1) / kTickMs;
  }
};

}  // namespace jhdl::net
