// Black-box co-simulation wire protocol (paper Section 4.2: "simulation
// events are exchanged over network sockets and a custom communication
// protocol").
//
// Framing: u32 little-endian payload length, then the payload. The first
// payload byte is the message type; the rest is message-specific and
// encoded with ByteWriter primitives. Values travel as BitVector strings
// ("10x1", MSB first), which keeps X-propagation visible across the wire.
//
// Requests (client -> server):
//   Hello                          expects IFACE
//   SetInput  name, value          expects Ok
//   GetOutput name                 expects Value
//   Cycle     n                    expects Ok
//   Reset                          expects Ok
//   Eval      {name,value}*, n     expects Values   (one-round-trip RMI
//                                   style: set all inputs, cycle n, read
//                                   all outputs - the JavaCAD baseline)
//   Bye                            closes the session
//
// Replies (server -> client):
//   Iface  json text               interface descriptor
//   Ok     cycle_count
//   Value  bits
//   Values {name,bits}*
//   Error  message
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/bitvector.h"

namespace jhdl::net {

enum class MsgType : std::uint8_t {
  Hello = 1,
  SetInput = 2,
  GetOutput = 3,
  Cycle = 4,
  Reset = 5,
  Eval = 6,
  Bye = 7,
  Iface = 64,
  Ok = 65,
  Value = 66,
  Values = 67,
  Error = 68,
};

/// A decoded protocol message. Fields are used per type (see above).
struct Message {
  MsgType type = MsgType::Bye;
  std::string text;                       // Iface json / Error message
  std::string name;                       // SetInput / GetOutput
  BitVector value;                        // SetInput / Value
  std::uint64_t count = 0;                // Cycle n / Ok cycle_count
  std::map<std::string, BitVector> values;  // Eval inputs / Values outputs
};

/// Encode a message payload (without the length frame).
std::vector<std::uint8_t> encode(const Message& msg);

/// Decode a payload. Throws std::runtime_error on malformed input.
Message decode(const std::vector<std::uint8_t>& payload);

}  // namespace jhdl::net
