// Black-box co-simulation wire protocol (paper Section 4.2: "simulation
// events are exchanged over network sockets and a custom communication
// protocol").
//
// Framing: u32 little-endian payload length, then the payload. The first
// payload byte is the message type; the rest is message-specific and
// encoded with ByteWriter primitives. Values travel as BitVector strings
// ("10x1", MSB first), which keeps X-propagation visible across the wire.
//
// Requests (client -> server):
//   Hello     magic, version,      expects Iface (or Error on version /
//             customer, module,      license mismatch). customer/module/
//             params                 params select a catalog entry when
//                                    talking to a DeliveryService; a
//                                    single-model SimServer ignores them.
//                                    A legacy v1 Hello (empty payload)
//                                    decodes with version = 1 and is
//                                    answered with a clear Error.
//   SetInput  name, value          expects Ok
//   GetOutput name                 expects Value
//   Cycle     n                    expects Ok
//   Reset                          expects Ok
//   Eval      {name,value}*, n     expects Values   (one-round-trip RMI
//                                   style: set all inputs, cycle n, read
//                                   all outputs - the JavaCAD baseline)
//   Stats                          expects StatsReply (admin query; the
//                                   delivery service answers with its
//                                   ServerStats counters as JSON)
//   Bye                            closes the session
//
// Replies (server -> client):
//   Iface      json text           interface descriptor
//   Ok         cycle_count
//   Value      bits
//   Values     {name,bits}*
//   Error      message
//   StatsReply json text           server counters
//
// A server sends an unsolicited Bye before closing during shutdown, so a
// client blocked on a reply fails fast instead of waiting for TCP teardown.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/bitvector.h"

namespace jhdl::net {

enum class MsgType : std::uint8_t {
  Hello = 1,
  SetInput = 2,
  GetOutput = 3,
  Cycle = 4,
  Reset = 5,
  Eval = 6,
  Bye = 7,
  Stats = 8,
  Iface = 64,
  Ok = 65,
  Value = 66,
  Values = 67,
  Error = 68,
  StatsReply = 69,
};

/// Wire protocol version spoken by this build. Version 1 is the original
/// bare Hello (no magic, no fields); version 2 adds the magic-prefixed
/// Hello with customer/module/params and the Stats admin query.
inline constexpr std::uint16_t kProtocolVersion = 2;

/// Magic prefix of a v2+ Hello payload ("JHDL", little-endian on the wire).
inline constexpr std::uint32_t kHelloMagic = 0x4C44484Au;

/// Version negotiated by this implementation (accessor form for callers
/// that want a function rather than the constant).
inline std::uint16_t protocol_version() { return kProtocolVersion; }

/// A decoded protocol message. Fields are used per type (see above).
struct Message {
  MsgType type = MsgType::Bye;
  std::string text;                       // Iface json / Error / StatsReply
  std::string name;                       // SetInput / GetOutput / Hello module
  BitVector value;                        // SetInput / Value
  std::uint64_t count = 0;                // Cycle n / Ok cycle_count
  std::map<std::string, BitVector> values;  // Eval inputs / Values outputs
  // --- Hello only ---
  std::uint16_t version = kProtocolVersion;  // decoded wire version (1 = legacy)
  std::string customer;                      // customer id for license lookup
  std::map<std::string, std::int64_t> params;  // generator parameters
};

/// Encode a message payload (without the length frame).
std::vector<std::uint8_t> encode(const Message& msg);

/// Decode a payload. Throws std::runtime_error on malformed input.
Message decode(const std::vector<std::uint8_t>& payload);

}  // namespace jhdl::net
