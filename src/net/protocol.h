// Black-box co-simulation wire protocol (paper Section 4.2: "simulation
// events are exchanged over network sockets and a custom communication
// protocol").
//
// Framing: u32 little-endian payload length, u32 little-endian CRC-32 of
// the payload, then the payload (see net/socket.h). The first payload
// byte is the message type; the rest is message-specific and encoded with
// ByteWriter primitives. Values travel as BitVector strings ("10x1", MSB
// first), which keeps X-propagation visible across the wire.
//
// Requests (client -> server):
//   Hello     magic, version,      expects Iface (or Error on version /
//             customer, module,      license mismatch). customer/module/
//             params                 params select a catalog entry when
//                                    talking to a DeliveryService; a
//                                    single-model SimServer ignores them.
//                                    A legacy v1 Hello (empty payload)
//                                    decodes with version = 1 and is
//                                    answered with a clear Error.
//   SetInput  name, value          expects Ok
//   GetOutput name                 expects Value
//   Cycle     n                    expects Ok
//   Reset                          expects Ok
//   Eval      {name,value}*, n     expects Values   (one-round-trip RMI
//                                   style: set all inputs, cycle n, read
//                                   all outputs - the JavaCAD baseline)
//   Stats                          expects StatsReply (admin query; the
//                                   delivery service answers with its
//                                   ServerStats counters as JSON)
//   MetricsDump                    expects MetricsReply (v5 admin query:
//                                   the full obs::MetricsRegistry as JSON
//                                   - counters, gauges, histogram
//                                   summaries)
//   TraceDump                      expects TraceReply (v5 admin query:
//                                   the server's span ring buffers as
//                                   Chrome trace_event JSON, loadable in
//                                   chrome://tracing)
//   Resume    token, last-acked    expects Iface (resumed session) or a
//             cycle count            typed Error; reattaches a client to
//                                    the session the token was issued for
//                                    after a transport failure (v3)
//   CycleBatch n, {name,stream}*,  expects BatchValues (v4). One round
//              probe names          trip for n clocked cycles: per cycle
//                                   apply each stimulus stream's t-th
//                                   value, clock, sample every probe
//                                   (empty probe list = all outputs).
//                                   Amortizes framing over n cycles.
//   PatternBatch cycles,           expects BatchValues (v6). One round
//              {name,stream}*,       trip for N INDEPENDENT stimulus
//              probe names           patterns: each pattern starts from
//                                    power-on reset, applies its value
//                                    from every stream, runs `cycles`
//                                    clocks (0 = settle only), samples
//                                    every probe. Served from the bit-
//                                    parallel kernel (64 patterns per
//                                    machine word) when the model
//                                    supports it. Reuses the CycleBatch
//                                    wire layout with per-pattern (not
//                                    per-cycle) stream values.
//   Bye                            closes the session
//
// Replies (server -> client):
//   Iface      json text           interface descriptor (carries the
//                                  server-issued resume "token" and the
//                                  negotiated "protocol" version, v4+)
//   Ok         cycle_count
//   Value      bits
//   Values     {name,bits}*
//   BatchValues cycle_count,       per-probe value columns for one
//               {name,stream}*      CycleBatch (v4)
//   Error      message, code       code classifies Retryable vs Fatal
//   StatsReply json text           server counters
//   MetricsReply json text         metrics registry dump (v5)
//   TraceReply json text           Chrome trace_event dump (v5)
//
// Since v3 every message may carry a trailing varint sequence number
// (`seq`, 0 = unnumbered). Requests are numbered by the client; replies
// echo the request's seq, which lets a client discard duplicated replies
// and lets a server serve a retried request idempotently from its
// last-reply cache. v2 peers simply omit (and ignore) the field.
//
// Since v5 a SECOND trailing varint may follow the seq: the 64-bit trace
// id correlating this message with distributed trace spans (0 = untraced).
// When the trace id is present the seq is always written explicitly (even
// when 0), so the first trailing varint unambiguously stays the seq; v3/v4
// decoders read it and ignore the extra trailing bytes, which decode()
// has always tolerated.
//
// A server sends an unsolicited Bye before closing during shutdown, so a
// client blocked on a reply fails fast instead of waiting for TCP teardown.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/bitvector.h"

namespace jhdl::net {

enum class MsgType : std::uint8_t {
  Hello = 1,
  SetInput = 2,
  GetOutput = 3,
  Cycle = 4,
  Reset = 5,
  Eval = 6,
  Bye = 7,
  Stats = 8,
  Resume = 9,
  CycleBatch = 10,
  MetricsDump = 11,
  TraceDump = 12,
  PatternBatch = 13,
  Iface = 64,
  Ok = 65,
  Value = 66,
  Values = 67,
  Error = 68,
  StatsReply = 69,
  BatchValues = 70,
  MetricsReply = 71,
  TraceReply = 72,
};

/// Wire protocol version spoken by this build. Version 1 is the original
/// bare Hello (no magic, no fields); version 2 adds the magic-prefixed
/// Hello with customer/module/params and the Stats admin query; version 3
/// adds CRC-checked framing, Resume (session tokens + idempotent replay),
/// request sequence numbers, and typed Error codes; version 4 adds the
/// CycleBatch/BatchValues pair and advertises the negotiated version in
/// the Iface JSON ("protocol" = min(server, client Hello) - a client that
/// reads 3 or finds the field absent must not send CycleBatch); version 5
/// adds the optional trailing trace id, the MetricsDump/TraceDump admin
/// queries, and their MetricsReply/TraceReply replies; version 6 adds
/// PatternBatch (multi-pattern sweeps served by the bit-parallel kernel).
inline constexpr std::uint16_t kProtocolVersion = 6;

/// Oldest client Hello this build still serves (v2: same Hello layout,
/// no seq/Resume — see the back-compat table in DESIGN.md §8).
inline constexpr std::uint16_t kMinProtocolVersion = 2;

/// Magic prefix of a v2+ Hello payload ("JHDL", little-endian on the wire).
inline constexpr std::uint32_t kHelloMagic = 0x4C44484Au;

/// Upper bound on CycleBatch cycle counts a server will execute. Enforced
/// at dispatch (the decoder already bounds per-stream value counts against
/// the payload size), so a hostile n cannot pin a worker.
inline constexpr std::uint64_t kMaxCycleBatch = 65536;

/// Upper bound on PatternBatch pattern counts (and its per-pattern cycle
/// count reuses kMaxCycleBatch). Enforced at dispatch like kMaxCycleBatch.
inline constexpr std::uint64_t kMaxPatternBatch = 4096;

/// Version negotiated by this implementation (accessor form for callers
/// that want a function rather than the constant).
inline std::uint16_t protocol_version() { return kProtocolVersion; }

/// Machine-readable classification of an Error reply (v3). Decides
/// whether a resilient client may retry. v2 Errors decode as Generic.
enum class ErrorCode : std::uint8_t {
  Generic = 0,         // unclassified (includes all v2 errors): fatal
  Saturated = 1,       // accept queue full: retryable with backoff
  VersionMismatch = 2,  // fatal: upgrade the client
  LicenseDenied = 3,   // fatal: customer/feature/expiry refusal
  BadRequest = 4,      // fatal: request was well-formed but impossible
  MalformedFrame = 5,  // retryable in place: resend the frame
  ShuttingDown = 6,    // retryable: reconnect elsewhere/later
  UnknownSession = 7,  // fatal: resume token matched nothing
  Throttled = 8,       // retryable with backoff: the query auditor judged
                       //   the session's traffic extraction-like and is
                       //   refusing queries for a cooldown window (v5)
  Overloaded = 9,      // retryable with backoff: admission control refused
                       //   the session (global or per-tenant cap) (v6)
};

/// True when a client may reasonably retry after this Error.
bool error_retryable(ErrorCode code);

/// A decoded protocol message. Fields are used per type (see above).
struct Message {
  MsgType type = MsgType::Bye;
  std::string text;                       // Iface json / Error / StatsReply
                                          //   / Resume token
  std::string name;                       // SetInput / GetOutput / Hello module
  BitVector value;                        // SetInput / Value
  std::uint64_t count = 0;                // Cycle n / Ok cycle_count /
                                          //   Resume last-acked cycles
  std::map<std::string, BitVector> values;  // Eval inputs / Values outputs
  // --- Hello only ---
  std::uint16_t version = kProtocolVersion;  // decoded wire version (1 = legacy)
  std::string customer;                      // customer id for license lookup
  std::map<std::string, std::int64_t> params;  // generator parameters
  // --- v3 ---
  ErrorCode code = ErrorCode::Generic;  // Error only
  std::uint64_t seq = 0;                // request number / echoed in reply
  // --- v5 ---
  /// Distributed trace id correlating this message's server-side spans
  /// with the client's (0 = untraced). Encoded as a second trailing
  /// varint after seq; pre-v5 peers ignore it.
  std::uint64_t trace = 0;
  // --- v4/v6 ---
  /// CycleBatch stimulus streams / BatchValues probe columns: one value
  /// per batched cycle, in cycle order. PatternBatch (v6) reuses the
  /// field with one value per PATTERN (count carries the per-pattern
  /// cycle count instead).
  std::map<std::string, std::vector<BitVector>> series;
  std::vector<std::string> probes;  // batch probe names ([] = all)
};

/// Encode a message payload (without the length frame).
std::vector<std::uint8_t> encode(const Message& msg);

/// Decode a payload. Throws std::runtime_error on malformed input.
Message decode(const std::vector<std::uint8_t>& payload);

}  // namespace jhdl::net
