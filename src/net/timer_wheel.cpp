#include "net/timer_wheel.h"

#include <algorithm>

namespace jhdl::net {

TimerWheel::TimerWheel(std::int64_t now_ms)
    : slots_(kSlots), current_tick_(tick_of(now_ms)) {}

TimerWheel::TimerId TimerWheel::schedule(std::int64_t delay_ms,
                                         std::function<void()> fn) {
  if (delay_ms < 0) delay_ms = 0;
  const std::int64_t deadline =
      (current_tick_ * kTickMs) + delay_ms;
  std::int64_t tick = tick_of(deadline);
  if (tick <= current_tick_) tick = current_tick_ + 1;  // next advance
  const TimerId id = next_id_++;
  slots_[static_cast<std::size_t>(tick) % kSlots].push_back(
      {id, tick * kTickMs, std::move(fn)});
  ++armed_;
  return id;
}

bool TimerWheel::cancel(TimerId id) {
  for (auto& slot : slots_) {
    for (auto it = slot.begin(); it != slot.end(); ++it) {
      if (it->id == id) {
        slot.erase(it);
        --armed_;
        return true;
      }
    }
  }
  return false;
}

std::size_t TimerWheel::advance(std::int64_t now_ms) {
  const std::int64_t target_tick = tick_of(now_ms + 1) - 1;  // floor
  std::size_t fired = 0;
  while (current_tick_ < target_tick) {
    ++current_tick_;
    auto& slot = slots_[static_cast<std::size_t>(current_tick_) % kSlots];
    // Entries hashed into this slot for a LATER revolution stay; take the
    // due ones out first so callbacks can re-arm into the same slot.
    std::list<Entry> due;
    for (auto it = slot.begin(); it != slot.end();) {
      if (it->deadline_ms <= current_tick_ * kTickMs) {
        due.splice(due.end(), slot, it++);
      } else {
        ++it;
      }
    }
    for (Entry& e : due) {
      --armed_;
      ++fired;
      e.fn();
    }
  }
  return fired;
}

std::int64_t TimerWheel::next_delay_ms(std::int64_t now_ms) const {
  if (armed_ == 0) return -1;
  std::int64_t earliest = -1;
  for (const auto& slot : slots_) {
    for (const Entry& e : slot) {
      if (earliest < 0 || e.deadline_ms < earliest) earliest = e.deadline_ms;
    }
  }
  if (earliest < 0) return -1;
  return std::max<std::int64_t>(0, earliest - now_ms);
}

}  // namespace jhdl::net
