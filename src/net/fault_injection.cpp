#include "net/fault_injection.h"

#include <thread>

namespace jhdl::net {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::None:
      return "none";
    case FaultKind::Drop:
      return "drop";
    case FaultKind::Truncate:
      return "truncate";
    case FaultKind::BitFlip:
      return "bitflip";
    case FaultKind::Duplicate:
      return "duplicate";
    case FaultKind::Delay:
      return "delay";
    case FaultKind::ShortWrite:
      return "shortwrite";
  }
  return "?";
}

void FaultPlan::script_send(std::size_t index, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  scripted_send_[index] = spec;
}

void FaultPlan::script_recv(std::size_t index, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  scripted_recv_[index] = spec;
}

FaultSpec FaultPlan::next(std::map<std::size_t, FaultSpec>& scripted,
                          std::size_t& counter, std::size_t frame_bytes) {
  const std::size_t index = counter++;
  auto it = scripted.find(index);
  if (it != scripted.end()) {
    ++injected_;
    return it->second;
  }
  if (rate_ > 0.0 && rng_.uniform() < rate_) {
    FaultSpec spec;
    // Uniform over the kinds that keep recovery bounded in time: Delay
    // stays small so a random plan cannot stall a request longer than
    // one client retry period.
    switch (rng_.below(5)) {
      case 0:
        spec.kind = FaultKind::Drop;
        break;
      case 1:
        spec.kind = FaultKind::Truncate;
        break;
      case 2:
        spec.kind = FaultKind::BitFlip;
        break;
      case 3:
        spec.kind = FaultKind::Duplicate;
        break;
      default:
        spec.kind = FaultKind::Delay;
        break;
    }
    spec.offset = static_cast<std::size_t>(rng_.next());
    spec.delay = std::chrono::milliseconds(1 + rng_.below(5));
    if (frame_bytes == 0) spec.kind = FaultKind::Delay;
    ++injected_;
    return spec;
  }
  return FaultSpec{};
}

FaultSpec FaultPlan::next_send(std::size_t frame_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  return next(scripted_send_, sends_, frame_bytes);
}

FaultSpec FaultPlan::next_recv(std::size_t frame_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  return next(scripted_recv_, recvs_, frame_bytes);
}

std::size_t FaultPlan::sends() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sends_;
}

std::size_t FaultPlan::recvs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recvs_;
}

std::size_t FaultPlan::injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return injected_;
}

namespace {

/// Flip one bit inside the CRC/payload region [4, raw.size()): the
/// length field stays intact so the peer reads a frame of the right
/// size and fails its checksum, instead of desynchronizing forever.
void flip_bit(std::vector<std::uint8_t>& raw, std::size_t bit_seed) {
  const std::size_t bits = (raw.size() - 4) * 8;
  const std::size_t bit = bit_seed % bits;
  raw[4 + bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

}  // namespace

void FaultyStream::send_frame(const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> raw = frame_wrap(payload);
  const FaultSpec spec = plan_->next_send(raw.size());
  switch (spec.kind) {
    case FaultKind::None:
      inner_.send_bytes(raw);
      return;
    case FaultKind::Delay:
      std::this_thread::sleep_for(spec.delay);
      inner_.send_bytes(raw);
      return;
    case FaultKind::BitFlip:
      flip_bit(raw, spec.offset);
      inner_.send_bytes(raw);
      return;
    case FaultKind::Duplicate:
      inner_.send_bytes(raw);
      inner_.send_bytes(raw);
      return;
    case FaultKind::ShortWrite: {
      const std::size_t split = 1 + spec.offset % (raw.size() - 1);
      inner_.send_bytes({raw.begin(), raw.begin() + split});
      std::this_thread::sleep_for(spec.delay);
      inner_.send_bytes({raw.begin() + split, raw.end()});
      return;
    }
    case FaultKind::Drop: {
      // Forward a prefix, then kill the connection: the peer sees a
      // frame that never completes, we see a dead stream.
      const std::size_t sent = spec.offset % raw.size();
      inner_.send_bytes({raw.begin(), raw.begin() + sent});
      inner_.shutdown();
      throw NetError("injected fault: connection dropped after " +
                     std::to_string(sent) + " bytes");
    }
    case FaultKind::Truncate: {
      const std::size_t cut = 1 + spec.offset % raw.size();
      inner_.send_bytes({raw.begin(), raw.end() - cut});
      inner_.shutdown();
      throw NetError("injected fault: frame truncated by " +
                     std::to_string(cut) + " bytes");
    }
  }
}

std::vector<std::uint8_t> FaultyStream::recv_frame() {
  if (has_pending_dup_) {
    has_pending_dup_ = false;
    return frame_unwrap(pending_dup_);
  }
  // Ask the plan first so recv-side Drop can fire without waiting for
  // bytes that a dead peer will never send.
  const FaultSpec spec = plan_->next_recv(kFrameHeaderBytes);
  switch (spec.kind) {
    case FaultKind::Drop:
      inner_.shutdown();
      throw NetError("injected fault: connection dropped before recv");
    case FaultKind::Delay:
    case FaultKind::ShortWrite:
      std::this_thread::sleep_for(spec.delay);
      break;
    default:
      break;
  }
  std::vector<std::uint8_t> raw = inner_.recv_frame_bytes();
  switch (spec.kind) {
    case FaultKind::BitFlip:
      flip_bit(raw, spec.offset);
      break;
    case FaultKind::Truncate:
      raw.resize(raw.size() - (1 + spec.offset % raw.size()));
      break;
    case FaultKind::Duplicate:
      pending_dup_ = raw;
      has_pending_dup_ = true;
      break;
    default:
      break;
  }
  return frame_unwrap(raw);  // FrameError on injected corruption
}

FrameFaultAction apply_send_fault(const FaultSpec& spec,
                                  std::vector<std::uint8_t> raw) {
  FrameFaultAction action;
  switch (spec.kind) {
    case FaultKind::None:
      action.chunks.push_back(std::move(raw));
      break;
    case FaultKind::Delay:
      action.delay = spec.delay;
      action.chunks.push_back(std::move(raw));
      break;
    case FaultKind::BitFlip:
      flip_bit(raw, spec.offset);
      action.chunks.push_back(std::move(raw));
      break;
    case FaultKind::Duplicate:
      action.chunks.push_back(raw);
      action.chunks.push_back(std::move(raw));
      break;
    case FaultKind::ShortWrite: {
      const std::size_t split = 1 + spec.offset % (raw.size() - 1);
      action.chunks.emplace_back(raw.begin(), raw.begin() + split);
      action.chunks.emplace_back(raw.begin() + split, raw.end());
      action.gap = spec.delay;
      break;
    }
    case FaultKind::Drop: {
      const std::size_t sent = spec.offset % raw.size();
      action.chunks.emplace_back(raw.begin(), raw.begin() + sent);
      action.kill = true;
      break;
    }
    case FaultKind::Truncate: {
      const std::size_t cut = 1 + spec.offset % raw.size();
      action.chunks.emplace_back(raw.begin(), raw.end() - cut);
      action.kill = true;
      break;
    }
  }
  return action;
}

FrameFaultAction apply_recv_fault(const FaultSpec& spec,
                                  std::vector<std::uint8_t> raw) {
  FrameFaultAction action;
  switch (spec.kind) {
    case FaultKind::Drop:
      action.kill = true;
      break;
    case FaultKind::BitFlip:
      flip_bit(raw, spec.offset);
      action.chunks.push_back(std::move(raw));
      break;
    case FaultKind::Truncate:
      raw.resize(raw.size() - (1 + spec.offset % raw.size()));
      action.chunks.push_back(std::move(raw));
      break;
    case FaultKind::Duplicate:
      action.chunks.push_back(raw);
      action.chunks.push_back(std::move(raw));
      break;
    case FaultKind::Delay:
    case FaultKind::ShortWrite:
      action.delay = spec.delay;
      action.chunks.push_back(std::move(raw));
      break;
    case FaultKind::None:
      action.chunks.push_back(std::move(raw));
      break;
  }
  return action;
}

std::unique_ptr<Stream> wrap_stream(TcpStream stream,
                                    std::shared_ptr<FaultPlan> plan) {
  if (plan != nullptr) {
    return std::make_unique<FaultyStream>(std::move(stream),
                                          std::move(plan));
  }
  return std::make_unique<TcpStream>(std::move(stream));
}

}  // namespace jhdl::net
