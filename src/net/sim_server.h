// SimServer: serves a BlackBoxModel over the co-simulation protocol -
// the applet side of Figure 4. One thread services one session; the
// model's internals never cross the wire, only port values.
#pragma once

#include <atomic>
#include <memory>
#include <thread>

#include "core/blackbox.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace jhdl::net {

/// Serves one black-box model to one client session.
class SimServer {
 public:
  /// Takes ownership of the model.
  explicit SimServer(std::unique_ptr<core::BlackBoxModel> model);
  ~SimServer();
  SimServer(const SimServer&) = delete;
  SimServer& operator=(const SimServer&) = delete;

  /// Start listening and servicing sessions on a background thread.
  /// Returns the port to connect to.
  std::uint16_t start();

  /// Stop the server and join the thread. Idempotent.
  void stop();

  /// Requests handled so far (protocol round trips).
  std::size_t requests_served() const { return requests_.load(); }

  /// Service a single already-accepted session (blocking). Exposed for
  /// in-process tests without the background thread.
  void serve_session(TcpStream stream);

 private:
  Message handle(const Message& request);

  std::unique_ptr<core::BlackBoxModel> model_;
  std::unique_ptr<TcpListener> listener_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::size_t> requests_{0};
};

}  // namespace jhdl::net
