// SimServer: serves a BlackBoxModel over the co-simulation protocol -
// the applet side of Figure 4. One thread services one session; the
// model's internals never cross the wire, only port values.
//
// For the vendor-side service that multiplexes many concurrent sessions
// over one port (catalog + licenses + worker pool), see
// server/delivery_service.h.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>

#include "core/blackbox.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace jhdl::net {

/// Translate one in-session request (SetInput/GetOutput/Cycle/Reset/Eval)
/// into a reply against `model`. Hello/Bye/Stats are session-level and not
/// handled here. Shared by SimServer and the delivery service. Exceptions
/// from the model propagate; callers turn them into Error replies.
Message dispatch_request(core::BlackBoxModel& model, const Message& request);

/// Serves one black-box model to one client session.
class SimServer {
 public:
  /// Takes ownership of the model.
  explicit SimServer(std::unique_ptr<core::BlackBoxModel> model);
  ~SimServer();
  SimServer(const SimServer&) = delete;
  SimServer& operator=(const SimServer&) = delete;

  /// Start listening and servicing sessions on a background thread.
  /// Returns the port to connect to.
  std::uint16_t start();

  /// Stop the server and join the thread. Sends a final Bye on any open
  /// session and shuts its socket down, so a client blocked on a reply
  /// fails fast instead of hanging until TCP teardown. Idempotent.
  void stop();

  /// Requests handled so far (protocol round trips).
  std::size_t requests_served() const { return requests_.load(); }

  /// Service a single already-accepted session (blocking). Exposed for
  /// in-process tests without the background thread.
  void serve_session(TcpStream stream);

 private:
  Message handle(const Message& request);
  void send_reply(const Message& reply);

  std::unique_ptr<core::BlackBoxModel> model_;
  std::unique_ptr<TcpListener> listener_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::size_t> requests_{0};
  // The live session's stream, shared between the service thread (recv /
  // replies) and stop() (the farewell Bye). send_mutex_ serializes writes.
  std::mutex session_mutex_;
  std::mutex send_mutex_;
  TcpStream session_;
};

}  // namespace jhdl::net
