// SimServer: serves a BlackBoxModel over the co-simulation protocol -
// the applet side of Figure 4. One thread services one session; the
// model's internals never cross the wire, only port values.
//
// Hardened against a hostile transport (protocol v3): malformed frames
// are answered with a typed protocol Error instead of killing the
// session, requests carry sequence numbers that are served idempotently
// from a last-reply cache, and a client whose connection died can
// reconnect and Resume with the server-issued session token (the model
// persists across connections, so resume restores exactly where the
// session left off).
//
// For the vendor-side service that multiplexes many concurrent sessions
// over one port (catalog + licenses + worker pool), see
// server/delivery_service.h.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>

#include "core/blackbox.h"
#include "net/fault_injection.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace jhdl::net {

/// Translate one in-session request (SetInput/GetOutput/Cycle/Reset/Eval)
/// into a reply against `model`. Hello/Bye/Stats/Resume are session-level
/// and not handled here. Shared by SimServer and the delivery service.
/// Exceptions from the model propagate; callers turn them into Error
/// replies.
Message dispatch_request(core::BlackBoxModel& model, const Message& request);

/// Serves one black-box model to one client session.
class SimServer {
 public:
  /// Takes ownership of the model.
  explicit SimServer(std::unique_ptr<core::BlackBoxModel> model);
  ~SimServer();
  SimServer(const SimServer&) = delete;
  SimServer& operator=(const SimServer&) = delete;

  /// Route every session through a FaultyStream driven by `plan`
  /// (tests/bench inject faults on the server side of the wire). Call
  /// before start().
  void set_fault_plan(std::shared_ptr<FaultPlan> plan) {
    fault_plan_ = std::move(plan);
  }

  /// Start listening and servicing sessions on a background thread.
  /// Returns the port to connect to.
  std::uint16_t start();

  /// Stop the server and join the thread. Sends a final Bye on any open
  /// session and shuts its socket down, so a client blocked on a reply
  /// fails fast instead of hanging until TCP teardown. Idempotent.
  void stop();

  /// Requests handled so far (protocol round trips).
  std::size_t requests_served() const { return requests_.load(); }
  /// Successful Resume handshakes.
  std::size_t resumes() const { return resumes_.load(); }
  /// Requests answered from the idempotency cache (client retries).
  std::size_t replays() const { return replays_.load(); }
  /// Frames that failed decode or integrity checks.
  std::size_t malformed_frames() const { return malformed_frames_.load(); }

  /// Service a single already-accepted session (blocking). Exposed for
  /// in-process tests without the background thread.
  void serve_session(TcpStream stream);

 private:
  Message handle(const Message& request);
  void send_reply(const std::vector<std::uint8_t>& payload);
  /// Count a malformed frame and answer Error(MalformedFrame); false if
  /// even the Error could not be sent (session over).
  bool report_malformed();

  std::unique_ptr<core::BlackBoxModel> model_;
  std::unique_ptr<TcpListener> listener_;
  std::shared_ptr<FaultPlan> fault_plan_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::size_t> requests_{0};
  std::atomic<std::size_t> resumes_{0};
  std::atomic<std::size_t> replays_{0};
  std::atomic<std::size_t> malformed_frames_{0};
  /// Resume token issued in every Iface; constant for the server's
  /// lifetime since there is exactly one session's worth of state.
  std::string token_;
  /// Idempotency cache: highest executed request seq and its encoded
  /// reply. Only the session thread touches these.
  std::uint64_t last_seq_ = 0;
  std::vector<std::uint8_t> last_reply_;
  // The live session's stream, shared between the service thread (recv /
  // replies) and stop() (the farewell Bye). send_mutex_ serializes writes.
  std::mutex session_mutex_;
  std::mutex send_mutex_;
  std::unique_ptr<Stream> session_;
};

}  // namespace jhdl::net
