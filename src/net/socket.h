// Minimal RAII TCP sockets over the loopback interface, plus length-framed
// message transport for the co-simulation protocol.
//
// Framing (since protocol v3): every frame is
//   u32le payload length | u32le CRC-32 of the payload | payload
// The checksum turns wire corruption (a hostile or lossy transport, or an
// injected fault from net/fault_injection.h) into a detectable FrameError
// instead of a silently different message. Because the receiver always
// consumes exactly the advertised length, a bad checksum leaves the byte
// stream aligned: servers can answer with a protocol Error and keep the
// session, rather than tearing the connection down.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace jhdl::net {

/// Raised on socket-level failures (connect/bind/IO errors, peer close).
/// Carries a coarse taxonomy for retry logic: Retryable errors are
/// transport-level conditions a reconnect (or resend) may cure; Fatal
/// errors are terminal for the session (protocol violations, license
/// denials, the server's farewell Bye).
class NetError : public std::runtime_error {
 public:
  enum class Kind { Retryable, Fatal };
  explicit NetError(const std::string& what, Kind kind = Kind::Retryable)
      : std::runtime_error(what), kind_(kind) {}
  Kind kind() const { return kind_; }
  bool retryable() const { return kind_ == Kind::Retryable; }

 private:
  Kind kind_;
};

/// A frame arrived with the right length but failed its integrity check
/// (or was structurally impossible). The byte stream is still aligned, so
/// the connection remains usable: the receiver may report the corruption
/// and keep reading. Always Retryable.
class FrameError : public NetError {
 public:
  explicit FrameError(const std::string& what)
      : NetError(what, Kind::Retryable) {}
};

/// Frames larger than this are rejected BEFORE the payload is allocated,
/// so a hostile length prefix (e.g. 4 GiB) cannot drive the server into
/// an allocation it will regret.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Bytes of frame header preceding the payload (length + CRC-32).
inline constexpr std::size_t kFrameHeaderBytes = 8;

/// Build the raw wire bytes for one frame: header (length + CRC) followed
/// by the payload.
std::vector<std::uint8_t> frame_wrap(const std::vector<std::uint8_t>& payload);

/// Validate raw frame bytes (as produced by frame_wrap) and return the
/// payload. Throws FrameError on length/CRC mismatch.
std::vector<std::uint8_t> frame_unwrap(const std::vector<std::uint8_t>& raw);

/// A framed, bidirectional byte stream: the transport seam of the
/// co-simulation protocol. TcpStream is the real implementation;
/// FaultyStream (net/fault_injection.h) wraps one to inject faults.
/// SimServer, SimClient, and the DeliveryService are all built against
/// this interface, so any session can run over a faulted transport.
class Stream {
 public:
  virtual ~Stream() = default;
  virtual bool valid() const = 0;
  virtual void close() = 0;
  /// Shut down both directions without releasing the descriptor; safe to
  /// call from another thread while this stream is blocked in
  /// recv_frame()/send_frame() (the blocked call fails with NetError).
  virtual void shutdown() = 0;
  /// Bound every subsequent recv to `ms` milliseconds; a timed-out
  /// recv_frame throws NetError (0 = block forever again).
  virtual void set_recv_timeout(int ms) = 0;
  /// Send one length-framed payload. Throws NetError on failure.
  virtual void send_frame(const std::vector<std::uint8_t>& payload) = 0;
  /// Receive one frame. Throws NetError on failure or orderly close, and
  /// FrameError when the frame arrived but failed its integrity check.
  virtual std::vector<std::uint8_t> recv_frame() = 0;
};

/// A connected TCP stream. Move-only; closes on destruction.
class TcpStream : public Stream {
 public:
  TcpStream() = default;
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream() override;
  TcpStream(TcpStream&& rhs) noexcept;
  TcpStream& operator=(TcpStream&& rhs) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  /// Connect to 127.0.0.1:port. Throws NetError on failure.
  static TcpStream connect(std::uint16_t port);

  bool valid() const override { return fd_ >= 0; }
  void close() override;
  void shutdown() override;
  void set_recv_timeout(int ms) override;

  void send_frame(const std::vector<std::uint8_t>& payload) override;
  std::vector<std::uint8_t> recv_frame() override;

  /// Raw-byte escape hatches for the fault-injection layer (and tests
  /// that need to place malformed bytes on the wire): send bytes exactly
  /// as given, or receive one frame's raw bytes (header included) with
  /// the length cap enforced but WITHOUT the CRC check.
  void send_bytes(const std::vector<std::uint8_t>& raw);
  std::vector<std::uint8_t> recv_frame_bytes();

  /// Receive whatever bytes are available, up to `max` (unframed — for
  /// byte protocols like the admin plane's HTTP). Returns the count read
  /// (>= 1). Throws NetError on failure, timeout, or orderly close.
  std::size_t recv_raw(std::uint8_t* data, std::size_t max);

  // --- nonblocking support (the reactor's delivery plane) ---

  /// The underlying descriptor (-1 when closed). For poller registration
  /// only; ownership stays with the stream.
  int fd() const { return fd_; }

  /// Switch O_NONBLOCK on or off. The framed recv/send API above assumes
  /// blocking mode; a nonblocking stream is driven with recv_some /
  /// send_some under a Poller instead.
  void set_nonblocking(bool on);

  /// recv_some/send_some outcome for nonblocking IO.
  enum class IoResult {
    Ok,          ///< >= 1 byte moved (`n` holds the count)
    WouldBlock,  ///< no progress now; wait for readiness
    Closed,      ///< orderly peer close (recv only)
    Error,       ///< connection is dead
  };

  /// Read up to `max` bytes without blocking. Never throws: the reactor
  /// maps outcomes to connection-state transitions instead of unwinding.
  IoResult recv_some(std::uint8_t* data, std::size_t max, std::size_t& n);

  /// Write up to `size` bytes without blocking. Never throws.
  IoResult send_some(const std::uint8_t* data, std::size_t size,
                     std::size_t& n);

 private:
  void send_all(const std::uint8_t* data, std::size_t size);
  void recv_all(std::uint8_t* data, std::size_t size);
  int fd_ = -1;
};

/// A listening socket on 127.0.0.1 with a kernel-chosen port.
class TcpListener {
 public:
  /// `backlog` sizes the kernel pending-connection queue; the delivery
  /// service raises it so connection bursts reach the application-level
  /// accept queue instead of being dropped by the kernel.
  explicit TcpListener(int backlog = 8);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }
  /// The listening descriptor, for poller registration (-1 once closed).
  int fd() const { return fd_; }
  /// Accept one connection (blocking). Throws NetError on failure.
  TcpStream accept();
  /// Nonblocking accept for a poller-driven loop: returns an invalid
  /// TcpStream when no connection is pending (EAGAIN) or on a transient
  /// per-connection error; throws NetError only when the listener itself
  /// is dead. The listening socket must be set_nonblocking() first.
  TcpStream try_accept();
  /// Switch the LISTENING socket to O_NONBLOCK for try_accept().
  void set_nonblocking(bool on);
  /// Stop accepting: shuts the socket down so a thread blocked in
  /// accept() fails with NetError. Safe to call from any thread; the
  /// descriptor itself is released in the destructor, once no thread can
  /// still be inside accept().
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> closed_{false};
};

}  // namespace jhdl::net
