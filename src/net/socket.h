// Minimal RAII TCP sockets over the loopback interface, plus length-framed
// message transport for the co-simulation protocol.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace jhdl::net {

/// Raised on socket-level failures (connect/bind/IO errors, peer close).
class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

/// A connected TCP stream. Move-only; closes on destruction.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream();
  TcpStream(TcpStream&& rhs) noexcept;
  TcpStream& operator=(TcpStream&& rhs) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  /// Connect to 127.0.0.1:port. Throws NetError on failure.
  static TcpStream connect(std::uint16_t port);

  bool valid() const { return fd_ >= 0; }
  void close();

  /// Shut down both directions without releasing the descriptor. Unlike
  /// close(), this is safe to call from another thread while this stream
  /// is blocked in recv_frame()/send_frame(): the blocked call fails with
  /// NetError instead of hanging. Used for session eviction and shutdown.
  void shutdown();

  /// Bound every subsequent recv to `ms` milliseconds; a timed-out
  /// recv_frame throws NetError (0 = block forever again). Used for
  /// bounded reads on the accept path.
  void set_recv_timeout(int ms);

  /// Send one length-framed payload. Throws NetError on failure.
  void send_frame(const std::vector<std::uint8_t>& payload);
  /// Receive one frame. Throws NetError on failure or orderly close.
  std::vector<std::uint8_t> recv_frame();

 private:
  void send_all(const std::uint8_t* data, std::size_t size);
  void recv_all(std::uint8_t* data, std::size_t size);
  int fd_ = -1;
};

/// A listening socket on 127.0.0.1 with a kernel-chosen port.
class TcpListener {
 public:
  /// `backlog` sizes the kernel pending-connection queue; the delivery
  /// service raises it so connection bursts reach the application-level
  /// accept queue instead of being dropped by the kernel.
  explicit TcpListener(int backlog = 8);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }
  /// Accept one connection (blocking). Throws NetError on failure.
  TcpStream accept();
  /// Stop accepting: shuts the socket down so a thread blocked in
  /// accept() fails with NetError. Safe to call from any thread; the
  /// descriptor itself is released in the destructor, once no thread can
  /// still be inside accept().
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> closed_{false};
};

}  // namespace jhdl::net
