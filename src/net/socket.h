// Minimal RAII TCP sockets over the loopback interface, plus length-framed
// message transport for the co-simulation protocol.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace jhdl::net {

/// Raised on socket-level failures (connect/bind/IO errors, peer close).
class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

/// A connected TCP stream. Move-only; closes on destruction.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream();
  TcpStream(TcpStream&& rhs) noexcept;
  TcpStream& operator=(TcpStream&& rhs) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  /// Connect to 127.0.0.1:port. Throws NetError on failure.
  static TcpStream connect(std::uint16_t port);

  bool valid() const { return fd_ >= 0; }
  void close();

  /// Send one length-framed payload. Throws NetError on failure.
  void send_frame(const std::vector<std::uint8_t>& payload);
  /// Receive one frame. Throws NetError on failure or orderly close.
  std::vector<std::uint8_t> recv_frame();

 private:
  void send_all(const std::uint8_t* data, std::size_t size);
  void recv_all(std::uint8_t* data, std::size_t size);
  int fd_ = -1;
};

/// A listening socket on 127.0.0.1 with a kernel-chosen port.
class TcpListener {
 public:
  TcpListener();
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }
  /// Accept one connection (blocking). Throws NetError on failure.
  TcpStream accept();
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace jhdl::net
