// Readiness multiplexing for the event-driven delivery plane.
//
// Poller wraps the platform's level-triggered readiness API — epoll(7) on
// Linux, poll(2) everywhere else — behind one small interface so the
// delivery reactor can watch thousands of nonblocking sockets from a
// single thread. Level-triggered semantics are deliberate: a handler that
// leaves bytes unread (or a send buffer part-flushed) is re-notified on
// the next wait(), which keeps the per-event code re-entrant and simple
// at the cost of one syscall of re-arming discipline.
//
// WakeupFd is the cross-thread doorbell: worker threads finishing
// CPU-heavy requests ring it to pull the loop out of wait() and drain the
// completion queue. It is eventfd(2) on Linux, a nonblocking self-pipe
// elsewhere; ring() is async-signal-safe-ish (one write syscall, never
// blocks, coalesces).
#pragma once

#include <cstdint>
#include <vector>

namespace jhdl::net {

/// One fd's readiness, as returned by Poller::wait.
struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  /// Error/hangup on the descriptor. The owner should read until failure
  /// and tear the connection down; level-triggered polling re-reports it
  /// until the fd is removed.
  bool error = false;
};

/// Level-triggered readiness poller over nonblocking descriptors.
/// Single-threaded by contract: only the owning loop thread may call any
/// method (WakeupFd is the one cross-thread channel).
class Poller {
 public:
  Poller();
  ~Poller();
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  /// Start watching `fd`. `read`/`write` select the interest set.
  void add(int fd, bool read, bool write);
  /// Change the interest set of a watched fd.
  void modify(int fd, bool read, bool write);
  /// Stop watching. Safe to call for an fd the kernel already dropped
  /// (close() auto-removes from epoll); keeps the fallback set in sync.
  void remove(int fd);

  /// Block up to `timeout_ms` (-1 = forever, 0 = poll) for readiness.
  /// Fills `out` (cleared first) and returns the event count. EINTR is
  /// absorbed (returns 0).
  std::size_t wait(std::vector<PollEvent>& out, int timeout_ms);

  /// How many descriptors are currently watched.
  std::size_t watched() const;

 private:
  int epoll_fd_ = -1;  // -1 on the poll() fallback path
  /// Fallback interest set (fd -> events mask); also mirrored on Linux so
  /// watched() needs no kernel query.
  struct Interest {
    int fd;
    bool read;
    bool write;
  };
  std::vector<Interest> interest_;
  std::vector<Interest>::iterator find(int fd);
};

/// Cross-thread wakeup channel for an event loop: any thread may ring(),
/// the loop watches fd() for readability and drain()s on wakeup. Multiple
/// rings coalesce into one readable event.
class WakeupFd {
 public:
  WakeupFd();
  ~WakeupFd();
  WakeupFd(const WakeupFd&) = delete;
  WakeupFd& operator=(const WakeupFd&) = delete;

  /// The descriptor the loop registers for read interest.
  int fd() const { return read_fd_; }
  /// Make fd() readable. Never blocks; safe from any thread.
  void ring();
  /// Consume pending wakeups so the next ring() is a fresh edge.
  void drain();

 private:
  int read_fd_ = -1;
  int write_fd_ = -1;  // == read_fd_ when backed by eventfd
};

}  // namespace jhdl::net
