// SimClient: the system-simulator side of Figure 4. Connects to a
// SimServer and mirrors the BlackBoxModel API over the socket.
//
// Supports injected one-way latency to model a WAN link: the paper's
// argument against server-side simulation (Web-CAD [2], JavaCAD [1]) is
// that every simulation event pays a network round trip, while the applet
// approach simulates locally. The `eval` call is the coarse-grained
// RMI-style transaction (one round trip per vector); the fine-grained
// set/cycle/get calls model per-event traffic.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "net/protocol.h"
#include "net/socket.h"
#include "util/json.h"

namespace jhdl::net {

/// Everything a client states in the v2 Hello when opening a session
/// against a multi-tenant DeliveryService: who it is (license lookup),
/// which catalog module it wants, and the generator parameters. All
/// fields may stay empty against a single-model SimServer.
struct ConnectSpec {
  std::string customer;
  std::string module;
  std::map<std::string, std::int64_t> params;
  /// Synthetic network round-trip time added to every request
  /// (0 = raw loopback).
  double injected_rtt_ms = 0.0;
};

/// Client handle to a remote black-box simulation.
class SimClient {
 public:
  /// Connect and handshake. `injected_rtt_ms` adds a synthetic network
  /// round-trip time to every request (0 = raw loopback).
  explicit SimClient(std::uint16_t port, double injected_rtt_ms = 0.0);

  /// Connect-with-params: open a session for `spec.customer` on
  /// `spec.module` built with `spec.params` (the delivery-service
  /// handshake). Throws std::runtime_error carrying the server's Error
  /// text on license/version/catalog rejection.
  SimClient(std::uint16_t port, const ConnectSpec& spec);

  /// Wire protocol version this client speaks (and negotiated in the
  /// handshake - the server would have rejected a mismatch).
  std::uint16_t protocol_version() const { return kProtocolVersion; }

  /// Parsed interface descriptor from the handshake.
  const Json& interface() const { return iface_; }
  std::string ip_name() const { return iface_.at("ip").as_string(); }
  std::size_t latency() const {
    return static_cast<std::size_t>(iface_.at("latency").as_int());
  }

  // Fine-grained (per-event) operations - one round trip each.
  void set_input(const std::string& name, const BitVector& value);
  BitVector get_output(const std::string& name);
  void cycle(std::size_t n = 1);
  void reset();

  /// Coarse transaction: set all `inputs`, cycle `n`, return all outputs.
  /// One round trip total.
  std::map<std::string, BitVector> eval(
      const std::map<std::string, BitVector>& inputs, std::size_t n);

  /// Round trips performed so far.
  std::size_t round_trips() const { return round_trips_; }
  double injected_rtt_ms() const { return injected_rtt_ms_; }

  /// Close the session politely.
  void bye();

 private:
  Message request(const Message& msg);

  TcpStream stream_;
  Json iface_;
  double injected_rtt_ms_;
  std::size_t round_trips_ = 0;
};

}  // namespace jhdl::net
