// SimClient: the system-simulator side of Figure 4. Connects to a
// SimServer and mirrors the BlackBoxModel API over the socket.
//
// Supports injected one-way latency to model a WAN link: the paper's
// argument against server-side simulation (Web-CAD [2], JavaCAD [1]) is
// that every simulation event pays a network round trip, while the applet
// approach simulates locally. The `eval` call is the coarse-grained
// RMI-style transaction (one round trip per vector); the fine-grained
// set/cycle/get calls model per-event traffic.
//
// Resilience (protocol v3): with a RetryPolicy of more than one attempt,
// the client survives a hostile transport. Every request carries a
// sequence number; on a transport failure the client reconnects, replays
// the handshake as a Resume carrying the server-issued session token and
// its last-acked cycle count, and resends the pending request — which the
// server answers idempotently from its last-reply cache. Retries back off
// exponentially with deterministic jitter; errors split into Retryable
// (transport faults, saturation, malformed frames) and Fatal (license /
// version / protocol refusals, the server's farewell Bye) via
// NetError::kind().
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/fault_injection.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "obs/trace.h"
#include "util/json.h"
#include "util/rng.h"

namespace jhdl::net {

/// Retry/timeout policy for one SimClient. The default (one attempt, no
/// timeout) reproduces the classic fail-on-first-error behaviour;
/// resilient callers raise max_attempts and set a request timeout.
struct RetryPolicy {
  /// Total tries per request (1 = no retries).
  int max_attempts = 1;
  /// Backoff before retry k is min(base << k, max), jittered.
  std::chrono::milliseconds backoff_base{10};
  std::chrono::milliseconds backoff_max{500};
  /// Fraction of each backoff randomized away (0 = none, deterministic
  /// for a given seed either way).
  double jitter = 0.5;
  std::uint64_t jitter_seed = 1;
  /// Bound on each blocking recv (0 = wait forever). A timed-out request
  /// counts as a transport failure: reconnect + resume + resend.
  std::chrono::milliseconds request_timeout{0};
};

/// Everything a client states in the v2+ Hello when opening a session
/// against a multi-tenant DeliveryService: who it is (license lookup),
/// which catalog module it wants, and the generator parameters. All
/// fields may stay empty against a single-model SimServer.
struct ConnectSpec {
  std::string customer;
  std::string module;
  std::map<std::string, std::int64_t> params;
  /// Synthetic network round-trip time added to every request
  /// (0 = raw loopback).
  double injected_rtt_ms = 0.0;
  /// Retry/timeout policy (default: single attempt, like v2).
  RetryPolicy retry;
  /// When set, the connection runs through a FaultyStream driven by this
  /// plan (tests/bench inject faults on the client side of the wire).
  std::shared_ptr<FaultPlan> fault_plan;
  /// Sink for client-side spans (connect/hello/resume/request/backoff).
  /// Null = obs::Tracer::global(), which records nothing until enabled.
  obs::Tracer* tracer = nullptr;
  /// Trace id stamped on every message this client sends (the v5
  /// trailing field; pre-v5 servers ignore it). 0 = mint a fresh one at
  /// construction, so every client is traceable by default.
  std::uint64_t trace_id = 0;
};

/// Client handle to a remote black-box simulation.
class SimClient {
 public:
  /// Connect and handshake. `injected_rtt_ms` adds a synthetic network
  /// round-trip time to every request (0 = raw loopback).
  explicit SimClient(std::uint16_t port, double injected_rtt_ms = 0.0);

  /// Connect-with-params: open a session for `spec.customer` on
  /// `spec.module` built with `spec.params` (the delivery-service
  /// handshake). Throws NetError (Fatal) carrying the server's Error
  /// text on license/version/catalog rejection.
  SimClient(std::uint16_t port, const ConnectSpec& spec);

  /// Wire protocol version this client speaks (and negotiated in the
  /// handshake - the server would have rejected a mismatch).
  std::uint16_t protocol_version() const { return kProtocolVersion; }

  /// Parsed interface descriptor from the handshake.
  const Json& interface() const { return iface_; }
  std::string ip_name() const { return iface_.at("ip").as_string(); }
  /// The server's full interface descriptor from the handshake.
  const Json& iface() const { return iface_; }
  std::size_t latency() const {
    return static_cast<std::size_t>(iface_.at("latency").as_int());
  }

  // Fine-grained (per-event) operations - one round trip each.
  void set_input(const std::string& name, const BitVector& value);
  BitVector get_output(const std::string& name);
  void cycle(std::size_t n = 1);
  void reset();

  /// Coarse transaction: set all `inputs`, cycle `n`, return all outputs.
  /// One round trip total.
  std::map<std::string, BitVector> eval(
      const std::map<std::string, BitVector>& inputs, std::size_t n);

  /// Batched transaction: per cycle t, apply each stimulus stream's t-th
  /// value, clock once, sample every probe (empty = all outputs). One
  /// CycleBatch round trip against a v4 server; against a v3 server the
  /// client transparently falls back to one Eval per cycle (same results,
  /// per-cycle round trips).
  std::map<std::string, std::vector<BitVector>> cycle_batch(
      std::size_t n,
      const std::map<std::string, std::vector<BitVector>>& stimulus,
      const std::vector<std::string>& probes = {});

  /// Multi-pattern sweep: each pattern starts from power-on reset,
  /// applies its value from every stream, runs `cycles` clocks and
  /// samples every probe (empty = all outputs). One PatternBatch round
  /// trip against a v6 server (served by the bit-parallel kernel when the
  /// model supports it); against an older server the client transparently
  /// emulates with Reset + Eval per pattern. Either way the remote model
  /// is left in power-on reset state.
  std::map<std::string, std::vector<BitVector>> pattern_batch(
      const std::map<std::string, std::vector<BitVector>>& patterns,
      std::size_t cycles, const std::vector<std::string>& probes = {});

  /// Protocol version negotiated with the server: the Iface "protocol"
  /// field, or 3 when the server predates it.
  std::uint16_t negotiated_protocol() const;

  /// Successful round trips performed so far (handshakes included).
  std::size_t round_trips() const { return round_trips_; }
  /// Failed attempts that were retried.
  std::size_t retries() const { return retries_; }
  /// Reconnect + Resume handshakes performed after transport failures.
  std::size_t reconnects() const { return reconnects_; }
  /// Server-issued resume token ("" when the server predates v3).
  const std::string& session_token() const { return token_; }
  /// The trace id stamped on this client's messages and spans (from
  /// ConnectSpec::trace_id, or minted at construction).
  std::uint64_t trace_id() const { return trace_id_; }
  /// Cycle count acknowledged by the server's most recent Ok reply
  /// (what a Resume reports back as the reattach point).
  std::uint64_t last_acked_cycles() const { return last_acked_cycles_; }
  double injected_rtt_ms() const { return injected_rtt_ms_; }

  /// Close the session politely (best effort - never throws).
  void bye();

 private:
  /// Open (or re-open) the connection and run the Hello or Resume
  /// handshake. One attempt; throws on failure.
  void connect_and_handshake();
  /// One send/recv attempt of `msg`, matching replies by seq.
  Message transact(const Message& msg);
  /// Resilient request: numbers the message, retries per policy.
  Message request(Message msg);
  void backoff(int attempt);

  std::uint16_t port_ = 0;
  std::string customer_;
  std::string module_;
  std::map<std::string, std::int64_t> params_;
  RetryPolicy policy_;
  std::shared_ptr<FaultPlan> fault_plan_;
  std::unique_ptr<Stream> stream_;
  bool connected_ = false;
  bool ever_connected_ = false;
  Json iface_;
  std::string token_;
  double injected_rtt_ms_ = 0.0;
  obs::Tracer* tracer_ = nullptr;
  std::uint64_t trace_id_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t last_acked_cycles_ = 0;
  std::size_t round_trips_ = 0;
  std::size_t retries_ = 0;
  std::size_t reconnects_ = 0;
  Rng jitter_rng_;
};

}  // namespace jhdl::net
