#include "net/poller.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/socket.h"

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>
#define JHDL_HAVE_EPOLL 1
#endif

namespace jhdl::net {

namespace {

[[noreturn]] void raise_errno(const char* what) {
  throw NetError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

Poller::Poller() {
#ifdef JHDL_HAVE_EPOLL
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) raise_errno("epoll_create1");
#endif
}

Poller::~Poller() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

std::vector<Poller::Interest>::iterator Poller::find(int fd) {
  for (auto it = interest_.begin(); it != interest_.end(); ++it) {
    if (it->fd == fd) return it;
  }
  return interest_.end();
}

void Poller::add(int fd, bool read, bool write) {
#ifdef JHDL_HAVE_EPOLL
  epoll_event ev{};
  ev.events = (read ? EPOLLIN : 0u) | (write ? EPOLLOUT : 0u);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    raise_errno("epoll_ctl(add)");
  }
#endif
  interest_.push_back({fd, read, write});
}

void Poller::modify(int fd, bool read, bool write) {
  auto it = find(fd);
  if (it == interest_.end()) return;
  it->read = read;
  it->write = write;
#ifdef JHDL_HAVE_EPOLL
  epoll_event ev{};
  ev.events = (read ? EPOLLIN : 0u) | (write ? EPOLLOUT : 0u);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    raise_errno("epoll_ctl(mod)");
  }
#endif
}

void Poller::remove(int fd) {
  auto it = find(fd);
  if (it == interest_.end()) return;
  interest_.erase(it);
#ifdef JHDL_HAVE_EPOLL
  // The kernel drops closed fds on its own; tolerate EBADF/ENOENT so
  // remove-after-close stays a no-op instead of a crash.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
#endif
}

std::size_t Poller::wait(std::vector<PollEvent>& out, int timeout_ms) {
  out.clear();
#ifdef JHDL_HAVE_EPOLL
  epoll_event events[256];
  const int n = ::epoll_wait(epoll_fd_, events, 256, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    raise_errno("epoll_wait");
  }
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    PollEvent ev;
    ev.fd = events[i].data.fd;
    ev.readable = (events[i].events & EPOLLIN) != 0;
    ev.writable = (events[i].events & EPOLLOUT) != 0;
    ev.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
    out.push_back(ev);
  }
  return out.size();
#else
  std::vector<pollfd> fds;
  fds.reserve(interest_.size());
  for (const Interest& i : interest_) {
    pollfd p{};
    p.fd = i.fd;
    p.events = static_cast<short>((i.read ? POLLIN : 0) |
                                  (i.write ? POLLOUT : 0));
    fds.push_back(p);
  }
  const int n = ::poll(fds.data(), fds.size(), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    raise_errno("poll");
  }
  for (const pollfd& p : fds) {
    if (p.revents == 0) continue;
    PollEvent ev;
    ev.fd = p.fd;
    ev.readable = (p.revents & POLLIN) != 0;
    ev.writable = (p.revents & POLLOUT) != 0;
    ev.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    out.push_back(ev);
  }
  return out.size();
#endif
}

std::size_t Poller::watched() const { return interest_.size(); }

WakeupFd::WakeupFd() {
#ifdef JHDL_HAVE_EPOLL
  read_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (read_fd_ < 0) raise_errno("eventfd");
  write_fd_ = read_fd_;
#else
  int fds[2];
  if (::pipe(fds) != 0) raise_errno("pipe");
  ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
  ::fcntl(fds[1], F_SETFL, O_NONBLOCK);
  read_fd_ = fds[0];
  write_fd_ = fds[1];
#endif
}

WakeupFd::~WakeupFd() {
  if (read_fd_ >= 0) ::close(read_fd_);
  if (write_fd_ >= 0 && write_fd_ != read_fd_) ::close(write_fd_);
}

void WakeupFd::ring() {
  const std::uint64_t one = 1;
  // EAGAIN means a wakeup is already pending — exactly what we want.
  [[maybe_unused]] ssize_t n = ::write(write_fd_, &one, sizeof one);
}

void WakeupFd::drain() {
  std::uint8_t buf[64];
  while (::read(read_fd_, buf, sizeof buf) > 0) {
  }
}

}  // namespace jhdl::net
