#include "obs/log.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <unordered_map>

namespace jhdl::obs {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "debug";
    case LogLevel::Info:
      return "info";
    case LogLevel::Warn:
      return "warn";
    case LogLevel::Error:
      return "error";
    case LogLevel::Fatal:
      return "fatal";
  }
  return "?";
}

namespace {

/// Stable per-thread ordinal, shared scheme with the tracer's tid field.
std::uint32_t thread_ordinal() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

constexpr std::size_t kTextWords = (Logger::kTextBytes + 7) / 8;

}  // namespace

/// Fixed-capacity single-writer ring, the tracer's design with a text
/// payload: every scalar field is an individual relaxed atomic and the
/// text is packed into relaxed atomic words, so a dump racing an
/// overwrite reads torn-but-defined bytes instead of racing undefined
/// ones. The writer stores fields, then bumps head with release.
struct Logger::Ring {
  struct Slot {
    std::atomic<int> level{0};
    std::atomic<const char*> event{nullptr};
    std::atomic<std::uint64_t> ts_us{0};
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint32_t> len{0};
    std::array<std::atomic<std::uint64_t>, kTextWords> text{};
  };

  explicit Ring(std::size_t capacity, std::uint32_t tid)
      : slots(capacity), tid(tid) {}

  void push(LogLevel level, const char* event, std::uint64_t ts_us,
            std::uint64_t trace_id, std::uint64_t seq, const char* text,
            std::size_t len) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    Slot& slot = slots[h % slots.size()];
    slot.level.store(static_cast<int>(level), std::memory_order_relaxed);
    slot.event.store(event, std::memory_order_relaxed);
    slot.ts_us.store(ts_us, std::memory_order_relaxed);
    slot.trace_id.store(trace_id, std::memory_order_relaxed);
    slot.seq.store(seq, std::memory_order_relaxed);
    if (len > Logger::kTextBytes) len = Logger::kTextBytes;
    slot.len.store(static_cast<std::uint32_t>(len),
                   std::memory_order_relaxed);
    for (std::size_t w = 0; w * 8 < len; ++w) {
      std::uint64_t word = 0;
      const std::size_t n = std::min<std::size_t>(8, len - w * 8);
      std::memcpy(&word, text + w * 8, n);
      slot.text[w].store(word, std::memory_order_relaxed);
    }
    head.store(h + 1, std::memory_order_release);
  }

  std::vector<Slot> slots;
  std::atomic<std::uint64_t> head{0};
  const std::uint32_t tid;
};

Logger::Logger(std::size_t ring_capacity)
    : capacity_(ring_capacity < 16 ? 16 : ring_capacity) {
  static std::atomic<std::uint64_t> next_id{1};
  logger_id_ = next_id.fetch_add(1, std::memory_order_relaxed);
}

Logger::~Logger() = default;

Logger::Ring& Logger::local_ring() {
  // Cache keyed by the PROCESS-UNIQUE logger id, not the pointer (same
  // rationale as Tracer::local_ring: a destroyed logger's address can be
  // reused, its id never is).
  thread_local std::unordered_map<std::uint64_t, Ring*> cache;
  auto it = cache.find(logger_id_);
  if (it != cache.end()) return *it->second;
  auto ring = std::make_unique<Ring>(capacity_, thread_ordinal());
  Ring* raw = ring.get();
  {
    std::lock_guard<std::mutex> lock(rings_mutex_);
    rings_.push_back(std::move(ring));
  }
  cache.emplace(logger_id_, raw);
  return *raw;
}

void Logger::log(LogLevel level, const char* event,
                 std::initializer_list<Kv> kvs, std::uint64_t trace_id) {
  if (!enabled(level)) return;
  // Pack "key=value" pairs, unit-separator delimited, into a stack
  // buffer; anything past kTextBytes is truncated (never dropped).
  char text[kTextBytes];
  std::size_t len = 0;
  for (const Kv& kv : kvs) {
    if (len != 0 && len < kTextBytes) text[len++] = '\x1f';
    for (char c : kv.first) {
      if (len >= kTextBytes) break;
      text[len++] = c;
    }
    if (len < kTextBytes) text[len++] = '=';
    for (char c : kv.second) {
      if (len >= kTextBytes) break;
      text[len++] = c;
    }
  }
  const std::uint64_t seq =
      next_seq_.fetch_add(1, std::memory_order_relaxed);
  local_ring().push(level, event, Tracer::now_us(), trace_id, seq, text,
                    len);
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<LogRecord> Logger::snapshot() const {
  std::vector<LogRecord> out;
  std::lock_guard<std::mutex> lock(rings_mutex_);
  for (const auto& ring : rings_) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t n = ring->slots.size();
    const std::uint64_t first = head > n ? head - n : 0;
    for (std::uint64_t i = first; i < head; ++i) {
      const Ring::Slot& slot = ring->slots[i % n];
      LogRecord r;
      r.level = static_cast<LogLevel>(
          slot.level.load(std::memory_order_relaxed));
      r.event = slot.event.load(std::memory_order_relaxed);
      r.ts_us = slot.ts_us.load(std::memory_order_relaxed);
      r.trace_id = slot.trace_id.load(std::memory_order_relaxed);
      r.seq = slot.seq.load(std::memory_order_relaxed);
      r.tid = ring->tid;
      std::uint32_t len = slot.len.load(std::memory_order_relaxed);
      if (len > kTextBytes) len = kTextBytes;
      r.text.resize(len);
      for (std::size_t w = 0; w * 8 < len; ++w) {
        const std::uint64_t word =
            slot.text[w].load(std::memory_order_relaxed);
        const std::size_t take = std::min<std::size_t>(8, len - w * 8);
        std::memcpy(r.text.data() + w * 8, &word, take);
      }
      if (r.event != nullptr) out.push_back(std::move(r));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const LogRecord& a, const LogRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

Json Logger::record_json(const LogRecord& record) {
  Json doc = Json::object();
  doc.set("type", "log");
  doc.set("seq", record.seq);
  doc.set("ts_us", record.ts_us);
  doc.set("level", std::string(log_level_name(record.level)));
  doc.set("event", std::string(record.event));
  doc.set("tid", std::size_t{record.tid});
  if (record.trace_id != 0) {
    doc.set("trace", TraceContext::hex(record.trace_id));
  }
  // Split the unit-separated "key=value" payload back into fields; a
  // torn record may yield odd keys but stays valid JSON.
  Json fields = Json::object();
  std::size_t start = 0;
  while (start < record.text.size()) {
    std::size_t end = record.text.find('\x1f', start);
    if (end == std::string::npos) end = record.text.size();
    const std::string pair = record.text.substr(start, end - start);
    const std::size_t eq = pair.find('=');
    if (eq != std::string::npos) {
      fields.set(pair.substr(0, eq), pair.substr(eq + 1));
    } else if (!pair.empty()) {
      fields.set(pair, "");
    }
    start = end + 1;
  }
  doc.set("fields", fields);
  return doc;
}

std::string Logger::to_jsonl() const {
  std::string out;
  for (const LogRecord& record : snapshot()) {
    out += record_json(record).dump();
    out += "\n";
  }
  return out;
}

Logger& Logger::global() {
  static Logger logger;
  static bool init = [] {
    logger.set_level(LogLevel::Warn);
    return true;
  }();
  (void)init;
  return logger;
}

FlightRecorder::FlightRecorder(Logger& log, MetricsRegistry& metrics,
                               Tracer* tracer, Config config)
    : log_(log),
      metrics_(metrics),
      tracer_(tracer),
      config_(config),
      dumps_metric_(&metrics.counter("flight.dumps")) {
  if (config_.keep == 0) config_.keep = 1;
}

std::string FlightRecorder::trigger(const std::string& reason) {
  const std::uint64_t now = Tracer::now_us();
  std::string jsonl;
  {
    Json header = Json::object();
    header.set("type", "flight");
    header.set("reason", reason);
    header.set("ts_us", now);
    header.set("seq", seq_.fetch_add(1, std::memory_order_relaxed) + 1);
    jsonl += header.dump();
    jsonl += "\n";
  }
  for (const LogRecord& record : log_.snapshot()) {
    jsonl += Logger::record_json(record).dump();
    jsonl += "\n";
  }
  {
    Json metrics_line = Json::object();
    metrics_line.set("type", "metrics");
    metrics_line.set("data", metrics_.to_json());
    jsonl += metrics_line.dump();
    jsonl += "\n";
  }
  if (tracer_ != nullptr && config_.max_spans != 0) {
    std::vector<TraceEvent> spans = tracer_->snapshot();
    const std::size_t first =
        spans.size() > config_.max_spans ? spans.size() - config_.max_spans
                                         : 0;
    for (std::size_t i = first; i < spans.size(); ++i) {
      const TraceEvent& e = spans[i];
      Json span = Json::object();
      span.set("type", "span");
      span.set("name", std::string(e.name));
      span.set("ts_us", e.start_us);
      span.set("dur_us", e.dur_us);
      span.set("tid", std::size_t{e.tid});
      if (e.trace_id != 0) span.set("trace", TraceContext::hex(e.trace_id));
      jsonl += span.dump();
      jsonl += "\n";
    }
  }
  dumps_metric_->inc();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    retained_.push_back({reason, now, jsonl});
    while (retained_.size() > config_.keep) retained_.pop_front();
    // Bump only after the dump is retained: a poller that observes
    // triggered() >= N is guaranteed a non-empty latest().
    triggered_.fetch_add(1, std::memory_order_release);
  }
  return jsonl;
}

std::vector<FlightRecorder::Dump> FlightRecorder::dumps() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {retained_.begin(), retained_.end()};
}

std::string FlightRecorder::latest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return retained_.empty() ? std::string() : retained_.back().jsonl;
}

}  // namespace jhdl::obs
