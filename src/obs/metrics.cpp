#include "obs/metrics.h"

#include <bit>

namespace jhdl::obs {

void Histogram::record(std::uint64_t sample) {
  std::size_t bucket = static_cast<std::size_t>(std::bit_width(sample));
  if (bucket >= kBuckets) bucket = kBuckets - 1;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

std::array<std::uint64_t, Histogram::kBuckets> Histogram::bucket_counts()
    const {
  std::array<std::uint64_t, kBuckets> out{};
  for (std::size_t b = 0; b < kBuckets; ++b) {
    out[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::percentile_over(
    const std::array<std::uint64_t, kBuckets>& buckets, std::uint64_t total,
    double fraction) {
  if (total == 0) return 0.0;
  const double threshold = fraction * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const double here = static_cast<double>(buckets[b]);
    if (cumulative + here >= threshold && here > 0.0) {
      // Bucket b spans [lo, hi); land proportionally to how far into the
      // bucket's population the threshold falls.
      const double lo =
          b == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << (b - 1));
      const double hi = static_cast<double>(std::uint64_t{1} << b);
      const double into = (threshold - cumulative) / here;
      return lo + into * (hi - lo);
    }
    cumulative += here;
  }
  return static_cast<double>(std::uint64_t{1} << (kBuckets - 1));
}

double Histogram::percentile(double fraction) const {
  const auto buckets = bucket_counts();
  std::uint64_t total = 0;
  for (std::uint64_t b : buckets) total += b;
  return percentile_over(buckets, total, fraction);
}

Histogram::Summary Histogram::summarize() const {
  const auto buckets = bucket_counts();
  Summary s;
  for (std::uint64_t b : buckets) s.count += b;
  s.sum = sum();
  s.p50 = percentile_over(buckets, s.count, 0.50);
  s.p95 = percentile_over(buckets, s.count, 0.95);
  s.p99 = percentile_over(buckets, s.count, 0.99);
  return s;
}

const char* MetricsRegistry::kind_of(const std::string& name) const {
  if (counters_.count(name) != 0) return "counter";
  if (gauges_.count(name) != 0) return "gauge";
  if (histograms_.count(name) != 0) return "histogram";
  if (counter_families_.count(name) != 0) return "counter family";
  if (gauge_families_.count(name) != 0) return "gauge family";
  if (histogram_families_.count(name) != 0) return "histogram family";
  return nullptr;
}

void MetricsRegistry::check_unclaimed(const std::string& name,
                                      const char* as_kind) const {
  // Called with mutex_ held, before inserting into one of the maps: no
  // other kind may already own the name (one name, one meaning).
  const char* owner = kind_of(name);
  if (owner != nullptr) {
    throw MetricsError("metric '" + name + "' already registered as " +
                       owner + "; cannot re-register as " + as_kind);
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  check_unclaimed(name, "counter");
  return *counters_.emplace(name, std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  check_unclaimed(name, "gauge");
  return *gauges_.emplace(name, std::make_unique<Gauge>()).first->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  check_unclaimed(name, "histogram");
  return *histograms_.emplace(name, std::make_unique<Histogram>())
              .first->second;
}

template <class F>
F& MetricsRegistry::family_get(
    std::map<std::string, std::unique_ptr<F>>& families,
    const std::string& name, const std::vector<std::string>& label_keys,
    std::size_t max_series, const char* kind) {
  // Called with mutex_ held by the public getter.
  auto it = families.find(name);
  if (it != families.end()) {
    if (it->second->keys() != label_keys) {
      std::string want;
      for (const std::string& k : it->second->keys()) {
        want += (want.empty() ? "" : ",") + k;
      }
      throw MetricsError("family '" + name +
                         "' already registered with label keys {" + want +
                         "}");
    }
    return *it->second;
  }
  check_unclaimed(name, kind);
  return *families
              .emplace(name, std::unique_ptr<F>(new F(name, label_keys,
                                                      max_series)))
              .first->second;
}

CounterFamily& MetricsRegistry::counter_family(
    const std::string& name, const std::vector<std::string>& label_keys,
    std::size_t max_series) {
  std::lock_guard<std::mutex> lock(mutex_);
  return family_get(counter_families_, name, label_keys, max_series,
                    "counter family");
}

GaugeFamily& MetricsRegistry::gauge_family(
    const std::string& name, const std::vector<std::string>& label_keys,
    std::size_t max_series) {
  std::lock_guard<std::mutex> lock(mutex_);
  return family_get(gauge_families_, name, label_keys, max_series,
                    "gauge family");
}

HistogramFamily& MetricsRegistry::histogram_family(
    const std::string& name, const std::vector<std::string>& label_keys,
    std::size_t max_series) {
  std::lock_guard<std::mutex> lock(mutex_);
  return family_get(histogram_families_, name, label_keys, max_series,
                    "histogram family");
}

void MetricsRegistry::enable_process_metrics(const std::string& version,
                                             int protocol_rev) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (uptime_gauge_ != nullptr) return;  // idempotent
  }
  // Instrument creation re-takes the registry mutex, so the flag check
  // above runs in its own scope.
  Gauge& uptime = gauge("process.uptime_seconds");
  GaugeFamily& info = gauge_family("build.info", {"version", "protocol"});
  info.with({version, std::to_string(protocol_rev)}).set(1);
  std::lock_guard<std::mutex> lock(mutex_);
  process_start_ = std::chrono::steady_clock::now();
  uptime_gauge_ = &uptime;
}

void MetricsRegistry::refresh_process_metrics() const {
  // Called with mutex_ held at the top of each exposition.
  if (uptime_gauge_ == nullptr) return;
  const auto up = std::chrono::steady_clock::now() - process_start_;
  uptime_gauge_->set(
      std::chrono::duration_cast<std::chrono::seconds>(up).count());
}

Json MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  refresh_process_metrics();
  Json counters = Json::object();
  for (const auto& [name, c] : counters_) counters.set(name, c->value());
  Json gauges = Json::object();
  for (const auto& [name, g] : gauges_) gauges.set(name, g->value());
  Json histograms = Json::object();
  for (const auto& [name, h] : histograms_) {
    const Histogram::Summary s = h->summarize();
    Json entry = Json::object();
    entry.set("count", s.count);
    entry.set("sum", s.sum);
    entry.set("p50", s.p50);
    entry.set("p95", s.p95);
    entry.set("p99", s.p99);
    histograms.set(name, entry);
  }
  Json doc = Json::object();
  doc.set("counters", counters);
  doc.set("gauges", gauges);
  doc.set("histograms", histograms);
  // Families ride a separate key so a registry without any emits the
  // byte-identical pre-family document.
  if (!counter_families_.empty() || !gauge_families_.empty() ||
      !histogram_families_.empty()) {
    Json families = Json::object();
    auto labels_json = [](const std::vector<std::string>& keys,
                          const std::vector<std::string>& values) {
      Json labels = Json::object();
      for (std::size_t i = 0; i < keys.size(); ++i) {
        labels.set(keys[i], values[i]);
      }
      return labels;
    };
    auto family_header = [](const auto& family, const char* kind) {
      Json entry = Json::object();
      entry.set("kind", kind);
      Json keys = Json::array();
      for (const std::string& k : family.keys()) keys.push(k);
      entry.set("labels", keys);
      entry.set("overflowed", family.overflowed());
      return entry;
    };
    for (const auto& [name, fam] : counter_families_) {
      Json entry = family_header(*fam, "counter");
      Json series = Json::array();
      for (const auto& [values, c] : fam->snapshot()) {
        Json row = Json::object();
        row.set("labels", labels_json(fam->keys(), values));
        row.set("value", c->value());
        series.push(row);
      }
      entry.set("series", series);
      families.set(name, entry);
    }
    for (const auto& [name, fam] : gauge_families_) {
      Json entry = family_header(*fam, "gauge");
      Json series = Json::array();
      for (const auto& [values, g] : fam->snapshot()) {
        Json row = Json::object();
        row.set("labels", labels_json(fam->keys(), values));
        row.set("value", g->value());
        series.push(row);
      }
      entry.set("series", series);
      families.set(name, entry);
    }
    for (const auto& [name, fam] : histogram_families_) {
      Json entry = family_header(*fam, "histogram");
      Json series = Json::array();
      for (const auto& [values, h] : fam->snapshot()) {
        const Histogram::Summary s = h->summarize();
        Json row = Json::object();
        row.set("labels", labels_json(fam->keys(), values));
        row.set("count", s.count);
        row.set("sum", s.sum);
        row.set("p50", s.p50);
        row.set("p95", s.p95);
        row.set("p99", s.p99);
        series.push(row);
      }
      entry.set("series", series);
      families.set(name, entry);
    }
    doc.set("families", families);
  }
  return doc;
}

namespace {

std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

/// Prometheus label-value escaping: backslash, quote, newline.
std::string prom_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// {key="value",...} for one series; `extra` appends a pre-rendered pair
/// (the histogram le bound).
std::string prom_labels(const std::vector<std::string>& keys,
                        const std::vector<std::string>& values,
                        const std::string& extra = "") {
  std::string out = "{";
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i != 0) out += ",";
    out += keys[i] + "=\"" + prom_escape(values[i]) + "\"";
  }
  if (!extra.empty()) {
    if (keys.size() != 0) out += ",";
    out += extra;
  }
  out += "}";
  return out;
}

void prom_histogram_series(std::string& out, const std::string& p,
                           const Histogram& h, const std::string& labels,
                           const std::vector<std::string>& keys,
                           const std::vector<std::string>& values) {
  const auto buckets = h.bucket_counts();
  std::size_t highest = 0;
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    total += buckets[b];
    if (buckets[b] != 0) highest = b;
  }
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b <= highest; ++b) {
    cumulative += buckets[b];
    out += p + "_bucket" +
           prom_labels(keys, values,
                       "le=\"" + std::to_string(std::uint64_t{1} << b) +
                           "\"") +
           " " + std::to_string(cumulative) + "\n";
  }
  out += p + "_bucket" + prom_labels(keys, values, "le=\"+Inf\"") + " " +
         std::to_string(total) + "\n";
  out += p + "_sum" + labels + " " + std::to_string(h.sum()) + "\n";
  out += p + "_count" + labels + " " + std::to_string(total) + "\n";
}

}  // namespace

std::string MetricsRegistry::to_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  refresh_process_metrics();
  std::string out;
  for (const auto& [name, c] : counters_) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + std::to_string(g->value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " histogram\n";
    prom_histogram_series(out, p, *h, "", {}, {});
  }
  for (const auto& [name, fam] : counter_families_) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " counter\n";
    for (const auto& [values, c] : fam->snapshot()) {
      out += p + prom_labels(fam->keys(), values) + " " +
             std::to_string(c->value()) + "\n";
    }
  }
  for (const auto& [name, fam] : gauge_families_) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " gauge\n";
    for (const auto& [values, g] : fam->snapshot()) {
      out += p + prom_labels(fam->keys(), values) + " " +
             std::to_string(g->value()) + "\n";
    }
  }
  for (const auto& [name, fam] : histogram_families_) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " histogram\n";
    for (const auto& [values, h] : fam->snapshot()) {
      prom_histogram_series(out, p, *h, prom_labels(fam->keys(), values),
                            fam->keys(), values);
    }
  }
  return out;
}

}  // namespace jhdl::obs
