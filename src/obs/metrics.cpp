#include "obs/metrics.h"

#include <bit>
#include <stdexcept>

namespace jhdl::obs {

void Histogram::record(std::uint64_t sample) {
  std::size_t bucket = static_cast<std::size_t>(std::bit_width(sample));
  if (bucket >= kBuckets) bucket = kBuckets - 1;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

std::array<std::uint64_t, Histogram::kBuckets> Histogram::bucket_counts()
    const {
  std::array<std::uint64_t, kBuckets> out{};
  for (std::size_t b = 0; b < kBuckets; ++b) {
    out[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::percentile_over(
    const std::array<std::uint64_t, kBuckets>& buckets, std::uint64_t total,
    double fraction) {
  if (total == 0) return 0.0;
  const double threshold = fraction * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const double here = static_cast<double>(buckets[b]);
    if (cumulative + here >= threshold && here > 0.0) {
      // Bucket b spans [lo, hi); land proportionally to how far into the
      // bucket's population the threshold falls.
      const double lo =
          b == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << (b - 1));
      const double hi = static_cast<double>(std::uint64_t{1} << b);
      const double into = (threshold - cumulative) / here;
      return lo + into * (hi - lo);
    }
    cumulative += here;
  }
  return static_cast<double>(std::uint64_t{1} << (kBuckets - 1));
}

double Histogram::percentile(double fraction) const {
  const auto buckets = bucket_counts();
  std::uint64_t total = 0;
  for (std::uint64_t b : buckets) total += b;
  return percentile_over(buckets, total, fraction);
}

Histogram::Summary Histogram::summarize() const {
  const auto buckets = bucket_counts();
  Summary s;
  for (std::uint64_t b : buckets) s.count += b;
  s.sum = sum();
  s.p50 = percentile_over(buckets, s.count, 0.50);
  s.p95 = percentile_over(buckets, s.count, 0.95);
  s.p99 = percentile_over(buckets, s.count, 0.99);
  return s;
}

void MetricsRegistry::check_unclaimed(const std::string& name) const {
  // Called with mutex_ held, before inserting into one of the maps: the
  // other two must not already own the name.
  const int claims = static_cast<int>(counters_.count(name)) +
                     static_cast<int>(gauges_.count(name)) +
                     static_cast<int>(histograms_.count(name));
  if (claims != 0) {
    throw std::runtime_error("metric '" + name +
                             "' already registered as a different kind");
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  check_unclaimed(name);
  return *counters_.emplace(name, std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  check_unclaimed(name);
  return *gauges_.emplace(name, std::make_unique<Gauge>()).first->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  check_unclaimed(name);
  return *histograms_.emplace(name, std::make_unique<Histogram>())
              .first->second;
}

Json MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json counters = Json::object();
  for (const auto& [name, c] : counters_) counters.set(name, c->value());
  Json gauges = Json::object();
  for (const auto& [name, g] : gauges_) gauges.set(name, g->value());
  Json histograms = Json::object();
  for (const auto& [name, h] : histograms_) {
    const Histogram::Summary s = h->summarize();
    Json entry = Json::object();
    entry.set("count", s.count);
    entry.set("sum", s.sum);
    entry.set("p50", s.p50);
    entry.set("p95", s.p95);
    entry.set("p99", s.p99);
    histograms.set(name, entry);
  }
  Json doc = Json::object();
  doc.set("counters", counters);
  doc.set("gauges", gauges);
  doc.set("histograms", histograms);
  return doc;
}

namespace {

std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::to_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + std::to_string(g->value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " histogram\n";
    const auto buckets = h->bucket_counts();
    std::size_t highest = 0;
    std::uint64_t total = 0;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      total += buckets[b];
      if (buckets[b] != 0) highest = b;
    }
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b <= highest; ++b) {
      cumulative += buckets[b];
      out += p + "_bucket{le=\"" +
             std::to_string(std::uint64_t{1} << b) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += p + "_bucket{le=\"+Inf\"} " + std::to_string(total) + "\n";
    out += p + "_sum " + std::to_string(h->sum()) + "\n";
    out += p + "_count " + std::to_string(total) + "\n";
  }
  return out;
}

}  // namespace jhdl::obs
