// Metrics registry: named counters, gauges, and histograms shared by every
// layer of the delivery stack.
//
// The discipline is the one ServerStats pioneered — every mutation is a
// relaxed atomic so hot paths never take a lock, and latency samples go
// into power-of-two buckets so memory stays bounded no matter how long the
// service runs. What the registry adds is NAMES: instruments are created
// once (under a mutex) and then mutated lock-free through stable pointers,
// so any subsystem can publish a counter without owning a bespoke stats
// block, and admin tooling can enumerate everything that exists.
//
// Exposition comes in two forms:
//   to_json()  structured snapshot (the MetricsDump wire query);
//   to_text()  Prometheus-style text ('.' becomes '_', histograms emit
//              cumulative le-buckets), scrape-ready.
//
// Percentiles are interpolated WITHIN the crossing bucket (the old
// ServerStats read back bucket upper bounds, which overstated the tail by
// up to 2x at the bucket edges); see Histogram::percentile.
//
// Naming convention (DESIGN.md §10): dotted lowercase paths, coarsest
// subsystem first — server.sessions_opened, server.request_us,
// sim.kernel.evals. Histograms of microsecond latencies end in _us.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "util/json.h"

namespace jhdl::obs {

/// Monotonic event count. Mutation is one relaxed fetch_add.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous level (may go down): active sessions, queue depth.
class Gauge {
 public:
  void add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n = 1) { v_.fetch_sub(n, std::memory_order_relaxed); }
  void set(std::int64_t n) { v_.store(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Power-of-two-bucket histogram: bucket b counts samples in
/// [2^(b-1), 2^b); bucket 0 counts samples of value 0 (i.e. < 1).
/// record() is two relaxed fetch_adds — no lock, bounded memory.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t sample);

  std::uint64_t count() const;
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Interpolated percentile: find the bucket where the cumulative count
  /// crosses `fraction` of the total, then interpolate linearly between
  /// the bucket's lower and upper bound by how far into the bucket the
  /// crossing lands. Exact when samples are uniform within a bucket;
  /// never off by more than one bucket width either way (the old
  /// upper-bound readback was always pessimistic by up to the full
  /// bucket). Returns 0 when empty.
  double percentile(double fraction) const;

  /// One consistent-enough read of everything a snapshot needs (the
  /// buckets are loaded once, so p50/p95/p99 agree with each other).
  struct Summary {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  Summary summarize() const;

  /// Raw bucket loads for exposition (index b = samples in [2^(b-1), 2^b)).
  std::array<std::uint64_t, kBuckets> bucket_counts() const;

 private:
  static double percentile_over(
      const std::array<std::uint64_t, kBuckets>& buckets, std::uint64_t total,
      double fraction);

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

/// Owns every named instrument of one process/service. Creation takes a
/// mutex and returns a stable reference; callers cache the reference and
/// mutate lock-free from then on. Re-requesting a name returns the same
/// instrument; requesting a name already registered as a different kind
/// throws (one name, one meaning).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Structured snapshot: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, p50, p95, p99}}}.
  Json to_json() const;

  /// Prometheus-style exposition ('.' -> '_', cumulative le-buckets up to
  /// the highest non-empty one plus +Inf).
  std::string to_text() const;

 private:
  void check_unclaimed(const std::string& name) const;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace jhdl::obs
