// Metrics registry: named counters, gauges, and histograms shared by every
// layer of the delivery stack — plus LABELED FAMILIES of the same three
// instruments for per-tenant attribution.
//
// The discipline is the one ServerStats pioneered — every mutation is a
// relaxed atomic so hot paths never take a lock, and latency samples go
// into power-of-two buckets so memory stays bounded no matter how long the
// service runs. What the registry adds is NAMES: instruments are created
// once (under a mutex) and then mutated lock-free through stable pointers,
// so any subsystem can publish a counter without owning a bespoke stats
// block, and admin tooling can enumerate everything that exists.
//
// Families add one DIMENSION to a name: counter_family("req.count",
// {"customer"}) owns one Counter per label-value tuple, created on first
// use through Family::with() (a mutex-guarded lookup whose result callers
// cache — one lookup per session, lock-free mutation from then on). A
// family is bounded: past `max_series` distinct tuples, new tuples
// collapse onto a single overflow series (labels all "__other__") instead
// of growing without limit, so a hostile or buggy client cannot use label
// cardinality as a memory attack. Flat names and family names share one
// namespace: claiming a name twice under different kinds (or the same
// family name with different label keys) throws a typed MetricsError.
//
// Exposition comes in two forms:
//   to_json()  structured snapshot (the MetricsDump wire query). Flat
//              instruments keep their exact pre-family shape; families
//              appear under a separate "families" key, so existing
//              consumers never see a changed byte until families exist;
//   to_text()  Prometheus-style text ('.' becomes '_', histograms emit
//              cumulative le-buckets, family series carry
//              {key="value",...} label sets), scrape-ready — this is what
//              the admin HTTP endpoint's GET /metrics serves.
//
// enable_process_metrics() registers the two instruments every scrape
// should carry to identify the binary: a `process.uptime_seconds` gauge
// (refreshed at exposition time) and a `build.info` gauge family whose
// single series carries the version and protocol revision as labels with
// value 1 — the standard Prometheus build-info idiom.
//
// Percentiles are interpolated WITHIN the crossing bucket (the old
// ServerStats read back bucket upper bounds, which overstated the tail by
// up to 2x at the bucket edges); see Histogram::percentile.
//
// Naming convention (DESIGN.md §10/§15): dotted lowercase paths, coarsest
// subsystem first — server.sessions_opened, server.request_us,
// sim.kernel.evals. Histograms of microsecond latencies end in _us.
// Per-tenant families put the tenant in the label, never the name:
// req.latency_us{customer="acme"}.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/json.h"

namespace jhdl::obs {

/// Typed registry misuse: a name claimed twice under different kinds, a
/// family re-registered with different label keys, or a with() call whose
/// label tuple does not match the family's keys.
class MetricsError : public std::runtime_error {
 public:
  explicit MetricsError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Monotonic event count. Mutation is one relaxed fetch_add.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous level (may go down): active sessions, queue depth.
class Gauge {
 public:
  void add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n = 1) { v_.fetch_sub(n, std::memory_order_relaxed); }
  void set(std::int64_t n) { v_.store(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Power-of-two-bucket histogram: bucket b counts samples in
/// [2^(b-1), 2^b); bucket 0 counts samples of value 0 (i.e. < 1).
/// record() is two relaxed fetch_adds — no lock, bounded memory.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t sample);

  std::uint64_t count() const;
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Interpolated percentile: find the bucket where the cumulative count
  /// crosses `fraction` of the total, then interpolate linearly between
  /// the bucket's lower and upper bound by how far into the bucket the
  /// crossing lands. Exact when samples are uniform within a bucket;
  /// never off by more than one bucket width either way (the old
  /// upper-bound readback was always pessimistic by up to the full
  /// bucket). Returns 0 when empty.
  double percentile(double fraction) const;

  /// One consistent-enough read of everything a snapshot needs (the
  /// buckets are loaded once, so p50/p95/p99 agree with each other).
  struct Summary {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  Summary summarize() const;

  /// Raw bucket loads for exposition (index b = samples in [2^(b-1), 2^b)).
  std::array<std::uint64_t, kBuckets> bucket_counts() const;

 private:
  static double percentile_over(
      const std::array<std::uint64_t, kBuckets>& buckets, std::uint64_t total,
      double fraction);

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

/// One labeled dimension over an instrument kind: a bounded map from
/// label-value tuples to instruments. with() is the only mutation path;
/// instruments are never destroyed while the family lives, so the
/// references it returns are stable and callers cache them (one lookup at
/// session open, lock-free mutation per request from then on).
template <class T>
class Family {
 public:
  /// Distinct label tuples retained before new tuples collapse onto the
  /// overflow series. Chosen so a fleet of real tenants always fits while
  /// a label-cardinality attack stays O(1) memory.
  static constexpr std::size_t kDefaultMaxSeries = 256;
  /// Label value every over-cap tuple is folded into.
  static constexpr const char* kOverflowLabel = "__other__";

  const std::string& name() const { return name_; }
  const std::vector<std::string>& keys() const { return keys_; }

  /// The instrument for one label-value tuple (order matches keys()),
  /// created on first use. Past the cardinality cap, unseen tuples share
  /// the overflow series and `overflowed` counts the collapses. Throws
  /// MetricsError when the tuple arity does not match the family's keys.
  T& with(const std::vector<std::string>& values) {
    if (values.size() != keys_.size()) {
      throw MetricsError("family '" + name_ + "' takes " +
                         std::to_string(keys_.size()) + " label value(s), got " +
                         std::to_string(values.size()));
    }
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = series_.find(values);
    if (it != series_.end()) return *it->second;
    if (series_.size() >= max_series_) {
      overflowed_.fetch_add(1, std::memory_order_relaxed);
      const std::vector<std::string> overflow(keys_.size(), kOverflowLabel);
      auto ov = series_.find(overflow);
      if (ov != series_.end()) return *ov->second;
      return *series_.emplace(overflow, std::make_unique<T>()).first->second;
    }
    return *series_.emplace(values, std::make_unique<T>()).first->second;
  }
  T& with(std::initializer_list<std::string> values) {
    return with(std::vector<std::string>(values));
  }

  std::size_t series_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return series_.size();
  }
  /// with() calls that landed on the overflow series because the family
  /// was at its cardinality cap.
  std::uint64_t overflowed() const {
    return overflowed_.load(std::memory_order_relaxed);
  }

  /// Stable-pointer snapshot for exposition: instruments outlive the
  /// returned pointers for the family's whole life.
  std::vector<std::pair<std::vector<std::string>, const T*>> snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::vector<std::string>, const T*>> out;
    out.reserve(series_.size());
    for (const auto& [labels, instrument] : series_) {
      out.emplace_back(labels, instrument.get());
    }
    return out;
  }

 private:
  friend class MetricsRegistry;
  Family(std::string name, std::vector<std::string> keys,
         std::size_t max_series)
      : name_(std::move(name)),
        keys_(std::move(keys)),
        max_series_(max_series == 0 ? kDefaultMaxSeries : max_series) {}

  const std::string name_;
  const std::vector<std::string> keys_;
  const std::size_t max_series_;
  mutable std::mutex mutex_;
  std::map<std::vector<std::string>, std::unique_ptr<T>> series_;
  std::atomic<std::uint64_t> overflowed_{0};
};

using CounterFamily = Family<Counter>;
using GaugeFamily = Family<Gauge>;
using HistogramFamily = Family<Histogram>;

/// Owns every named instrument of one process/service. Creation takes a
/// mutex and returns a stable reference; callers cache the reference and
/// mutate lock-free from then on. Re-requesting a name returns the same
/// instrument; requesting a name already registered as a different kind
/// throws MetricsError (one name, one meaning — flat instruments and
/// families share the namespace).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Labeled families. Re-requesting a family name with the SAME label
  /// keys returns the same family; different keys (or a name already
  /// claimed flat or by another kind) throws MetricsError. `max_series`
  /// bounds distinct label tuples (0 = Family::kDefaultMaxSeries).
  CounterFamily& counter_family(const std::string& name,
                                const std::vector<std::string>& label_keys,
                                std::size_t max_series = 0);
  GaugeFamily& gauge_family(const std::string& name,
                            const std::vector<std::string>& label_keys,
                            std::size_t max_series = 0);
  HistogramFamily& histogram_family(const std::string& name,
                                    const std::vector<std::string>& label_keys,
                                    std::size_t max_series = 0);

  /// Register the binary-identity instruments every scrape should carry:
  /// `process.uptime_seconds` (refreshed at exposition time from the
  /// steady clock) and the `build.info` gauge family with one series
  /// {version, protocol} = 1. Idempotent.
  void enable_process_metrics(const std::string& version, int protocol_rev);

  /// Structured snapshot: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, p50, p95, p99}}}. Families appear
  /// under an additional "families" key only once any exist, so the
  /// pre-family wire format is byte-identical for registries without
  /// them.
  Json to_json() const;

  /// Prometheus-style exposition ('.' -> '_', cumulative le-buckets up to
  /// the highest non-empty one plus +Inf, family series labeled
  /// {key="value",...}).
  std::string to_text() const;

 private:
  void check_unclaimed(const std::string& name, const char* as_kind) const;
  /// The kind already owning `name`, or null. Called with mutex_ held.
  const char* kind_of(const std::string& name) const;
  void refresh_process_metrics() const;
  /// Shared body of the three family getters: return-or-create under the
  /// registry mutex, enforcing key-set agreement on re-request. Defined in
  /// metrics.cpp (only used there).
  template <class F>
  F& family_get(std::map<std::string, std::unique_ptr<F>>& families,
                const std::string& name,
                const std::vector<std::string>& label_keys,
                std::size_t max_series, const char* kind);

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<CounterFamily>> counter_families_;
  std::map<std::string, std::unique_ptr<GaugeFamily>> gauge_families_;
  std::map<std::string, std::unique_ptr<HistogramFamily>> histogram_families_;

  /// Exposition-time uptime refresh (enable_process_metrics).
  Gauge* uptime_gauge_ = nullptr;
  std::chrono::steady_clock::time_point process_start_{};
};

}  // namespace jhdl::obs
