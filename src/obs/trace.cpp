#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <random>
#include <unordered_map>

namespace jhdl::obs {
namespace {

/// Small stable per-thread ordinal for the Chrome "tid" field (raw
/// std::thread::id values are opaque and ugly in the viewer).
std::uint32_t thread_ordinal() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace

TraceContext TraceContext::mint() {
  std::random_device rd;
  std::uint64_t word;
  do {
    word = (static_cast<std::uint64_t>(rd()) << 32) | rd();
  } while (word == 0);
  return TraceContext{word};
}

std::string TraceContext::hex(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(id));
  return std::string(buf);
}

/// Fixed-capacity single-writer ring. Every slot field is an individual
/// relaxed atomic: the one writer stores fields then bumps head with
/// release; a concurrent dump reads head with acquire and the fields
/// relaxed. A dump racing an overwrite may see one span with mixed
/// fields — tolerated by design (flight-recorder semantics).
struct Tracer::Ring {
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint64_t> start_us{0};
    std::atomic<std::uint64_t> dur_us{0};
  };

  explicit Ring(std::size_t capacity, std::uint32_t tid)
      : slots(capacity), tid(tid) {}

  void push(const char* name, std::uint64_t trace_id, std::uint64_t start_us,
            std::uint64_t dur_us) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    Slot& slot = slots[h % slots.size()];
    slot.name.store(name, std::memory_order_relaxed);
    slot.trace_id.store(trace_id, std::memory_order_relaxed);
    slot.start_us.store(start_us, std::memory_order_relaxed);
    slot.dur_us.store(dur_us, std::memory_order_relaxed);
    head.store(h + 1, std::memory_order_release);
  }

  std::vector<Slot> slots;
  std::atomic<std::uint64_t> head{0};
  const std::uint32_t tid;
};

Tracer::Tracer(std::size_t ring_capacity)
    : capacity_(ring_capacity < 16 ? 16 : ring_capacity) {
  static std::atomic<std::uint64_t> next_id{1};
  tracer_id_ = next_id.fetch_add(1, std::memory_order_relaxed);
}

Tracer::~Tracer() = default;

std::uint64_t Tracer::now_us() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

Tracer::Ring& Tracer::local_ring() {
  // Cache keyed by the PROCESS-UNIQUE tracer id, not the pointer: a
  // destroyed tracer's address can be reused, but its id never is, so a
  // stale cache entry can never alias a new tracer. The ring itself is
  // owned by rings_ and dies with the tracer.
  thread_local std::unordered_map<std::uint64_t, Ring*> cache;
  auto it = cache.find(tracer_id_);
  if (it != cache.end()) return *it->second;
  auto ring = std::make_unique<Ring>(capacity_, thread_ordinal());
  Ring* raw = ring.get();
  {
    std::lock_guard<std::mutex> lock(rings_mutex_);
    rings_.push_back(std::move(ring));
  }
  cache.emplace(tracer_id_, raw);
  return *raw;
}

void Tracer::record(const char* name, std::uint64_t trace_id,
                    std::uint64_t start_us, std::uint64_t dur_us) {
  if (!enabled()) return;
  local_ring().push(name, trace_id, start_us, dur_us);
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(rings_mutex_);
  for (const auto& ring : rings_) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t n = ring->slots.size();
    const std::uint64_t first = head > n ? head - n : 0;
    for (std::uint64_t i = first; i < head; ++i) {
      const Ring::Slot& slot = ring->slots[i % n];
      TraceEvent e;
      e.name = slot.name.load(std::memory_order_relaxed);
      e.trace_id = slot.trace_id.load(std::memory_order_relaxed);
      e.start_us = slot.start_us.load(std::memory_order_relaxed);
      e.dur_us = slot.dur_us.load(std::memory_order_relaxed);
      e.tid = ring->tid;
      if (e.name != nullptr) out.push_back(e);
    }
  }
  return out;
}

Json Tracer::to_chrome_json() const {
  Json events = Json::array();
  for (const TraceEvent& e : snapshot()) {
    Json ev = Json::object();
    ev.set("name", std::string(e.name));
    ev.set("ph", "X");
    ev.set("ts", e.start_us);
    ev.set("dur", e.dur_us);
    ev.set("pid", 1);
    ev.set("tid", std::size_t{e.tid});
    if (e.trace_id != 0) {
      Json args = Json::object();
      args.set("trace", TraceContext::hex(e.trace_id));
      ev.set("args", args);
    }
    events.push(ev);
  }
  Json doc = Json::object();
  doc.set("traceEvents", events);
  doc.set("displayTimeUnit", "ms");
  return doc;
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

}  // namespace jhdl::obs
