// Per-tenant SLO engine: declarative objectives evaluated over
// multi-window burn rates (DESIGN.md §15).
//
// Model (the standard SRE burn-rate framing): an OBJECTIVE is a stream of
// good/bad events with an error BUDGET — the fraction of events allowed
// to be bad (p99 latency objective: budget 0.01, bad = request slower
// than the threshold; error-rate objective: budget = allowed error
// fraction; warm-hit objective: budget = allowed miss fraction). The
// BURN RATE over a window is (bad fraction in window) / budget: burn 1.0
// consumes exactly the budget, burn 14 exhausts a 30-day budget in ~2
// days. One window is not enough — a short window alone pages on blips,
// a long window alone pages hours late — so each objective is judged
// over a FAST window (default 5 min) and a SLOW window (default 1 h):
//
//   Critical  fast AND slow burn over their thresholds (sustained burn,
//             still burning right now) — /healthz goes unhealthy;
//   Warning   exactly one window over its threshold (a blip that may
//             become a page, or a burn that is already recovering);
//   Healthy   otherwise (including no traffic at all).
//
// Events land per (objective, tenant) in bucketed ring windows — O(1)
// memory per series, same boundedness discipline as the metric families
// (max_tenants collapses the long tail onto "__other__"). record() takes
// the engine mutex for a few nanoseconds of bucket arithmetic; the
// delivery service calls it once per request, far off the simulation hot
// path (bench_obs_overhead gates the whole plane at <3%).
//
// evaluate() publishes each series' state through the metrics registry as
// gauge families — slo.health{objective,customer} (0/1/2) and
// slo.burn.fast_x100/slo.burn.slow_x100 (burn rate, fixed-point x100) —
// so a Prometheus scraping GET /metrics sees SLO state with no extra
// query language. Timestamps are injectable (now_us parameters) so tests
// drive the windows without sleeping.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/json.h"

namespace jhdl::obs {

enum class SloHealth : int { Healthy = 0, Warning = 1, Critical = 2 };

const char* slo_health_name(SloHealth health);

/// One declarative objective. `budget` is the allowed bad fraction;
/// the burn thresholds follow the classic multi-window pairing (a fast
/// burn of 14 exhausts a 30-day budget in ~2 days; 6 in ~5 days).
struct SloObjective {
  std::string name;
  double budget = 0.01;
  double fast_burn_threshold = 14.0;
  double slow_burn_threshold = 6.0;
};

struct SloConfig {
  std::chrono::milliseconds fast_window{std::chrono::minutes(5)};
  std::chrono::milliseconds slow_window{std::chrono::hours(1)};
  /// Ring buckets per window (granularity of expiry).
  std::size_t buckets = 12;
  /// Distinct tenants tracked per objective before the long tail
  /// collapses onto one "__other__" series.
  std::size_t max_tenants = 256;
};

/// Burn-rate evaluator for one service. Thread-safe.
class SloEngine {
 public:
  static constexpr const char* kOverflowTenant = "__other__";

  /// `metrics` may be null (no gauge exposition). The registry must
  /// outlive the engine.
  explicit SloEngine(SloConfig config = {},
                     MetricsRegistry* metrics = nullptr);

  /// Register (or redefine) an objective.
  void define(SloObjective objective);
  bool defined(const std::string& objective) const;
  std::vector<std::string> objectives() const;

  /// Record one event for (objective, tenant). Unknown objectives are
  /// ignored (the caller may feed a superset). `now_us` = 0 means the
  /// real clock (Tracer::now_us); tests pass explicit stamps.
  void record(const std::string& objective, const std::string& tenant,
              bool good, std::uint64_t now_us = 0);

  struct Burn {
    std::string objective;
    std::string tenant;
    double fast_burn = 0.0;
    double slow_burn = 0.0;
    std::uint64_t fast_events = 0;
    std::uint64_t slow_events = 0;
    SloHealth health = SloHealth::Healthy;
  };

  /// Evaluate every (objective, tenant) series at `now_us` and publish
  /// the slo.* gauges. Sorted by objective, then tenant.
  std::vector<Burn> evaluate(std::uint64_t now_us = 0);

  /// The worst health across all series (what /healthz keys on).
  SloHealth overall(std::uint64_t now_us = 0);

  /// {"overall":"healthy","series":[{objective,tenant,fast_burn,...}]}.
  Json to_json(std::uint64_t now_us = 0);

 private:
  /// Bucketed ring over one window: bucket i covers one bucket_us-wide
  /// time slice; a slot is lazily reset when its absolute index moves on.
  struct Window {
    std::uint64_t bucket_us = 0;
    std::vector<std::uint64_t> good;
    std::vector<std::uint64_t> bad;
    std::vector<std::uint64_t> index;  ///< absolute bucket index per slot

    void init(std::chrono::milliseconds span, std::size_t buckets);
    void record(std::uint64_t now_us, bool is_good);
    void totals(std::uint64_t now_us, std::uint64_t& good_out,
                std::uint64_t& bad_out) const;
  };

  struct Series {
    Window fast;
    Window slow;
  };

  Series& series_for(const SloObjective& objective,
                     const std::string& tenant);
  static double burn_of(std::uint64_t good, std::uint64_t bad,
                        double budget);

  SloConfig config_;
  MetricsRegistry* metrics_;
  GaugeFamily* health_gauge_ = nullptr;
  GaugeFamily* fast_gauge_ = nullptr;
  GaugeFamily* slow_gauge_ = nullptr;
  mutable std::mutex mutex_;
  std::map<std::string, SloObjective> objectives_;
  std::map<std::pair<std::string, std::string>, Series> series_;
};

}  // namespace jhdl::obs
