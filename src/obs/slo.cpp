#include "obs/slo.h"

#include <algorithm>

#include "obs/trace.h"

namespace jhdl::obs {

const char* slo_health_name(SloHealth health) {
  switch (health) {
    case SloHealth::Healthy:
      return "healthy";
    case SloHealth::Warning:
      return "warning";
    case SloHealth::Critical:
      return "critical";
  }
  return "?";
}

void SloEngine::Window::init(std::chrono::milliseconds span,
                             std::size_t buckets) {
  if (buckets == 0) buckets = 1;
  bucket_us = static_cast<std::uint64_t>(span.count()) * 1000 / buckets;
  if (bucket_us == 0) bucket_us = 1;
  good.assign(buckets, 0);
  bad.assign(buckets, 0);
  index.assign(buckets, 0);
}

void SloEngine::Window::record(std::uint64_t now_us, bool is_good) {
  const std::uint64_t abs = now_us / bucket_us;
  const std::size_t slot = abs % good.size();
  if (index[slot] != abs) {
    // The ring has wrapped past this slot since it was last written:
    // retire its stale counts before reusing it for the current bucket.
    index[slot] = abs;
    good[slot] = 0;
    bad[slot] = 0;
  }
  (is_good ? good : bad)[slot] += 1;
}

void SloEngine::Window::totals(std::uint64_t now_us, std::uint64_t& good_out,
                               std::uint64_t& bad_out) const {
  good_out = 0;
  bad_out = 0;
  const std::uint64_t abs = now_us / bucket_us;
  const std::uint64_t n = good.size();
  // A slot contributes only if its absolute bucket still falls inside the
  // window ending now (lazy expiry — no background sweeper).
  for (std::size_t slot = 0; slot < n; ++slot) {
    if (index[slot] + n > abs) {
      good_out += good[slot];
      bad_out += bad[slot];
    }
  }
}

SloEngine::SloEngine(SloConfig config, MetricsRegistry* metrics)
    : config_(config), metrics_(metrics) {
  if (config_.buckets == 0) config_.buckets = 1;
  if (config_.max_tenants == 0) config_.max_tenants = 1;
  if (metrics_ != nullptr) {
    const std::vector<std::string> keys{"objective", "customer"};
    health_gauge_ = &metrics_->gauge_family("slo.health", keys);
    fast_gauge_ = &metrics_->gauge_family("slo.burn.fast_x100", keys);
    slow_gauge_ = &metrics_->gauge_family("slo.burn.slow_x100", keys);
  }
}

void SloEngine::define(SloObjective objective) {
  std::lock_guard<std::mutex> lock(mutex_);
  objectives_[objective.name] = std::move(objective);
}

bool SloEngine::defined(const std::string& objective) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return objectives_.count(objective) != 0;
}

std::vector<std::string> SloEngine::objectives() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(objectives_.size());
  for (const auto& [name, obj] : objectives_) out.push_back(name);
  return out;
}

SloEngine::Series& SloEngine::series_for(const SloObjective& objective,
                                         const std::string& tenant) {
  // Bounded like the metric families: past max_tenants distinct tenants
  // per objective, the long tail shares one overflow series.
  auto key = std::make_pair(objective.name, tenant);
  auto it = series_.find(key);
  if (it != series_.end()) return it->second;
  std::size_t tenants = 0;
  for (const auto& [k, s] : series_) {
    if (k.first == objective.name) ++tenants;
  }
  if (tenants >= config_.max_tenants) {
    key.second = kOverflowTenant;
    it = series_.find(key);
    if (it != series_.end()) return it->second;
  }
  Series& s = series_[key];
  s.fast.init(config_.fast_window, config_.buckets);
  s.slow.init(config_.slow_window, config_.buckets);
  return s;
}

void SloEngine::record(const std::string& objective, const std::string& tenant,
                       bool good, std::uint64_t now_us) {
  if (now_us == 0) now_us = Tracer::now_us();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = objectives_.find(objective);
  if (it == objectives_.end()) return;
  Series& s = series_for(it->second, tenant);
  s.fast.record(now_us, good);
  s.slow.record(now_us, good);
}

double SloEngine::burn_of(std::uint64_t good, std::uint64_t bad,
                          double budget) {
  const std::uint64_t total = good + bad;
  if (total == 0 || budget <= 0.0) return 0.0;
  return (static_cast<double>(bad) / static_cast<double>(total)) / budget;
}

std::vector<SloEngine::Burn> SloEngine::evaluate(std::uint64_t now_us) {
  if (now_us == 0) now_us = Tracer::now_us();
  std::vector<Burn> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(series_.size());
    for (const auto& [key, s] : series_) {
      const auto obj_it = objectives_.find(key.first);
      if (obj_it == objectives_.end()) continue;
      const SloObjective& obj = obj_it->second;
      Burn b;
      b.objective = key.first;
      b.tenant = key.second;
      std::uint64_t good = 0, bad = 0;
      s.fast.totals(now_us, good, bad);
      b.fast_events = good + bad;
      b.fast_burn = burn_of(good, bad, obj.budget);
      s.slow.totals(now_us, good, bad);
      b.slow_events = good + bad;
      b.slow_burn = burn_of(good, bad, obj.budget);
      const bool fast_hot = b.fast_burn >= obj.fast_burn_threshold;
      const bool slow_hot = b.slow_burn >= obj.slow_burn_threshold;
      if (fast_hot && slow_hot) {
        b.health = SloHealth::Critical;
      } else if (fast_hot || slow_hot) {
        b.health = SloHealth::Warning;
      }
      out.push_back(std::move(b));
    }
  }
  // std::map iteration is already (objective, tenant)-ordered.
  if (health_gauge_ != nullptr) {
    for (const Burn& b : out) {
      const std::vector<std::string> labels{b.objective, b.tenant};
      health_gauge_->with(labels).set(static_cast<int>(b.health));
      fast_gauge_->with(labels).set(
          static_cast<std::int64_t>(b.fast_burn * 100.0));
      slow_gauge_->with(labels).set(
          static_cast<std::int64_t>(b.slow_burn * 100.0));
    }
  }
  return out;
}

SloHealth SloEngine::overall(std::uint64_t now_us) {
  SloHealth worst = SloHealth::Healthy;
  for (const Burn& b : evaluate(now_us)) {
    if (static_cast<int>(b.health) > static_cast<int>(worst)) {
      worst = b.health;
    }
  }
  return worst;
}

Json SloEngine::to_json(std::uint64_t now_us) {
  if (now_us == 0) now_us = Tracer::now_us();
  const std::vector<Burn> burns = evaluate(now_us);
  SloHealth worst = SloHealth::Healthy;
  for (const Burn& b : burns) {
    if (static_cast<int>(b.health) > static_cast<int>(worst)) {
      worst = b.health;
    }
  }
  Json doc = Json::object();
  doc.set("overall", std::string(slo_health_name(worst)));
  Json series = Json::array();
  for (const Burn& b : burns) {
    Json entry = Json::object();
    entry.set("objective", b.objective);
    entry.set("customer", b.tenant);
    entry.set("fast_burn", b.fast_burn);
    entry.set("slow_burn", b.slow_burn);
    entry.set("fast_events", b.fast_events);
    entry.set("slow_events", b.slow_events);
    entry.set("health", std::string(slo_health_name(b.health)));
    series.push(entry);
  }
  doc.set("series", series);
  return doc;
}

}  // namespace jhdl::obs
