// Request-scoped tracing: spans recorded into lock-free per-thread rings,
// exported as Chrome trace_event JSON (load the TraceDump output straight
// into chrome://tracing or https://ui.perfetto.dev).
//
// Model:
//   TraceContext  a 64-bit trace id that follows one logical request
//                 across threads and across the wire. The client mints one
//                 at connect (or the server mints one at Hello for clients
//                 that sent none) and every span the request touches
//                 carries it, so filtering one id in the viewer shows the
//                 whole journey: client connect -> queue wait -> handshake
//                 -> license check -> elaborate -> per-request dispatch.
//   Tracer        owns the rings and the enabled flag. Tracing off is one
//                 relaxed load per would-be span — no clock read, no
//                 store. Each writer thread gets its own fixed-capacity
//                 ring on first use (registration takes a mutex once per
//                 thread), after which recording is wait-free: slot
//                 stores, then a release bump of the ring head.
//   ScopedSpan    RAII: stamps the clock at construction, records one
//                 complete event ("ph":"X") at destruction. Spans are
//                 named with STATIC strings (the ring stores the pointer,
//                 never a copy) — use fixed labels like "req.eval", not
//                 formatted text.
//
// Ring overwrite is deliberate: a long-running service keeps the most
// recent `capacity` spans per thread and drops the oldest, so TraceDump is
// a flight recorder, not an unbounded log. A dump that races active
// writers may catch a slot mid-overwrite; every field is individually
// atomic, so the worst case is one span with mixed old/new fields — the
// JSON stays well-formed. Span naming convention (DESIGN.md §10): dotted
// lowercase, subsystem first — "session.handshake", "client.connect".
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.h"

namespace jhdl::obs {

/// The id that follows one logical request end to end.
struct TraceContext {
  std::uint64_t id = 0;

  /// 64 random bits from the OS entropy source, never zero (zero means
  /// "no trace" on the wire).
  static TraceContext mint();

  /// Canonical textual form (16 hex digits) used in span args and logs.
  static std::string hex(std::uint64_t id);
};

/// One completed span, as read back out of a ring.
struct TraceEvent {
  const char* name = nullptr;  ///< static-lifetime label
  std::uint64_t trace_id = 0;  ///< 0 = not tied to one request
  std::uint64_t start_us = 0;  ///< microseconds since process trace epoch
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;  ///< small per-thread ordinal, stable per thread
};

/// Span sink. One per service (the DeliveryService owns one and serves it
/// over TraceDump), plus a process-global instance for clients and tools.
class Tracer {
 public:
  /// `ring_capacity` spans are retained per writer thread (power of two
  /// recommended; rounded up internally).
  explicit Tracer(std::size_t ring_capacity = 4096);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Record one completed span (writer thread). `name` must have static
  /// lifetime. No-op while disabled.
  void record(const char* name, std::uint64_t trace_id,
              std::uint64_t start_us, std::uint64_t dur_us);

  /// Microseconds since the process trace epoch (first call).
  static std::uint64_t now_us();

  /// Spans recorded since construction (including ones since overwritten).
  std::uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }

  /// All currently retained spans, every ring, oldest first per thread.
  std::vector<TraceEvent> snapshot() const;

  /// Chrome trace_event JSON: {"traceEvents": [{"ph": "X", ...}, ...]}.
  /// Each event carries args.trace (the 16-hex-digit trace id) so the
  /// viewer can filter one request's journey.
  Json to_chrome_json() const;

  /// Shared instance for code with no service to hang a tracer on
  /// (SimClient defaults here; disabled until someone enables it).
  static Tracer& global();

 private:
  struct Ring;
  Ring& local_ring();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> recorded_{0};
  std::size_t capacity_;
  std::uint64_t tracer_id_;  ///< process-unique, keys the thread cache
  mutable std::mutex rings_mutex_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

/// RAII span: stamps the clock now, records at scope exit. Constructing
/// against a disabled tracer costs one relaxed load and records nothing
/// (even if tracing is enabled mid-span).
class ScopedSpan {
 public:
  ScopedSpan(Tracer& tracer, const char* name, std::uint64_t trace_id = 0)
      : tracer_(tracer.enabled() ? &tracer : nullptr),
        name_(name),
        trace_id_(trace_id) {
    if (tracer_ != nullptr) start_us_ = Tracer::now_us();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->record(name_, trace_id_, start_us_,
                      Tracer::now_us() - start_us_);
    }
  }

  /// Bind the trace id after construction (the handshake span starts
  /// before the Hello that carries the id has been decoded).
  void set_trace(std::uint64_t trace_id) { trace_id_ = trace_id; }
  /// Rename after construction (elaborate vs cache-hit is only known at
  /// the end of the span).
  void set_name(const char* name) { name_ = name; }

 private:
  Tracer* tracer_;
  const char* name_;
  std::uint64_t trace_id_;
  std::uint64_t start_us_ = 0;
};

}  // namespace jhdl::obs
