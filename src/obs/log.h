// Structured logging + flight recorder for the delivery stack.
//
// Logger is the tracer's sibling (DESIGN.md §15): leveled key-value
// records written into lock-free per-thread rings. A record below the
// configured level costs one relaxed load and nothing else, so Debug
// logging can sit on the request path permanently. Recording is wait-free
// for the writer: the key-value text is packed into the slot's fixed
// word array with relaxed stores, scalar fields follow, then a release
// bump of the ring head publishes the record. A snapshot racing an
// overwrite may read one record with mixed old/new fields or torn text —
// flight-recorder semantics, same deliberate trade the tracer makes; the
// export stays well-formed JSON either way.
//
// Records are (level, static event label, key=value pairs, trace id).
// Event labels must be STATIC strings (the ring stores the pointer) —
// "session.open", not formatted text; the dynamic payload goes in the
// key-value pairs, which ARE copied (into the slot's bounded text words,
// truncating past ~200 bytes). Each record carries the same trace id the
// tracer's spans use, so one request can be correlated across metrics,
// spans, and logs.
//
// FlightRecorder is the postmortem bundle: trigger(reason) snapshots the
// last N log records, the full metrics registry, and the most recent
// trace spans into one JSONL document (one self-describing JSON object
// per line), retains the last few dumps in memory, and counts itself
// under the `flight.dumps` metric. The delivery service triggers it on
// session park/evict and on worker fatals; the admin HTTP endpoint's
// GET /flight triggers it on demand.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json.h"

namespace jhdl::obs {

enum class LogLevel : int {
  Debug = 0,
  Info = 1,
  Warn = 2,
  Error = 3,
  Fatal = 4,
};

const char* log_level_name(LogLevel level);

/// One record, as read back out of a ring.
struct LogRecord {
  LogLevel level = LogLevel::Info;
  const char* event = nullptr;  ///< static-lifetime label
  std::uint64_t ts_us = 0;      ///< microseconds, Tracer::now_us epoch
  std::uint64_t trace_id = 0;   ///< 0 = not tied to one request
  std::uint64_t seq = 0;        ///< global ordinal (merges rings in order)
  std::uint32_t tid = 0;        ///< per-thread ordinal
  /// "key=value" pairs, unit-separator (\x1F) delimited as stored.
  std::string text;
};

/// Leveled structured log sink. One per service (the DeliveryService owns
/// one and feeds its flight recorder), plus a process-global instance for
/// clients and tools.
class Logger {
 public:
  /// Bytes of key-value text retained per record (longer payloads are
  /// truncated, never dropped).
  static constexpr std::size_t kTextBytes = 200;

  /// `ring_capacity` records are retained per writer thread.
  explicit Logger(std::size_t ring_capacity = 1024);
  ~Logger();
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  void set_level(LogLevel min_level) {
    level_.store(static_cast<int>(min_level), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  /// One relaxed load: would a record at `level` be kept?
  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >=
           level_.load(std::memory_order_relaxed);
  }

  using Kv = std::pair<std::string_view, std::string_view>;

  /// Record one event. `event` must have static lifetime; the key-value
  /// payload is copied (bounded). No-op below the configured level.
  void log(LogLevel level, const char* event,
           std::initializer_list<Kv> kvs = {}, std::uint64_t trace_id = 0);

  /// Records kept since construction (not counting level-suppressed ones;
  /// overwritten records still count).
  std::uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }

  /// All currently retained records, every ring, globally ordered by seq.
  std::vector<LogRecord> snapshot() const;

  /// One JSON object per line: {"type":"log","seq":...,"ts_us":...,
  /// "level":"info","event":"session.open","trace":"00ab...",
  /// "fields":{"customer":"acme",...}}. Truncated fields parse as far as
  /// they survived.
  std::string to_jsonl() const;

  /// Render one record as its JSONL object (shared with FlightRecorder).
  static Json record_json(const LogRecord& record);

  /// Shared instance for code with no service to hang a logger on
  /// (defaults to Warn).
  static Logger& global();

 private:
  struct Ring;
  Ring& local_ring();

  std::atomic<int> level_{static_cast<int>(LogLevel::Info)};
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> next_seq_{1};
  std::size_t capacity_;
  std::uint64_t logger_id_;  ///< process-unique, keys the thread cache
  mutable std::mutex rings_mutex_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

/// Postmortem bundler: logs + metrics + recent spans as one JSONL dump,
/// retained in memory for the admin plane to serve.
class FlightRecorder {
 public:
  struct Config {
    /// Dumps retained (oldest evicted first).
    std::size_t keep = 8;
    /// Most recent spans included per dump (0 = none even if a tracer is
    /// attached).
    std::size_t max_spans = 256;
  };

  /// The recorder reads (never mutates) all three sources; they must
  /// outlive it. `tracer` may be null. Registers the `flight.dumps`
  /// counter in `metrics`.
  FlightRecorder(Logger& log, MetricsRegistry& metrics, Tracer* tracer,
                 Config config);
  FlightRecorder(Logger& log, MetricsRegistry& metrics,
                 Tracer* tracer = nullptr)
      : FlightRecorder(log, metrics, tracer, Config()) {}

  /// Snapshot now. Returns the JSONL text (first line carries the reason)
  /// and retains it. Thread-safe.
  std::string trigger(const std::string& reason);

  struct Dump {
    std::string reason;
    std::uint64_t ts_us = 0;
    std::string jsonl;
  };
  /// Retained dumps, oldest first.
  std::vector<Dump> dumps() const;
  /// The most recent dump's JSONL, or empty.
  std::string latest() const;
  /// Dumps completed AND retained: once this reads >= N, dumps() holds
  /// the N-th dump (modulo keep-eviction) and latest() is non-empty.
  std::uint64_t triggered() const {
    return triggered_.load(std::memory_order_acquire);
  }

 private:
  Logger& log_;
  MetricsRegistry& metrics_;
  Tracer* tracer_;
  Config config_;
  Counter* dumps_metric_;
  mutable std::mutex mutex_;
  std::deque<Dump> retained_;
  /// Header ordinal: assigned when a trigger starts composing.
  std::atomic<std::uint64_t> seq_{0};
  /// Completed-and-retained count; trails seq_ while a dump composes.
  std::atomic<std::uint64_t> triggered_{0};
};

}  // namespace jhdl::obs
