// Bit-exact C++ golden models for the corpus generators.
//
// "Generation and Validation of Custom Multiplication IP Blocks from the
// Web" (PAPERS.md) argues web-delivered IP is only credible when every
// generated instance is validated against a golden model. These classes
// are the reference semantics for corpus IP: plain integer arithmetic
// mirroring the register-transfer behaviour cycle for cycle, written
// independently of the circuit construction so a structural bug cannot
// hide in both (the CRC model is a bit-serial loop, not the flattened
// XOR network; the SHA-1 model is validated against the published "abc"
// digest in tests/corpus_test.cpp).
//
// Conventions: all values are bit patterns in the low `width` bits of a
// std::uint64_t; two's-complement where the block is signed. step()
// applies one clock edge with the given inputs held and returns/exposes
// the post-edge outputs - exactly what Simulator::cycle() + get() shows.
#pragma once

#include <cstdint>
#include <vector>

namespace jhdl::core::golden {

/// Mirror of SystolicArrayGenerator: registered operand forwarding with
/// local accumulate, unsigned, accumulators wrap mod 2^acc_width.
class SystolicModel {
 public:
  SystolicModel(std::size_t rows, std::size_t cols, std::size_t data_width,
                std::size_t guard_bits);

  /// One clock edge. `a_bus` packs rows*data_width bits (row 0 in the
  /// LSBs), `b_bus` packs cols*data_width bits.
  void step(std::uint64_t a_bus, std::uint64_t b_bus, bool clr);

  std::uint64_t acc(std::size_t r, std::size_t c) const {
    return acc_[r * cols_ + c];
  }
  std::size_t acc_width() const { return aw_; }

 private:
  std::size_t rows_, cols_, dw_, aw_;
  std::uint64_t dmask_, amask_;
  std::vector<std::uint64_t> a_reg_, b_reg_, acc_;
};

/// Mirror of the hash-pipe CRC datapath: the bit-serial reflected update,
/// data consumed LSB-first, state preset to 0xFFFFFFFF.
class CrcModel {
 public:
  CrcModel(std::uint32_t poly, std::size_t data_width)
      : poly_(poly), k_(data_width) {}

  void step(std::uint32_t data);
  void reset() { state_ = 0xFFFFFFFFu; }
  std::uint32_t state() const { return state_; }

 private:
  std::uint32_t poly_;
  std::size_t k_;
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// Mirror of the hash-pipe SHA-1 round core: one compression round per
/// step, 16-word schedule shift register, state preset to H0..H4.
class Sha1Model {
 public:
  Sha1Model() { reset(); }

  /// `stage` is the round quarter (t/20); `load_w` substitutes `w` for
  /// the scheduled word (rounds 0..15).
  void step(std::uint32_t w, unsigned stage, bool load_w);
  void reset();

  std::uint32_t a() const { return s_[0]; }
  std::uint32_t b() const { return s_[1]; }
  std::uint32_t c() const { return s_[2]; }
  std::uint32_t d() const { return s_[3]; }
  std::uint32_t e() const { return s_[4]; }

 private:
  std::uint32_t s_[5];
  std::uint32_t sr_[16];  ///< message schedule, sr_[0] = newest
};

/// Mirror of CordicGenerator: the pure per-stage function (pipelining
/// only delays it). Inputs/outputs are width-bit two's-complement
/// patterns.
class CordicModel {
 public:
  CordicModel(std::size_t width, std::size_t stages);

  void rotate(std::uint64_t x, std::uint64_t y, std::uint64_t z,
              std::uint64_t& xr, std::uint64_t& yr,
              std::uint64_t& zr) const;

 private:
  std::int64_t to_signed(std::uint64_t v) const;
  std::size_t w_, stages_;
  std::uint64_t mask_;
  std::vector<std::uint64_t> angles_;
};

/// Mirror of RfAluGenerator: write-back register file + 8-op ALU.
class RfAluModel {
 public:
  struct Out {
    std::uint64_t result = 0;
    bool zero = false;
  };

  RfAluModel(std::size_t regs, std::size_t width);

  /// One clock edge; returns the post-edge combinational outputs (the
  /// write lands first, then the read/ALU path re-settles).
  Out step(std::uint64_t ra, std::uint64_t rb, std::uint64_t wa, bool we,
           unsigned op, std::uint64_t imm, bool use_imm);

 private:
  std::uint64_t read(std::uint64_t addr) const;
  std::uint64_t alu(unsigned op, std::uint64_t a, std::uint64_t b) const;
  std::size_t regs_n_, w_;
  std::uint64_t mask_;
  std::vector<std::uint64_t> regs_;
};

}  // namespace jhdl::core::golden
