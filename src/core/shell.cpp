#include "core/shell.h"

#include <sstream>
#include <vector>

#include "util/strings.h"

namespace jhdl::core {
namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return tokens;
}

/// Parse "name=value" into a ParamMap entry (ints; true/false accepted).
void parse_assignment(ParamMap& params, const std::string& tok) {
  std::size_t eq = tok.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw ParamError("expected name=value, got '" + tok + "'");
  }
  std::string name = tok.substr(0, eq);
  std::string value = tok.substr(eq + 1);
  if (value == "true") {
    params.set(name, true);
  } else if (value == "false") {
    params.set(name, false);
  } else {
    try {
      params.set(name, static_cast<std::int64_t>(std::stoll(value)));
    } catch (const std::exception&) {
      throw ParamError("bad value in '" + tok + "'");
    }
  }
}

std::int64_t parse_int(const std::string& tok, const char* what) {
  try {
    return std::stoll(tok);
  } catch (const std::exception&) {
    throw ParamError(std::string("bad ") + what + ": '" + tok + "'");
  }
}

}  // namespace

std::string AppletShell::help() {
  return
      "commands:\n"
      "  describe                 show IP, parameters, features\n"
      "  build name=value ...     elaborate an instance\n"
      "  params                   show the current instance parameters\n"
      "  area | timing            estimator\n"
      "  hierarchy | interface | schematic | layout | memories\n"
      "  put <port> <int>         drive an input (signed ok)\n"
      "  get <port>               read an output\n"
      "  cycle [n] | reset        clock control\n"
      "  watch <port> | waves     waveform recording\n"
      "  netlist edif|vhdl|verilog|json\n"
      "  artifact                 shared-snapshot status of the instance\n"
      "  download | meter | audit\n"
      "  help\n";
}

std::string AppletShell::execute(const std::string& line) {
  std::vector<std::string> tokens = tokenize(line);
  if (tokens.empty()) return "";
  const std::string& cmd = tokens[0];
  try {
    if (cmd == "help") return help();
    if (cmd == "describe") return applet_.describe();
    if (cmd == "build") {
      ParamMap params;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        parse_assignment(params, tokens[i]);
      }
      applet_.build(params);
      return format("built: %s (latency %zu)\n",
                    applet_.current_params().summary().c_str(),
                    applet_.latency());
    }
    if (cmd == "params") {
      return applet_.current_params().summary() + "\n";
    }
    if (cmd == "area") {
      auto a = applet_.area();
      return format("LUTs %zu  FFs %zu  carries %zu  BRAMs %zu  slices %zu\n",
                    a.luts, a.ffs, a.carries, a.brams, a.slices);
    }
    if (cmd == "timing") {
      auto t = applet_.timing();
      return format("critical path %.2f ns (%zu levels), fmax %.1f MHz\n",
                    t.comb_delay_ns, t.levels, t.fmax_mhz);
    }
    if (cmd == "hierarchy") return applet_.hierarchy();
    if (cmd == "interface") return applet_.interface_text();
    if (cmd == "schematic") return applet_.schematic_text();
    if (cmd == "layout") return applet_.layout_text();
    if (cmd == "memories") return applet_.memories();
    if (cmd == "put" && tokens.size() == 3) {
      applet_.sim_put_signed(tokens[1], parse_int(tokens[2], "value"));
      return "ok\n";
    }
    if (cmd == "get" && tokens.size() == 2) {
      BitVector v = applet_.sim_get(tokens[1]);
      std::string out = tokens[1] + " = " + v.to_string();
      if (v.is_fully_defined()) {
        out += format(" (unsigned %llu, signed %lld)",
                      static_cast<unsigned long long>(v.to_uint()),
                      static_cast<long long>(v.to_int()));
      }
      return out + "\n";
    }
    if (cmd == "cycle") {
      std::size_t n = tokens.size() > 1
                          ? static_cast<std::size_t>(
                                parse_int(tokens[1], "cycle count"))
                          : 1;
      applet_.sim_cycle(n);
      return format("cycled %zu\n", n);
    }
    if (cmd == "reset") {
      applet_.sim_reset();
      return "reset\n";
    }
    if (cmd == "watch" && tokens.size() == 2) {
      applet_.watch(tokens[1]);
      return "watching " + tokens[1] + "\n";
    }
    if (cmd == "waves") return applet_.waves();
    if (cmd == "netlist" && tokens.size() == 2) {
      NetlistFormat fmt;
      if (tokens[1] == "edif") {
        fmt = NetlistFormat::Edif;
      } else if (tokens[1] == "vhdl") {
        fmt = NetlistFormat::Vhdl;
      } else if (tokens[1] == "verilog") {
        fmt = NetlistFormat::Verilog;
      } else if (tokens[1] == "json") {
        fmt = NetlistFormat::Json;
      } else {
        return "error: unknown netlist format '" + tokens[1] + "'\n";
      }
      return applet_.netlist(fmt);
    }
    if (cmd == "artifact") {
      if (!applet_.built()) return "no instance built\n";
      const auto& art = applet_.artifact();
      if (art == nullptr) {
        return "private elaboration (no shared artifact)\n";
      }
      return format("shared artifact %s#%016llx  primitives %zu  ~%zu B\n",
                    art->module().c_str(),
                    static_cast<unsigned long long>(art->param_hash()),
                    art->primitive_count(), art->resident_bytes());
    }
    if (cmd == "download") {
      auto report = applet_.download_report();
      std::string out;
      for (const auto& row : report.rows) {
        out += format("%-28s %8zu B\n", row.file.c_str(), row.compressed);
      }
      out += format("total %zu B\n", report.total_compressed);
      return out;
    }
    if (cmd == "meter") return applet_.meter().report() + "\n";
    if (cmd == "audit") {
      std::string out;
      for (const std::string& entry : applet_.audit_log()) {
        out += entry + "\n";
      }
      return out.empty() ? "(empty)\n" : out;
    }
    return "error: unknown command '" + cmd + "' (try 'help')\n";
  } catch (const std::exception& e) {
    return std::string("error: ") + e.what() + "\n";
  }
}

std::string AppletShell::run_script(const std::string& script) {
  std::istringstream is(script);
  std::string line;
  std::string out;
  while (std::getline(is, line)) {
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (tokenize(line).empty()) continue;
    out += execute(line);
  }
  return out;
}

}  // namespace jhdl::core
