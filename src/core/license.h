// License policy: maps customer tiers to feature sets, reproducing the
// two configurations of Figure 2 (passive browsing vs licensed customer)
// plus an anonymous tier. Vendors can also hand-craft arbitrary feature
// sets per customer.
#pragma once

#include <string>

#include "core/feature.h"

namespace jhdl::core {

/// Customer tiers used by the stock policies.
enum class LicenseTier {
  Anonymous,   ///< marketing page: parameters + estimator only
  Evaluation,  ///< Figure 2 left + viewers and black-box simulation
  Licensed,    ///< Figure 2 right: everything, including netlist delivery
};

const char* license_tier_name(LicenseTier tier);

/// A named license with its feature grant.
struct LicensePolicy {
  std::string customer;
  LicenseTier tier = LicenseTier::Anonymous;
  FeatureSet features;
  /// Expiry as a day number in the vendor's calendar (0 = perpetual).
  /// The applet compares against the day the vendor stamps into it.
  int expires_day = 0;

  /// True when the license is usable on `day`.
  bool valid_on(int day) const {
    return expires_day == 0 || day <= expires_day;
  }

  /// Stock feature grants per tier.
  static FeatureSet features_for(LicenseTier tier);

  /// Convenience factory applying the stock grant.
  static LicensePolicy make(std::string customer, LicenseTier tier,
                            int expires_day = 0);
};

}  // namespace jhdl::core
