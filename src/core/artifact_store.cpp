#include "core/artifact_store.h"

#include <chrono>

namespace jhdl::core {

ArtifactStore::ArtifactStore(Config config, obs::MetricsRegistry* registry)
    : config_(config) {
  if (registry != nullptr) {
    m_hits_ = &registry->counter("artifact.hits");
    m_misses_ = &registry->counter("artifact.misses");
    m_coalesced_ = &registry->counter("artifact.coalesced");
    m_evictions_ = &registry->counter("artifact.evictions");
    m_pinned_skips_ = &registry->counter("artifact.pinned_skips");
    m_build_us_ = &registry->histogram("artifact.build_us");
    m_resident_ = &registry->gauge("artifact.resident_bytes");
    m_entries_ = &registry->gauge("artifact.entries");
  }
}

std::shared_ptr<const IpArtifact> ArtifactStore::get_or_build(
    std::shared_ptr<const ModuleGenerator> generator, const ParamMap& params,
    bool* was_hit) {
  // Canonicalize FIRST: the key must not depend on how the caller spelled
  // the assignment (explicit defaults, ordering). Validation errors throw
  // here, before any cache state is touched.
  ParamMap resolved = params.resolved(generator->params());
  const Key key{generator->name(), resolved.content_hash()};

  std::shared_future<std::shared_ptr<const IpArtifact>> wait_on;
  std::promise<std::shared_ptr<const IpArtifact>> promise;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.last_used = ++use_clock_;
      // Lazy stages may have grown the artifact since the last touch;
      // refresh the budget accounting while we are here.
      const std::size_t cost = it->second.artifact->resident_bytes();
      resident_ += cost - it->second.cost;
      it->second.cost = cost;
      enforce_budget_locked();
      publish_gauges_locked();
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (m_hits_ != nullptr) m_hits_->inc();
      if (was_hit != nullptr) *was_hit = true;
      return it->second.artifact;
    }
    auto fit = in_flight_.find(key);
    if (fit != in_flight_.end()) {
      wait_on = fit->second;  // join the build in progress
    } else {
      in_flight_.emplace(key, promise.get_future().share());
    }
  }

  if (wait_on.valid()) {
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    if (m_coalesced_ != nullptr) m_coalesced_->inc();
    if (was_hit != nullptr) *was_hit = true;
    return wait_on.get();  // rethrows the builder's exception, if any
  }

  // This thread owns the build for `key`.
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (m_misses_ != nullptr) m_misses_->inc();
  if (was_hit != nullptr) *was_hit = false;
  std::shared_ptr<const IpArtifact> artifact;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    artifact =
        std::make_shared<IpArtifact>(std::move(generator), std::move(resolved));
  } catch (...) {
    promise.set_exception(std::current_exception());
    std::lock_guard<std::mutex> lock(mu_);
    in_flight_.erase(key);
    throw;
  }
  if (m_build_us_ != nullptr) {
    m_build_us_->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  }
  promise.set_value(artifact);
  {
    std::lock_guard<std::mutex> lock(mu_);
    in_flight_.erase(key);
    Entry entry;
    entry.artifact = artifact;
    entry.last_used = ++use_clock_;
    entry.cost = artifact->resident_bytes();
    resident_ += entry.cost;
    entries_.emplace(key, std::move(entry));
    enforce_budget_locked();
    publish_gauges_locked();
  }
  return artifact;
}

std::shared_ptr<const IpArtifact> ArtifactStore::lookup(
    const std::string& module, std::uint64_t param_hash) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(Key{module, param_hash});
  return it != entries_.end() ? it->second.artifact : nullptr;
}

std::size_t ArtifactStore::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.artifact.use_count() == 1) {
      resident_ -= it->second.cost;
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  publish_gauges_locked();
  return dropped;
}

void ArtifactStore::enforce_budget_locked() {
  if (config_.budget_bytes == 0) return;
  while (resident_ > config_.budget_bytes) {
    // O(n) LRU scan: the store holds tens of configurations, not
    // millions, and eviction runs off the hot (hit) path's tail.
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.artifact.use_count() > 1) continue;  // pinned
      if (victim == entries_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == entries_.end()) {
      // Everything resident is pinned by live/parked sessions; running
      // over budget beats invalidating someone's program mid-replay.
      pinned_skips_.fetch_add(1, std::memory_order_relaxed);
      if (m_pinned_skips_ != nullptr) m_pinned_skips_->inc();
      return;
    }
    resident_ -= victim->second.cost;
    entries_.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (m_evictions_ != nullptr) m_evictions_->inc();
  }
}

void ArtifactStore::publish_gauges_locked() {
  if (m_resident_ != nullptr) {
    m_resident_->set(static_cast<std::int64_t>(resident_));
  }
  if (m_entries_ != nullptr) {
    m_entries_->set(static_cast<std::int64_t>(entries_.size()));
  }
}

ArtifactStore::Stats ArtifactStore::stats() const {
  Stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.coalesced = coalesced_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.pinned_skips = pinned_skips_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  out.entries = entries_.size();
  out.resident_bytes = resident_;
  return out;
}

std::size_t ArtifactStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::size_t ArtifactStore::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_;
}

}  // namespace jhdl::core
