// IP catalog and multi-IP applets - the paper's future work item
// "developing applets that deliver more than one IP module" (Section 5).
//
// An IpCatalog is the vendor's storefront: registered module generators
// with listings. From it a vendor can assemble either a single-IP Applet
// or a MultiIpApplet that bundles several IPs behind one license and one
// download (sharing the Base/Virtex/Viewer archives; one applet archive
// per IP).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/applet.h"

namespace jhdl::core {

/// The vendor's generator registry.
class IpCatalog {
 public:
  /// Register a generator. Throws std::invalid_argument on duplicates.
  void add(std::shared_ptr<const ModuleGenerator> generator);

  std::size_t size() const { return entries_.size(); }
  const std::vector<std::shared_ptr<const ModuleGenerator>>& entries() const {
    return entries_;
  }

  /// Find by name; nullptr if absent.
  std::shared_ptr<const ModuleGenerator> find(const std::string& name) const;

  /// Storefront text: one block per IP with description and parameters.
  std::string listing() const;

  /// Assemble a single-IP applet for a customer. `store` (optional)
  /// shares elaborations with every other consumer of the same store.
  Applet make_applet(const std::string& generator_name,
                     const LicensePolicy& license,
                     std::shared_ptr<ArtifactStore> store = nullptr) const;

 private:
  std::vector<std::shared_ptr<const ModuleGenerator>> entries_;
};

/// The full vendor storefront: every stock generator (KCM, adder, FIR,
/// gate-net, DDS) plus the VTR-class corpus (systolic-array, hash-pipe,
/// cordic-rotator, rf-alu) registered in one catalog. Examples, benches
/// and the corpus tests share this so new IP lands everywhere at once.
IpCatalog standard_catalog();

/// Several IPs delivered in one executable under one license. Each IP
/// keeps its own instance/simulator state; the sandbox gate is shared.
class MultiIpApplet {
 public:
  /// `names` empty = every IP in the catalog.
  MultiIpApplet(const IpCatalog& catalog, const LicensePolicy& license,
                const std::vector<std::string>& names = {});

  std::size_t size() const { return applets_.size(); }
  std::vector<std::string> ip_names() const;

  /// Access one IP's applet session. Throws std::out_of_range for
  /// unknown names.
  Applet& select(const std::string& generator_name);

  /// Combined download payload: shared archives once, one applet archive
  /// per bundled IP.
  Packager::Report download_report() const;

  const LicensePolicy& license() const { return license_; }

 private:
  LicensePolicy license_;
  std::vector<std::pair<std::string, Applet>> applets_;
  std::vector<std::shared_ptr<const ModuleGenerator>> generators_;
};

}  // namespace jhdl::core
