// VTR-class corpus generators: four ambitious parameterizable IP blocks
// that grow the catalog beyond the KCM/FIR flagships (ROADMAP "VTR-class
// scenario corpus"). Each is registered in the standard catalog, runs
// through the full applet pipeline (license -> package -> artifact store
// -> estimate -> netlist -> compiled-kernel sim), and has a bit-exact C++
// golden model in core/golden.h that the corpus differential tests
// compare against.
#pragma once

#include <cstdint>
#include <vector>

#include "core/generator.h"

namespace jhdl::core {

/// Weight-streaming systolic matrix-multiply array (TPU-like). A rows x
/// cols grid of processing elements; each PE multiplies its west and
/// north operands, accumulates locally, and forwards the operands east
/// and south through registers. Parameters: rows, cols, data_width,
/// guard_bits. Ports: a (rows*data_width, west edge), b (cols*data_width,
/// north edge), clr (synchronous accumulator clear), acc (rows * cols *
/// acc_width flat accumulator bus, PE (r,c) at slice index r*cols+c).
class SystolicArrayGenerator final : public ModuleGenerator {
 public:
  std::string name() const override { return "systolic-array"; }
  std::string description() const override {
    return "Systolic matrix-multiply array (TPU-like): rows x cols grid "
           "of multiply-accumulate PEs with registered operand forwarding";
  }
  std::vector<ParamSpec> params() const override;
  BuildResult build(const ParamMap& params) const override;

  /// Accumulator width for one PE: full product plus guard bits.
  static std::size_t acc_width(std::size_t data_width,
                               std::size_t guard_bits) {
    return 2 * data_width + guard_bits;
  }
};

/// Hash pipeline: a reflected CRC-32-style datapath (algo=0, data_width
/// bits consumed per cycle through a flattened GF(2) XOR network) or a
/// SHA-1 round core (algo=1: one compression round per cycle with the
/// 16-word message schedule in hardware; `stage`/`load_w` are driven by
/// the surrounding controller). CRC state powers on to 0xFFFFFFFF, the
/// SHA-1 state to the standard H0..H4, so Simulator::reset() re-arms a
/// fresh message.
class HashPipeGenerator final : public ModuleGenerator {
 public:
  std::string name() const override { return "hash-pipe"; }
  std::string description() const override {
    return "Hash pipeline: reflected CRC-32 XOR network (k bits/cycle) or "
           "a SHA-1 round core with in-hardware message schedule";
  }
  std::vector<ParamSpec> params() const override;
  BuildResult build(const ParamMap& params) const override;

  /// One symbolic next-state bit of the reflected CRC update as parity
  /// masks over the current state and data input bits (shared with the
  /// golden model so hardware and model derive from one linear algebra).
  struct CrcLin {
    std::uint32_t state_mask = 0;
    std::uint32_t data_mask = 0;
  };
  static std::vector<CrcLin> crc_next_state(std::uint32_t poly,
                                            std::size_t data_width);
};

/// Unrolled CORDIC rotator (rotation mode): `stages` conditional
/// add/subtract stages over width-bit two's-complement x/y/z, the angle
/// measured in turns scaled to 2^width. `pipelined` registers every
/// stage (latency = stages); otherwise the rotator is combinational.
class CordicGenerator final : public ModuleGenerator {
 public:
  std::string name() const override { return "cordic-rotator"; }
  std::string description() const override {
    return "Unrolled CORDIC rotator: conditional add/sub stages with "
           "arithmetic-shift operand feeds and an arctangent ROM table";
  }
  std::vector<ParamSpec> params() const override;
  BuildResult build(const ParamMap& params) const override;

  /// Stage angle constants: atan(2^-i) in units of 2^width per turn,
  /// masked to width bits. Shared with the golden model.
  static std::vector<std::uint64_t> angle_table(std::size_t width,
                                                std::size_t stages);
};

/// Register-file + ALU datapath: `regs` general-purpose registers with
/// two combinational read ports and one write port, an 8-op ALU
/// (add/sub/and/or/xor/pass-b/pass-a/not-a), immediate operand select,
/// and ALU write-back. Addresses beyond the register count read zero and
/// drop writes.
class RfAluGenerator final : public ModuleGenerator {
 public:
  std::string name() const override { return "rf-alu"; }
  std::string description() const override {
    return "Register-file + ALU datapath: dual-read/single-write register "
           "file, 8-operation ALU with immediate select and write-back";
  }
  std::vector<ParamSpec> params() const override;
  BuildResult build(const ParamMap& params) const override;

  /// Address width for a register count (ceil log2, min 1).
  static std::size_t addr_width(std::size_t regs);
};

}  // namespace jhdl::core
