#include "core/applet.h"

#include <sstream>

#include "netlist/netlist.h"
#include "util/strings.h"
#include "viewer/hierarchy.h"
#include "viewer/layout_view.h"
#include "viewer/memview.h"
#include "viewer/schematic.h"
#include "viewer/waveview.h"
#include "sim/vcd.h"

namespace jhdl::core {

Applet::Applet(AppletSpec spec)
    : spec_(std::move(spec)), meter_(spec_.netlist_quota) {
  if (spec_.generator == nullptr) {
    throw std::invalid_argument("applet needs a module generator");
  }
}

void Applet::require(Feature f, const char* operation) const {
  if (!spec_.license.valid_on(spec_.today)) {
    audit_.push_back(std::string(operation) + " DENIED (license expired)");
    throw AppletSecurityError(
        format("operation '%s' refused: the license of customer '%s' "
               "expired on day %d (today is day %d)",
               operation, spec_.license.customer.c_str(),
               spec_.license.expires_day, spec_.today));
  }
  if (!can(f)) {
    audit_.push_back(std::string(operation) + " DENIED (missing " +
                     feature_name(f) + ")");
    throw AppletSecurityError(
        format("operation '%s' requires feature '%s', which the '%s' "
               "license of customer '%s' does not grant",
               operation, feature_name(f),
               license_tier_name(spec_.license.tier),
               spec_.license.customer.c_str()));
  }
  audit_.push_back(std::string(operation) + " granted");
}

const BuildResult& Applet::checked_build(const char* operation) const {
  if (!build_.has_value()) {
    throw std::logic_error(std::string(operation) +
                           ": no instance built yet; call build() first");
  }
  return *build_;
}

const BuildResult& Applet::ensure_instance(const char* operation) {
  if (!build_.has_value()) {
    if (artifact_ == nullptr) {
      throw std::logic_error(std::string(operation) +
                             ": no instance built yet; call build() first");
    }
    // First simulation touch on the artifact path: elaborate a private
    // instance (its own value state) and bind the artifact's shared
    // compiled program so levelization/lowering is not repeated.
    build_ = spec_.generator->build(params_);
    SimOptions options;
    options.program = artifact_->program();
    sim_ = std::make_unique<Simulator>(*build_->system, options);
  }
  return *build_;
}

std::string Applet::describe() const {
  std::ostringstream os;
  os << "=== " << spec_.title << " ===\n";
  os << spec_.generator->description() << "\n";
  os << "customer: " << spec_.license.customer << " ("
     << license_tier_name(spec_.license.tier) << ")\n";
  os << "features: " << features().to_string() << "\n";
  os << "parameters:\n" << describe_schema(spec_.generator->params());
  return os.str();
}

void Applet::build(const ParamMap& params) {
  require(Feature::ParameterInterface, "build");

  // Shared-snapshot path: no per-customer circuit transform, so every
  // view can be served from the store's artifact. The simulator instance
  // (which needs private value state) is elaborated lazily on first use.
  if (spec_.store != nullptr && spec_.watermark_owner.empty() &&
      !spec_.obfuscate) {
    std::shared_ptr<const IpArtifact> artifact =
        spec_.store->get_or_build(spec_.generator, params);
    recorder_.reset();
    sim_.reset();
    build_.reset();
    artifact_ = std::move(artifact);
    params_ = artifact_->params();
    meter_.record_build();
    return;
  }

  ParamMap resolved = params.resolved(spec_.generator->params());
  BuildResult result = spec_.generator->build(resolved);

  if (!spec_.watermark_owner.empty()) {
    Watermarker marker(spec_.watermark_owner);
    marker.embed(*result.top, {});
  }
  if (spec_.obfuscate) {
    obfuscate(*result.top, spec_.obfuscation_seed);
  }

  // Commit: tear down the previous instance (recorder and simulator hold
  // pointers into it, so they go first).
  recorder_.reset();
  sim_.reset();
  artifact_.reset();
  build_ = std::move(result);
  params_ = std::move(resolved);
  sim_ = std::make_unique<Simulator>(*build_->system);
  meter_.record_build();
}

std::size_t Applet::latency() const {
  if (artifact_ != nullptr) return artifact_->latency();
  return checked_build("latency").latency;
}

const ParamMap& Applet::current_params() const {
  if (artifact_ == nullptr) checked_build("current_params");
  return params_;
}

estimate::AreaEstimate Applet::area() const {
  require(Feature::Estimator, "area estimate");
  if (artifact_ != nullptr) return artifact_->area();
  return estimate::estimate_area(*checked_build("area").top);
}

estimate::TimingEstimate Applet::timing() const {
  require(Feature::Estimator, "timing estimate");
  if (artifact_ != nullptr) return artifact_->timing();
  return estimate::estimate_timing(*checked_build("timing").top);
}

std::string Applet::hierarchy() const {
  require(Feature::StructuralViewer, "hierarchy view");
  if (artifact_ != nullptr) return artifact_->hierarchy_text();
  return viewer::hierarchy_tree(*checked_build("hierarchy").top);
}

std::string Applet::interface_text() const {
  // Interface visibility is part of the parameter interface: a customer
  // must at least see the ports to integrate the IP.
  require(Feature::ParameterInterface, "interface view");
  if (artifact_ != nullptr) return artifact_->interface_text();
  return viewer::interface_summary(*checked_build("interface").top);
}

std::string Applet::schematic_text() const {
  require(Feature::StructuralViewer, "schematic view");
  if (artifact_ != nullptr) return artifact_->schematic_text();
  return viewer::text_schematic(*checked_build("schematic").top);
}

std::string Applet::schematic_svg() const {
  require(Feature::StructuralViewer, "schematic view");
  if (artifact_ != nullptr) return artifact_->schematic_svg();
  return viewer::svg_schematic(*checked_build("schematic").top);
}

std::string Applet::memories() const {
  require(Feature::StructuralViewer, "memory view");
  if (artifact_ != nullptr) return artifact_->memories_text();
  return viewer::memory_contents(*checked_build("memories").top);
}

std::string Applet::layout_text() const {
  require(Feature::LayoutViewer, "layout view");
  if (artifact_ != nullptr) return artifact_->layout_text();
  return viewer::text_layout(*checked_build("layout").top);
}

std::string Applet::layout_svg() const {
  require(Feature::LayoutViewer, "layout view");
  if (artifact_ != nullptr) return artifact_->layout_svg();
  return viewer::svg_layout(*checked_build("layout").top);
}

Wire* Applet::find_port(const std::map<std::string, Wire*>& map,
                        const std::string& name, const char* kind) const {
  auto it = map.find(name);
  if (it == map.end()) {
    throw std::out_of_range(format("IP has no %s port named '%s'", kind,
                                   name.c_str()));
  }
  return it->second;
}

void Applet::sim_put(const std::string& input, std::uint64_t value) {
  require(Feature::Simulator, "simulation");
  ensure_instance("sim_put");
  sim_->put(find_port(build_->inputs, input, "input"), value);
}

void Applet::sim_put_signed(const std::string& input, std::int64_t value) {
  require(Feature::Simulator, "simulation");
  ensure_instance("sim_put");
  sim_->put_signed(find_port(build_->inputs, input, "input"), value);
}

void Applet::sim_cycle(std::size_t n) {
  require(Feature::Simulator, "simulation");
  ensure_instance("sim_cycle");
  sim_->cycle(n);
  meter_.record_simulation_cycles(n);
}

void Applet::sim_reset() {
  require(Feature::Simulator, "simulation");
  ensure_instance("sim_reset");
  sim_->reset();
}

BitVector Applet::sim_get(const std::string& output) {
  require(Feature::Simulator, "simulation");
  ensure_instance("sim_get");
  return sim_->get(find_port(build_->outputs, output, "output"));
}

void Applet::watch(const std::string& port) {
  require(Feature::WaveformViewer, "waveform recording");
  ensure_instance("watch");
  if (recorder_ == nullptr) {
    recorder_ = std::make_unique<WaveformRecorder>(*sim_);
  }
  // Accept both input and output port names.
  auto in_it = build_->inputs.find(port);
  Wire* w = in_it != build_->inputs.end()
                ? in_it->second
                : find_port(build_->outputs, port, "watchable");
  recorder_->watch(w, port);
}

std::string Applet::waves() const {
  require(Feature::WaveformViewer, "waveform view");
  if (recorder_ == nullptr) return "(nothing watched)\n";
  return viewer::text_waves(*recorder_);
}

std::string Applet::vcd() const {
  require(Feature::WaveformViewer, "VCD export");
  if (recorder_ == nullptr) return "";
  std::ostringstream os;
  write_vcd(os, *recorder_, spec_.title);
  return os.str();
}

std::string Applet::netlist(NetlistFormat fmt) {
  require(Feature::Netlister, "netlist export");
  if (artifact_ != nullptr) {
    meter_.record_netlist();
    return artifact_->netlist_text(fmt);
  }
  const BuildResult& b = checked_build("netlist");
  meter_.record_netlist();
  switch (fmt) {
    case NetlistFormat::Edif:
      return netlist::write_edif(*b.top);
    case NetlistFormat::Vhdl:
      return netlist::write_vhdl(*b.top);
    case NetlistFormat::Verilog:
      return netlist::write_verilog(*b.top);
    case NetlistFormat::Json:
      return netlist::write_json(*b.top);
  }
  throw std::logic_error("unknown netlist format");
}

std::unique_ptr<BlackBoxModel> Applet::make_black_box() const {
  require(Feature::BlackBoxSim, "black-box model");
  if (artifact_ != nullptr) return artifact_->instantiate();
  checked_build("make_black_box");
  // Independent build so the caller cannot alias the applet's instance.
  BuildResult fresh = spec_.generator->build(params_);
  if (!spec_.watermark_owner.empty()) {
    Watermarker marker(spec_.watermark_owner);
    marker.embed(*fresh.top, {});
  }
  return std::make_unique<BlackBoxModel>(std::move(fresh),
                                         spec_.generator->name());
}

Packager::Report Applet::download_report() const {
  Packager packager;
  return Packager::report(
      packager.archives_for(features(), spec_.generator.get()));
}

Applet AppletBuilder::build_applet() {
  if (spec_.title.empty() && spec_.generator != nullptr) {
    spec_.title = spec_.generator->name() + " applet";
  }
  return Applet(std::move(spec_));
}

}  // namespace jhdl::core
