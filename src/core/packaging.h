// Packaging: partitioned, compressed component archives - the C++
// equivalent of the Jar partitioning in Section 4.4 / Table 1 of the
// paper ("the binaries associated with the JHDL design tool are
// partitioned into a number of smaller, more specific Jar archive files
// ... a given applet requires only those Jar files required by the applet
// code").
//
// An Archive bundles named entries (the component's code and data files),
// each stored LZSS-compressed with a CRC-32, mirroring JAR/ZIP structure.
// The Packager produces the four standard partitions of Table 1
// (Base / Virtex / Viewer / Applet) from the actual source files of the
// corresponding modules, so the measured sizes genuinely reflect each
// component's code size, and computes the download closure of a feature
// set.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/feature.h"
#include "core/generator.h"

namespace jhdl::core {
class IpArtifact;  // core/artifact.h
}

namespace jhdl::core {

/// One named file inside an archive.
struct ArchiveEntry {
  std::string name;
  std::vector<std::uint8_t> data;
};

/// A JAR-like bundle: named entries, compressed on serialization.
class Archive {
 public:
  explicit Archive(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::vector<ArchiveEntry>& entries() const { return entries_; }

  void add(const std::string& entry_name, std::vector<std::uint8_t> data);
  void add_text(const std::string& entry_name, const std::string& text);

  /// Sum of uncompressed entry sizes.
  std::size_t raw_size() const;

  /// Serialized (compressed, CRC-checked) byte stream.
  std::vector<std::uint8_t> serialize() const;
  /// Size of serialize() - the "download size" of this archive.
  std::size_t compressed_size() const;

  /// Parse and verify a serialized archive. Throws std::runtime_error on
  /// corruption (bad magic or CRC mismatch).
  static Archive deserialize(const std::vector<std::uint8_t>& bytes);

 private:
  std::string name_;
  std::vector<ArchiveEntry> entries_;
};

/// Builds the standard component archives and computes feature closures.
class Packager {
 public:
  /// `source_root` is the directory containing src/; defaults to the
  /// compiled-in source tree location. When module sources cannot be read
  /// (installed binary without sources), archives fall back to serialized
  /// catalogs so packaging still works, just with smaller payloads.
  explicit Packager(std::string source_root = default_source_root());

  static std::string default_source_root();

  /// "JHDLBase.jar": HDL kernel, simulator, netlister, estimator, applet
  /// framework.
  Archive base_archive() const;
  /// "Virtex.jar": the technology library (code + primitive catalog).
  Archive virtex_archive() const;
  /// "Viewer.jar": schematic / layout / waveform viewers.
  Archive viewer_archive() const;
  /// "Applet.jar": the generator-specific code for one IP.
  Archive applet_archive(const ModuleGenerator& generator) const;

  /// "<module>-delivery.jar": every view of one elaborated configuration,
  /// rendered from the shared artifact snapshot (all four netlist
  /// formats, area/timing estimates, interface + schematic). The same
  /// IpArtifact the delivery service and shell read, so the packaged
  /// bytes are identical to what a live session would see.
  static Archive artifact_bundle(const IpArtifact& artifact);

  /// The archives a feature set actually needs (Table 1's point: an
  /// applet downloads only its closure). `generator` may be null when
  /// sizing a generator-less shell.
  std::vector<Archive> archives_for(const FeatureSet& features,
                                    const ModuleGenerator* generator) const;

  /// Tabular download report.
  struct Row {
    std::string file;
    std::size_t entries;
    std::size_t raw;
    std::size_t compressed;
    std::string description;
  };
  struct Report {
    std::vector<Row> rows;
    std::size_t total_raw = 0;
    std::size_t total_compressed = 0;
  };
  static Report report(const std::vector<Archive>& archives);

  /// Download time in seconds at a given line rate.
  static double download_seconds(std::size_t bytes, double bits_per_second);

 private:
  Archive from_sources(const std::string& archive_name,
                       const std::vector<std::string>& module_dirs,
                       const std::vector<std::string>& extra_files) const;
  std::string source_root_;
};

}  // namespace jhdl::core
