// IpArtifact: ONE elaboration of one (module, params) configuration,
// snapshotted for every consumer of the delivery stack.
//
// The paper's applet bundles many views of the same generated circuit -
// structure, estimates, netlist, simulation (Sections 2.2, 3.2, 4.2). The
// reproduction used to re-elaborate and re-walk the Cell graph separately
// for each of those consumers; this object is the staged pipeline that
// collapses them:
//
//   ModuleGenerator::build
//     -> canonical ParamMap      (defaults filled, name-ordered, stable
//                                 content hash - params.h)
//     -> IpArtifact              stage 1: the elaborated HWSystem (eager,
//                                 built exactly once)
//         .program()             stage 2: the levelized/compiled
//                                 KernelProgram sessions bind (lazy)
//         .design()              stage 3: the format-neutral netlist
//                                 Design all writers render (lazy)
//         .netlist_text(fmt)     per-format renderings of stage 3 (lazy)
//         .area() / .timing()    stage 4: estimates (lazy)
//         .hierarchy_text() ...  viewer snapshots (lazy)
//
// Every lazy stage is computed at most once, memoized inside the
// artifact, and safe to share across threads (one internal mutex guards
// stage computation; the returned references are immutable afterwards).
// The artifact's HWSystem is a REFERENCE elaboration: simulation sessions
// never drive it - they call instantiate(), which elaborates a private
// instance and binds the shared compiled program, so value state stays
// per-session while all structural work is shared.
//
// Artifacts are handed out as shared_ptr<const IpArtifact> by the
// ArtifactStore (core/artifact_store.h); holding the pointer PINS the
// artifact - store eviction can drop its cache entry but never frees an
// artifact someone still reads.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "core/generator.h"
#include "core/params.h"
#include "estimate/area.h"
#include "estimate/timing.h"
#include "netlist/design.h"
#include "sim/compiled_kernel.h"
#include "sim/island_partition.h"

namespace jhdl::core {

class BlackBoxModel;

/// Netlist output formats offered by the Netlister feature. (Lives here,
/// next to the memoized per-format renderings; core/applet.h re-exports
/// it unchanged.)
enum class NetlistFormat { Edif, Vhdl, Verilog, Json };

/// Immutable snapshot of one elaborated configuration (see file comment).
class IpArtifact {
 public:
  /// Elaborates stage 1 immediately. `params` MUST already be resolved
  /// against the generator's schema (the store guarantees this; direct
  /// constructors should call params.resolved(generator->params())).
  IpArtifact(std::shared_ptr<const ModuleGenerator> generator,
             ParamMap params);
  IpArtifact(const IpArtifact&) = delete;
  IpArtifact& operator=(const IpArtifact&) = delete;

  const std::string& module() const { return module_; }
  const ParamMap& params() const { return params_; }
  /// Canonical content hash of the resolved params (the store key).
  std::uint64_t param_hash() const { return param_hash_; }
  const std::shared_ptr<const ModuleGenerator>& generator() const {
    return generator_;
  }

  // --- stage 1: the reference elaboration (eager, immutable) ---
  const BuildResult& build() const { return build_; }
  const Cell& top() const { return *build_.top; }
  std::size_t latency() const { return build_.latency; }
  std::size_t primitive_count() const { return prim_count_; }

  // --- stage 2: compiled simulation program (lazy) ---
  /// The levelized, compiled kernel program for this configuration.
  /// Always compiled (independent of JHDL_SIM_MODE) so sessions that run
  /// the compiled engine can bind it; an interpreted-mode Simulator just
  /// ignores it.
  std::shared_ptr<const CompiledProgram> program() const;

  /// The island partition of program() for the threaded settle (lazy,
  /// memoized like every other stage). Computed on the shared program, so
  /// every session of this configuration reuses one plan.
  std::shared_ptr<const IslandPlan> islands() const;

  // --- stage 3: format-neutral netlist + renderings (lazy) ---
  /// The scoped Design every netlist writer renders from. Built once;
  /// EDIF/VHDL/Verilog/JSON texts all come from this same snapshot.
  const netlist::Design& design() const;
  const std::string& netlist_text(NetlistFormat format) const;

  // --- stage 4: estimates (lazy) ---
  const estimate::AreaEstimate& area() const;
  /// Throws HdlError (uncached) if the circuit has a combinational cycle.
  const estimate::TimingEstimate& timing() const;

  // --- viewer snapshots (lazy) ---
  const std::string& hierarchy_text() const;
  const std::string& interface_text() const;
  const std::string& schematic_text() const;
  const std::string& schematic_svg() const;
  const std::string& layout_text() const;
  const std::string& layout_svg() const;
  const std::string& memories_text() const;

  /// A private simulation instance of this configuration: fresh
  /// elaboration (its own value state) bound to the shared compiled
  /// program (and, when the threaded kernel could engage, the shared
  /// island plan). `sim_threads` is the kernel thread count for batched
  /// entry points (0 = auto). What sessions and black-box deliveries use.
  std::unique_ptr<BlackBoxModel> instantiate(std::size_t sim_threads = 0) const;

  /// Approximate resident footprint for the store's byte budget: the
  /// elaborated graph plus whatever stages have been memoized so far.
  std::size_t resident_bytes() const;

 private:
  /// Memoize a string view under `key` (computed under mu_).
  template <typename Fn>
  const std::string& memo_text(const char* key, Fn&& fn) const;

  std::shared_ptr<const ModuleGenerator> generator_;
  std::string module_;
  ParamMap params_;
  std::uint64_t param_hash_ = 0;
  BuildResult build_;
  std::size_t prim_count_ = 0;

  /// Guards computation of every lazy stage below; once a stage is set it
  /// is never mutated again, so returned references outlive the lock.
  mutable std::mutex mu_;
  mutable std::shared_ptr<const CompiledProgram> program_;
  mutable std::shared_ptr<const IslandPlan> islands_;
  mutable std::unique_ptr<netlist::Design> design_;
  mutable std::map<int, std::string> netlists_;  ///< by NetlistFormat
  mutable std::optional<estimate::AreaEstimate> area_;
  mutable std::optional<estimate::TimingEstimate> timing_;
  mutable std::map<std::string, std::string> views_;
};

}  // namespace jhdl::core
