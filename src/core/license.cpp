#include "core/license.h"

namespace jhdl::core {

const char* license_tier_name(LicenseTier tier) {
  switch (tier) {
    case LicenseTier::Anonymous:
      return "anonymous";
    case LicenseTier::Evaluation:
      return "evaluation";
    case LicenseTier::Licensed:
      return "licensed";
  }
  return "?";
}

FeatureSet LicensePolicy::features_for(LicenseTier tier) {
  switch (tier) {
    case LicenseTier::Anonymous:
      // Figure 2, left configuration: module generator + estimator only.
      return {Feature::ParameterInterface, Feature::Estimator};
    case LicenseTier::Evaluation:
      // Evaluation adds visibility and black-box simulation but not
      // netlist delivery.
      return {Feature::ParameterInterface, Feature::Estimator,
              Feature::StructuralViewer,  Feature::LayoutViewer,
              Feature::Simulator,         Feature::WaveformViewer,
              Feature::BlackBoxSim};
    case LicenseTier::Licensed:
      // Figure 2, right configuration: full visibility plus netlisting.
      return FeatureSet::all();
  }
  return {};
}

LicensePolicy LicensePolicy::make(std::string customer, LicenseTier tier,
                                  int expires_day) {
  LicensePolicy p;
  p.customer = std::move(customer);
  p.tier = tier;
  p.features = features_for(tier);
  p.expires_day = expires_day;
  return p;
}

}  // namespace jhdl::core
