// ModuleGenerator: the vendor-side abstraction an applet wraps. A
// generator knows its parameter schema and can elaborate a fresh circuit
// instance (its own HWSystem) for a given parameter assignment - the
// "module generator executables" of Section 3.2.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/params.h"
#include "hdl/hwsystem.h"

namespace jhdl::core {

/// A freshly elaborated circuit instance. The HWSystem owns everything;
/// `top` is the IP cell; `inputs`/`outputs` are the externally drivable /
/// observable wires by logical port name.
struct BuildResult {
  std::unique_ptr<HWSystem> system;
  Cell* top = nullptr;
  std::map<std::string, Wire*> inputs;
  std::map<std::string, Wire*> outputs;
  /// Cycles before outputs reflect inputs (pipelined IP), 0 = comb.
  std::size_t latency = 0;
};

/// Interface implemented by every deliverable IP generator.
class ModuleGenerator {
 public:
  virtual ~ModuleGenerator() = default;

  /// Stable identifier, e.g. "kcm-multiplier".
  virtual std::string name() const = 0;
  /// One-line marketing description shown by the applet.
  virtual std::string description() const = 0;
  /// Parameter schema (validated by ParamMap::resolved).
  virtual std::vector<ParamSpec> params() const = 0;
  /// Elaborate an instance. `params` is validated and completed before
  /// this is called.
  virtual BuildResult build(const ParamMap& params) const = 0;
};

}  // namespace jhdl::core
