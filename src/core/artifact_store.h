// ArtifactStore: the content-addressed cache every consumer of elaborated
// circuits reads from.
//
// Keyed by (module, canonical param hash): ParamMap::resolved fills
// defaults and name-orders the entries, so assignments that differ only
// in explicit-vs-default values or insertion order address the SAME
// artifact - the store resolves internally, so callers cannot alias the
// key by passing a raw assignment.
//
// Semantics:
//   - refcounted: entries hand out shared_ptr<const IpArtifact>; holding
//     one PINS the artifact. Eviction only drops entries the store alone
//     owns, so a live session (or a parked, resumable one) can never have
//     its program freed underneath it.
//   - LRU with a byte budget: after each insert/hit the store trims
//     least-recently-used unpinned entries until resident_bytes() fits
//     config.budget_bytes (0 = unlimited). When everything is pinned the
//     store runs over budget and counts pinned_skips instead of breaking
//     anyone.
//   - single-flight: concurrent get_or_build calls for one missing key
//     elaborate ONCE - the first caller builds, the rest wait on the
//     in-flight future and count as coalesced hits. A build that throws
//     propagates to every waiter and leaves no entry behind.
//
// Observability (optional registry): artifact.hits / .misses /
// .coalesced / .evictions / .pinned_skips counters, artifact.build_us
// histogram, artifact.resident_bytes + artifact.entries gauges.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "core/artifact.h"
#include "obs/metrics.h"

namespace jhdl::core {

/// Shared storefront cache of IpArtifacts (see file comment).
class ArtifactStore {
 public:
  struct Config {
    /// Resident-byte budget for unpinned entries (0 = unlimited).
    std::size_t budget_bytes = 64u << 20;
  };

  /// Plain-value counters snapshot.
  struct Stats {
    std::uint64_t hits = 0;        ///< key present (incl. refreshed cost)
    std::uint64_t misses = 0;      ///< builds started
    std::uint64_t coalesced = 0;   ///< waiters joined to an in-flight build
    std::uint64_t evictions = 0;   ///< LRU entries dropped for the budget
    std::uint64_t pinned_skips = 0;  ///< over budget but everything pinned
    std::size_t entries = 0;
    std::size_t resident_bytes = 0;
  };

  /// `registry` (optional) receives the artifact.* instruments; it must
  /// outlive the store.
  explicit ArtifactStore(Config config, obs::MetricsRegistry* registry = nullptr);
  ArtifactStore() : ArtifactStore(Config{}) {}

  /// THE entry point: canonicalize `params` against the generator's
  /// schema, then return the cached artifact, join an in-flight build, or
  /// elaborate (exactly one thread per key). Throws what the generator's
  /// validation/elaboration throws. `was_hit`, when non-null, reports
  /// whether the call avoided a build (cache hit or coalesced wait).
  std::shared_ptr<const IpArtifact> get_or_build(
      std::shared_ptr<const ModuleGenerator> generator, const ParamMap& params,
      bool* was_hit = nullptr);

  /// Cache-only probe by canonical key; null on miss (never builds).
  std::shared_ptr<const IpArtifact> lookup(const std::string& module,
                                           std::uint64_t param_hash) const;

  /// Drop every entry the store alone owns (pinned artifacts live on with
  /// their holders). Returns how many were dropped.
  std::size_t clear();

  Stats stats() const;
  std::size_t size() const;
  std::size_t resident_bytes() const;
  const Config& config() const { return config_; }

 private:
  using Key = std::pair<std::string, std::uint64_t>;

  struct Entry {
    std::shared_ptr<const IpArtifact> artifact;
    std::uint64_t last_used = 0;  ///< LRU stamp (monotonic use counter)
    std::size_t cost = 0;         ///< resident_bytes at last touch
  };

  /// Trim LRU unpinned entries until the budget fits. Caller holds mu_.
  void enforce_budget_locked();
  void publish_gauges_locked();

  Config config_;
  mutable std::mutex mu_;
  std::map<Key, Entry> entries_;
  std::map<Key, std::shared_future<std::shared_ptr<const IpArtifact>>>
      in_flight_;
  std::uint64_t use_clock_ = 0;
  std::size_t resident_ = 0;  ///< sum of entry costs

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> pinned_skips_{0};

  // Optional registry mirrors (null when no registry was given).
  obs::Counter* m_hits_ = nullptr;
  obs::Counter* m_misses_ = nullptr;
  obs::Counter* m_coalesced_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
  obs::Counter* m_pinned_skips_ = nullptr;
  obs::Histogram* m_build_us_ = nullptr;
  obs::Gauge* m_resident_ = nullptr;
  obs::Gauge* m_entries_ = nullptr;
};

}  // namespace jhdl::core
