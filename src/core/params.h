// Parameter schema and values for module generators - the paper's
// "programmatic circuit generator interface": "IP executables may provide
// an interface that exposes the parameters and options available to the
// user of the IP" (Section 3.2).
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace jhdl::core {

/// Raised on invalid parameter names, types, or out-of-range values.
class ParamError : public std::runtime_error {
 public:
  explicit ParamError(const std::string& what) : std::runtime_error(what) {}
};

/// Declaration of one generator parameter.
struct ParamSpec {
  enum class Kind { Int, Bool };
  std::string name;
  Kind kind = Kind::Int;
  std::int64_t min_value = 0;   ///< ints only
  std::int64_t max_value = 0;   ///< ints only
  std::int64_t default_value = 0;  ///< bools: 0/1
  std::string doc;
};

/// A set of parameter values keyed by name.
class ParamMap {
 public:
  ParamMap() = default;

  ParamMap& set(const std::string& name, std::int64_t value) {
    values_[name] = value;
    return *this;
  }
  ParamMap& set(const std::string& name, bool value) {
    values_[name] = value ? 1 : 0;
    return *this;
  }

  bool has(const std::string& name) const { return values_.count(name) > 0; }
  std::int64_t get(const std::string& name) const;
  const std::map<std::string, std::int64_t>& values() const { return values_; }

  /// Validate against a schema: unknown names and out-of-range values
  /// throw ParamError; missing values are filled with defaults. Returns
  /// the completed map. The result is CANONICAL: every schema parameter
  /// is present (explicit-vs-default no longer distinguishable) and the
  /// underlying map is name-ordered (insertion order no longer matters),
  /// so two assignments that elaborate the same circuit resolve to maps
  /// with equal values(), summary() and content_hash().
  ParamMap resolved(const std::vector<ParamSpec>& schema) const;

  /// Human-readable "name=value, ..." summary.
  std::string summary() const;

  /// Stable FNV-1a content hash over the (name-ordered) entries. Only a
  /// resolved() map hashes canonically - hash resolved(schema), never the
  /// raw user assignment, when the hash is used as a cache key (the
  /// artifact store's aliasing guarantee).
  std::uint64_t content_hash() const;

 private:
  std::map<std::string, std::int64_t> values_;
};

/// Render a schema as help text (the GUI of Figure 1, in text form).
std::string describe_schema(const std::vector<ParamSpec>& schema);

}  // namespace jhdl::core
