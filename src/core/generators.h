// Stock IP generators offered through applets: the paper's constant
// coefficient multiplier plus adder and FIR IP for multi-IP scenarios
// (the "developing applets that deliver more than one IP module" future
// work, Section 5).
#pragma once

#include "core/generator.h"

namespace jhdl::core {

/// The paper's running example (Figures 1 and 3): VirtexKCMMultiplier.
/// Parameters: input_width, product_width (0 = full), constant,
/// signed_mode, pipelined_mode.
class KcmGenerator final : public ModuleGenerator {
 public:
  std::string name() const override { return "kcm-multiplier"; }
  std::string description() const override {
    return "Optimized constant coefficient multiplier for Virtex "
           "(partial-product LUT tables, preplaced carry-chain adders)";
  }
  std::vector<ParamSpec> params() const override;
  BuildResult build(const ParamMap& params) const override;
};

/// Carry-chain adder IP. Parameters: width, registered (output register).
class AdderGenerator final : public ModuleGenerator {
 public:
  std::string name() const override { return "carry-adder"; }
  std::string description() const override {
    return "Pipelinable carry-chain adder with preplaced slices";
  }
  std::vector<ParamSpec> params() const override;
  BuildResult build(const ParamMap& params) const override;
};

/// 4-tap FIR filter IP built from KCMs. Parameters: input_width,
/// c0..c3, pipelined.
class FirGenerator final : public ModuleGenerator {
 public:
  std::string name() const override { return "fir4-filter"; }
  std::string description() const override {
    return "4-tap FIR filter assembled from KCM multiplier IP";
  }
  std::vector<ParamSpec> params() const override;
  BuildResult build(const ParamMap& params) const override;
};

/// Seeded random combinational gate network. Parameters: input_width,
/// output_width, depth, seed. Each output bit is a bounded-depth cone of
/// 2-input gates over random input bits, so the same seed always yields
/// the same function - the attack harness's exactly-recoverable target,
/// and a stand-in for small glue-logic IP.
class GateNetGenerator final : public ModuleGenerator {
 public:
  std::string name() const override { return "gate-net"; }
  std::string description() const override {
    return "Seeded random combinational gate network (bounded-depth "
           "cones of AND/OR/XOR/INV over the input bits)";
  }
  std::vector<ParamSpec> params() const override;
  BuildResult build(const ParamMap& params) const override;
};

/// Direct digital synthesizer IP (BRAM sine table + phase accumulator).
/// Parameters: phase_width, tuning.
class DdsIpGenerator final : public ModuleGenerator {
 public:
  std::string name() const override { return "dds-synth"; }
  std::string description() const override {
    return "Direct digital synthesizer: block-RAM sine table swept by a "
           "phase accumulator";
  }
  std::vector<ParamSpec> params() const override;
  BuildResult build(const ParamMap& params) const override;
};

}  // namespace jhdl::core
