#include "core/webpage.h"

#include <sstream>

#include "util/strings.h"

namespace jhdl::core {
namespace {

void escape_html(std::ostream& os, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '<':
        os << "&lt;";
        break;
      case '>':
        os << "&gt;";
        break;
      case '&':
        os << "&amp;";
        break;
      default:
        os << c;
    }
  }
}

void pre_block(std::ostream& os, const std::string& text) {
  os << "<pre>";
  escape_html(os, text);
  os << "</pre>\n";
}

}  // namespace

std::string render_applet_page(Applet& applet) {
  std::ostringstream os;
  os << "<!DOCTYPE html>\n<html>\n<head><title>";
  escape_html(os, applet.title());
  os << "</title></head>\n<body>\n";
  os << "<h1>";
  escape_html(os, applet.title());
  os << "</h1>\n";
  os << "<p>customer: <b>" << applet.license().customer << "</b> ("
     << license_tier_name(applet.license().tier) << ")</p>\n";

  os << "<h2>Parameters</h2>\n";
  pre_block(os, applet.describe());

  auto section = [&](const char* title,
                     const std::function<std::string()>& body,
                     bool preformatted) {
    os << "<h2>" << title << "</h2>\n";
    try {
      std::string content = body();
      if (preformatted) {
        pre_block(os, content);
      } else {
        os << content << "\n";
      }
    } catch (const AppletSecurityError&) {
      os << "<p><i>not licensed</i></p>\n";
    } catch (const std::logic_error&) {
      os << "<p><i>build an instance first</i></p>\n";
    }
  };

  section("Estimate",
          [&] {
            auto area = applet.area();
            auto timing = applet.timing();
            return format(
                "LUTs %zu  FFs %zu  carries %zu  BRAMs %zu  slices %zu\n"
                "critical path %.2f ns (%zu levels), fmax %.1f MHz",
                area.luts, area.ffs, area.carries, area.brams, area.slices,
                timing.comb_delay_ns, timing.levels, timing.fmax_mhz);
          },
          true);
  section("Structure", [&] { return applet.hierarchy(); }, true);
  section("Schematic", [&] { return applet.schematic_svg(); }, false);
  section("Layout", [&] { return applet.layout_svg(); }, false);
  section("Memories", [&] { return applet.memories(); }, true);
  section("Waveforms", [&] { return applet.waves(); }, true);

  os << "<h2>Download</h2>\n<table border=\"1\">\n"
     << "<tr><th>archive</th><th>files</th><th>bytes</th></tr>\n";
  auto report = applet.download_report();
  for (const auto& row : report.rows) {
    os << "<tr><td>" << row.file << "</td><td>" << row.entries << "</td><td>"
       << row.compressed << "</td></tr>\n";
  }
  os << "<tr><td><b>total</b></td><td></td><td><b>"
     << report.total_compressed << "</b></td></tr>\n</table>\n";

  os << "<p><small>" << applet.meter().report() << "</small></p>\n";
  os << "</body>\n</html>\n";
  return os.str();
}

}  // namespace jhdl::core
