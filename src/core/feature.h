// Applet capability flags - the paper's central idea: "a custom Java
// executable can be created and delivered that is customized to the needs
// of both the customer and vendor. By controlling the content and opacity
// of the IP executable, vendors may determine the features available for
// evaluation as well as the visibility into the delivered IP" (Section 3.2).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace jhdl::core {

/// The individually gateable IP-evaluation tools named in the paper.
enum class Feature : std::uint32_t {
  ParameterInterface = 1u << 0,  ///< expose parameters & build instances
  Estimator = 1u << 1,           ///< area / timing estimates
  StructuralViewer = 1u << 2,    ///< hierarchy browser + schematic
  LayoutViewer = 1u << 3,        ///< RLOC layout view
  Simulator = 1u << 4,           ///< interactive simulation
  WaveformViewer = 1u << 5,      ///< recorded waveforms / VCD export
  Netlister = 1u << 6,           ///< EDIF / VHDL / Verilog / JSON export
  BlackBoxSim = 1u << 7,         ///< value-only co-simulation interface
};

const char* feature_name(Feature f);

/// A set of features; cheap value type.
class FeatureSet {
 public:
  FeatureSet() = default;
  FeatureSet(std::initializer_list<Feature> features) {
    for (Feature f : features) add(f);
  }

  FeatureSet& add(Feature f) {
    bits_ |= static_cast<std::uint32_t>(f);
    return *this;
  }
  FeatureSet& remove(Feature f) {
    bits_ &= ~static_cast<std::uint32_t>(f);
    return *this;
  }
  bool has(Feature f) const {
    return (bits_ & static_cast<std::uint32_t>(f)) != 0;
  }
  bool empty() const { return bits_ == 0; }
  std::uint32_t bits() const { return bits_; }

  /// All features, for the full-visibility configuration.
  static FeatureSet all();

  std::vector<Feature> list() const;
  std::string to_string() const;

 private:
  std::uint32_t bits_ = 0;
};

}  // namespace jhdl::core
