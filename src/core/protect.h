// IP protection measures (paper Section 4.3): identifier obfuscation
// (standing in for Java class-file obfuscation), LUT-table watermarking
// (ref [7]), and usage metering (ref [6]).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hdl/cell.h"

namespace jhdl::core {

/// Statistics from an obfuscation pass.
struct ObfuscationReport {
  std::size_t cells_renamed = 0;
  std::size_t wires_renamed = 0;
  std::size_t nets_renamed = 0;
  std::size_t properties_kept = 0;  ///< functional properties (INIT etc.)
};

/// Renames every descendant cell, wire and net of `root` (but not root
/// itself or its port names - the interface stays usable) to opaque
/// seed-derived identifiers, and replaces composite definition names.
/// Functional properties (INIT*, VALUE) are preserved; the circuit's
/// behaviour and netlist connectivity are untouched.
ObfuscationReport obfuscate(Cell& root, std::uint64_t seed);

/// Watermark embedding into unreachable ROM16 truth-table entries.
///
/// A KCM built for a multiplicand whose top digit has fewer than 4 bits
/// (unsigned mode) never addresses the upper entries of its top-digit ROM;
/// those entries are free carriers. The watermark is a CRC-chained bit
/// string derived from `owner_tag`.
class Watermarker {
 public:
  explicit Watermarker(std::string owner_tag);

  /// Embed into every unreachable ROM entry under `root`.
  /// `reachable_addresses` tells the marker how many low addresses each
  /// top ROM actually uses; ROMs with 16 reachable entries are skipped.
  /// Returns the number of carrier entries written.
  std::size_t embed(Cell& root,
                    const std::map<std::string, unsigned>& reachable);

  /// Check how many carrier entries still hold the expected watermark.
  struct Extraction {
    std::size_t carriers = 0;
    std::size_t matching = 0;
    bool verified() const { return carriers > 0 && matching == carriers; }
  };
  Extraction extract(Cell& root,
                     const std::map<std::string, unsigned>& reachable) const;

 private:
  std::uint64_t signature_word(std::size_t index) const;
  std::string owner_tag_;
  std::uint32_t owner_crc_;
};

/// Usage metering (hardware metering, ref [6], in delivery-executable
/// form): counts gated operations per customer and enforces quotas.
class Meter {
 public:
  /// quota 0 = unlimited.
  explicit Meter(std::size_t netlist_quota = 0)
      : netlist_quota_(netlist_quota) {}

  void record_build() { ++builds_; }
  void record_simulation_cycles(std::size_t n) { sim_cycles_ += n; }
  /// Throws std::runtime_error when the quota is exhausted.
  void record_netlist();

  std::size_t builds() const { return builds_; }
  std::size_t sim_cycles() const { return sim_cycles_; }
  std::size_t netlists() const { return netlists_; }
  std::size_t netlist_quota() const { return netlist_quota_; }

  std::string report() const;

 private:
  std::size_t netlist_quota_;
  std::size_t builds_ = 0;
  std::size_t sim_cycles_ = 0;
  std::size_t netlists_ = 0;
};

}  // namespace jhdl::core
