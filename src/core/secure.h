// Secure delivery channel (paper Sections 4.3 and 5): archives are sealed
// with a per-customer license key before leaving the vendor's server, so
// only the licensed customer's applet shell can unpack them. Stacks on
// top of the visibility sandbox - encryption protects the download in
// transit/at rest; the applet's feature gating controls what a customer
// can do with the unpacked tools.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/packaging.h"
#include "util/cipher.h"

namespace jhdl::core {

/// A sealed archive ready for download.
struct SealedArchive {
  std::string name;
  std::vector<std::uint8_t> payload;  ///< nonce || tag || ciphertext
};

/// Vendor/customer ends of the secure channel, keyed by license secret.
///
/// Keys are SEPARATED per archive: each seal derives a fresh key from
/// (license secret, vendor salt, archive name, nonce), so no two
/// downloads are ever encrypted under the same key. This is the IEEE
/// 1735 lesson - a single shared data key turns every sealed netlist
/// into one oracle; with per-archive derivation, recovering one
/// archive's key (or replaying one keystream) unlocks exactly that
/// archive and nothing else.
class SecureChannel {
 public:
  /// Both ends hold the customer's license secret; the salt binds the
  /// derivation to this vendor.
  SecureChannel(const std::string& license_secret,
                const std::string& vendor_salt = "jhdlpp-ip-delivery");

  /// The key one specific (archive name, nonce) pair seals under.
  /// Exposed so tests and external tooling can check separation; never
  /// equal across distinct names or nonces for a fixed secret.
  Speck64::Key archive_key(const std::string& name,
                           std::uint64_t nonce) const;

  /// Seal an archive for download under its own derived key. The nonce
  /// must be unique per seal (the vendor's download counter).
  SealedArchive seal_archive(const Archive& archive,
                             std::uint64_t nonce) const;

  /// Verify, decrypt and deserialize, re-deriving the archive's key from
  /// its name and the sealed nonce. Throws std::runtime_error on a wrong
  /// secret, tampering, or a corrupt inner archive.
  Archive open_archive(const SealedArchive& sealed) const;

 private:
  std::string secret_;
  std::string salt_;
};

}  // namespace jhdl::core
