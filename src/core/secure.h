// Secure delivery channel (paper Sections 4.3 and 5): archives are sealed
// with a per-customer license key before leaving the vendor's server, so
// only the licensed customer's applet shell can unpack them. Stacks on
// top of the visibility sandbox - encryption protects the download in
// transit/at rest; the applet's feature gating controls what a customer
// can do with the unpacked tools.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/packaging.h"
#include "util/cipher.h"

namespace jhdl::core {

/// A sealed archive ready for download.
struct SealedArchive {
  std::string name;
  std::vector<std::uint8_t> payload;  ///< nonce || tag || ciphertext
};

/// Vendor/customer ends of the secure channel, keyed by license secret.
class SecureChannel {
 public:
  /// Keys are derived from the customer's license secret; the salt binds
  /// the key to this vendor.
  SecureChannel(const std::string& license_secret,
                const std::string& vendor_salt = "jhdlpp-ip-delivery");

  /// Seal an archive for download. The nonce must be unique per seal
  /// (the vendor's download counter).
  SealedArchive seal_archive(const Archive& archive,
                             std::uint64_t nonce) const;

  /// Verify, decrypt and deserialize. Throws std::runtime_error on a
  /// wrong key, tampering, or a corrupt inner archive.
  Archive open_archive(const SealedArchive& sealed) const;

 private:
  Speck64::Key key_;
};

}  // namespace jhdl::core
