#include "core/params.h"

#include <sstream>

namespace jhdl::core {

std::int64_t ParamMap::get(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    throw ParamError("parameter '" + name + "' not set");
  }
  return it->second;
}

ParamMap ParamMap::resolved(const std::vector<ParamSpec>& schema) const {
  // Reject unknown parameters first: typos must not silently disappear.
  for (const auto& [name, value] : values_) {
    bool known = false;
    for (const ParamSpec& spec : schema) known |= (spec.name == name);
    if (!known) throw ParamError("unknown parameter '" + name + "'");
  }
  ParamMap out;
  for (const ParamSpec& spec : schema) {
    std::int64_t v = has(spec.name) ? get(spec.name) : spec.default_value;
    if (spec.kind == ParamSpec::Kind::Bool) {
      if (v != 0 && v != 1) {
        throw ParamError("parameter '" + spec.name + "' must be 0 or 1, got " +
                         std::to_string(v));
      }
    } else if (v < spec.min_value || v > spec.max_value) {
      throw ParamError("parameter '" + spec.name + "' = " + std::to_string(v) +
                       " out of range [" + std::to_string(spec.min_value) +
                       ", " + std::to_string(spec.max_value) + "]");
    }
    out.set(spec.name, v);
  }
  return out;
}

std::string ParamMap::summary() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, value] : values_) {
    if (!first) os << ", ";
    first = false;
    os << name << "=" << value;
  }
  return os.str();
}

std::string describe_schema(const std::vector<ParamSpec>& schema) {
  std::ostringstream os;
  for (const ParamSpec& spec : schema) {
    os << "  " << spec.name;
    if (spec.kind == ParamSpec::Kind::Bool) {
      os << " (bool, default " << spec.default_value << ")";
    } else {
      os << " (int " << spec.min_value << ".." << spec.max_value
         << ", default " << spec.default_value << ")";
    }
    if (!spec.doc.empty()) os << ": " << spec.doc;
    os << "\n";
  }
  return os.str();
}

}  // namespace jhdl::core
