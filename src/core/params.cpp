#include "core/params.h"

#include <sstream>

namespace jhdl::core {

std::int64_t ParamMap::get(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    throw ParamError("parameter '" + name + "' not set");
  }
  return it->second;
}

ParamMap ParamMap::resolved(const std::vector<ParamSpec>& schema) const {
  // Reject unknown parameters first: typos must not silently disappear.
  for (const auto& [name, value] : values_) {
    bool known = false;
    for (const ParamSpec& spec : schema) known |= (spec.name == name);
    if (!known) throw ParamError("unknown parameter '" + name + "'");
  }
  ParamMap out;
  for (const ParamSpec& spec : schema) {
    std::int64_t v = has(spec.name) ? get(spec.name) : spec.default_value;
    if (spec.kind == ParamSpec::Kind::Bool) {
      if (v != 0 && v != 1) {
        throw ParamError("parameter '" + spec.name + "' must be 0 or 1, got " +
                         std::to_string(v));
      }
    } else if (v < spec.min_value || v > spec.max_value) {
      throw ParamError("parameter '" + spec.name + "' = " + std::to_string(v) +
                       " out of range [" + std::to_string(spec.min_value) +
                       ", " + std::to_string(spec.max_value) + "]");
    }
    out.set(spec.name, v);
  }
  return out;
}

std::string ParamMap::summary() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, value] : values_) {
    if (!first) os << ", ";
    first = false;
    os << name << "=" << value;
  }
  return os.str();
}

std::uint64_t ParamMap::content_hash() const {
  // FNV-1a over "name=value\n" in map (name) order; the value is hashed
  // as its 8 little-endian bytes so e.g. -1 and 255 cannot collide the
  // way a truncated text rendering might.
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](unsigned char byte) {
    h ^= byte;
    h *= 0x100000001B3ull;
  };
  for (const auto& [name, value] : values_) {
    for (char c : name) mix(static_cast<unsigned char>(c));
    mix('=');
    auto v = static_cast<std::uint64_t>(value);
    for (int i = 0; i < 8; ++i) mix(static_cast<unsigned char>(v >> (8 * i)));
    mix('\n');
  }
  return h;
}

std::string describe_schema(const std::vector<ParamSpec>& schema) {
  std::ostringstream os;
  for (const ParamSpec& spec : schema) {
    os << "  " << spec.name;
    if (spec.kind == ParamSpec::Kind::Bool) {
      os << " (bool, default " << spec.default_value << ")";
    } else {
      os << " (int " << spec.min_value << ".." << spec.max_value
         << ", default " << spec.default_value << ")";
    }
    if (!spec.doc.empty()) os << ": " << spec.doc;
    os << "\n";
  }
  return os.str();
}

}  // namespace jhdl::core
