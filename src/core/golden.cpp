#include "core/golden.h"

#include "core/corpus_generators.h"

namespace jhdl::core::golden {

namespace {

std::uint64_t width_mask(std::size_t width) {
  return width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
}

}  // namespace

// ----------------------------------------------------- systolic array

SystolicModel::SystolicModel(std::size_t rows, std::size_t cols,
                             std::size_t data_width, std::size_t guard_bits)
    : rows_(rows),
      cols_(cols),
      dw_(data_width),
      aw_(SystolicArrayGenerator::acc_width(data_width, guard_bits)),
      dmask_(width_mask(data_width)),
      amask_(width_mask(aw_)),
      a_reg_(rows * cols, 0),
      b_reg_(rows * cols, 0),
      acc_(rows * cols, 0) {}

void SystolicModel::step(std::uint64_t a_bus, std::uint64_t b_bus,
                         bool clr) {
  std::vector<std::uint64_t> a_in(rows_ * cols_), b_in(rows_ * cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const std::size_t i = r * cols_ + c;
      a_in[i] = c == 0 ? (a_bus >> (r * dw_)) & dmask_
                       : a_reg_[r * cols_ + (c - 1)];
      b_in[i] = r == 0 ? (b_bus >> (c * dw_)) & dmask_
                       : b_reg_[(r - 1) * cols_ + c];
    }
  }
  for (std::size_t i = 0; i < rows_ * cols_; ++i) {
    const std::uint64_t product = a_in[i] * b_in[i];  // fits: 2*dw <= 16
    acc_[i] = clr ? 0 : (acc_[i] + product) & amask_;
    a_reg_[i] = a_in[i];
    b_reg_[i] = b_in[i];
  }
}

// ---------------------------------------------------------- hash pipe

void CrcModel::step(std::uint32_t data) {
  for (std::size_t j = 0; j < k_; ++j) {
    const std::uint32_t fb = (state_ ^ (data >> j)) & 1u;
    state_ = (state_ >> 1) ^ (fb ? poly_ : 0u);
  }
}

void Sha1Model::reset() {
  s_[0] = 0x67452301u;
  s_[1] = 0xEFCDAB89u;
  s_[2] = 0x98BADCFEu;
  s_[3] = 0x10325476u;
  s_[4] = 0xC3D2E1F0u;
  for (auto& word : sr_) word = 0;
}

void Sha1Model::step(std::uint32_t w, unsigned stage, bool load_w) {
  auto rotl = [](std::uint32_t v, unsigned n) {
    return (v << n) | (v >> (32 - n));
  };
  const std::uint32_t sched =
      rotl(sr_[2] ^ sr_[7] ^ sr_[13] ^ sr_[15], 1);
  const std::uint32_t w_cur = load_w ? w : sched;

  const std::uint32_t b = s_[1], c = s_[2], d = s_[3];
  std::uint32_t f = 0, k = 0;
  switch (stage & 3u) {
    case 0: f = (b & c) | (~b & d); k = 0x5A827999u; break;
    case 1: f = b ^ c ^ d; k = 0x6ED9EBA1u; break;
    case 2: f = (b & c) | (b & d) | (c & d); k = 0x8F1BBCDCu; break;
    default: f = b ^ c ^ d; k = 0xCA62C1D6u; break;
  }
  const std::uint32_t temp = rotl(s_[0], 5) + f + s_[4] + k + w_cur;

  s_[4] = s_[3];
  s_[3] = s_[2];
  s_[2] = rotl(s_[1], 30);
  s_[1] = s_[0];
  s_[0] = temp;
  for (std::size_t j = 15; j > 0; --j) sr_[j] = sr_[j - 1];
  sr_[0] = w_cur;
}

// ------------------------------------------------------------ CORDIC

CordicModel::CordicModel(std::size_t width, std::size_t stages)
    : w_(width),
      stages_(stages),
      mask_(width_mask(width)),
      angles_(CordicGenerator::angle_table(width, stages)) {}

std::int64_t CordicModel::to_signed(std::uint64_t v) const {
  const std::uint64_t sign = std::uint64_t{1} << (w_ - 1);
  return (v & sign) ? static_cast<std::int64_t>(v | ~mask_)
                    : static_cast<std::int64_t>(v);
}

void CordicModel::rotate(std::uint64_t x, std::uint64_t y, std::uint64_t z,
                         std::uint64_t& xr, std::uint64_t& yr,
                         std::uint64_t& zr) const {
  std::int64_t sx = to_signed(x & mask_);
  std::int64_t sy = to_signed(y & mask_);
  std::int64_t sz = to_signed(z & mask_);
  for (std::size_t i = 0; i < stages_; ++i) {
    const std::int64_t xs = sx >> i;  // arithmetic; i < 64 always
    const std::int64_t ys = sy >> i;
    const auto at = to_signed(angles_[i]);
    std::int64_t nx, ny, nz;
    if (sz < 0) {
      nx = sx + ys;
      ny = sy - xs;
      nz = sz + at;
    } else {
      nx = sx - ys;
      ny = sy + xs;
      nz = sz - at;
    }
    sx = to_signed(static_cast<std::uint64_t>(nx) & mask_);
    sy = to_signed(static_cast<std::uint64_t>(ny) & mask_);
    sz = to_signed(static_cast<std::uint64_t>(nz) & mask_);
  }
  xr = static_cast<std::uint64_t>(sx) & mask_;
  yr = static_cast<std::uint64_t>(sy) & mask_;
  zr = static_cast<std::uint64_t>(sz) & mask_;
}

// ------------------------------------------------------------ rf-alu

RfAluModel::RfAluModel(std::size_t regs, std::size_t width)
    : regs_n_(regs), w_(width), mask_(width_mask(width)), regs_(regs, 0) {}

std::uint64_t RfAluModel::read(std::uint64_t addr) const {
  return addr < regs_n_ ? regs_[addr] : 0;
}

std::uint64_t RfAluModel::alu(unsigned op, std::uint64_t a,
                              std::uint64_t b) const {
  switch (op & 7u) {
    case 0: return (a + b) & mask_;
    case 1: return (a - b) & mask_;
    case 2: return a & b;
    case 3: return a | b;
    case 4: return a ^ b;
    case 5: return b;
    case 6: return a;
    default: return ~a & mask_;
  }
}

RfAluModel::Out RfAluModel::step(std::uint64_t ra, std::uint64_t rb,
                                 std::uint64_t wa, bool we, unsigned op,
                                 std::uint64_t imm, bool use_imm) {
  // Pre-edge: the value written is the ALU output over the OLD registers.
  const std::uint64_t b0 = use_imm ? (imm & mask_) : read(rb);
  const std::uint64_t wdata = alu(op, read(ra), b0);
  if (we && wa < regs_n_) regs_[wa] = wdata;
  // Post-edge: the read/ALU path re-settles over the new registers.
  const std::uint64_t b1 = use_imm ? (imm & mask_) : read(rb);
  Out out;
  out.result = alu(op, read(ra), b1);
  out.zero = out.result == 0;
  return out;
}

}  // namespace jhdl::core::golden
