// Applet: a sandboxed IP evaluation & delivery executable - the paper's
// central artifact. A vendor assembles one with AppletBuilder, choosing
// the feature set per customer license; every tool invocation is gated at
// this API boundary, so a delivered applet physically exposes only what
// the license grants ("IP evaluation and delivery tools may be organized
// into a single executable on a customer by customer basis", Section 3.2).
//
// A typical licensed-customer session (Figure 3):
//
//   Applet applet = AppletBuilder()
//                       .title("KCM Multiplier Evaluation")
//                       .generator(std::make_shared<KcmGenerator>())
//                       .license(LicensePolicy::make("acme", LicenseTier::Licensed))
//                       .build_applet();
//   applet.build(ParamMap()
//                    .set("input_width", 8)
//                    .set("product_width", 12)
//                    .set("constant", -56)
//                    .set("signed_mode", true)
//                    .set("pipelined_mode", true));
//   auto area = applet.area();
//   std::string tree = applet.hierarchy();
//   applet.sim_put("multiplicand", 100);
//   applet.sim_cycle(applet.latency());
//   auto product = applet.sim_get("product");
//   std::string edif = applet.netlist(NetlistFormat::Edif);
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/artifact_store.h"
#include "core/blackbox.h"
#include "core/feature.h"
#include "core/generator.h"
#include "core/license.h"
#include "core/packaging.h"
#include "core/protect.h"
#include "estimate/area.h"
#include "estimate/timing.h"
#include "sim/simulator.h"
#include "sim/waveform.h"

namespace jhdl::core {

/// Raised when a session invokes a tool its license does not grant.
class AppletSecurityError : public std::runtime_error {
 public:
  explicit AppletSecurityError(const std::string& what)
      : std::runtime_error(what) {}
};

// NetlistFormat now lives in core/artifact.h (next to the memoized
// per-format renderings) and is re-exported here unchanged.

/// Everything a vendor decides when assembling an applet.
struct AppletSpec {
  std::string title;
  std::shared_ptr<const ModuleGenerator> generator;
  LicensePolicy license;
  /// Shared artifact store (optional). When set - and the applet applies
  /// no per-customer circuit transform (watermark/obfuscation) - build()
  /// pins the store's snapshot instead of re-elaborating, so estimates,
  /// views and netlists are served from the same IpArtifact the delivery
  /// service and CLI tools read.
  std::shared_ptr<ArtifactStore> store;
  /// Obfuscate generated circuits before any structural output (names
  /// become opaque; function preserved).
  bool obfuscate = false;
  std::uint64_t obfuscation_seed = 0x1F2E3D4C;
  /// Embed the vendor watermark into free ROM carriers on build.
  std::string watermark_owner;  // empty = no watermark
  /// Netlist exports allowed per session (0 = unlimited).
  std::size_t netlist_quota = 0;
  /// The vendor's calendar day stamped into the executable at assembly
  /// time; gated operations are refused once the license has expired.
  int today = 0;
};

/// The sandboxed IP evaluation/delivery executable.
class Applet {
 public:
  explicit Applet(AppletSpec spec);

  // --- metadata (always available) ---
  const std::string& title() const { return spec_.title; }
  const LicensePolicy& license() const { return spec_.license; }
  const FeatureSet& features() const { return spec_.license.features; }
  bool can(Feature f) const { return features().has(f); }
  /// Human-readable banner: title, IP description, parameters, features.
  std::string describe() const;

  // --- parameter interface & build ---
  /// Elaborate an instance for `params` (validated against the schema).
  /// Replaces any previous instance. Gated by ParameterInterface.
  void build(const ParamMap& params);
  bool built() const { return build_.has_value() || artifact_ != nullptr; }
  /// The pinned store snapshot backing this applet's views (null when the
  /// applet elaborated privately: no store, watermark, or obfuscation).
  const std::shared_ptr<const IpArtifact>& artifact() const {
    return artifact_;
  }
  /// Latency of the built instance in cycles.
  std::size_t latency() const;
  const ParamMap& current_params() const;

  // --- estimator ---
  estimate::AreaEstimate area() const;
  estimate::TimingEstimate timing() const;

  // --- structural viewer ---
  std::string hierarchy() const;
  std::string interface_text() const;
  std::string schematic_text() const;
  std::string schematic_svg() const;

  // --- layout viewer ---
  std::string layout_text() const;
  std::string layout_svg() const;

  /// Memory contents dump (ROM tables, RAM state) - gated with the
  /// structural viewer since it reveals the partial-product tables.
  std::string memories() const;

  // --- simulator (the Cycle / Reset buttons of Figure 3) ---
  void sim_put(const std::string& input, std::uint64_t value);
  void sim_put_signed(const std::string& input, std::int64_t value);
  void sim_cycle(std::size_t n = 1);
  void sim_reset();
  BitVector sim_get(const std::string& output);

  // --- waveform viewer ---
  /// Record a port each cycle from now on.
  void watch(const std::string& port);
  std::string waves() const;
  std::string vcd() const;

  // --- netlister (metered) ---
  std::string netlist(NetlistFormat format);

  // --- black-box delivery ---
  /// A fresh, structure-free simulation model of the current instance
  /// (independent build; the applet keeps its own).
  std::unique_ptr<BlackBoxModel> make_black_box() const;

  // --- packaging & metering ---
  /// Download payload (the archives this applet's feature set pulls).
  Packager::Report download_report() const;
  const Meter& meter() const { return meter_; }

  /// Audit trail of gated operations ("op granted"/"op DENIED"), for the
  /// vendor's usage reporting.
  const std::vector<std::string>& audit_log() const { return audit_; }

 private:
  void require(Feature f, const char* operation) const;
  const BuildResult& checked_build(const char* operation) const;
  /// Sim paths on the artifact path: elaborate the private instance
  /// (bound to the artifact's shared compiled program) on first use.
  const BuildResult& ensure_instance(const char* operation);
  Wire* find_port(const std::map<std::string, Wire*>& map,
                  const std::string& name, const char* kind) const;

  AppletSpec spec_;
  ParamMap params_;
  std::shared_ptr<const IpArtifact> artifact_;
  std::optional<BuildResult> build_;
  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<WaveformRecorder> recorder_;
  Meter meter_;
  mutable std::vector<std::string> audit_;
};

/// Fluent vendor-side assembly of applets.
class AppletBuilder {
 public:
  AppletBuilder& title(std::string t) {
    spec_.title = std::move(t);
    return *this;
  }
  AppletBuilder& generator(std::shared_ptr<const ModuleGenerator> g) {
    spec_.generator = std::move(g);
    return *this;
  }
  AppletBuilder& license(LicensePolicy policy) {
    spec_.license = std::move(policy);
    return *this;
  }
  /// Serve builds from a shared artifact store (see AppletSpec::store).
  AppletBuilder& artifact_store(std::shared_ptr<ArtifactStore> store) {
    spec_.store = std::move(store);
    return *this;
  }
  /// Grant or revoke an individual feature on top of the license tier.
  AppletBuilder& grant(Feature f) {
    spec_.license.features.add(f);
    return *this;
  }
  AppletBuilder& revoke(Feature f) {
    spec_.license.features.remove(f);
    return *this;
  }
  AppletBuilder& obfuscated(std::uint64_t seed = 0x1F2E3D4C) {
    spec_.obfuscate = true;
    spec_.obfuscation_seed = seed;
    return *this;
  }
  AppletBuilder& watermark(std::string owner) {
    spec_.watermark_owner = std::move(owner);
    return *this;
  }
  AppletBuilder& netlist_quota(std::size_t quota) {
    spec_.netlist_quota = quota;
    return *this;
  }
  /// Stamp the assembly day (for license-expiry enforcement).
  AppletBuilder& assembled_on(int day) {
    spec_.today = day;
    return *this;
  }

  /// Validates the spec (a generator is mandatory) and builds the applet.
  Applet build_applet();

 private:
  AppletSpec spec_;
};

}  // namespace jhdl::core
