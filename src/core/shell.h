// AppletShell: a scriptable command interface over an Applet - the
// text-mode equivalent of the GUI panes in Figures 1 and 3 (parameter
// entry, Build/Cycle/Reset/Netlist buttons). Drives exactly the same
// sandboxed API, so license gating applies identically; errors come back
// as messages, never exceptions, like a GUI would surface them.
//
//   AppletShell shell(applet);
//   shell.run_script(
//       "build input_width=8 constant=-56 signed_mode=1\n"
//       "area\n"
//       "put multiplicand 100\n"
//       "cycle\n"
//       "get product\n"
//       "netlist edif\n");
#pragma once

#include <string>

#include "core/applet.h"

namespace jhdl::core {

/// Command interpreter over one applet session.
class AppletShell {
 public:
  explicit AppletShell(Applet& applet) : applet_(applet) {}

  /// Execute one command line; returns the command's output (always
  /// newline-terminated; errors are reported as "error: ..." text).
  std::string execute(const std::string& line);

  /// Execute a whole script (newline-separated commands; '#' comments and
  /// blank lines skipped). Returns the concatenated output.
  std::string run_script(const std::string& script);

  /// The command reference printed by "help".
  static std::string help();

 private:
  Applet& applet_;
};

}  // namespace jhdl::core
