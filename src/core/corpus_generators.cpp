#include "core/corpus_generators.h"

#include <cmath>

#include "hdl/error.h"
#include "modgen/modgen.h"
#include "tech/constants.h"
#include "tech/ff.h"
#include "tech/gates.h"

namespace jhdl::core {

namespace {

using modgen::CarryChainAdder;
using modgen::RegisterBank;
using modgen::constant_wire;
using modgen::sign_extend;
using modgen::zero_extend;

/// XOR-reduce `terms` to one bit (balanced pairwise tree). Zero terms is
/// a constant 0; one term is returned as-is.
Wire* xor_reduce(Cell* parent, std::vector<Wire*> terms) {
  if (terms.empty()) return constant_wire(parent, 1, 0);
  while (terms.size() > 1) {
    std::vector<Wire*> next;
    std::size_t i = 0;
    for (; i + 1 < terms.size(); i += 2) {
      Wire* o = new Wire(parent, 1);
      new tech::Xor2(parent, terms[i], terms[i + 1], o);
      next.push_back(o);
    }
    if (i < terms.size()) next.push_back(terms[i]);
    terms = std::move(next);
  }
  return terms[0];
}

/// Bus-wide 2:1 mux: out = sel ? b : a.
Wire* mux_bus(Cell* parent, Wire* a, Wire* b, Wire* sel) {
  Wire* o = new Wire(parent, a->width());
  for (std::size_t i = 0; i < a->width(); ++i) {
    new tech::Mux2(parent, a->gw(i), b->gw(i), sel, o->gw(i));
  }
  return o;
}

/// Rotate-left view (pure routing): result bit i = w bit (i - n mod 32).
Wire* rotl_view(Wire* w, unsigned n) {
  const std::size_t width = w->width();
  n %= width;
  if (n == 0) return w;
  // result[width-1 : n] = w[width-1-n : 0] (MSBs), result[n-1:0] =
  // w[width-1 : width-n] (LSBs).
  return w->range(width - 1 - n, 0)
      ->concat(w->range(width - 1, width - n));
}

/// Arithmetic-shift-right view by `i` (sign bits fill from the MSB net).
Wire* asr_view(Cell* parent, Wire* w, std::size_t i) {
  if (i == 0) return w;
  if (i >= w->width()) {
    return sign_extend(parent, w->gw(w->width() - 1), w->width());
  }
  return sign_extend(parent, w->range(w->width() - 1, i), w->width());
}

/// s = a + b when the 1-bit `sub` is 0, a - b when 1 (b XOR sub plus
/// carry-in sub), truncated to the operand width.
Wire* add_sub(Cell* parent, Wire* a, Wire* b, Wire* sub) {
  Wire* bx = new Wire(parent, b->width());
  for (std::size_t i = 0; i < b->width(); ++i) {
    new tech::Xor2(parent, b->gw(i), sub, bx->gw(i));
  }
  Wire* s = new Wire(parent, a->width());
  new CarryChainAdder(parent, a, bx, s, sub);
  return s;
}

/// s = a + b mod 2^width.
Wire* add_mod(Cell* parent, Wire* a, Wire* b) {
  Wire* s = new Wire(parent, a->width());
  new CarryChainAdder(parent, a, b, s);
  return s;
}

}  // namespace

// ----------------------------------------------------- systolic array

std::vector<ParamSpec> SystolicArrayGenerator::params() const {
  return {
      {"rows", ParamSpec::Kind::Int, 1, 4, 2, "PE grid rows"},
      {"cols", ParamSpec::Kind::Int, 1, 4, 2, "PE grid columns"},
      {"data_width", ParamSpec::Kind::Int, 2, 8, 4,
       "operand width in bits (unsigned)"},
      {"guard_bits", ParamSpec::Kind::Int, 0, 8, 4,
       "accumulator guard bits above the full product"},
  };
}

namespace {

class SystolicIp : public Cell {
 public:
  SystolicIp(Node* parent, Wire* a, Wire* b, Wire* clr, Wire* acc,
             std::size_t rows, std::size_t cols, std::size_t dw,
             std::size_t aw)
      : Cell(parent, "systolic_ip") {
    set_type_name("systolic_" + std::to_string(rows) + "x" +
                  std::to_string(cols) + "x" + std::to_string(dw));
    port_in("a", a);
    port_in("b", b);
    port_in("clr", clr);
    port_out("acc", acc);

    // Registered operand forwarding: a flows west->east, b north->south.
    std::vector<std::vector<Wire*>> a_q(rows, std::vector<Wire*>(cols));
    std::vector<std::vector<Wire*>> b_q(rows, std::vector<Wire*>(cols));
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        Wire* a_in = c == 0 ? a->range((r + 1) * dw - 1, r * dw)
                            : a_q[r][c - 1];
        Wire* b_in = r == 0 ? b->range((c + 1) * dw - 1, c * dw)
                            : b_q[r - 1][c];
        a_q[r][c] = new Wire(this, dw);
        b_q[r][c] = new Wire(this, dw);
        new RegisterBank(this, a_in, a_q[r][c]);
        new RegisterBank(this, b_in, b_q[r][c]);

        Wire* product = new Wire(this, 2 * dw);
        new modgen::ArrayMultiplier(this, a_in, b_in, product);

        const std::size_t idx = r * cols + c;
        Wire* acc_q = acc->range((idx + 1) * aw - 1, idx * aw);
        Wire* sum = new Wire(this, aw);
        new CarryChainAdder(this, acc_q, zero_extend(this, product, aw),
                            sum);
        new RegisterBank(this, sum, acc_q, /*ce=*/nullptr, clr);
      }
    }
  }
};

}  // namespace

BuildResult SystolicArrayGenerator::build(const ParamMap& params) const {
  const auto rows = static_cast<std::size_t>(params.get("rows"));
  const auto cols = static_cast<std::size_t>(params.get("cols"));
  const auto dw = static_cast<std::size_t>(params.get("data_width"));
  const auto guard = static_cast<std::size_t>(params.get("guard_bits"));
  const std::size_t aw = acc_width(dw, guard);

  BuildResult r;
  r.system = std::make_unique<HWSystem>("systolic_system");
  Wire* a = new Wire(r.system.get(), rows * dw, "a");
  Wire* b = new Wire(r.system.get(), cols * dw, "b");
  Wire* clr = new Wire(r.system.get(), 1, "clr");
  Wire* acc = new Wire(r.system.get(), rows * cols * aw, "acc");
  r.top = new SystolicIp(r.system.get(), a, b, clr, acc, rows, cols, dw, aw);
  r.inputs["a"] = a;
  r.inputs["b"] = b;
  r.inputs["clr"] = clr;
  r.outputs["acc"] = acc;
  r.latency = rows + cols;  // worst-case operand fill to the far corner
  return r;
}

// --------------------------------------------------------- hash pipe

std::vector<ParamSpec> HashPipeGenerator::params() const {
  return {
      {"algo", ParamSpec::Kind::Bool, 0, 1, 0,
       "0 = reflected CRC-32 datapath, 1 = SHA-1 round core"},
      {"data_width", ParamSpec::Kind::Int, 1, 32, 8,
       "CRC input bits consumed per cycle (ignored for SHA-1)"},
      {"poly", ParamSpec::Kind::Int, 1, 4294967295, 3988292384,
       "reflected CRC polynomial (default 0xEDB88320; ignored for SHA-1)"},
  };
}

std::vector<HashPipeGenerator::CrcLin> HashPipeGenerator::crc_next_state(
    std::uint32_t poly, std::size_t data_width) {
  // Propagate symbolic basis vectors through the bit-serial reflected
  // update: per data bit j (LSB first), fb = state[0] ^ d[j], state' =
  // (state >> 1) ^ (fb ? poly : 0).
  std::vector<CrcLin> cur(32);
  for (std::size_t i = 0; i < 32; ++i) cur[i].state_mask = 1u << i;
  for (std::size_t j = 0; j < data_width; ++j) {
    CrcLin fb = cur[0];
    fb.data_mask ^= 1u << j;
    std::vector<CrcLin> nxt(32);
    for (std::size_t i = 0; i + 1 < 32; ++i) nxt[i] = cur[i + 1];
    for (std::size_t i = 0; i < 32; ++i) {
      if ((poly >> i) & 1u) {
        nxt[i].state_mask ^= fb.state_mask;
        nxt[i].data_mask ^= fb.data_mask;
      }
    }
    cur = std::move(nxt);
  }
  return cur;
}

namespace {

class CrcPipeIp : public Cell {
 public:
  CrcPipeIp(Node* parent, Wire* d, Wire* crc, std::uint32_t poly)
      : Cell(parent, "crc_pipe_ip") {
    set_type_name("crc32_k" + std::to_string(d->width()));
    port_in("d", d);
    port_out("crc", crc);

    const auto lin =
        HashPipeGenerator::crc_next_state(poly, d->width());
    for (std::size_t i = 0; i < 32; ++i) {
      std::vector<Wire*> terms;
      for (std::size_t j = 0; j < 32; ++j) {
        if ((lin[i].state_mask >> j) & 1u) terms.push_back(crc->gw(j));
      }
      for (std::size_t j = 0; j < d->width(); ++j) {
        if ((lin[i].data_mask >> j) & 1u) terms.push_back(d->gw(j));
      }
      Wire* next = xor_reduce(this, std::move(terms));
      // CRC registers power on to the 0xFFFFFFFF preset.
      new tech::FD(this, next, crc->gw(i), /*init_one=*/true);
    }
  }
};

class Sha1CoreIp : public Cell {
 public:
  Sha1CoreIp(Node* parent, Wire* w_in, Wire* stage, Wire* load_w,
             Wire* digest)
      : Cell(parent, "sha1_core_ip") {
    set_type_name("sha1_core");
    port_in("w", w_in);
    port_in("stage", stage);
    port_in("load_w", load_w);
    port_out("digest", digest);

    Wire* a = digest->range(159, 128);
    Wire* b = digest->range(127, 96);
    Wire* c = digest->range(95, 64);
    Wire* d = digest->range(63, 32);
    Wire* e = digest->range(31, 0);

    // 16-word message schedule shift register (sr[0] = newest).
    std::vector<Wire*> sr(16);
    for (auto& word : sr) word = new Wire(this, 32);
    Wire* sched_x = new Wire(this, 32);
    for (std::size_t i = 0; i < 32; ++i) {
      Wire* t = new Wire(this, 1);
      new tech::Xor3(this, sr[2]->gw(i), sr[7]->gw(i), sr[13]->gw(i), t);
      new tech::Xor2(this, t, sr[15]->gw(i), sched_x->gw(i));
    }
    Wire* w_sched = rotl_view(sched_x, 1);
    Wire* w_cur = mux_bus(this, w_sched, w_in, load_w);
    for (std::size_t j = 0; j < 16; ++j) {
      Wire* src = j == 0 ? w_cur : sr[j - 1];
      for (std::size_t i = 0; i < 32; ++i) {
        new tech::FD(this, src->gw(i), sr[j]->gw(i));
      }
    }

    // Round function f and constant K, selected by the 2-bit stage.
    Wire* s0 = stage->gw(0);
    Wire* s1 = stage->gw(1);
    Wire* f_ch = new Wire(this, 32);
    Wire* f_par = new Wire(this, 32);
    Wire* f_maj = new Wire(this, 32);
    for (std::size_t i = 0; i < 32; ++i) {
      // Ch(b,c,d) = b ? c : d.
      new tech::Mux2(this, d->gw(i), c->gw(i), b->gw(i), f_ch->gw(i));
      new tech::Xor3(this, b->gw(i), c->gw(i), d->gw(i), f_par->gw(i));
      Wire* bc = new Wire(this, 1);
      Wire* b_or_c = new Wire(this, 1);
      Wire* bcd = new Wire(this, 1);
      new tech::And2(this, b->gw(i), c->gw(i), bc);
      new tech::Or2(this, b->gw(i), c->gw(i), b_or_c);
      new tech::And2(this, b_or_c, d->gw(i), bcd);
      new tech::Or2(this, bc, bcd, f_maj->gw(i));
    }
    Wire* f01 = mux_bus(this, f_ch, f_par, s0);
    Wire* f23 = mux_bus(this, f_maj, f_par, s0);
    Wire* f = mux_bus(this, f01, f23, s1);

    Wire* k0 = constant_wire(this, 32, 0x5A827999u);
    Wire* k1 = constant_wire(this, 32, 0x6ED9EBA1u);
    Wire* k2 = constant_wire(this, 32, 0x8F1BBCDCu);
    Wire* k3 = constant_wire(this, 32, 0xCA62C1D6u);
    Wire* k01 = mux_bus(this, k0, k1, s0);
    Wire* k23 = mux_bus(this, k2, k3, s0);
    Wire* k = mux_bus(this, k01, k23, s1);

    // temp = ROTL5(a) + f + e + K + W.
    Wire* t1 = add_mod(this, rotl_view(a, 5), f);
    Wire* t2 = add_mod(this, t1, e);
    Wire* t3 = add_mod(this, t2, k);
    Wire* temp = add_mod(this, t3, w_cur);

    // State commits; power-on = the standard H0..H4.
    const std::uint32_t kH[5] = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu,
                                 0x10325476u, 0xC3D2E1F0u};
    Wire* c_next = rotl_view(b, 30);
    for (std::size_t i = 0; i < 32; ++i) {
      new tech::FD(this, temp->gw(i), a->gw(i), (kH[0] >> i) & 1u);
      new tech::FD(this, a->gw(i), b->gw(i), (kH[1] >> i) & 1u);
      new tech::FD(this, c_next->gw(i), c->gw(i), (kH[2] >> i) & 1u);
      new tech::FD(this, c->gw(i), d->gw(i), (kH[3] >> i) & 1u);
      new tech::FD(this, d->gw(i), e->gw(i), (kH[4] >> i) & 1u);
    }
  }
};

}  // namespace

BuildResult HashPipeGenerator::build(const ParamMap& params) const {
  const bool sha1 = params.get("algo") != 0;
  BuildResult r;
  if (sha1) {
    r.system = std::make_unique<HWSystem>("sha1_system");
    Wire* w = new Wire(r.system.get(), 32, "w");
    Wire* stage = new Wire(r.system.get(), 2, "stage");
    Wire* load_w = new Wire(r.system.get(), 1, "load_w");
    Wire* digest = new Wire(r.system.get(), 160, "digest");
    r.top = new Sha1CoreIp(r.system.get(), w, stage, load_w, digest);
    r.inputs["w"] = w;
    r.inputs["stage"] = stage;
    r.inputs["load_w"] = load_w;
    r.outputs["digest"] = digest;
  } else {
    const auto k = static_cast<std::size_t>(params.get("data_width"));
    const auto poly = static_cast<std::uint32_t>(params.get("poly"));
    r.system = std::make_unique<HWSystem>("crc_system");
    Wire* d = new Wire(r.system.get(), k, "d");
    Wire* crc = new Wire(r.system.get(), 32, "crc");
    r.top = new CrcPipeIp(r.system.get(), d, crc, poly);
    r.inputs["d"] = d;
    r.outputs["crc"] = crc;
  }
  r.latency = 1;  // registered state
  return r;
}

// ------------------------------------------------------------ CORDIC

std::vector<ParamSpec> CordicGenerator::params() const {
  return {
      {"width", ParamSpec::Kind::Int, 8, 24, 16,
       "x/y/z word width (two's complement)"},
      {"stages", ParamSpec::Kind::Int, 1, 16, 8, "CORDIC iterations"},
      {"pipelined", ParamSpec::Kind::Bool, 0, 1, 0,
       "register x/y/z after every stage (latency = stages)"},
  };
}

std::vector<std::uint64_t> CordicGenerator::angle_table(std::size_t width,
                                                        std::size_t stages) {
  // Angles in turns scaled to 2^width (one full turn = 2^width).
  const double tau = 6.283185307179586476925286766559;
  const std::uint64_t mask =
      width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  std::vector<std::uint64_t> table;
  table.reserve(stages);
  for (std::size_t i = 0; i < stages; ++i) {
    const double angle = std::atan(std::ldexp(1.0, -static_cast<int>(i)));
    const auto scaled = static_cast<std::uint64_t>(std::llround(
        angle / tau * std::ldexp(1.0, static_cast<int>(width))));
    table.push_back(scaled & mask);
  }
  return table;
}

namespace {

class CordicIp : public Cell {
 public:
  CordicIp(Node* parent, Wire* x, Wire* y, Wire* z, Wire* xr, Wire* yr,
           Wire* zr, std::size_t stages, bool pipelined)
      : Cell(parent, "cordic_ip") {
    const std::size_t w = x->width();
    set_type_name("cordic_" + std::to_string(w) + "x" +
                  std::to_string(stages));
    port_in("x", x);
    port_in("y", y);
    port_in("z", z);
    port_out("xr", xr);
    port_out("yr", yr);
    port_out("zr", zr);

    const auto angles = CordicGenerator::angle_table(w, stages);
    Wire* cx = x;
    Wire* cy = y;
    Wire* cz = z;
    for (std::size_t i = 0; i < stages; ++i) {
      Wire* dir = cz->gw(w - 1);  // 1 = negative residual angle
      Wire* ndir = new Wire(this, 1);
      new tech::Inv(this, dir, ndir);

      Wire* xs = asr_view(this, cx, i);
      Wire* ys = asr_view(this, cy, i);
      Wire* at = constant_wire(this, w, angles[i]);
      // z >= 0: x' = x - (y>>i), y' = y + (x>>i), z' = z - atan_i;
      // z <  0: signs flip.
      Wire* nx = add_sub(this, cx, ys, ndir);
      Wire* ny = add_sub(this, cy, xs, dir);
      Wire* nz = add_sub(this, cz, at, ndir);

      if (pipelined) {
        Wire* px = new Wire(this, w);
        Wire* py = new Wire(this, w);
        Wire* pz = new Wire(this, w);
        new RegisterBank(this, nx, px);
        new RegisterBank(this, ny, py);
        new RegisterBank(this, nz, pz);
        cx = px;
        cy = py;
        cz = pz;
      } else {
        cx = nx;
        cy = ny;
        cz = nz;
      }
    }
    modgen::connect(this, cx, xr);
    modgen::connect(this, cy, yr);
    modgen::connect(this, cz, zr);
  }
};

}  // namespace

BuildResult CordicGenerator::build(const ParamMap& params) const {
  const auto width = static_cast<std::size_t>(params.get("width"));
  const auto stages = static_cast<std::size_t>(params.get("stages"));
  const bool pipelined = params.get("pipelined") != 0;

  BuildResult r;
  r.system = std::make_unique<HWSystem>("cordic_system");
  Wire* x = new Wire(r.system.get(), width, "x");
  Wire* y = new Wire(r.system.get(), width, "y");
  Wire* z = new Wire(r.system.get(), width, "z");
  Wire* xr = new Wire(r.system.get(), width, "xr");
  Wire* yr = new Wire(r.system.get(), width, "yr");
  Wire* zr = new Wire(r.system.get(), width, "zr");
  r.top = new CordicIp(r.system.get(), x, y, z, xr, yr, zr, stages,
                       pipelined);
  r.inputs["x"] = x;
  r.inputs["y"] = y;
  r.inputs["z"] = z;
  r.outputs["xr"] = xr;
  r.outputs["yr"] = yr;
  r.outputs["zr"] = zr;
  r.latency = pipelined ? stages : 0;
  return r;
}

// ------------------------------------------------------------ rf-alu

std::vector<ParamSpec> RfAluGenerator::params() const {
  return {
      {"regs", ParamSpec::Kind::Int, 2, 16, 8, "register count"},
      {"width", ParamSpec::Kind::Int, 2, 32, 16, "datapath width in bits"},
  };
}

std::size_t RfAluGenerator::addr_width(std::size_t regs) {
  std::size_t bits = 1;
  while ((std::size_t{1} << bits) < regs) ++bits;
  return bits;
}

namespace {

class RfAluIp : public Cell {
 public:
  RfAluIp(Node* parent, Wire* ra, Wire* rb, Wire* wa, Wire* we, Wire* op,
          Wire* imm, Wire* use_imm, Wire* result, Wire* zero,
          std::size_t regs, std::size_t width)
      : Cell(parent, "rf_alu_ip") {
    set_type_name("rf_alu_" + std::to_string(regs) + "x" +
                  std::to_string(width));
    port_in("ra", ra);
    port_in("rb", rb);
    port_in("wa", wa);
    port_in("we", we);
    port_in("op", op);
    port_in("imm", imm);
    port_in("use_imm", use_imm);
    port_out("result", result);
    port_out("zero", zero);

    const std::size_t abits = ra->width();

    // Write-back register file: per-register clock enable from the write
    // address decode. Addresses >= regs drop the write.
    std::vector<Wire*> reg_q(regs);
    for (std::size_t i = 0; i < regs; ++i) {
      reg_q[i] = new Wire(this, width);
      Wire* eq = new Wire(this, 1);
      new modgen::ConstComparator(this, wa, i, eq);
      Wire* en = new Wire(this, 1);
      new tech::And2(this, we, eq, en);
      new RegisterBank(this, result, reg_q[i], en);
    }

    // Two combinational read ports (mux tree; out-of-range leaves read 0).
    Wire* zero_word = constant_wire(this, width, 0);
    auto read_port = [&](Wire* addr) {
      std::vector<Wire*> level;
      for (std::size_t i = 0; i < (std::size_t{1} << abits); ++i) {
        level.push_back(i < regs ? reg_q[i] : zero_word);
      }
      for (std::size_t b = 0; b < abits; ++b) {
        std::vector<Wire*> next;
        for (std::size_t k = 0; k + 1 < level.size(); k += 2) {
          next.push_back(
              mux_bus(this, level[k], level[k + 1], addr->gw(b)));
        }
        level = std::move(next);
      }
      return level[0];
    };
    Wire* a_data = read_port(ra);
    Wire* b_read = read_port(rb);
    Wire* b_data = mux_bus(this, b_read, imm, use_imm);

    // Eight ALU operations, selected by the 3-bit op code.
    Wire* alu_add = add_mod(this, a_data, b_data);
    Wire* alu_sub = new Wire(this, width);
    new modgen::Subtractor(this, a_data, b_data, alu_sub);
    Wire* alu_and = new Wire(this, width);
    Wire* alu_or = new Wire(this, width);
    Wire* alu_xor = new Wire(this, width);
    Wire* alu_not = new Wire(this, width);
    for (std::size_t i = 0; i < width; ++i) {
      new tech::And2(this, a_data->gw(i), b_data->gw(i), alu_and->gw(i));
      new tech::Or2(this, a_data->gw(i), b_data->gw(i), alu_or->gw(i));
      new tech::Xor2(this, a_data->gw(i), b_data->gw(i), alu_xor->gw(i));
      new tech::Inv(this, a_data->gw(i), alu_not->gw(i));
    }
    std::vector<Wire*> ops = {alu_add, alu_sub, alu_and, alu_or,
                              alu_xor, b_data,  a_data,  alu_not};
    for (std::size_t b = 0; b < 3; ++b) {
      std::vector<Wire*> next;
      for (std::size_t k = 0; k + 1 < ops.size(); k += 2) {
        next.push_back(mux_bus(this, ops[k], ops[k + 1], op->gw(b)));
      }
      ops = std::move(next);
    }
    modgen::connect(this, ops[0], result);
    new modgen::ConstComparator(this, result, 0, zero);
  }
};

}  // namespace

BuildResult RfAluGenerator::build(const ParamMap& params) const {
  const auto regs = static_cast<std::size_t>(params.get("regs"));
  const auto width = static_cast<std::size_t>(params.get("width"));
  const std::size_t abits = addr_width(regs);

  BuildResult r;
  r.system = std::make_unique<HWSystem>("rf_alu_system");
  Wire* ra = new Wire(r.system.get(), abits, "ra");
  Wire* rb = new Wire(r.system.get(), abits, "rb");
  Wire* wa = new Wire(r.system.get(), abits, "wa");
  Wire* we = new Wire(r.system.get(), 1, "we");
  Wire* op = new Wire(r.system.get(), 3, "op");
  Wire* imm = new Wire(r.system.get(), width, "imm");
  Wire* use_imm = new Wire(r.system.get(), 1, "use_imm");
  Wire* result = new Wire(r.system.get(), width, "result");
  Wire* zero = new Wire(r.system.get(), 1, "zero");
  r.top = new RfAluIp(r.system.get(), ra, rb, wa, we, op, imm, use_imm,
                      result, zero, regs, width);
  r.inputs["ra"] = ra;
  r.inputs["rb"] = rb;
  r.inputs["wa"] = wa;
  r.inputs["we"] = we;
  r.inputs["op"] = op;
  r.inputs["imm"] = imm;
  r.inputs["use_imm"] = use_imm;
  r.outputs["result"] = result;
  r.outputs["zero"] = zero;
  r.latency = 0;  // reads and the ALU are combinational
  return r;
}

}  // namespace jhdl::core
