// BlackBoxModel: the paper's black-box simulation model (Section 4.2).
//
// Wraps a built circuit and exposes ONLY its port interface and clocked
// behaviour - no hierarchy, no netlist, no structure. "The applet includes
// a self-contained simulation model of the intellectual property ...
// without exposing any proprietary information."
//
// The net module serves this object over a socket so a customer's system
// simulator can co-simulate the IP (Figure 4).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/generator.h"
#include "sim/simulator.h"
#include "util/bitvector.h"
#include "util/json.h"

namespace jhdl::core {

/// One externally visible port of a black-box model.
struct BlackBoxPort {
  std::string name;
  std::size_t width;
  bool is_input;
};

/// Value-only simulation facade over a built circuit instance.
class BlackBoxModel {
 public:
  /// Takes ownership of the build. `ip_name` identifies the IP in
  /// protocol handshakes. `program` optionally injects a pre-compiled
  /// simulation program from an identical earlier build (the delivery
  /// service's elaboration cache); when null or non-binding, the
  /// simulator compiles its own. `islands` optionally injects the
  /// matching memoized island plan and `sim_threads` sets the kernel
  /// thread count for batched entry points (0 = auto; see
  /// resolve_sim_threads()).
  BlackBoxModel(BuildResult build, std::string ip_name,
                std::shared_ptr<const CompiledProgram> program = nullptr,
                std::shared_ptr<const IslandPlan> islands = nullptr,
                std::size_t sim_threads = 0);

  const std::string& ip_name() const { return ip_name_; }
  std::vector<BlackBoxPort> ports() const;
  /// Cycles before outputs reflect inputs (0 = combinational).
  std::size_t latency() const { return build_.latency; }

  /// Drive an input port. Throws std::out_of_range for unknown names,
  /// HdlError on width mismatch.
  void set_input(const std::string& name, const BitVector& value);
  void set_input(const std::string& name, std::uint64_t value);

  /// Read an output port (settles combinational logic first).
  BitVector get_output(const std::string& name);

  void cycle(std::size_t n = 1);
  void reset();
  std::size_t cycle_count() const { return sim_->cycle_count(); }

  /// Batched evaluation (protocol v4 CycleBatch): per cycle t, apply each
  /// stimulus stream's t-th value, clock once, sample every probe. An
  /// empty probe list samples all outputs. Returns one value column per
  /// probe. Throws std::out_of_range on unknown port names, HdlError on
  /// stream-length or width mismatches.
  std::map<std::string, std::vector<BitVector>> cycle_batch(
      std::size_t n,
      const std::map<std::string, std::vector<BitVector>>& stimulus,
      const std::vector<std::string>& probes);

  /// Multi-pattern sweep (protocol v6 PatternBatch): each pattern starts
  /// from power-on reset, applies its stimulus values (one per input
  /// stream; unlisted inputs keep their current value), runs `cycles`
  /// clock cycles (0 = settle only) and samples every probe. An empty
  /// probe list samples all outputs. Runs 64 patterns per machine word
  /// when the compiled program supports it. Leaves the model in power-on
  /// reset state. Throws HdlError when `patterns` is empty or the streams
  /// disagree on the pattern count; std::out_of_range on unknown ports.
  std::map<std::string, std::vector<BitVector>> pattern_batch(
      const std::map<std::string, std::vector<BitVector>>& patterns,
      std::size_t cycles, const std::vector<std::string>& probes);

  /// The compiled simulation program backing this model (null when the
  /// simulator runs interpreted). Shareable across models built from
  /// identical (module, params).
  const std::shared_ptr<const CompiledProgram>& compiled_program() const {
    return sim_->compiled_program();
  }

  /// Interface descriptor for protocol handshakes: name, latency, ports.
  Json interface_json() const;

  /// The simulator driving this model: profiling attachment and metrics
  /// export. Exposes engine internals, not circuit structure, so the
  /// black-box guarantee holds.
  Simulator& simulator() { return *sim_; }
  const Simulator& simulator() const { return *sim_; }

 private:
  Wire* input_wire(const std::string& name) const;
  Wire* output_wire(const std::string& name) const;

  BuildResult build_;
  std::string ip_name_;
  std::unique_ptr<Simulator> sim_;
};

}  // namespace jhdl::core
