// Applet web page renderer: the static HTML face of the paper's delivery
// model ("a potential user may evaluate a given FPGA circuit by accessing
// a web page and interacting with the applet", Section 1). Renders one
// evaluation page per applet: title, IP description, the parameter form,
// the feature palette the license grants, the built instance's estimates
// and SVG views, and the download manifest.
//
// In 2002 the page embedded a JVM <applet> tag; here the executable runs
// out-of-browser and the page is its self-describing storefront/report.
#pragma once

#include <string>

#include "core/applet.h"

namespace jhdl::core {

/// Render the applet's evaluation page. Sections gated features would
/// deny are rendered as "not licensed" notices rather than content,
/// mirroring the executable's opacity. Requires a built instance for the
/// estimate/view sections (they are omitted otherwise).
std::string render_applet_page(Applet& applet);

}  // namespace jhdl::core
