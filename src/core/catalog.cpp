#include "core/catalog.h"

#include <set>
#include <sstream>
#include <stdexcept>

#include "core/corpus_generators.h"
#include "core/generators.h"

namespace jhdl::core {

void IpCatalog::add(std::shared_ptr<const ModuleGenerator> generator) {
  if (generator == nullptr) {
    throw std::invalid_argument("null generator");
  }
  if (find(generator->name()) != nullptr) {
    throw std::invalid_argument("duplicate generator '" + generator->name() +
                                "'");
  }
  entries_.push_back(std::move(generator));
}

std::shared_ptr<const ModuleGenerator> IpCatalog::find(
    const std::string& name) const {
  for (const auto& gen : entries_) {
    if (gen->name() == name) return gen;
  }
  return nullptr;
}

std::string IpCatalog::listing() const {
  std::ostringstream os;
  os << "IP catalog (" << entries_.size() << " modules)\n";
  for (const auto& gen : entries_) {
    os << "\n* " << gen->name() << "\n  " << gen->description() << "\n"
       << describe_schema(gen->params());
  }
  return os.str();
}

Applet IpCatalog::make_applet(const std::string& generator_name,
                              const LicensePolicy& license,
                              std::shared_ptr<ArtifactStore> store) const {
  auto gen = find(generator_name);
  if (gen == nullptr) {
    throw std::out_of_range("catalog has no IP named '" + generator_name +
                            "'");
  }
  return AppletBuilder()
      .generator(gen)
      .license(license)
      .artifact_store(std::move(store))
      .build_applet();
}

IpCatalog standard_catalog() {
  IpCatalog catalog;
  catalog.add(std::make_shared<KcmGenerator>());
  catalog.add(std::make_shared<AdderGenerator>());
  catalog.add(std::make_shared<FirGenerator>());
  catalog.add(std::make_shared<GateNetGenerator>());
  catalog.add(std::make_shared<DdsIpGenerator>());
  catalog.add(std::make_shared<SystolicArrayGenerator>());
  catalog.add(std::make_shared<HashPipeGenerator>());
  catalog.add(std::make_shared<CordicGenerator>());
  catalog.add(std::make_shared<RfAluGenerator>());
  return catalog;
}

MultiIpApplet::MultiIpApplet(const IpCatalog& catalog,
                             const LicensePolicy& license,
                             const std::vector<std::string>& names)
    : license_(license) {
  std::vector<std::string> selected = names;
  if (selected.empty()) {
    for (const auto& gen : catalog.entries()) {
      selected.push_back(gen->name());
    }
  }
  for (const std::string& name : selected) {
    auto gen = catalog.find(name);
    if (gen == nullptr) {
      throw std::out_of_range("catalog has no IP named '" + name + "'");
    }
    generators_.push_back(gen);
    applets_.emplace_back(
        name,
        AppletBuilder().generator(gen).license(license).build_applet());
  }
}

std::vector<std::string> MultiIpApplet::ip_names() const {
  std::vector<std::string> out;
  for (const auto& [name, applet] : applets_) out.push_back(name);
  return out;
}

Applet& MultiIpApplet::select(const std::string& generator_name) {
  for (auto& [name, applet] : applets_) {
    if (name == generator_name) return applet;
  }
  throw std::out_of_range("bundle has no IP named '" + generator_name + "'");
}

Packager::Report MultiIpApplet::download_report() const {
  Packager packager;
  std::vector<Archive> archives;
  std::set<std::string> seen;
  // Shared framework archives once.
  for (Archive& a :
       packager.archives_for(license_.features, nullptr)) {
    if (seen.insert(a.name()).second) archives.push_back(std::move(a));
  }
  // One generator-specific archive per bundled IP.
  for (const auto& gen : generators_) {
    Archive a = packager.applet_archive(*gen);
    if (seen.insert(a.name()).second) archives.push_back(std::move(a));
  }
  return Packager::report(archives);
}

}  // namespace jhdl::core
