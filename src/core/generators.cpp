#include "core/generators.h"

#include "modgen/modgen.h"
#include "tech/gates.h"
#include "util/rng.h"

namespace jhdl::core {

// --------------------------------------------------------------- KCM

std::vector<ParamSpec> KcmGenerator::params() const {
  return {
      {"input_width", ParamSpec::Kind::Int, 1, 32, 8,
       "multiplicand width in bits"},
      {"product_width", ParamSpec::Kind::Int, 0, 64, 0,
       "product width (top bits); 0 = full product"},
      {"constant", ParamSpec::Kind::Int, -(1 << 30), (1 << 30), 1,
       "the constant coefficient"},
      {"signed_mode", ParamSpec::Kind::Bool, 0, 1, 0,
       "treat the multiplicand as two's complement"},
      {"pipelined_mode", ParamSpec::Kind::Bool, 0, 1, 0,
       "insert pipeline registers after ROMs and adder levels"},
  };
}

BuildResult KcmGenerator::build(const ParamMap& params) const {
  const auto width = static_cast<std::size_t>(params.get("input_width"));
  const auto constant = static_cast<int>(params.get("constant"));
  const bool sign = params.get("signed_mode") != 0;
  const bool pipe = params.get("pipelined_mode") != 0;
  std::size_t pw = static_cast<std::size_t>(params.get("product_width"));
  const std::size_t full =
      width + modgen::VirtexKCMMultiplier::width_of_constant(constant);
  if (pw == 0) pw = full;
  if (pw > full) {
    throw ParamError("product_width " + std::to_string(pw) +
                     " exceeds full product width " + std::to_string(full));
  }

  BuildResult r;
  r.system = std::make_unique<HWSystem>("kcm_system");
  Wire* m = new Wire(r.system.get(), width, "multiplicand");
  Wire* p = new Wire(r.system.get(), pw, "product");
  auto* kcm =
      new modgen::VirtexKCMMultiplier(r.system.get(), m, p, sign, pipe,
                                      constant);
  r.top = kcm;
  r.inputs["multiplicand"] = m;
  r.outputs["product"] = p;
  r.latency = kcm->latency();
  return r;
}

// ------------------------------------------------------------- adder

std::vector<ParamSpec> AdderGenerator::params() const {
  return {
      {"width", ParamSpec::Kind::Int, 1, 64, 16, "operand width in bits"},
      {"registered", ParamSpec::Kind::Bool, 0, 1, 0,
       "register the sum output"},
  };
}

BuildResult AdderGenerator::build(const ParamMap& params) const {
  const auto width = static_cast<std::size_t>(params.get("width"));
  const bool registered = params.get("registered") != 0;

  BuildResult r;
  r.system = std::make_unique<HWSystem>("adder_system");
  // Wrap in a composite cell so the netlist boundary is clean.
  class AdderIp : public Cell {
   public:
    AdderIp(Node* parent, Wire* a, Wire* b, Wire* s, bool registered)
        : Cell(parent, "adder_ip") {
      set_type_name("adder_ip");
      port_in("a", a);
      port_in("b", b);
      port_out("s", s);
      if (registered) {
        Wire* sum = new Wire(this, a->width());
        new modgen::CarryChainAdder(this, a, b, sum);
        new modgen::RegisterBank(this, sum, s);
      } else {
        new modgen::CarryChainAdder(this, a, b, s);
      }
    }
  };
  Wire* a = new Wire(r.system.get(), width, "a");
  Wire* b = new Wire(r.system.get(), width, "b");
  Wire* s = new Wire(r.system.get(), width, "s");
  r.top = new AdderIp(r.system.get(), a, b, s, registered);
  r.inputs["a"] = a;
  r.inputs["b"] = b;
  r.outputs["s"] = s;
  r.latency = registered ? 1 : 0;
  return r;
}

// --------------------------------------------------------------- FIR

std::vector<ParamSpec> FirGenerator::params() const {
  return {
      {"input_width", ParamSpec::Kind::Int, 2, 24, 8,
       "input sample width (signed)"},
      {"c0", ParamSpec::Kind::Int, -32768, 32767, 1, "tap 0 coefficient"},
      {"c1", ParamSpec::Kind::Int, -32768, 32767, 2, "tap 1 coefficient"},
      {"c2", ParamSpec::Kind::Int, -32768, 32767, 2, "tap 2 coefficient"},
      {"c3", ParamSpec::Kind::Int, -32768, 32767, 1, "tap 3 coefficient"},
      {"pipelined", ParamSpec::Kind::Bool, 0, 1, 0,
       "pipeline multipliers and adder tree"},
  };
}

BuildResult FirGenerator::build(const ParamMap& params) const {
  const auto width = static_cast<std::size_t>(params.get("input_width"));
  const bool pipe = params.get("pipelined") != 0;
  std::vector<int> coeffs = {
      static_cast<int>(params.get("c0")), static_cast<int>(params.get("c1")),
      static_cast<int>(params.get("c2")), static_cast<int>(params.get("c3"))};

  BuildResult r;
  r.system = std::make_unique<HWSystem>("fir_system");
  const std::size_t yw =
      modgen::FIRFilter::required_output_width(width, coeffs);
  Wire* x = new Wire(r.system.get(), width, "x");
  Wire* y = new Wire(r.system.get(), yw, "y");
  auto* fir = new modgen::FIRFilter(r.system.get(), x, y, coeffs, pipe);
  r.top = fir;
  r.inputs["x"] = x;
  r.outputs["y"] = y;
  r.latency = fir->latency();
  return r;
}

// ---------------------------------------------------------- gate net

std::vector<ParamSpec> GateNetGenerator::params() const {
  return {
      {"input_width", ParamSpec::Kind::Int, 2, 24, 8, "input bus width"},
      {"output_width", ParamSpec::Kind::Int, 1, 24, 4, "output bus width"},
      {"depth", ParamSpec::Kind::Int, 1, 8, 3,
       "gate levels between inputs and outputs"},
      {"seed", ParamSpec::Kind::Int, 0, (1 << 30), 1,
       "network shape seed (same seed = same function)"},
  };
}

BuildResult GateNetGenerator::build(const ParamMap& params) const {
  const auto in_w = static_cast<std::size_t>(params.get("input_width"));
  const auto out_w = static_cast<std::size_t>(params.get("output_width"));
  const auto depth = static_cast<std::size_t>(params.get("depth"));
  const auto seed = static_cast<std::uint64_t>(params.get("seed"));

  BuildResult r;
  r.system = std::make_unique<HWSystem>("gate_net_system");
  class GateNetIp : public Cell {
   public:
    GateNetIp(Node* parent, Wire* in, Wire* out, std::size_t depth,
              std::uint64_t seed)
        : Cell(parent, "gate_net_ip") {
      set_type_name("gate_net_ip");
      port_in("in", in);
      port_out("out", out);
      Rng rng(seed ^ 0x6A7E5E7Du);
      std::vector<Wire*> level;
      for (std::size_t i = 0; i < in->width(); ++i) level.push_back(in->gw(i));
      for (std::size_t d = 0; d < depth; ++d) {
        const bool last = d + 1 == depth;
        const std::size_t n =
            last ? out->width() : std::max(out->width(), in->width());
        std::vector<Wire*> next;
        for (std::size_t k = 0; k < n; ++k) {
          Wire* o = last ? out->gw(k) : new Wire(this, 1);
          Wire* a = level[rng.below(level.size())];
          Wire* b = level[rng.below(level.size())];
          switch (rng.below(4)) {
            case 0: new tech::And2(this, a, b, o); break;
            case 1: new tech::Or2(this, a, b, o); break;
            case 2: new tech::Xor2(this, a, b, o); break;
            default: new tech::Inv(this, a, o); break;
          }
          next.push_back(o);
        }
        level = std::move(next);
      }
    }
  };
  Wire* in = new Wire(r.system.get(), in_w, "in");
  Wire* out = new Wire(r.system.get(), out_w, "out");
  r.top = new GateNetIp(r.system.get(), in, out, depth, seed);
  r.inputs["in"] = in;
  r.outputs["out"] = out;
  r.latency = 0;
  return r;
}

// --------------------------------------------------------------- DDS

std::vector<ParamSpec> DdsIpGenerator::params() const {
  return {
      {"phase_width", ParamSpec::Kind::Int, 9, 32, 16,
       "phase accumulator width"},
      {"tuning", ParamSpec::Kind::Int, 1, (1 << 30), 1024,
       "phase increment per cycle (f_out = f_clk * tuning / 2^width)"},
  };
}

BuildResult DdsIpGenerator::build(const ParamMap& params) const {
  const auto width = static_cast<std::size_t>(params.get("phase_width"));
  const auto tuning = static_cast<std::uint32_t>(params.get("tuning"));
  if (width < 32 && tuning >= (std::uint32_t{1} << width)) {
    throw ParamError("tuning must be < 2^phase_width");
  }

  BuildResult r;
  r.system = std::make_unique<HWSystem>("dds_system");
  Wire* out = new Wire(r.system.get(), 8, "out");
  r.top = new modgen::DdsGenerator(r.system.get(), out, width, tuning);
  r.outputs["out"] = out;
  r.latency = 1;  // synchronous BRAM read
  return r;
}

}  // namespace jhdl::core
