#include "core/protect.h"

#include <set>
#include <sstream>
#include <stdexcept>

#include "hdl/net.h"
#include "hdl/visitor.h"
#include "tech/memory.h"
#include "util/crc32.h"
#include "util/strings.h"

namespace jhdl::core {
namespace {

std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string opaque_name(const char* prefix, std::uint64_t seed,
                        std::size_t index) {
  return format("%s%08llx", prefix,
                static_cast<unsigned long long>(
                    splitmix(seed ^ (index * 0x100000001b3ULL)) & 0xFFFFFFFF));
}

}  // namespace

ObfuscationReport obfuscate(Cell& root, std::uint64_t seed) {
  ObfuscationReport report;

  // Nets bound to the root's ports keep their names: the interface must
  // stay usable by the customer.
  std::set<const Net*> interface_nets;
  for (const Port& p : root.ports()) {
    for (Net* n : p.wire->nets()) interface_nets.insert(n);
  }

  std::size_t index = 0;
  std::set<Net*> renamed_nets;
  for_each_cell(root, [&](Cell& cell) {
    if (&cell != &root) {
      cell.rename(opaque_name("u", seed, index));
      ++report.cells_renamed;
      if (!cell.is_primitive()) {
        // Library primitive type names are part of the technology library
        // contract and stay; composite definitions become opaque.
        cell.retype(opaque_name("t", seed, index + 0x8000));
      }
      report.properties_kept += cell.properties().size();
    }
    for (Wire* w : cell.wires()) {
      w->rename(opaque_name("w", seed, index + 0x10000));
      ++report.wires_renamed;
      for (Net* n : w->nets()) {
        if (interface_nets.count(n) > 0) continue;
        if (renamed_nets.insert(n).second) {
          n->rename(opaque_name("n", seed,
                                static_cast<std::size_t>(n->id()) + 0x20000));
          ++report.nets_renamed;
        }
      }
    }
    ++index;
  });
  return report;
}

Watermarker::Watermarker(std::string owner_tag)
    : owner_tag_(std::move(owner_tag)), owner_crc_(crc32(owner_tag_)) {}

std::uint64_t Watermarker::signature_word(std::size_t index) const {
  return splitmix(static_cast<std::uint64_t>(owner_crc_) * 0x10001 + index);
}

std::size_t Watermarker::embed(
    Cell& root, const std::map<std::string, unsigned>& reachable) {
  std::size_t written = 0;
  std::size_t carrier_index = 0;
  for (Primitive* p : collect_primitives(root)) {
    auto* rom = dynamic_cast<tech::Rom16*>(p);
    if (rom == nullptr) continue;
    unsigned first_unused = 16;
    auto it = reachable.find(rom->full_name());
    if (it != reachable.end()) {
      first_unused = it->second;
    } else if (const std::string* prop = rom->property("UNUSED_ABOVE")) {
      first_unused = static_cast<unsigned>(std::stoul(*prop));
    }
    if (first_unused >= 16) continue;
    const std::uint64_t mask =
        rom->num_outputs() >= 64
            ? ~std::uint64_t{0}
            : (std::uint64_t{1} << rom->num_outputs()) - 1;
    for (unsigned a = first_unused; a < 16; ++a) {
      rom->set_entry(a, signature_word(carrier_index++) & mask);
      ++written;
    }
  }
  return written;
}

Watermarker::Extraction Watermarker::extract(
    Cell& root, const std::map<std::string, unsigned>& reachable) const {
  Extraction ex;
  std::size_t carrier_index = 0;
  for (Primitive* p : collect_primitives(root)) {
    auto* rom = dynamic_cast<tech::Rom16*>(p);
    if (rom == nullptr) continue;
    unsigned first_unused = 16;
    auto it = reachable.find(rom->full_name());
    if (it != reachable.end()) {
      first_unused = it->second;
    } else if (const std::string* prop = rom->property("UNUSED_ABOVE")) {
      first_unused = static_cast<unsigned>(std::stoul(*prop));
    }
    if (first_unused >= 16) continue;
    const std::uint64_t mask =
        rom->num_outputs() >= 64
            ? ~std::uint64_t{0}
            : (std::uint64_t{1} << rom->num_outputs()) - 1;
    for (unsigned a = first_unused; a < 16; ++a) {
      ++ex.carriers;
      if (rom->contents()[a] == (signature_word(carrier_index) & mask)) {
        ++ex.matching;
      }
      ++carrier_index;
    }
  }
  return ex;
}

void Meter::record_netlist() {
  if (netlist_quota_ > 0 && netlists_ >= netlist_quota_) {
    throw std::runtime_error(
        "netlist quota exhausted (" + std::to_string(netlist_quota_) +
        " exports); contact the vendor for a license upgrade");
  }
  ++netlists_;
}

std::string Meter::report() const {
  std::ostringstream os;
  os << "meter: builds=" << builds_ << " sim_cycles=" << sim_cycles_
     << " netlists=" << netlists_;
  if (netlist_quota_ > 0) os << "/" << netlist_quota_;
  return os.str();
}

}  // namespace jhdl::core
