#include "core/artifact.h"

#include "core/blackbox.h"
#include "hdl/visitor.h"
#include "netlist/netlist.h"
#include "sim/simulator.h"
#include "viewer/hierarchy.h"
#include "viewer/layout_view.h"
#include "viewer/memview.h"
#include "viewer/schematic.h"

namespace jhdl::core {

IpArtifact::IpArtifact(std::shared_ptr<const ModuleGenerator> generator,
                       ParamMap params)
    : generator_(std::move(generator)),
      module_(generator_->name()),
      params_(std::move(params)),
      param_hash_(params_.content_hash()),
      build_(generator_->build(params_)),
      prim_count_(collect_primitives(*build_.top).size()) {}

std::shared_ptr<const CompiledProgram> IpArtifact::program() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (program_ == nullptr) {
    // Compile off the reference elaboration. The throwaway Simulator
    // levelizes and lowers; only the immutable program survives. Mode is
    // forced to Compiled so the artifact can feed compiled-mode sessions
    // even when this process defaults to the interpreter.
    SimOptions options;
    options.mode = SimMode::Compiled;
    Simulator sim(*build_.system, options);
    program_ = sim.compiled_program();
  }
  return program_;
}

std::shared_ptr<const IslandPlan> IpArtifact::islands() const {
  std::shared_ptr<const CompiledProgram> prog = program();
  std::lock_guard<std::mutex> lock(mu_);
  if (islands_ == nullptr) islands_ = partition_islands(*prog);
  return islands_;
}

const netlist::Design& IpArtifact::design() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (design_ == nullptr) {
    design_ = std::make_unique<netlist::Design>(*build_.top,
                                                netlist::NetlistOptions{});
  }
  return *design_;
}

const std::string& IpArtifact::netlist_text(NetlistFormat format) const {
  // design() takes and releases mu_ itself; re-acquire for the memo map.
  const netlist::Design& design = this->design();
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = netlists_.try_emplace(static_cast<int>(format));
  if (inserted) {
    switch (format) {
      case NetlistFormat::Edif:
        it->second = netlist::write_edif(design);
        break;
      case NetlistFormat::Vhdl:
        it->second = netlist::write_vhdl(design);
        break;
      case NetlistFormat::Verilog:
        it->second = netlist::write_verilog(design);
        break;
      case NetlistFormat::Json:
        it->second = netlist::write_json(design);
        break;
    }
  }
  return it->second;
}

const estimate::AreaEstimate& IpArtifact::area() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!area_.has_value()) area_ = estimate::estimate_area(*build_.top);
  return *area_;
}

const estimate::TimingEstimate& IpArtifact::timing() const {
  std::lock_guard<std::mutex> lock(mu_);
  // A combinational cycle throws out of estimate_timing; deliberately
  // not memoized, so every caller sees the same HdlError.
  if (!timing_.has_value()) timing_ = estimate::estimate_timing(*build_.top);
  return *timing_;
}

template <typename Fn>
const std::string& IpArtifact::memo_text(const char* key, Fn&& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = views_.try_emplace(key);
  if (inserted) it->second = fn();
  return it->second;
}

const std::string& IpArtifact::hierarchy_text() const {
  return memo_text("hierarchy",
                   [this] { return viewer::hierarchy_tree(*build_.top); });
}

const std::string& IpArtifact::interface_text() const {
  return memo_text("interface",
                   [this] { return viewer::interface_summary(*build_.top); });
}

const std::string& IpArtifact::schematic_text() const {
  return memo_text("schematic",
                   [this] { return viewer::text_schematic(*build_.top); });
}

const std::string& IpArtifact::schematic_svg() const {
  return memo_text("schematic_svg",
                   [this] { return viewer::svg_schematic(*build_.top); });
}

const std::string& IpArtifact::layout_text() const {
  return memo_text("layout",
                   [this] { return viewer::text_layout(*build_.top); });
}

const std::string& IpArtifact::layout_svg() const {
  return memo_text("layout_svg",
                   [this] { return viewer::svg_layout(*build_.top); });
}

const std::string& IpArtifact::memories_text() const {
  return memo_text("memories",
                   [this] { return viewer::memory_contents(*build_.top); });
}

std::unique_ptr<BlackBoxModel> IpArtifact::instantiate(
    std::size_t sim_threads) const {
  // Fresh elaboration = private value/sequential state; the shared
  // program carries the levelization and lowering work. Generators are
  // deterministic, so the program binds (and the Simulator falls back to
  // compiling its own if it ever did not). The island plan is only
  // materialized when the threaded settle could actually engage, so
  // single-threaded fleets never pay for the partition.
  std::shared_ptr<const CompiledProgram> prog = program();
  std::shared_ptr<const IslandPlan> plan;
  if (resolve_sim_threads(sim_threads) > 1 && !prog->has_comb_cycle &&
      prog->num_acyclic >= kParallelMinOps) {
    plan = islands();
  }
  return std::make_unique<BlackBoxModel>(generator_->build(params_), module_,
                                         std::move(prog), std::move(plan),
                                         sim_threads);
}

std::size_t IpArtifact::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Heuristic accounting for the store's byte budget: the point is a
  // stable, monotonic-with-circuit-size figure, not malloc truth.
  std::size_t bytes =
      build_.system->net_count() * 16 + prim_count_ * 96 + sizeof(*this);
  if (program_ != nullptr) {
    bytes += program_->ops.size() * sizeof(CompiledOp) +
             (program_->inputs.size() + program_->outputs.size() +
              program_->fanout.size() + program_->fanout_begin.size()) *
                 sizeof(std::uint32_t) +
             program_->ffs.size() * sizeof(CompiledFF);
  }
  if (design_ != nullptr) {
    for (const auto& def : design_->defs()) {
      bytes += 160 + def->instances.size() * 96 + def->ports.size() * 48 +
               def->internal_nets.size() * 40;
    }
  }
  for (const auto& [fmt, text] : netlists_) bytes += text.size();
  for (const auto& [key, text] : views_) bytes += text.size();
  return bytes;
}

}  // namespace jhdl::core
