#include "core/secure.h"

namespace jhdl::core {

SecureChannel::SecureChannel(const std::string& license_secret,
                             const std::string& vendor_salt)
    : key_(derive_key(license_secret, vendor_salt)) {}

SealedArchive SecureChannel::seal_archive(const Archive& archive,
                                          std::uint64_t nonce) const {
  SealedArchive out;
  out.name = archive.name();
  out.payload = seal(archive.serialize(), key_, nonce);
  return out;
}

Archive SecureChannel::open_archive(const SealedArchive& sealed) const {
  return Archive::deserialize(open(sealed.payload, key_));
}

}  // namespace jhdl::core
