#include "core/secure.h"

namespace jhdl::core {

SecureChannel::SecureChannel(const std::string& license_secret,
                             const std::string& vendor_salt)
    : secret_(license_secret), salt_(vendor_salt) {}

Speck64::Key SecureChannel::archive_key(const std::string& name,
                                        std::uint64_t nonce) const {
  // Context string folds vendor salt, archive name and nonce into the
  // derivation; "\x02" separators keep ("ab","c") and ("a","bc") apart.
  std::string context =
      salt_ + "\x02" + name + "\x02" + std::to_string(nonce);
  return derive_key(secret_, context);
}

SealedArchive SecureChannel::seal_archive(const Archive& archive,
                                          std::uint64_t nonce) const {
  SealedArchive out;
  out.name = archive.name();
  out.payload =
      seal(archive.serialize(), archive_key(archive.name(), nonce), nonce);
  return out;
}

Archive SecureChannel::open_archive(const SealedArchive& sealed) const {
  const std::uint64_t nonce = sealed_nonce(sealed.payload);
  return Archive::deserialize(
      open(sealed.payload, archive_key(sealed.name, nonce)));
}

}  // namespace jhdl::core
