#include "core/feature.h"

namespace jhdl::core {

const char* feature_name(Feature f) {
  switch (f) {
    case Feature::ParameterInterface:
      return "parameter-interface";
    case Feature::Estimator:
      return "estimator";
    case Feature::StructuralViewer:
      return "structural-viewer";
    case Feature::LayoutViewer:
      return "layout-viewer";
    case Feature::Simulator:
      return "simulator";
    case Feature::WaveformViewer:
      return "waveform-viewer";
    case Feature::Netlister:
      return "netlister";
    case Feature::BlackBoxSim:
      return "black-box-sim";
  }
  return "?";
}

FeatureSet FeatureSet::all() {
  return FeatureSet{Feature::ParameterInterface, Feature::Estimator,
                    Feature::StructuralViewer,  Feature::LayoutViewer,
                    Feature::Simulator,         Feature::WaveformViewer,
                    Feature::Netlister,         Feature::BlackBoxSim};
}

std::vector<Feature> FeatureSet::list() const {
  std::vector<Feature> out;
  for (Feature f :
       {Feature::ParameterInterface, Feature::Estimator,
        Feature::StructuralViewer, Feature::LayoutViewer, Feature::Simulator,
        Feature::WaveformViewer, Feature::Netlister, Feature::BlackBoxSim}) {
    if (has(f)) out.push_back(f);
  }
  return out;
}

std::string FeatureSet::to_string() const {
  std::string out;
  for (Feature f : list()) {
    if (!out.empty()) out += ",";
    out += feature_name(f);
  }
  return out.empty() ? "(none)" : out;
}

}  // namespace jhdl::core
