#include "core/packaging.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "core/artifact.h"
#include "tech/library.h"
#include "util/bytestream.h"
#include "util/compress.h"
#include "util/crc32.h"
#include "util/strings.h"

#ifndef JHDLPP_SOURCE_DIR
#define JHDLPP_SOURCE_DIR ""
#endif

namespace jhdl::core {
namespace {

constexpr std::uint32_t kArchiveMagic = 0x4A415231;  // "JAR1"

std::vector<std::string> list_module_files(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".h" || ext == ".cpp") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

}  // namespace

void Archive::add(const std::string& entry_name,
                  std::vector<std::uint8_t> data) {
  entries_.push_back(ArchiveEntry{entry_name, std::move(data)});
}

void Archive::add_text(const std::string& entry_name,
                       const std::string& text) {
  add(entry_name, std::vector<std::uint8_t>(text.begin(), text.end()));
}

std::size_t Archive::raw_size() const {
  std::size_t total = 0;
  for (const ArchiveEntry& e : entries_) total += e.data.size();
  return total;
}

std::vector<std::uint8_t> Archive::serialize() const {
  ByteWriter w;
  w.u32(kArchiveMagic);
  w.str(name_);
  w.varint(entries_.size());
  for (const ArchiveEntry& e : entries_) {
    w.str(e.name);
    w.u32(crc32(e.data));
    w.varint(e.data.size());
    std::vector<std::uint8_t> packed = lzss_compress(e.data);
    w.varint(packed.size());
    w.raw(packed);
  }
  return w.take();
}

std::size_t Archive::compressed_size() const { return serialize().size(); }

Archive Archive::deserialize(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  if (r.u32() != kArchiveMagic) {
    throw std::runtime_error("archive: bad magic");
  }
  Archive archive(r.str());
  std::size_t n = r.varint();
  for (std::size_t i = 0; i < n; ++i) {
    std::string entry_name = r.str();
    std::uint32_t expected_crc = r.u32();
    std::size_t raw_len = r.varint();
    std::size_t packed_len = r.varint();
    std::vector<std::uint8_t> packed = r.raw(packed_len);
    std::vector<std::uint8_t> data = lzss_decompress(packed);
    if (data.size() != raw_len || crc32(data) != expected_crc) {
      throw std::runtime_error("archive: entry '" + entry_name +
                               "' failed integrity check");
    }
    archive.add(entry_name, std::move(data));
  }
  return archive;
}

Packager::Packager(std::string source_root)
    : source_root_(std::move(source_root)) {}

std::string Packager::default_source_root() { return JHDLPP_SOURCE_DIR; }

Archive Packager::from_sources(
    const std::string& archive_name,
    const std::vector<std::string>& module_dirs,
    const std::vector<std::string>& extra_files) const {
  Archive archive(archive_name);
  for (const std::string& module : module_dirs) {
    const std::string dir = source_root_ + "/src/" + module;
    for (const std::string& path : list_module_files(dir)) {
      std::vector<std::uint8_t> data = read_file(path);
      if (data.empty()) continue;
      const std::string entry =
          module + "/" + std::filesystem::path(path).filename().string();
      archive.add(entry, std::move(data));
    }
  }
  for (const std::string& path : extra_files) {
    std::vector<std::uint8_t> data =
        read_file(source_root_ + "/" + path);
    if (!data.empty()) {
      archive.add(path, std::move(data));
    }
  }
  return archive;
}

Archive Packager::base_archive() const {
  Archive a = from_sources(
      "JHDLBase", {"util", "hdl", "sim", "netlist", "estimate"},
      {"src/core/applet.h", "src/core/applet.cpp", "src/core/feature.h",
       "src/core/feature.cpp", "src/core/license.h", "src/core/license.cpp",
       "src/core/params.h", "src/core/params.cpp", "src/core/generator.h",
       "src/core/blackbox.h", "src/core/blackbox.cpp",
       "src/modgen/wires.h", "src/modgen/wires.cpp", "src/modgen/adder.h",
       "src/modgen/adder.cpp", "src/modgen/register.h",
       "src/modgen/register.cpp"});
  if (a.entries().empty()) {
    // Source-less fallback: ship the simulator's own catalog description.
    a.add_text("manifest.txt",
               "JHDLBase: HDL kernel, cycle simulator, netlisters, "
               "estimators, applet framework");
  }
  return a;
}

Archive Packager::virtex_archive() const {
  Archive a = from_sources("Virtex", {"tech"}, {});
  // The serialized primitive catalog (simulation model tables) always
  // ships, matching the technology-library role of Virtex.jar.
  a.add("virtex_catalog.bin", tech::serialize_virtex_library());
  return a;
}

Archive Packager::viewer_archive() const {
  Archive a = from_sources("Viewer", {"viewer"}, {});
  if (a.entries().empty()) {
    a.add_text("manifest.txt",
               "Viewer: schematic, layout and waveform renderers");
  }
  return a;
}

Archive Packager::applet_archive(const ModuleGenerator& generator) const {
  Archive a(generator.name() + "-applet");
  // Generator-specific code only (the paper's Applet.jar is the module
  // generator plus applet glue, 16 kB of 795 kB): the KCM sources and the
  // applet's parameter schema. Shared module-library code (adders,
  // registers) ships in JHDLBase like the rest of the framework.
  for (const std::string& path :
       {std::string("src/modgen/kcm.h"), std::string("src/modgen/kcm.cpp"),
        std::string("src/core/generators.h")}) {
    std::vector<std::uint8_t> data = read_file(source_root_ + "/" + path);
    if (!data.empty()) {
      a.add(path, std::move(data));
    }
  }
  a.add_text("schema.txt", describe_schema(generator.params()));
  a.add_text("description.txt", generator.description());
  return a;
}

std::vector<Archive> Packager::archives_for(
    const FeatureSet& features, const ModuleGenerator* generator) const {
  std::vector<Archive> out;
  // Every applet needs the kernel and the technology library.
  out.push_back(base_archive());
  out.push_back(virtex_archive());
  if (features.has(Feature::StructuralViewer) ||
      features.has(Feature::LayoutViewer) ||
      features.has(Feature::WaveformViewer)) {
    out.push_back(viewer_archive());
  }
  if (generator != nullptr) {
    out.push_back(applet_archive(*generator));
  }
  return out;
}

Packager::Report Packager::report(const std::vector<Archive>& archives) {
  Report rep;
  for (const Archive& a : archives) {
    Row row;
    row.file = a.name() + ".jar";
    row.entries = a.entries().size();
    row.raw = a.raw_size();
    row.compressed = a.compressed_size();
    rep.rows.push_back(row);
    rep.total_raw += row.raw;
    rep.total_compressed += row.compressed;
  }
  return rep;
}

double Packager::download_seconds(std::size_t bytes, double bits_per_second) {
  return static_cast<double>(bytes) * 8.0 / bits_per_second;
}

Archive Packager::artifact_bundle(const IpArtifact& artifact) {
  Archive out(artifact.module() + "-delivery");
  out.add_text("netlist.edif", artifact.netlist_text(NetlistFormat::Edif));
  out.add_text("netlist.vhd", artifact.netlist_text(NetlistFormat::Vhdl));
  out.add_text("netlist.v", artifact.netlist_text(NetlistFormat::Verilog));
  out.add_text("netlist.json", artifact.netlist_text(NetlistFormat::Json));
  const estimate::AreaEstimate& a = artifact.area();
  out.add_text("estimates.txt",
               format("params: %s\nlatency: %zu\nLUTs %zu  FFs %zu  "
                      "carries %zu  BRAMs %zu  slices %zu\n",
                      artifact.params().summary().c_str(), artifact.latency(),
                      a.luts, a.ffs, a.carries, a.brams, a.slices));
  out.add_text("interface.txt", artifact.interface_text());
  out.add_text("schematic.txt", artifact.schematic_text());
  return out;
}

}  // namespace jhdl::core
