#include "core/blackbox.h"

#include <stdexcept>

#include "hdl/error.h"

namespace jhdl::core {

BlackBoxModel::BlackBoxModel(BuildResult build, std::string ip_name,
                             std::shared_ptr<const CompiledProgram> program,
                             std::shared_ptr<const IslandPlan> islands,
                             std::size_t sim_threads)
    : build_(std::move(build)), ip_name_(std::move(ip_name)) {
  SimOptions options;
  options.program = std::move(program);
  options.islands = std::move(islands);
  options.threads = sim_threads;
  sim_ = std::make_unique<Simulator>(*build_.system, options);
}

std::vector<BlackBoxPort> BlackBoxModel::ports() const {
  std::vector<BlackBoxPort> out;
  for (const auto& [name, wire] : build_.inputs) {
    out.push_back(BlackBoxPort{name, wire->width(), true});
  }
  for (const auto& [name, wire] : build_.outputs) {
    out.push_back(BlackBoxPort{name, wire->width(), false});
  }
  return out;
}

Wire* BlackBoxModel::input_wire(const std::string& name) const {
  auto it = build_.inputs.find(name);
  if (it == build_.inputs.end()) {
    throw std::out_of_range("black box has no input '" + name + "'");
  }
  return it->second;
}

Wire* BlackBoxModel::output_wire(const std::string& name) const {
  auto it = build_.outputs.find(name);
  if (it == build_.outputs.end()) {
    throw std::out_of_range("black box has no output '" + name + "'");
  }
  return it->second;
}

void BlackBoxModel::set_input(const std::string& name,
                              const BitVector& value) {
  sim_->put(input_wire(name), value);
}

void BlackBoxModel::set_input(const std::string& name, std::uint64_t value) {
  sim_->put(input_wire(name), value);
}

BitVector BlackBoxModel::get_output(const std::string& name) {
  return sim_->get(output_wire(name));
}

void BlackBoxModel::cycle(std::size_t n) { sim_->cycle(n); }

std::map<std::string, std::vector<BitVector>> BlackBoxModel::cycle_batch(
    std::size_t n,
    const std::map<std::string, std::vector<BitVector>>& stimulus,
    const std::vector<std::string>& probes) {
  std::vector<BatchStimulus> streams;
  streams.reserve(stimulus.size());
  for (const auto& [name, values] : stimulus) {
    streams.push_back(BatchStimulus{input_wire(name), values});
  }
  std::vector<std::string> probe_names = probes;
  if (probe_names.empty()) {
    for (const auto& [name, wire] : build_.outputs) {
      (void)wire;
      probe_names.push_back(name);
    }
  }
  std::vector<Wire*> probe_wires;
  probe_wires.reserve(probe_names.size());
  for (const std::string& name : probe_names) {
    probe_wires.push_back(output_wire(name));
  }
  std::vector<std::vector<BitVector>> columns =
      sim_->cycle_batch(n, streams, probe_wires);
  std::map<std::string, std::vector<BitVector>> out;
  for (std::size_t i = 0; i < probe_names.size(); ++i) {
    out[probe_names[i]] = std::move(columns[i]);
  }
  return out;
}

std::map<std::string, std::vector<BitVector>> BlackBoxModel::pattern_batch(
    const std::map<std::string, std::vector<BitVector>>& patterns,
    std::size_t cycles, const std::vector<std::string>& probes) {
  if (patterns.empty()) {
    throw HdlError("pattern_batch needs at least one stimulus stream");
  }
  const std::size_t n_patterns = patterns.begin()->second.size();
  std::vector<PatternStimulus> streams;
  streams.reserve(patterns.size());
  for (const auto& [name, values] : patterns) {
    if (values.size() != n_patterns) {
      throw HdlError("pattern_batch stream '" + name + "' has " +
                     std::to_string(values.size()) + " values, expected " +
                     std::to_string(n_patterns));
    }
    streams.push_back(PatternStimulus{input_wire(name), values});
  }
  std::vector<std::string> probe_names = probes;
  if (probe_names.empty()) {
    for (const auto& [name, wire] : build_.outputs) {
      (void)wire;
      probe_names.push_back(name);
    }
  }
  std::vector<Wire*> probe_wires;
  probe_wires.reserve(probe_names.size());
  for (const std::string& name : probe_names) {
    probe_wires.push_back(output_wire(name));
  }
  std::vector<std::vector<BitVector>> columns =
      sim_->pattern_sweep(n_patterns, streams, cycles, probe_wires);
  std::map<std::string, std::vector<BitVector>> out;
  for (std::size_t i = 0; i < probe_names.size(); ++i) {
    out[probe_names[i]] = std::move(columns[i]);
  }
  return out;
}

void BlackBoxModel::reset() { sim_->reset(); }

Json BlackBoxModel::interface_json() const {
  Json root = Json::object();
  root.set("ip", ip_name_);
  root.set("latency", latency());
  Json ports_json = Json::array();
  for (const BlackBoxPort& p : ports()) {
    Json jp = Json::object();
    jp.set("name", p.name);
    jp.set("width", p.width);
    jp.set("dir", p.is_input ? "in" : "out");
    ports_json.push(std::move(jp));
  }
  root.set("ports", std::move(ports_json));
  return root;
}

}  // namespace jhdl::core
