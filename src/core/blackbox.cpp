#include "core/blackbox.h"

#include <stdexcept>

namespace jhdl::core {

BlackBoxModel::BlackBoxModel(BuildResult build, std::string ip_name)
    : build_(std::move(build)), ip_name_(std::move(ip_name)) {
  sim_ = std::make_unique<Simulator>(*build_.system);
}

std::vector<BlackBoxPort> BlackBoxModel::ports() const {
  std::vector<BlackBoxPort> out;
  for (const auto& [name, wire] : build_.inputs) {
    out.push_back(BlackBoxPort{name, wire->width(), true});
  }
  for (const auto& [name, wire] : build_.outputs) {
    out.push_back(BlackBoxPort{name, wire->width(), false});
  }
  return out;
}

Wire* BlackBoxModel::input_wire(const std::string& name) const {
  auto it = build_.inputs.find(name);
  if (it == build_.inputs.end()) {
    throw std::out_of_range("black box has no input '" + name + "'");
  }
  return it->second;
}

Wire* BlackBoxModel::output_wire(const std::string& name) const {
  auto it = build_.outputs.find(name);
  if (it == build_.outputs.end()) {
    throw std::out_of_range("black box has no output '" + name + "'");
  }
  return it->second;
}

void BlackBoxModel::set_input(const std::string& name,
                              const BitVector& value) {
  sim_->put(input_wire(name), value);
}

void BlackBoxModel::set_input(const std::string& name, std::uint64_t value) {
  sim_->put(input_wire(name), value);
}

BitVector BlackBoxModel::get_output(const std::string& name) {
  return sim_->get(output_wire(name));
}

void BlackBoxModel::cycle(std::size_t n) { sim_->cycle(n); }

void BlackBoxModel::reset() { sim_->reset(); }

Json BlackBoxModel::interface_json() const {
  Json root = Json::object();
  root.set("ip", ip_name_);
  root.set("latency", latency());
  Json ports_json = Json::array();
  for (const BlackBoxPort& p : ports()) {
    Json jp = Json::object();
    jp.set("name", p.name);
    jp.set("width", p.width);
    jp.set("dir", p.is_input ? "in" : "out");
    ports_json.push(std::move(jp));
  }
  root.set("ports", std::move(ports_json));
  return root;
}

}  // namespace jhdl::core
