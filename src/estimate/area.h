// Area estimation - the "circuit estimator" component of the paper's IP
// delivery executables (Figure 2): passive customers get area/size
// feedback without seeing the circuit structure.
//
// Model: Virtex-class slices hold two 4-input LUTs, two flip-flops, and two
// carry mux/xor pairs. The estimate sums each primitive's resource usage
// and packs greedily.
#pragma once

#include <cstddef>

#include "hdl/cell.h"

namespace jhdl::estimate {

/// Aggregate FPGA resource usage of a subtree.
struct AreaEstimate {
  std::size_t luts = 0;
  std::size_t ffs = 0;
  std::size_t carries = 0;
  std::size_t brams = 0;
  std::size_t primitives = 0;
  /// Packed slice estimate: max over the per-resource slice demands
  /// (block RAMs live in their own columns and do not consume slices).
  std::size_t slices = 0;
};

/// Estimate the area of `root` and everything below it.
AreaEstimate estimate_area(const Cell& root);

}  // namespace jhdl::estimate
