// Timing estimation: longest combinational path through the delay-annotated
// primitive graph, plus a register-to-register clock estimate.
//
// Path model: a path starts at an external input or a sequential output and
// ends at a sequential input or an undriven-sink output. Path delay sums
// each combinational primitive's pin-to-pin delay; the clock period adds
// flip-flop clock-to-q and setup.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "hdl/cell.h"
#include "hdl/primitive.h"

namespace jhdl::estimate {

/// Result of a critical-path analysis.
struct TimingEstimate {
  double comb_delay_ns = 0.0;   ///< worst combinational path
  std::size_t levels = 0;       ///< primitives on the worst path
  double period_ns = 0.0;       ///< comb + clk-to-q + setup
  double fmax_mhz = 0.0;        ///< 1000 / period
  std::vector<const Primitive*> path;  ///< worst path, source to sink
};

/// Estimate the critical path of `root`. Throws HdlError when the subtree
/// contains a combinational cycle (no static critical path exists).
TimingEstimate estimate_timing(const Cell& root);

/// Render the critical path as a human-readable report.
std::string timing_report(const TimingEstimate& est);

}  // namespace jhdl::estimate
