#include "estimate/area.h"

#include "hdl/visitor.h"

namespace jhdl::estimate {

AreaEstimate estimate_area(const Cell& root) {
  AreaEstimate est;
  for (Primitive* p : collect_primitives(const_cast<Cell&>(root))) {
    Resources r = p->resources();
    est.luts += static_cast<std::size_t>(r.luts);
    est.ffs += static_cast<std::size_t>(r.ffs);
    est.carries += static_cast<std::size_t>(r.carries);
    est.brams += static_cast<std::size_t>(r.brams);
    ++est.primitives;
  }
  auto per_slice = [](std::size_t n) { return (n + 1) / 2; };
  est.slices = per_slice(est.luts);
  if (per_slice(est.ffs) > est.slices) est.slices = per_slice(est.ffs);
  if (per_slice(est.carries) > est.slices) est.slices = per_slice(est.carries);
  return est;
}

}  // namespace jhdl::estimate
