// Layout estimation from relative placement (RLOC) attributes: bounding
// box, occupancy grid, and density. Feeds the paper's "layout view"
// feature: "users may explore various placement and layout options of a
// macro without seeing the underlying circuit structure".
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "hdl/cell.h"
#include "hdl/placement.h"

namespace jhdl::estimate {

/// Placement footprint of a subtree.
struct LayoutEstimate {
  bool placed = false;  ///< true when at least one primitive carries an RLOC
  int min_row = 0, max_row = 0;
  int min_col = 0, max_col = 0;
  std::size_t placed_primitives = 0;
  /// Occupancy: absolute (row,col) -> number of primitives at that slice.
  std::map<std::pair<int, int>, std::size_t> occupancy;

  int height() const { return placed ? max_row - min_row + 1 : 0; }
  int width() const { return placed ? max_col - min_col + 1 : 0; }
  /// Fraction of bounding-box slices occupied (0 when unplaced).
  double density() const;
};

/// Compute the layout footprint. Primitives whose RLOC chain is empty are
/// skipped (they are unplaced and left to the vendor place-and-route).
LayoutEstimate estimate_layout(const Cell& root);

}  // namespace jhdl::estimate
