#include "estimate/timing.h"

#include <sstream>
#include <unordered_map>

#include "hdl/error.h"
#include "hdl/visitor.h"
#include "tech/timing.h"

namespace jhdl::estimate {

TimingEstimate estimate_timing(const Cell& root) {
  auto prims = collect_primitives(const_cast<Cell&>(root));
  std::vector<Primitive*> comb;
  bool has_seq = false;
  for (Primitive* p : prims) {
    if (p->sequential()) has_seq = true;
    if (p->has_comb_path()) comb.push_back(p);
  }

  // Topological order via Kahn over the combinational subgraph.
  std::unordered_map<Primitive*, std::size_t> indegree;
  for (Primitive* p : comb) indegree[p] = 0;
  for (Primitive* q : comb) {
    for (Net* n : q->output_nets()) {
      for (Primitive* sink : n->sinks()) {
        auto it = indegree.find(sink);
        if (it != indegree.end()) ++it->second;
      }
    }
  }
  std::vector<Primitive*> ready;
  for (Primitive* p : comb) {
    if (indegree[p] == 0) ready.push_back(p);
  }
  std::vector<Primitive*> order;
  order.reserve(comb.size());
  while (!ready.empty()) {
    Primitive* q = ready.back();
    ready.pop_back();
    order.push_back(q);
    for (Net* n : q->output_nets()) {
      for (Primitive* sink : n->sinks()) {
        auto it = indegree.find(sink);
        if (it != indegree.end() && --it->second == 0) ready.push_back(sink);
      }
    }
  }
  if (order.size() != comb.size()) {
    throw HdlError("timing estimate: combinational cycle in subtree");
  }

  // Longest-path DP: arrival(p) = delay(p) + max over comb predecessors.
  std::unordered_map<Primitive*, double> arrival;
  std::unordered_map<Primitive*, Primitive*> pred;
  TimingEstimate est;
  Primitive* worst = nullptr;
  for (Primitive* p : order) {
    double in_arrival = 0.0;
    Primitive* best = nullptr;
    for (Net* n : p->input_nets()) {
      if (n->driver_kind() == DriverKind::Primitive &&
          n->driver()->has_comb_path()) {
        auto it = arrival.find(n->driver());
        if (it != arrival.end() && it->second > in_arrival) {
          in_arrival = it->second;
          best = n->driver();
        }
      }
    }
    double a = in_arrival + p->resources().delay_ns;
    arrival[p] = a;
    pred[p] = best;
    if (worst == nullptr || a > arrival[worst]) worst = p;
  }

  if (worst != nullptr) {
    est.comb_delay_ns = arrival[worst];
    for (Primitive* p = worst; p != nullptr; p = pred[p]) {
      est.path.insert(est.path.begin(), p);
    }
    est.levels = est.path.size();
  }
  est.period_ns = est.comb_delay_ns;
  if (has_seq) {
    est.period_ns += tech::timing::kFfClkToQNs + tech::timing::kFfSetupNs;
  }
  if (est.period_ns > 0) est.fmax_mhz = 1000.0 / est.period_ns;
  return est;
}

std::string timing_report(const TimingEstimate& est) {
  std::ostringstream os;
  os << "critical path: " << est.comb_delay_ns << " ns over " << est.levels
     << " levels";
  if (est.fmax_mhz > 0) {
    os << "; period " << est.period_ns << " ns (fmax " << est.fmax_mhz
       << " MHz)";
  }
  os << "\n";
  for (const Primitive* p : est.path) {
    os << "  " << p->full_name() << " (" << p->type_name() << ", "
       << p->resources().delay_ns << " ns)\n";
  }
  return os.str();
}

}  // namespace jhdl::estimate
