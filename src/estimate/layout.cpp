#include "estimate/layout.h"

#include "hdl/visitor.h"

namespace jhdl::estimate {

double LayoutEstimate::density() const {
  if (!placed) return 0.0;
  double bbox = static_cast<double>(height()) * width();
  if (bbox <= 0) return 0.0;
  return static_cast<double>(occupancy.size()) / bbox;
}

namespace {
// True when the cell or any ancestor carries an RLOC attribute.
bool has_placement(const Cell* c) {
  for (; c != nullptr; c = c->parent()) {
    if (c->rloc().has_value()) return true;
  }
  return false;
}
}  // namespace

LayoutEstimate estimate_layout(const Cell& root) {
  LayoutEstimate est;
  for (Primitive* p : collect_primitives(const_cast<Cell&>(root))) {
    if (!has_placement(p)) continue;
    RLoc loc = p->absolute_loc();
    if (!est.placed) {
      est.placed = true;
      est.min_row = est.max_row = loc.row;
      est.min_col = est.max_col = loc.col;
    } else {
      est.min_row = std::min(est.min_row, loc.row);
      est.max_row = std::max(est.max_row, loc.row);
      est.min_col = std::min(est.min_col, loc.col);
      est.max_col = std::max(est.max_col, loc.col);
    }
    ++est.placed_primitives;
    ++est.occupancy[{loc.row, loc.col}];
  }
  return est;
}

}  // namespace jhdl::estimate
