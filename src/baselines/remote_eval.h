// Simulation-delivery baselines from the paper's related work, plus the
// applet (local) approach, all runnable on the same workload so the
// benchmarks can reproduce the paper's latency argument (Sections 1.2 and
// 4.2):
//
//   Applet (this paper): the model is downloaded and simulated locally;
//       zero network traffic per event.
//   Web-CAD [2]: the model stays at the vendor; every simulation event
//       (drive input, advance clock, sample output) is a network round
//       trip.
//   JavaCAD [1]: remote method invocation; one round trip per evaluated
//       vector (inputs + cycles + outputs batched into one call).
//
// A workload is a stream of input vectors; each vector is applied, the
// clock advanced, and all outputs sampled.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/blackbox.h"
#include "net/sim_client.h"

namespace jhdl::baselines {

/// One stimulus step: input values by port name, then `cycles` clocks.
struct Vector {
  std::map<std::string, BitVector> inputs;
  std::size_t cycles = 1;
};

/// Outcome of running a workload through one delivery style.
struct WorkloadResult {
  std::string style;
  std::size_t vectors = 0;
  std::size_t round_trips = 0;    ///< network round trips used
  double wall_seconds = 0.0;      ///< measured (loopback) wall time
  std::vector<std::map<std::string, BitVector>> outputs;  ///< per vector

  /// Wall time this run would take if each round trip paid `rtt_ms` of
  /// network latency (analytic model; loopback transport cost included
  /// in wall_seconds).
  double modeled_seconds(double rtt_ms) const {
    return wall_seconds + static_cast<double>(round_trips) * rtt_ms / 1000.0;
  }
};

/// Applet style: local model, no network.
WorkloadResult run_applet_local(core::BlackBoxModel& model,
                                const std::vector<Vector>& workload);

/// Web-CAD style: per-event round trips over `client`.
WorkloadResult run_webcad(net::SimClient& client,
                          const std::vector<Vector>& workload);

/// JavaCAD style: one RMI-ish round trip per vector.
WorkloadResult run_javacad(net::SimClient& client,
                           const std::vector<Vector>& workload);

}  // namespace jhdl::baselines
