#include "baselines/remote_eval.h"

#include <chrono>

namespace jhdl::baselines {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

WorkloadResult run_applet_local(core::BlackBoxModel& model,
                                const std::vector<Vector>& workload) {
  WorkloadResult result;
  result.style = "applet-local";
  auto start = Clock::now();
  std::vector<core::BlackBoxPort> ports = model.ports();
  for (const Vector& v : workload) {
    for (const auto& [name, value] : v.inputs) {
      model.set_input(name, value);
    }
    if (v.cycles > 0) model.cycle(v.cycles);
    std::map<std::string, BitVector> outputs;
    for (const core::BlackBoxPort& p : ports) {
      if (!p.is_input) outputs.emplace(p.name, model.get_output(p.name));
    }
    result.outputs.push_back(std::move(outputs));
    ++result.vectors;
  }
  result.wall_seconds = seconds_since(start);
  result.round_trips = 0;
  return result;
}

WorkloadResult run_webcad(net::SimClient& client,
                          const std::vector<Vector>& workload) {
  WorkloadResult result;
  result.style = "webcad-remote-events";
  const std::size_t before = client.round_trips();
  // Output port names from the handshake descriptor.
  std::vector<std::string> outputs;
  for (const Json& p : client.interface().at("ports").items()) {
    if (p.at("dir").as_string() == "out") {
      outputs.push_back(p.at("name").as_string());
    }
  }
  auto start = Clock::now();
  for (const Vector& v : workload) {
    for (const auto& [name, value] : v.inputs) {
      client.set_input(name, value);  // one round trip per event
    }
    if (v.cycles > 0) client.cycle(v.cycles);  // one round trip
    std::map<std::string, BitVector> sampled;
    for (const std::string& name : outputs) {
      sampled.emplace(name, client.get_output(name));  // one each
    }
    result.outputs.push_back(std::move(sampled));
    ++result.vectors;
  }
  result.wall_seconds = seconds_since(start);
  result.round_trips = client.round_trips() - before;
  return result;
}

WorkloadResult run_javacad(net::SimClient& client,
                           const std::vector<Vector>& workload) {
  WorkloadResult result;
  result.style = "javacad-rmi";
  const std::size_t before = client.round_trips();
  auto start = Clock::now();
  for (const Vector& v : workload) {
    result.outputs.push_back(client.eval(v.inputs, v.cycles));
    ++result.vectors;
  }
  result.wall_seconds = seconds_since(start);
  result.round_trips = client.round_trips() - before;
  return result;
}

}  // namespace jhdl::baselines
