#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace jhdl {

std::string sanitize_identifier(const std::string& name) {
  if (name.empty()) return "_";
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  if (std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), 'n');
  }
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string human_bytes(std::size_t bytes) {
  if (bytes < 1024) return format("%zu B", bytes);
  double kb = static_cast<double>(bytes) / 1024.0;
  if (kb < 1024.0) return format("%.1f kB", kb);
  return format("%.2f MB", kb / 1024.0);
}

}  // namespace jhdl
