// Lightweight block cipher (Speck64/128) with CTR-mode encryption and a
// CBC-MAC tag, implemented from scratch for the secure-delivery channel
// (the paper's future work: "investigating more secure delivery
// techniques", Section 5; class encryption, Section 4.3).
//
// Speck (Beaulieu et al., NSA 2013) is chosen for its tiny, easily
// audited ARX round function. This is a faithful Speck64/128
// implementation, but the construction here (CTR + CBC-MAC with related
// keys) is demonstration-grade plumbing for the reproduction - a
// production system would use an AEAD like AES-GCM or ChaCha20-Poly1305.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace jhdl {

/// Speck64/128: 64-bit block, 128-bit key, 27 rounds.
class Speck64 {
 public:
  using Key = std::array<std::uint32_t, 4>;

  explicit Speck64(const Key& key);

  /// Encrypt one block (x = high word, y = low word).
  void encrypt_block(std::uint32_t& x, std::uint32_t& y) const;
  /// Decrypt one block.
  void decrypt_block(std::uint32_t& x, std::uint32_t& y) const;

  static constexpr int kRounds = 27;

 private:
  std::array<std::uint32_t, kRounds> round_keys_{};
};

/// Derive a 128-bit key from a passphrase (iterated Speck-based mixing;
/// deterministic, salt-separated).
Speck64::Key derive_key(const std::string& passphrase,
                        const std::string& salt);

/// Authenticated encryption: CTR keystream + 64-bit CBC-MAC tag over the
/// ciphertext (encrypt-then-MAC, MAC under a derived subkey).
/// Output layout: nonce(8) || tag(8) || ciphertext.
std::vector<std::uint8_t> seal(const std::vector<std::uint8_t>& plaintext,
                               const Speck64::Key& key,
                               std::uint64_t nonce);

/// Verify and decrypt a buffer produced by seal(). Throws
/// std::runtime_error on truncation or tag mismatch (wrong key or
/// tampering). Tag verification is constant-time: a wrong key and a
/// tampered tag fail identically, with no early exit an attacker could
/// time byte-by-byte.
std::vector<std::uint8_t> open(const std::vector<std::uint8_t>& sealed,
                               const Speck64::Key& key);

/// The nonce a seal() buffer was sealed under (its first 8 bytes).
/// Throws std::runtime_error on truncation. Lets a receiver derive a
/// nonce-bound key before attempting open().
std::uint64_t sealed_nonce(const std::vector<std::uint8_t>& sealed);

/// Constant-time byte-buffer comparison: XOR-accumulates every byte
/// pair, so a mismatch in the first byte costs exactly as much as one in
/// the last.
bool constant_time_equal(const std::uint8_t* a, const std::uint8_t* b,
                         std::size_t len);

}  // namespace jhdl
