// LZSS compression, standing in for the DEFLATE compression inside JAR
// archives (Table 1 of the paper reports compressed JAR sizes).
//
// Implemented from scratch: a 32 KiB sliding window with hash-chain match
// finding, emitting a token stream of literals and (length, distance)
// back-references. The format is self-describing and round-trips exactly;
// compression ratio on text/netlist payloads is comparable to DEFLATE's
// LZ77 stage, which is sufficient for reproducing the *relative* archive
// sizes in Table 1.
#pragma once

#include <cstdint>
#include <vector>

namespace jhdl {

/// Compress `input` into the LZSS token format. Always succeeds; worst case
/// output is ~9/8 of the input plus a small header.
std::vector<std::uint8_t> lzss_compress(const std::vector<std::uint8_t>& input);

/// Decompress a buffer produced by lzss_compress. Throws std::runtime_error
/// on malformed input.
std::vector<std::uint8_t> lzss_decompress(
    const std::vector<std::uint8_t>& input);

}  // namespace jhdl
