// Four-state logic values and truth-table operations.
//
// The simulation kernel models each net bit as one of four states, matching
// the semantics JHDL inherits from digital simulation practice:
//   Zero / One - driven binary values
//   X          - unknown (uninitialized or conflicting)
//   Z          - high impedance (undriven)
//
// Combinational operators follow the usual pessimistic rules: any X or Z on
// an input that can affect the output yields X, except for dominating inputs
// (e.g. AND with a Zero input is Zero regardless of the other input).
#pragma once

#include <cstdint>
#include <string>

namespace jhdl {

/// One bit of four-state logic.
enum class Logic4 : std::uint8_t {
  Zero = 0,
  One = 1,
  X = 2,  ///< unknown
  Z = 3,  ///< high impedance (treated as X by logic operators)
};

/// True if the value is a driven binary 0 or 1.
constexpr bool is_binary(Logic4 v) {
  return v == Logic4::Zero || v == Logic4::One;
}

/// Convert a bool to a Logic4.
constexpr Logic4 to_logic(bool b) { return b ? Logic4::One : Logic4::Zero; }

/// Convert to bool; X and Z read as false. Use is_binary() first when the
/// distinction matters.
constexpr bool to_bool(Logic4 v) { return v == Logic4::One; }

/// Logical AND with X-pessimism (0 dominates).
Logic4 logic_and(Logic4 a, Logic4 b);
/// Logical OR with X-pessimism (1 dominates).
Logic4 logic_or(Logic4 a, Logic4 b);
/// Logical XOR; any non-binary input yields X.
Logic4 logic_xor(Logic4 a, Logic4 b);
/// Logical NOT; non-binary input yields X.
Logic4 logic_not(Logic4 a);

/// Single-character display form: '0', '1', 'x', 'z'.
char logic_char(Logic4 v);

/// Parse '0'/'1'/'x'/'X'/'z'/'Z'. Throws std::invalid_argument otherwise.
Logic4 logic_from_char(char c);

}  // namespace jhdl
