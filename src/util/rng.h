// Deterministic pseudo-random number generation for tests and benchmarks.
//
// A small xoshiro256** implementation so that workloads are reproducible
// across platforms and standard-library versions (std::mt19937 streams are
// portable, but distributions are not).
#pragma once

#include <cstdint>

namespace jhdl {

/// xoshiro256** PRNG. Deterministic for a given seed on every platform.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform value in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  bool coin() { return (next() & 1) != 0; }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace jhdl
