// BitVector: an arbitrary-width vector of four-state logic values.
//
// Used throughout the library for wire values wider than one bit: testbench
// stimulus, simulator port values, LUT/ROM initialization contents, and the
// black-box co-simulation protocol. Bit 0 is the least significant bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/logic.h"

namespace jhdl {

/// A fixed-width vector of Logic4 values. Width is set at construction and
/// preserved by all operations; arithmetic helpers interpret the contents as
/// an unsigned or two's-complement integer when all bits are binary.
class BitVector {
 public:
  /// Zero-width vector (useful as a placeholder).
  BitVector() = default;

  /// `width` bits, all initialized to `fill`.
  explicit BitVector(std::size_t width, Logic4 fill = Logic4::X);

  /// `width` bits taken from the low bits of `value` (zero-extended).
  static BitVector from_uint(std::size_t width, std::uint64_t value);

  /// `width` bits from a signed value (two's-complement, sign-extended).
  static BitVector from_int(std::size_t width, std::int64_t value);

  /// Parse a string like "10x1" (MSB first). Width = string length.
  static BitVector from_string(const std::string& bits);

  std::size_t width() const { return bits_.size(); }
  bool empty() const { return bits_.empty(); }

  Logic4 get(std::size_t i) const;
  void set(std::size_t i, Logic4 v);

  /// True when every bit is a driven 0 or 1.
  bool is_fully_defined() const;

  /// Unsigned integer value of the low min(width, 64) bits.
  /// Precondition: those bits are fully defined.
  std::uint64_t to_uint() const;

  /// Signed (two's-complement) value. Precondition: fully defined, width>=1.
  std::int64_t to_int() const;

  /// MSB-first string form, e.g. "0110" or "xx10".
  std::string to_string() const;

  /// Sub-vector [lo, lo+count). Throws std::out_of_range on overflow.
  BitVector slice(std::size_t lo, std::size_t count) const;

  /// Concatenate: result has `other` in the high bits, *this in the low bits.
  BitVector concat_msb(const BitVector& other) const;

  bool operator==(const BitVector& rhs) const = default;

 private:
  std::vector<Logic4> bits_;
};

}  // namespace jhdl
