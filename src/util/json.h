// Minimal JSON document model with parser and serializer.
//
// Used for the JSON netlist interchange format (the paper notes JHDL's
// netlister API lets users define custom textual interchange formats) and
// for applet specification files. Supports the full JSON grammar except
// that numbers are stored as double (plus an integer fast path).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace jhdl {

/// A JSON value: null, bool, number, string, array, or object.
class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Json() : type_(Type::Null) {}
  Json(bool b) : type_(Type::Bool), bool_(b) {}                 // NOLINT
  Json(double d) : type_(Type::Number), num_(d) {}              // NOLINT
  Json(int i) : type_(Type::Number), num_(i) {}                 // NOLINT
  Json(std::int64_t i)                                          // NOLINT
      : type_(Type::Number), num_(static_cast<double>(i)) {}
  Json(std::size_t i)                                           // NOLINT
      : type_(Type::Number), num_(static_cast<double>(i)) {}
  Json(const char* s) : type_(Type::String), str_(s) {}         // NOLINT
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}  // NOLINT

  static Json array() {
    Json j;
    j.type_ = Type::Array;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::Object;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_object() const { return type_ == Type::Object; }
  bool is_array() const { return type_ == Type::Array; }

  // --- accessors (throw std::runtime_error on type mismatch) ---
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const std::vector<Json>& items() const;
  const std::map<std::string, Json>& fields() const;

  /// Object member access; throws if not an object or key missing.
  const Json& at(const std::string& key) const;
  /// True if this is an object containing `key`.
  bool has(const std::string& key) const;
  /// Array element access.
  const Json& at(std::size_t index) const;
  std::size_t size() const;

  // --- builders ---
  /// Object member assignment (creates/overwrites); *this must be object.
  Json& set(const std::string& key, Json value);
  /// Array append; *this must be an array.
  Json& push(Json value);

  /// Serialize. `indent` > 0 pretty-prints with that many spaces.
  std::string dump(int indent = 0) const;

  /// Parse a JSON text; throws std::runtime_error with offset on error.
  static Json parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::map<std::string, Json> obj_;
};

}  // namespace jhdl
