#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace jhdl {
namespace {

[[noreturn]] void type_error(const char* want, Json::Type got) {
  throw std::runtime_error(std::string("json: expected ") + want +
                           ", got type " + std::to_string(static_cast<int>(got)));
}

void escape_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + msg);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  Json value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return Json(string());
      case 't':
        keyword("true");
        return Json(true);
      case 'f':
        keyword("false");
        return Json(false);
      case 'n':
        keyword("null");
        return Json();
      default:
        return number();
    }
  }

  void keyword(const char* kw) {
    for (const char* p = kw; *p; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("bad keyword");
      ++pos_;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad hex digit");
              }
            }
            // Encode as UTF-8 (basic multilingual plane only).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            fail("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Json number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    try {
      return Json(std::stod(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("bad number");
    }
  }

  Json array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(value());
      skip_ws();
      char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return arr;
  }

  Json object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      obj.set(key, value());
      skip_ws();
      char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return obj;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::Bool) type_error("bool", type_);
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::Number) type_error("number", type_);
  return num_;
}

std::int64_t Json::as_int() const {
  if (type_ != Type::Number) type_error("number", type_);
  return static_cast<std::int64_t>(std::llround(num_));
}

const std::string& Json::as_string() const {
  if (type_ != Type::String) type_error("string", type_);
  return str_;
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::Array) type_error("array", type_);
  return arr_;
}

const std::map<std::string, Json>& Json::fields() const {
  if (type_ != Type::Object) type_error("object", type_);
  return obj_;
}

const Json& Json::at(const std::string& key) const {
  if (type_ != Type::Object) type_error("object", type_);
  auto it = obj_.find(key);
  if (it == obj_.end()) {
    throw std::runtime_error("json: missing key '" + key + "'");
  }
  return it->second;
}

bool Json::has(const std::string& key) const {
  return type_ == Type::Object && obj_.count(key) > 0;
}

const Json& Json::at(std::size_t index) const {
  if (type_ != Type::Array) type_error("array", type_);
  if (index >= arr_.size()) {
    throw std::runtime_error("json: index out of range");
  }
  return arr_[index];
}

std::size_t Json::size() const {
  if (type_ == Type::Array) return arr_.size();
  if (type_ == Type::Object) return obj_.size();
  type_error("array or object", type_);
}

Json& Json::set(const std::string& key, Json value) {
  if (type_ != Type::Object) type_error("object", type_);
  obj_[key] = std::move(value);
  return *this;
}

Json& Json::push(Json value) {
  if (type_ != Type::Array) type_error("array", type_);
  arr_.push_back(std::move(value));
  return *this;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent > 0) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::Null:
      out += "null";
      break;
    case Type::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Type::Number: {
      double rounded = std::round(num_);
      if (rounded == num_ && std::fabs(num_) < 9e15) {
        out += std::to_string(static_cast<std::int64_t>(rounded));
      } else {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", num_);
        out += buf;
      }
      break;
    }
    case Type::String:
      escape_string(out, str_);
      break;
    case Type::Array: {
      out.push_back('[');
      bool first = true;
      for (const Json& v : arr_) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      if (!arr_.empty()) newline(depth);
      out.push_back(']');
      break;
    }
    case Type::Object: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        escape_string(out, k);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        v.dump_to(out, indent, depth + 1);
      }
      if (!obj_.empty()) newline(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace jhdl
