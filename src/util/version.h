// Build identity, surfaced through the `build.info` metric so a scrape
// can tell which binary it is talking to. Bump alongside protocol or
// behaviour changes worth telling an operator about.
#pragma once

namespace jhdl {

inline constexpr const char* kJhdlVersion = "0.9.0";

}  // namespace jhdl
