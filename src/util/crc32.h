// CRC-32 (ISO 3309 / zlib polynomial) for archive entry integrity checks,
// matching the checksum role CRC-32 plays inside JAR/ZIP archives.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace jhdl {

/// CRC-32 of a byte buffer (polynomial 0xEDB88320, init/final xor 0xFFFFFFFF).
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

std::uint32_t crc32(const std::vector<std::uint8_t>& data);
std::uint32_t crc32(const std::string& data);

}  // namespace jhdl
