#include "util/compress.h"

#include <cstring>
#include <stdexcept>

#include "util/bytestream.h"

namespace jhdl {
namespace {

constexpr std::size_t kWindow = 32 * 1024;
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 258;
constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = 1u << kHashBits;
constexpr std::uint32_t kMagic = 0x4C5A5331;  // "LZS1"

std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

std::vector<std::uint8_t> lzss_compress(
    const std::vector<std::uint8_t>& input) {
  ByteWriter out;
  out.u32(kMagic);
  out.varint(input.size());

  // Token stream: flag byte describing the next 8 tokens (bit set = match),
  // then for each token either one literal byte or varint(length-kMinMatch)
  // + varint(distance).
  std::vector<std::int64_t> head(kHashSize, -1);
  std::vector<std::int64_t> prev(input.size(), -1);

  std::vector<std::uint8_t> pending_flags;
  std::uint8_t flags = 0;
  int flag_count = 0;
  ByteWriter tokens;

  auto flush_group = [&](ByteWriter& dst) {
    dst.u8(flags);
    dst.raw(tokens.bytes());
    flags = 0;
    flag_count = 0;
    tokens = ByteWriter();
  };

  std::size_t pos = 0;
  while (pos < input.size()) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (pos + kMinMatch <= input.size()) {
      std::uint32_t h = hash4(&input[pos]);
      std::int64_t cand = head[h];
      int chain = 64;  // bounded chain walk keeps compression O(n)
      while (cand >= 0 && chain-- > 0 &&
             pos - static_cast<std::size_t>(cand) <= kWindow) {
        const std::uint8_t* a = &input[pos];
        const std::uint8_t* b = &input[static_cast<std::size_t>(cand)];
        std::size_t limit = input.size() - pos;
        if (limit > kMaxMatch) limit = kMaxMatch;
        std::size_t len = 0;
        while (len < limit && a[len] == b[len]) ++len;
        if (len >= kMinMatch && len > best_len) {
          best_len = len;
          best_dist = pos - static_cast<std::size_t>(cand);
          if (len == kMaxMatch) break;
        }
        cand = prev[static_cast<std::size_t>(cand)];
      }
    }

    if (best_len >= kMinMatch) {
      flags |= static_cast<std::uint8_t>(1u << flag_count);
      tokens.varint(best_len - kMinMatch);
      tokens.varint(best_dist);
      // Insert all covered positions into the hash chains.
      for (std::size_t i = 0; i < best_len && pos + i + 4 <= input.size();
           ++i) {
        std::uint32_t h = hash4(&input[pos + i]);
        prev[pos + i] = head[h];
        head[h] = static_cast<std::int64_t>(pos + i);
      }
      pos += best_len;
    } else {
      tokens.u8(input[pos]);
      if (pos + 4 <= input.size()) {
        std::uint32_t h = hash4(&input[pos]);
        prev[pos] = head[h];
        head[h] = static_cast<std::int64_t>(pos);
      }
      ++pos;
    }
    ++flag_count;
    if (flag_count == 8) flush_group(out);
  }
  if (flag_count > 0) flush_group(out);
  return out.take();
}

std::vector<std::uint8_t> lzss_decompress(
    const std::vector<std::uint8_t>& input) {
  ByteReader in(input);
  if (in.u32() != kMagic) {
    throw std::runtime_error("lzss: bad magic");
  }
  std::size_t expected = in.varint();
  std::vector<std::uint8_t> out;
  out.reserve(expected);

  while (out.size() < expected) {
    std::uint8_t flags = in.u8();
    for (int i = 0; i < 8 && out.size() < expected; ++i) {
      if (flags & (1u << i)) {
        std::size_t len = in.varint() + kMinMatch;
        std::size_t dist = in.varint();
        if (dist == 0 || dist > out.size()) {
          throw std::runtime_error("lzss: bad back-reference");
        }
        std::size_t from = out.size() - dist;
        for (std::size_t k = 0; k < len; ++k) {
          out.push_back(out[from + k]);  // overlapping copies are legal
        }
      } else {
        out.push_back(in.u8());
      }
    }
  }
  if (out.size() != expected) {
    throw std::runtime_error("lzss: size mismatch");
  }
  return out;
}

}  // namespace jhdl
