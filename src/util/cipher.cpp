#include "util/cipher.h"

#include <stdexcept>

namespace jhdl {
namespace {

std::uint32_t ror(std::uint32_t x, int r) { return (x >> r) | (x << (32 - r)); }
std::uint32_t rol(std::uint32_t x, int r) { return (x << r) | (x >> (32 - r)); }

void speck_round(std::uint32_t& x, std::uint32_t& y, std::uint32_t k) {
  x = ror(x, 8);
  x += y;
  x ^= k;
  y = rol(y, 3);
  y ^= x;
}

void speck_unround(std::uint32_t& x, std::uint32_t& y, std::uint32_t k) {
  y ^= x;
  y = ror(y, 3);
  x ^= k;
  x -= y;
  x = rol(x, 8);
}

/// MAC subkey: the data key with a domain-separation constant mixed in.
Speck64::Key mac_key(const Speck64::Key& key) {
  Speck64::Key mk = key;
  mk[0] ^= 0x4D41434Bu;  // "MACK"
  mk[3] ^= 0xA5A5A5A5u;
  return mk;
}

std::uint64_t load64(const std::uint8_t* p, std::size_t available) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    std::uint8_t b = i < available ? p[i] : 0;
    v |= static_cast<std::uint64_t>(b) << (8 * i);
  }
  return v;
}

void store64(std::uint8_t* p, std::uint64_t v) {
  for (std::size_t i = 0; i < 8; ++i) {
    p[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint64_t encrypt64(const Speck64& cipher, std::uint64_t block) {
  auto x = static_cast<std::uint32_t>(block >> 32);
  auto y = static_cast<std::uint32_t>(block);
  cipher.encrypt_block(x, y);
  return (static_cast<std::uint64_t>(x) << 32) | y;
}

/// CBC-MAC over the buffer (length-prefixed to resist extension).
std::uint64_t cbc_mac(const Speck64& cipher,
                      const std::vector<std::uint8_t>& data) {
  std::uint64_t state = encrypt64(cipher, data.size());
  for (std::size_t off = 0; off < data.size(); off += 8) {
    std::uint64_t block = load64(data.data() + off, data.size() - off);
    state = encrypt64(cipher, state ^ block);
  }
  return state;
}

}  // namespace

Speck64::Speck64(const Key& key) {
  // Key schedule: l[] and k[] sequences per the Speck specification.
  std::uint32_t k = key[0];
  std::uint32_t l[3] = {key[1], key[2], key[3]};
  for (int i = 0; i < kRounds; ++i) {
    round_keys_[static_cast<std::size_t>(i)] = k;
    std::uint32_t& li = l[i % 3];
    li = (ror(li, 8) + k) ^ static_cast<std::uint32_t>(i);
    k = rol(k, 3) ^ li;
  }
}

void Speck64::encrypt_block(std::uint32_t& x, std::uint32_t& y) const {
  for (int i = 0; i < kRounds; ++i) {
    speck_round(x, y, round_keys_[static_cast<std::size_t>(i)]);
  }
}

void Speck64::decrypt_block(std::uint32_t& x, std::uint32_t& y) const {
  for (int i = kRounds - 1; i >= 0; --i) {
    speck_unround(x, y, round_keys_[static_cast<std::size_t>(i)]);
  }
}

Speck64::Key derive_key(const std::string& passphrase,
                        const std::string& salt) {
  // Absorb passphrase and salt into the key state through repeated
  // encryption (sponge-like; deterministic across platforms).
  Speck64::Key key = {0x6A687064u, 0x6C707021u, 0x6B657921u, 0x2E2E2E2Eu};
  std::string material = salt + "\x01" + passphrase;
  for (int iter = 0; iter < 8; ++iter) {
    Speck64 cipher(key);
    std::uint64_t state = encrypt64(cipher, material.size() + iter);
    for (std::size_t off = 0; off < material.size(); off += 8) {
      std::uint64_t block =
          load64(reinterpret_cast<const std::uint8_t*>(material.data()) + off,
                 material.size() - off);
      state = encrypt64(cipher, state ^ block);
      key[(off / 8) % 4] ^= static_cast<std::uint32_t>(state);
      key[(off / 8 + 1) % 4] ^= static_cast<std::uint32_t>(state >> 32);
    }
    key[iter % 4] ^= static_cast<std::uint32_t>(state);
  }
  return key;
}

std::vector<std::uint8_t> seal(const std::vector<std::uint8_t>& plaintext,
                               const Speck64::Key& key, std::uint64_t nonce) {
  Speck64 data_cipher(key);
  std::vector<std::uint8_t> out(16 + plaintext.size());
  store64(out.data(), nonce);

  // CTR keystream: E(nonce ^ counter).
  for (std::size_t off = 0; off < plaintext.size(); off += 8) {
    std::uint64_t ks = encrypt64(data_cipher, nonce ^ (off / 8 + 1));
    for (std::size_t i = 0; i < 8 && off + i < plaintext.size(); ++i) {
      out[16 + off + i] = plaintext[off + i] ^
                          static_cast<std::uint8_t>(ks >> (8 * i));
    }
  }

  // Tag over nonce || ciphertext under the MAC subkey.
  Speck64 tag_cipher(mac_key(key));
  std::vector<std::uint8_t> tagged(out.begin(), out.begin() + 8);
  tagged.insert(tagged.end(), out.begin() + 16, out.end());
  store64(out.data() + 8, cbc_mac(tag_cipher, tagged));
  return out;
}

std::vector<std::uint8_t> open(const std::vector<std::uint8_t>& sealed,
                               const Speck64::Key& key) {
  if (sealed.size() < 16) {
    throw std::runtime_error("sealed buffer truncated");
  }
  std::uint64_t nonce = load64(sealed.data(), 8);
  std::uint64_t claimed_tag = load64(sealed.data() + 8, 8);

  Speck64 tag_cipher(mac_key(key));
  std::vector<std::uint8_t> tagged(sealed.begin(), sealed.begin() + 8);
  tagged.insert(tagged.end(), sealed.begin() + 16, sealed.end());
  std::uint8_t computed[8];
  std::uint8_t claimed[8];
  store64(computed, cbc_mac(tag_cipher, tagged));
  store64(claimed, claimed_tag);
  if (!constant_time_equal(computed, claimed, 8)) {
    throw std::runtime_error(
        "authentication failed: wrong key or tampered payload");
  }

  Speck64 data_cipher(key);
  std::vector<std::uint8_t> plain(sealed.size() - 16);
  for (std::size_t off = 0; off < plain.size(); off += 8) {
    std::uint64_t ks = encrypt64(data_cipher, nonce ^ (off / 8 + 1));
    for (std::size_t i = 0; i < 8 && off + i < plain.size(); ++i) {
      plain[off + i] = sealed[16 + off + i] ^
                       static_cast<std::uint8_t>(ks >> (8 * i));
    }
  }
  return plain;
}

std::uint64_t sealed_nonce(const std::vector<std::uint8_t>& sealed) {
  if (sealed.size() < 16) {
    throw std::runtime_error("sealed buffer truncated");
  }
  return load64(sealed.data(), 8);
}

bool constant_time_equal(const std::uint8_t* a, const std::uint8_t* b,
                         std::size_t len) {
  // volatile keeps the accumulator live so the loop cannot be collapsed
  // into a short-circuiting compare.
  volatile std::uint8_t diff = 0;
  for (std::size_t i = 0; i < len; ++i) {
    diff = static_cast<std::uint8_t>(diff | (a[i] ^ b[i]));
  }
  return diff == 0;
}

}  // namespace jhdl
