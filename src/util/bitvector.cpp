#include "util/bitvector.h"

#include <stdexcept>

namespace jhdl {

BitVector::BitVector(std::size_t width, Logic4 fill) : bits_(width, fill) {}

BitVector BitVector::from_uint(std::size_t width, std::uint64_t value) {
  BitVector v(width, Logic4::Zero);
  for (std::size_t i = 0; i < width && i < 64; ++i) {
    v.bits_[i] = to_logic((value >> i) & 1);
  }
  return v;
}

BitVector BitVector::from_int(std::size_t width, std::int64_t value) {
  return from_uint(width, static_cast<std::uint64_t>(value));
}

BitVector BitVector::from_string(const std::string& bits) {
  BitVector v(bits.size(), Logic4::X);
  // String is MSB-first; bit 0 is the last character.
  for (std::size_t i = 0; i < bits.size(); ++i) {
    v.bits_[bits.size() - 1 - i] = logic_from_char(bits[i]);
  }
  return v;
}

Logic4 BitVector::get(std::size_t i) const {
  if (i >= bits_.size()) throw std::out_of_range("BitVector::get");
  return bits_[i];
}

void BitVector::set(std::size_t i, Logic4 v) {
  if (i >= bits_.size()) throw std::out_of_range("BitVector::set");
  bits_[i] = v;
}

bool BitVector::is_fully_defined() const {
  for (Logic4 b : bits_) {
    if (!is_binary(b)) return false;
  }
  return true;
}

std::uint64_t BitVector::to_uint() const {
  std::uint64_t value = 0;
  const std::size_t n = bits_.size() < 64 ? bits_.size() : 64;
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_binary(bits_[i])) {
      throw std::logic_error("BitVector::to_uint on undefined bits: " +
                             to_string());
    }
    if (to_bool(bits_[i])) value |= (std::uint64_t{1} << i);
  }
  return value;
}

std::int64_t BitVector::to_int() const {
  if (bits_.empty()) throw std::logic_error("BitVector::to_int on empty");
  std::uint64_t raw = to_uint();
  const std::size_t w = bits_.size() < 64 ? bits_.size() : 64;
  if (w < 64 && to_bool(bits_[w - 1])) {
    raw |= ~((std::uint64_t{1} << w) - 1);  // sign extend
  }
  return static_cast<std::int64_t>(raw);
}

std::string BitVector::to_string() const {
  std::string s;
  s.reserve(bits_.size());
  for (std::size_t i = bits_.size(); i-- > 0;) {
    s.push_back(logic_char(bits_[i]));
  }
  return s;
}

BitVector BitVector::slice(std::size_t lo, std::size_t count) const {
  if (lo + count > bits_.size()) throw std::out_of_range("BitVector::slice");
  BitVector v(count, Logic4::X);
  for (std::size_t i = 0; i < count; ++i) v.bits_[i] = bits_[lo + i];
  return v;
}

BitVector BitVector::concat_msb(const BitVector& other) const {
  BitVector v(bits_.size() + other.bits_.size(), Logic4::X);
  for (std::size_t i = 0; i < bits_.size(); ++i) v.bits_[i] = bits_[i];
  for (std::size_t i = 0; i < other.bits_.size(); ++i) {
    v.bits_[bits_.size() + i] = other.bits_[i];
  }
  return v;
}

}  // namespace jhdl
