#include "util/logic.h"

#include <stdexcept>

namespace jhdl {

Logic4 logic_and(Logic4 a, Logic4 b) {
  if (a == Logic4::Zero || b == Logic4::Zero) return Logic4::Zero;
  if (a == Logic4::One && b == Logic4::One) return Logic4::One;
  return Logic4::X;
}

Logic4 logic_or(Logic4 a, Logic4 b) {
  if (a == Logic4::One || b == Logic4::One) return Logic4::One;
  if (a == Logic4::Zero && b == Logic4::Zero) return Logic4::Zero;
  return Logic4::X;
}

Logic4 logic_xor(Logic4 a, Logic4 b) {
  if (!is_binary(a) || !is_binary(b)) return Logic4::X;
  return to_logic(to_bool(a) != to_bool(b));
}

Logic4 logic_not(Logic4 a) {
  if (!is_binary(a)) return Logic4::X;
  return to_logic(!to_bool(a));
}

char logic_char(Logic4 v) {
  switch (v) {
    case Logic4::Zero:
      return '0';
    case Logic4::One:
      return '1';
    case Logic4::X:
      return 'x';
    case Logic4::Z:
      return 'z';
  }
  return '?';
}

Logic4 logic_from_char(char c) {
  switch (c) {
    case '0':
      return Logic4::Zero;
    case '1':
      return Logic4::One;
    case 'x':
    case 'X':
      return Logic4::X;
    case 'z':
    case 'Z':
      return Logic4::Z;
    default:
      throw std::invalid_argument(std::string("not a logic character: ") + c);
  }
}

}  // namespace jhdl
