// Byte-oriented serialization streams.
//
// Used by the packaging system (archive entries), the black-box simulation
// wire protocol, and netlist interchange. Integers are encoded LEB128-style
// (unsigned varint) so small values stay small; fixed-width encodings are
// available where the protocol requires them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace jhdl {

/// Append-only byte buffer with varint/fixed-width primitive encoders.
class ByteWriter {
 public:
  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);  ///< little-endian fixed width
  void u32(std::uint32_t v);  ///< little-endian fixed width
  void u64(std::uint64_t v);  ///< little-endian fixed width
  void varint(std::uint64_t v);
  void svarint(std::int64_t v);  ///< zigzag-encoded
  void str(const std::string& s);  ///< varint length + bytes
  void raw(const std::uint8_t* data, std::size_t size);
  void raw(const std::vector<std::uint8_t>& data);

 private:
  std::vector<std::uint8_t> buf_;
};

/// Sequential reader over a byte buffer. Throws std::runtime_error on
/// truncated input so protocol errors surface as exceptions, not UB.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& data)
      : data_(data.data()), size_(data.size()) {}

  bool done() const { return pos_ >= size_; }
  std::size_t remaining() const { return size_ - pos_; }

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::uint64_t varint();
  std::int64_t svarint();
  std::string str();
  std::vector<std::uint8_t> raw(std::size_t size);

 private:
  void need(std::size_t n) const;
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace jhdl
