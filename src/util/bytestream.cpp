#include "util/bytestream.h"

#include <stdexcept>

namespace jhdl {

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::varint(std::uint64_t v) {
  while (v >= 0x80) {
    u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  u8(static_cast<std::uint8_t>(v));
}

void ByteWriter::svarint(std::int64_t v) {
  varint((static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63));
}

void ByteWriter::str(const std::string& s) {
  varint(s.size());
  raw(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

void ByteWriter::raw(const std::uint8_t* data, std::size_t size) {
  buf_.insert(buf_.end(), data, data + size);
}

void ByteWriter::raw(const std::vector<std::uint8_t>& data) {
  raw(data.data(), data.size());
}

void ByteReader::need(std::size_t n) const {
  // Compare against the space left, never `pos_ + n`: a hostile length
  // (e.g. a varint decoding to ~SIZE_MAX) would overflow the addition,
  // pass the check, and turn the subsequent read into a wild allocation
  // or out-of-bounds copy.
  if (n > size_ - pos_) {
    throw std::runtime_error("ByteReader: truncated input");
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  std::uint16_t lo = u8();
  std::uint16_t hi = u8();
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t ByteReader::u32() {
  std::uint32_t lo = u16();
  std::uint32_t hi = u16();
  return lo | (hi << 16);
}

std::uint64_t ByteReader::u64() {
  std::uint64_t lo = u32();
  std::uint64_t hi = u32();
  return lo | (hi << 32);
}

std::uint64_t ByteReader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    std::uint8_t b = u8();
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
    if (shift >= 64) throw std::runtime_error("ByteReader: varint overflow");
  }
  return v;
}

std::int64_t ByteReader::svarint() {
  std::uint64_t raw = varint();
  return static_cast<std::int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
}

std::string ByteReader::str() {
  std::size_t n = varint();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

std::vector<std::uint8_t> ByteReader::raw(std::size_t size) {
  need(size);
  std::vector<std::uint8_t> out(data_ + pos_, data_ + pos_ + size);
  pos_ += size;
  return out;
}

}  // namespace jhdl
