// Small string helpers shared across the netlisters and viewers.
#pragma once

#include <string>
#include <vector>

namespace jhdl {

/// Sanitize an arbitrary hierarchical name into an identifier legal in
/// EDIF/VHDL/Verilog: [A-Za-z_][A-Za-z0-9_]*. Illegal characters become '_';
/// a leading digit gets an 'n' prefix; empty input becomes "_".
std::string sanitize_identifier(const std::string& name);

/// Join parts with a separator.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// True if `s` starts with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

/// Human-readable byte size, e.g. "795.2 kB".
std::string human_bytes(std::size_t bytes);

}  // namespace jhdl
