#include "hdl/wire.h"

#include "hdl/cell.h"
#include "hdl/error.h"
#include "hdl/hwsystem.h"

namespace jhdl {

Wire::Wire(Cell* owner, std::size_t width, std::string name) {
  if (owner == nullptr) throw HdlError("Wire must have an owning cell");
  if (width == 0) throw HdlError("Wire width must be >= 1");
  owner_ = owner;
  HWSystem* sys = owner->system();
  if (name.empty()) {
    name = "w" + std::to_string(sys->net_count());
  }
  name_ = name;
  nets_.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    std::string net_name =
        width == 1 ? name : name + "[" + std::to_string(i) + "]";
    nets_.push_back(sys->new_net(net_name));
  }
  owner->adopt_wire(this);
}

Wire::Wire(Cell* owner, std::vector<Net*> nets, std::string name)
    : owner_(owner), name_(std::move(name)), nets_(std::move(nets)) {
  owner->adopt_wire(this);
}

Net* Wire::net(std::size_t bit) const {
  if (bit >= nets_.size()) {
    throw HdlError("bit " + std::to_string(bit) + " out of range on wire '" +
                   name_ + "' (width " + std::to_string(nets_.size()) + ")");
  }
  return nets_[bit];
}

Wire* Wire::gw(std::size_t i) { return range(i, i); }

Wire* Wire::range(std::size_t hi, std::size_t lo) {
  if (hi < lo || hi >= nets_.size()) {
    throw HdlError("bad range [" + std::to_string(hi) + ":" +
                   std::to_string(lo) + "] on wire '" + name_ + "' (width " +
                   std::to_string(nets_.size()) + ")");
  }
  std::vector<Net*> view(nets_.begin() + static_cast<std::ptrdiff_t>(lo),
                         nets_.begin() + static_cast<std::ptrdiff_t>(hi) + 1);
  std::string view_name = name_ + "[" + std::to_string(hi) + ":" +
                          std::to_string(lo) + "]";
  return new Wire(owner_, std::move(view), std::move(view_name));
}

Wire* Wire::concat(Wire* low) {
  if (low == nullptr) throw HdlError("concat with null wire");
  std::vector<Net*> view = low->nets_;
  view.insert(view.end(), nets_.begin(), nets_.end());
  return new Wire(owner_, std::move(view), "{" + name_ + "," + low->name_ + "}");
}

BitVector Wire::value() const {
  BitVector v(nets_.size());
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    v.set(i, nets_[i]->value());
  }
  return v;
}

}  // namespace jhdl
