// Exception types for circuit construction and elaboration errors.
#pragma once

#include <stdexcept>
#include <string>

namespace jhdl {

/// Raised on structural errors: double-driven nets, width mismatches,
/// duplicate port names, invalid hierarchy operations.
class HdlError : public std::runtime_error {
 public:
  explicit HdlError(const std::string& what) : std::runtime_error(what) {}
};

/// Raised by the simulator: combinational loops that do not settle,
/// simulation of unelaborated systems, etc.
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace jhdl
