// Cell: a node in the circuit hierarchy, mirroring JHDL's Cell/Logic class.
//
// Circuits are described structurally by writing C++ classes whose
// constructors instance sub-cells and wires, exactly as the paper's Java
// listings do:
//
//   class FullAdder : public jhdl::Cell {
//    public:
//     FullAdder(Cell* parent, Wire* a, Wire* b, Wire* ci, Wire* s, Wire* co)
//         : Cell(parent, "fulladder") {
//       port_in("a", a); ... port_out("co", co);
//       Wire* t1 = new Wire(this, 1);
//       ...
//       new tech::And2(this, a, b, t1);
//       new tech::Or3(this, t1, t2, t3, co);
//       new tech::Xor3(this, a, b, ci, s);
//     }
//   };
//
// Ownership model (JHDL-style self-registration): constructing a Cell or a
// Wire with a parent/owner transfers ownership to that parent - the tree
// owns its nodes and deletes them from the root down. Never delete cells or
// wires manually; destroying the HWSystem destroys everything. The pattern
// is exception-safe: if a constructor throws after the base Cell subobject
// registered with the parent, the base destructor unregisters it during
// unwinding.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "hdl/placement.h"
#include "hdl/wire.h"

namespace jhdl {

class HWSystem;
class Net;

/// Port direction as seen from inside the cell.
enum class PortDir { In, Out, InOut };

const char* port_dir_name(PortDir dir);

/// A formal port of a cell: a name, direction and the wire bound to it.
/// JHDL passes wires straight through the hierarchy; the port list records
/// the boundary crossing so netlisters can emit hierarchical interfaces.
struct Port {
  std::string name;
  PortDir dir;
  Wire* wire;
};

/// Base class for all hierarchy nodes (JHDL calls this Cell / Logic;
/// the paper's listings use `Node parent` - see the Node alias below).
class Cell {
 public:
  /// Construct as a child of `parent` (must be non-null; only HWSystem
  /// roots the tree). The parent takes ownership. If `name` collides with
  /// a sibling, a numeric suffix is appended.
  Cell(Cell* parent, std::string name);

  Cell(const Cell&) = delete;
  Cell& operator=(const Cell&) = delete;
  virtual ~Cell();

  // --- identity & hierarchy ---
  const std::string& name() const { return name_; }
  /// Slash-separated path from the root, e.g. "system/mult/ppgen0".
  std::string full_name() const;
  Cell* parent() const { return parent_; }
  /// Walks to the root; throws HdlError if the root is not an HWSystem.
  HWSystem* system() const;
  const std::vector<Cell*>& children() const { return children_; }

  /// True for leaf library primitives (gates, LUTs, flip-flops).
  virtual bool is_primitive() const { return false; }

  /// Cell-definition name used by netlisters. Instances that share a
  /// definition name are assumed structurally identical; the default ""
  /// makes every instance its own definition.
  const std::string& type_name() const { return type_name_; }

  // --- ports ---
  const std::vector<Port>& ports() const { return ports_; }
  /// Find a port by name; nullptr if absent.
  const Port* find_port(const std::string& name) const;

  // --- properties (string key/value metadata, e.g. netlist attributes) ---
  void set_property(const std::string& key, const std::string& value);
  /// nullptr when the property is not set.
  const std::string* property(const std::string& key) const;
  const std::map<std::string, std::string>& properties() const {
    return properties_;
  }

  // --- relative placement ---
  void set_rloc(RLoc rloc) { rloc_ = rloc; }
  const std::optional<RLoc>& rloc() const { return rloc_; }
  /// Sum of RLOCs from the root to this cell (cells without RLOC contribute
  /// nothing).
  RLoc absolute_loc() const;

  // --- bookkeeping used by Wire construction (not for end users) ---
  Wire* adopt_wire(Wire* wire);
  const std::vector<Wire*>& wires() const { return wires_; }

  /// Rename this cell (tooling hook used by the obfuscator). The name is
  /// uniquified against siblings like at construction.
  void rename(const std::string& new_name);
  /// Replace the netlist definition name (obfuscator hook).
  void retype(std::string new_type) { type_name_ = std::move(new_type); }

 protected:
  /// Root constructor, used only by HWSystem.
  explicit Cell(std::string name);

  /// Declare formal ports. Call in the subclass constructor, once per port.
  /// Throws HdlError on duplicate names or null wires.
  void port_in(const std::string& name, Wire* wire);
  void port_out(const std::string& name, Wire* wire);
  void port_inout(const std::string& name, Wire* wire);

  /// Set the netlist definition name (e.g. "fulladder", "kcm_8x8_c56").
  void set_type_name(std::string type) { type_name_ = std::move(type); }

 private:
  void add_port(const std::string& name, PortDir dir, Wire* wire);
  std::string unique_child_name(const std::string& base) const;
  void remove_child(Cell* child);

  Cell* parent_ = nullptr;
  std::string name_;
  std::string type_name_;
  std::vector<Cell*> children_;  // owned; deleted in ~Cell
  std::vector<Wire*> wires_;     // owned; deleted in ~Cell
  std::vector<Port> ports_;
  std::map<std::string, std::string> properties_;
  std::optional<RLoc> rloc_;
  bool destroying_ = false;
};

/// The paper's listings take `Node parent`; JHDL's Node is the hierarchy
/// base class. In this library Cell plays that role directly.
using Node = Cell;

}  // namespace jhdl
