// Primitive: a leaf library cell with simulation behaviour and resource
// models. Technology libraries (src/tech) subclass this, exactly as JHDL's
// technology libraries provide and2/or3/fdce/... leaf cells.
//
// A primitive's constructor declares its pins with in()/out(). Input pins
// register the primitive as a sink on each net; output pins claim the net's
// single driver slot (double-driving throws HdlError).
//
// Simulation contract:
//  - Combinational primitives override propagate(), reading inputs with
//    iv() and writing outputs with ov(). The simulator calls propagate() in
//    levelized order.
//  - Sequential primitives return true from sequential() and override
//    pre_clock() (sample inputs into internal state) and post_clock()
//    (drive outputs from that state). The two-phase protocol makes the
//    result independent of evaluation order, like real flip-flops.
#pragma once

#include <string>
#include <vector>

#include "hdl/cell.h"
#include "hdl/net.h"
#include "util/logic.h"

namespace jhdl {

/// Per-primitive FPGA resource and timing model (Virtex-class numbers).
struct Resources {
  int luts = 0;      ///< 4-input LUTs consumed
  int ffs = 0;       ///< flip-flops consumed
  int carries = 0;   ///< carry-chain mux/xor pairs consumed
  int brams = 0;     ///< block RAMs consumed
  double delay_ns = 0.0;  ///< worst pin-to-pin (comb) or clk-to-q (seq) delay
};

/// A named single-bit pin bound to a net.
struct Pin {
  std::string name;
  PortDir dir;
  Net* net;
};

/// Base class of all leaf library cells.
class Primitive : public Cell {
 public:
  Primitive(Cell* parent, std::string name) : Cell(parent, std::move(name)) {}

  bool is_primitive() const final { return true; }

  /// Combinational evaluation; default does nothing.
  virtual void propagate() {}

  /// True for clocked primitives.
  virtual bool sequential() const { return false; }

  /// True when some output depends combinationally on an input, so the
  /// simulator must call propagate() during settling. Combinational
  /// primitives always do; sequential ones usually do not (flip-flop
  /// outputs change only on clock edges), but e.g. distributed RAM with an
  /// asynchronous read port overrides this to true.
  virtual bool has_comb_path() const { return !sequential(); }
  /// Phase 1 of a clock edge: sample inputs into internal state.
  virtual void pre_clock() {}
  /// Phase 2 of a clock edge: drive outputs from sampled state.
  virtual void post_clock() {}

  /// Reset internal state to power-on values and drive outputs accordingly.
  /// Default is a no-op for combinational primitives.
  virtual void reset() {}

  /// Area/timing model for the estimator.
  virtual Resources resources() const { return {}; }

  /// Flattened single-bit pins in declaration order (netlister interface).
  const std::vector<Pin>& pins() const { return pins_; }

  std::size_t num_inputs() const { return inputs_.size(); }
  std::size_t num_outputs() const { return outputs_.size(); }
  const std::vector<Net*>& input_nets() const { return inputs_; }
  const std::vector<Net*>& output_nets() const { return outputs_; }

 protected:
  /// Declare an input pin group bound to `wire` (one pin per bit; pins are
  /// named "name" for 1-bit wires, "name[i]" otherwise). Also records a
  /// cell port so viewers/netlisters see a uniform interface.
  void in(const std::string& name, Wire* wire);
  /// Declare an output pin group; claims the driver slot of each net.
  void out(const std::string& name, Wire* wire);

  /// Value of the i-th declared input bit.
  Logic4 iv(std::size_t i) const { return inputs_[i]->value(); }
  /// Drive the i-th declared output bit.
  void ov(std::size_t i, Logic4 v) { outputs_[i]->set_value(v); }

 private:
  std::vector<Pin> pins_;
  std::vector<Net*> inputs_;
  std::vector<Net*> outputs_;
};

}  // namespace jhdl
