// Hierarchy traversal helpers - the "open API to the circuit structure"
// the paper highlights (Section 2): application-specific tools (viewers,
// netlisters, estimators, obfuscators) are all built on these.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "hdl/cell.h"
#include "hdl/primitive.h"

namespace jhdl {

/// Pre-order depth-first visit of `root` and every descendant cell.
void for_each_cell(Cell& root, const std::function<void(Cell&)>& fn);

/// All primitive leaves under `root` (including `root` itself if it is one),
/// in deterministic construction order.
std::vector<Primitive*> collect_primitives(Cell& root);

/// Aggregate structural statistics of a subtree.
struct HierarchyStats {
  std::size_t cells = 0;       ///< total cells including primitives
  std::size_t primitives = 0;  ///< leaf library cells
  std::size_t wires = 0;       ///< wire objects (views included)
  std::size_t max_depth = 0;   ///< deepest nesting level (root = 0)
};

HierarchyStats hierarchy_stats(Cell& root);

}  // namespace jhdl
