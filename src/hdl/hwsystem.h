// HWSystem: the root of a circuit hierarchy and the arena that owns all
// Nets, mirroring JHDL's HWSystem.
//
// Typical use:
//
//   jhdl::HWSystem hw;
//   Wire* a = new Wire(&hw, 1, "a");
//   ...
//   auto* design = new FullAdder(&hw, a, b, ci, s, co);
//   jhdl::Simulator sim(hw);
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hdl/cell.h"
#include "hdl/net.h"

namespace jhdl {

/// Root node of a circuit; owns the flat Net arena.
class HWSystem : public Cell {
 public:
  explicit HWSystem(std::string name = "system") : Cell(std::move(name)) {}

  /// Allocate a fresh net. Called by Wire construction.
  Net* new_net(const std::string& name);

  std::size_t net_count() const { return nets_.size(); }
  const std::vector<std::unique_ptr<Net>>& nets() const { return nets_; }

  /// Dense net values, indexed by net id (the storage Net::value() reads).
  /// The compiled simulation kernel evaluates directly over this array, so
  /// engine writes and Net reads are one and the same byte - no
  /// write-through pass is needed to keep probes coherent. The kernel may
  /// extend the array past net_count() with constant scratch slots.
  std::vector<Logic4>& net_values() { return net_values_; }
  const std::vector<Logic4>& net_values() const { return net_values_; }

 private:
  std::vector<std::unique_ptr<Net>> nets_;
  std::vector<Logic4> net_values_;
};

}  // namespace jhdl
