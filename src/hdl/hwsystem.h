// HWSystem: the root of a circuit hierarchy and the arena that owns all
// Nets, mirroring JHDL's HWSystem.
//
// Typical use:
//
//   jhdl::HWSystem hw;
//   Wire* a = new Wire(&hw, 1, "a");
//   ...
//   auto* design = new FullAdder(&hw, a, b, ci, s, co);
//   jhdl::Simulator sim(hw);
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hdl/cell.h"
#include "hdl/net.h"

namespace jhdl {

/// Root node of a circuit; owns the flat Net arena.
class HWSystem : public Cell {
 public:
  explicit HWSystem(std::string name = "system") : Cell(std::move(name)) {}

  /// Allocate a fresh net. Called by Wire construction.
  Net* new_net(const std::string& name);

  std::size_t net_count() const { return nets_.size(); }
  const std::vector<std::unique_ptr<Net>>& nets() const { return nets_; }

 private:
  std::vector<std::unique_ptr<Net>> nets_;
};

}  // namespace jhdl
