#include "hdl/primitive.h"

#include "hdl/error.h"

namespace jhdl {

void Net::bind_driver(Primitive* p, int pin) {
  if (driver_kind_ != DriverKind::None) {
    throw HdlError("net '" + name_ + "' already driven; cannot add driver " +
                   p->full_name());
  }
  driver_kind_ = DriverKind::Primitive;
  driver_ = p;
  driver_pin_ = pin;
}

void Net::bind_external() {
  if (driver_kind_ == DriverKind::Primitive) {
    throw HdlError("net '" + name_ +
                   "' is driven by a primitive; cannot drive externally");
  }
  driver_kind_ = DriverKind::External;
}

void Primitive::in(const std::string& name, Wire* wire) {
  if (wire == nullptr) {
    throw HdlError("null wire on input pin '" + name + "' of " + full_name());
  }
  port_in(name, wire);
  for (std::size_t i = 0; i < wire->width(); ++i) {
    Net* n = wire->net(i);
    std::string pin_name =
        wire->width() == 1 ? name : name + "[" + std::to_string(i) + "]";
    pins_.push_back(Pin{pin_name, PortDir::In, n});
    inputs_.push_back(n);
    n->add_sink(this);
  }
}

void Primitive::out(const std::string& name, Wire* wire) {
  if (wire == nullptr) {
    throw HdlError("null wire on output pin '" + name + "' of " + full_name());
  }
  port_out(name, wire);
  for (std::size_t i = 0; i < wire->width(); ++i) {
    Net* n = wire->net(i);
    std::string pin_name =
        wire->width() == 1 ? name : name + "[" + std::to_string(i) + "]";
    pins_.push_back(Pin{pin_name, PortDir::Out, n});
    n->bind_driver(this, static_cast<int>(outputs_.size()));
    outputs_.push_back(n);
  }
}

}  // namespace jhdl
