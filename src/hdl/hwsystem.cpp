#include "hdl/hwsystem.h"

namespace jhdl {

Net* HWSystem::new_net(const std::string& name) {
  auto id = static_cast<std::uint32_t>(nets_.size());
  std::string net_name = name.empty() ? "n" + std::to_string(id) : name;
  net_values_.push_back(Logic4::X);
  nets_.push_back(std::make_unique<Net>(id, std::move(net_name), &net_values_));
  return nets_.back().get();
}

}  // namespace jhdl
